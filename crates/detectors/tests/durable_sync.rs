//! Durable restore→continue contract on the **lock-step** engine: a
//! [`SyncSnapshot`] of the HΣ (Figure 7) detector taken mid-run, pushed
//! through the on-disk container (encode → atomic write → verified read
//! → decode) and restored into a fresh engine, continues the run
//! step-identically to an uninterrupted execution — the sync-engine
//! half of the crash-safety contract (`homonym_sim::durable`).

use homonym_core::failure::FailureSchedule;
use homonym_core::identity::IdentityAssignment;
use homonym_core::time::Time;
use homonym_core::wire;
use homonym_detectors::HSigmaSyncProcess;
use homonym_sim::sync_engine::{SyncConfig, SyncEngine};
use homonym_sim::{read_verified, write_atomic, SyncSnapshot};
use proptest::prelude::*;

/// Arbitrary schema tag for the test container (any value works as long
/// as write and read agree).
const TEST_SCHEMA: u32 = 99;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Snapshot at a random step boundary, round-trip through disk,
    /// restore, finish: histories, metrics and step count must match the
    /// uninterrupted run exactly, for arbitrary seeds and one crash.
    #[test]
    fn sync_snapshot_survives_a_disk_round_trip(
        seed in 0u64..1_000,
        cut in 1u64..20,
        crash in 0usize..6,
        crash_at in 0u64..12,
    ) {
        let total = 20u64;
        let assign = IdentityAssignment::round_robin(6, 2);
        let sched = FailureSchedule::none(6).with_crash(crash, Time::from_ticks(crash_at));
        let mk = || {
            let cfg = SyncConfig::new(assign.clone(), sched.clone()).with_seed(seed);
            SyncEngine::new(cfg, |_, id| HSigmaSyncProcess::new(id))
        };

        let mut base = mk();
        base.run_steps(total);
        let expected_hist = base.histories().to_vec();
        let expected_metrics = base.metrics().clone();

        let mut e = mk();
        e.run_steps(cut);
        let snap = e.snapshot();

        let dir = std::env::temp_dir().join(format!(
            "hsnp-sync-rt-{}-{seed}-{cut}-{crash}-{crash_at}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sync.ck");
        write_atomic(&path, TEST_SCHEMA, &wire::to_bytes(&snap)).expect("atomic write");
        drop(snap);
        drop(e); // the "kill": nothing survives but the file

        let payload = read_verified(&path, TEST_SCHEMA)
            .expect("verified read")
            .expect("file written above");
        let restored: SyncSnapshot<HSigmaSyncProcess> =
            wire::from_bytes(&payload).expect("decode");
        let mut resumed = mk();
        resumed.restore_from(&restored);
        resumed.run_steps(total - cut);

        prop_assert_eq!(resumed.histories(), expected_hist.as_slice());
        prop_assert_eq!(resumed.metrics(), &expected_metrics);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
