//! Property-based tests of the real detector implementations: class
//! validity must hold for arbitrary topologies, synchrony parameters and
//! crash schedules.

use homonym_core::prelude::*;
use homonym_detectors::e_list::EListProcess;
use homonym_detectors::evt_hp::{split_snapshots, EvtHpProcess};
use homonym_detectors::h_sigma_sync::HSigmaSyncProcess;
use homonym_sim::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Topology {
    n: usize,
    l: usize,
    crash_times: Vec<Option<u64>>,
    seed: u64,
}

fn topology(max_n: usize, crash_horizon: u64) -> impl Strategy<Value = Topology> {
    (2usize..=max_n)
        .prop_flat_map(move |n| {
            (
                Just(n),
                1usize..=n,
                proptest::collection::vec(proptest::option::weighted(0.3, 1u64..crash_horizon), n),
                any::<u64>(),
            )
        })
        .prop_map(|(n, l, crash_times, seed)| Topology {
            n,
            l,
            crash_times,
            seed,
        })
        .prop_filter("need one correct process", |t| {
            t.crash_times.iter().any(Option::is_none)
        })
}

fn build(t: &Topology) -> (IdentityAssignment, FailureSchedule) {
    let assign = IdentityAssignment::round_robin(t.n, t.l);
    let mut sched = FailureSchedule::none(t.n);
    for (p, c) in t.crash_times.iter().enumerate() {
        if let Some(at) = c {
            sched.set_crash(p, Time::from_ticks(*at));
        }
    }
    (assign, sched)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Figure 6 converges to ◇HP/HΩ for arbitrary GST, δ and crashes.
    #[test]
    fn fig6_is_class_valid(t in topology(5, 60), gst in 0u64..80, delta in 1u64..5) {
        let (assign, sched) = build(&t);
        let network = NetworkModel::PartialSync {
            gst: Time::from_ticks(gst),
            delta: Span::from_ticks(delta),
            pre_gst: PreGstBehavior::LossyDelay {
                loss_percent: 30,
                max_delay: Span::from_ticks(25),
            },
        };
        let cfg = SimConfig::new(assign.clone(), sched.clone(), network).with_seed(t.seed);
        let mut engine = Engine::new(cfg, |_, _| EvtHpProcess::new());
        engine.run_until(Time::from_ticks(40 * gst.max(40) + 6_000));
        let mut evt = Vec::new();
        let mut omg = Vec::new();
        for h in engine.histories() {
            let (e, o) = split_snapshots(h);
            evt.push(e);
            omg.push(o);
        }
        check_evt_hp(&evt, &sched, &assign)
            .map_err(|e| TestCaseError::fail(format!("{t:?} gst={gst} δ={delta}: {e}")))?;
        check_h_omega(&omg, &sched, &assign)
            .map_err(|e| TestCaseError::fail(format!("{t:?} gst={gst} δ={delta}: {e}")))?;
    }

    /// Figure 7 stays HΣ-valid for arbitrary lock-step crash schedules,
    /// including partial final broadcasts.
    #[test]
    fn fig7_is_class_valid(t in topology(8, 8), steps in 10u64..16) {
        let (assign, sched) = build(&t);
        let cfg = SyncConfig::new(assign.clone(), sched.clone()).with_seed(t.seed);
        let mut engine = SyncEngine::new(cfg, |_, id| HSigmaSyncProcess::new(id));
        engine.run_steps(steps);
        check_h_sigma(engine.histories(), &sched, &assign)
            .map_err(|e| TestCaseError::fail(format!("{t:?} steps={steps}: {e}")))?;
    }

    /// Figure 3 satisfies Definition 1 for arbitrary asynchronous runs
    /// (unique identifiers).
    #[test]
    fn fig3_is_class_valid(t in topology(6, 40), max_lat in 1u64..6) {
        let (_, sched) = build(&t);
        let assign = IdentityAssignment::unique(t.n); // class E needs unique ids
        let cfg = SimConfig::new(
            assign.clone(),
            sched.clone(),
            NetworkModel::Asynchronous(LatencyDistribution::Uniform {
                min: Span::TICK,
                max: Span::from_ticks(max_lat),
            }),
        )
        .with_seed(t.seed);
        let mut engine = Engine::new(cfg, |_, _| EListProcess::new(Span::from_ticks(2)));
        engine.run_until(Time::from_ticks(400));
        check_e_list(engine.histories(), &sched, &assign)
            .map_err(|e| TestCaseError::fail(format!("{t:?}: {e}")))?;
    }
}
