//! Figure 7: `HΣ` in `HSS[∅]` (synchronous homonymous systems).
//!
//! In every synchronous step each process broadcasts `IDENT(id(p))`, waits
//! for the messages sent in the same step, and gathers the received
//! identifiers into the multiset `mset_p`. The multiset is then used **as
//! its own quorum label**: `h_quora ← h_quora ∪ {(mset_p, mset_p)}` and
//! `h_labels ← h_labels ∪ {mset_p}`.
//!
//! Safety holds because every receiver of a step is itself a member of any
//! quorum it records, and any two step-quora both contain every correct
//! process; liveness holds from the first step after the last crash, when
//! `mset_p = I(Correct)` at every correct process (Theorem 6). Membership
//! is never known initially — everything is learned from `IDENT` traffic.

use homonym_core::classes::{HSigmaOutput, Label};
use homonym_core::identity::Identity;
use homonym_core::multiset::Multiset;
use homonym_core::query::SharedCell;
use homonym_core::wire::{Loader, Persist, Saver, WireError};
use homonym_sim::sync_engine::{SyncProcess, SyncSink};

/// Protocol message of Figure 7: `IDENT(id)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentMsg(pub Identity);

/// The Figure 7 process (lock-step).
#[derive(Debug)]
pub struct HSigmaSyncProcess {
    my_id: Identity,
    output: HSigmaOutput,
    mirror: Option<SharedCell<HSigmaOutput>>,
}

impl HSigmaSyncProcess {
    /// Creates the process; `my_id` must be the identifier the engine
    /// assigns to it.
    #[must_use]
    pub fn new(my_id: Identity) -> Self {
        HSigmaSyncProcess {
            my_id,
            output: HSigmaOutput::new(),
            mirror: None,
        }
    }

    /// Mirrors the output into `cell` after every step.
    #[must_use]
    pub fn with_mirror(mut self, cell: SharedCell<HSigmaOutput>) -> Self {
        self.mirror = Some(cell);
        self
    }

    /// Current `(h_quora, h_labels)`.
    #[must_use]
    pub fn output(&self) -> &HSigmaOutput {
        &self.output
    }
}

/// Snapshot support: the output state is duplicated and the mirror cell
/// re-seated through the fork space (see `homonym_sim::snapshot`).
impl homonym_sim::snapshot::ForkSyncProcess for HSigmaSyncProcess {
    fn fork_in(&self, space: &mut homonym_core::fork::ForkSpace) -> Self {
        use homonym_core::fork::ForkState;
        HSigmaSyncProcess {
            my_id: self.my_id,
            output: self.output.clone(),
            mirror: self.mirror.as_ref().map(|c| c.fork_in(space)),
        }
    }
}

impl SyncProcess for HSigmaSyncProcess {
    type Msg = IdentMsg;
    type Output = HSigmaOutput;

    /// Corruption semantics for the Byzantine payload-mutation hook: a
    /// corrupt homonym lies about its identifier. Forged identities are
    /// drawn from a small range so they collide with real ones —
    /// homonymy is the attack surface, not random garbage.
    fn mutate_payload(msg: &IdentMsg, entropy: u64) -> Option<IdentMsg> {
        Some(IdentMsg(Identity::new(
            (msg.0.raw().wrapping_add(1 + entropy)) % 8,
        )))
    }

    fn send(&mut self, _step: u64, out: &mut Vec<IdentMsg>) {
        out.push(IdentMsg(self.my_id));
    }

    fn receive(
        &mut self,
        step: u64,
        received: &mut Vec<IdentMsg>,
        sink: &mut SyncSink<HSigmaOutput>,
    ) {
        let mset: Multiset<Identity> = received.drain(..).map(|m| m.0).collect();
        let trusted = mset.len();
        let label = Label::id_multiset(mset.clone());
        let before = self.output.h_labels.len();
        self.output.insert_quorum(label.clone(), mset);
        self.output.insert_label(label);
        let changed = self.output.h_labels.len() != before;
        sink.observe(|| homonym_sim::ObsKind::DetectorEpoch {
            round: step,
            trusted: u32::try_from(trusted).unwrap_or(u32::MAX),
            changed,
        });
        if let Some(cell) = &self.mirror {
            cell.set(self.output.clone());
        }
        sink.publish(self.output.clone());
    }
}

impl Persist for IdentMsg {
    fn save(&self, s: &mut Saver) {
        self.0.save(s);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(IdentMsg(Persist::load(l)?))
    }
}

homonym_core::persist_fields!(HSigmaSyncProcess {
    my_id,
    output,
    mirror
});

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::prelude::*;
    use homonym_sim::prelude::*;

    fn run_fig7(
        assign: IdentityAssignment,
        sched: FailureSchedule,
        steps: u64,
        seed: u64,
        partial: bool,
    ) -> Vec<History<HSigmaOutput>> {
        let mut cfg = SyncConfig::new(assign, sched).with_seed(seed);
        cfg.partial_broadcast_on_crash = partial;
        let mut engine = SyncEngine::new(cfg, |_, id| HSigmaSyncProcess::new(id));
        engine.run_steps(steps);
        engine.histories().to_vec()
    }

    #[test]
    fn failure_free_run_is_class_valid() {
        let assign = IdentityAssignment::round_robin(4, 2);
        let sched = FailureSchedule::none(4);
        let hist = run_fig7(assign.clone(), sched.clone(), 5, 1, false);
        let rep = check_h_sigma(&hist, &sched, &assign).expect("HΣ class valid");
        // One label: everyone sees {A, A, B, B} in every step.
        assert_eq!(rep.labels_observed, 1);
    }

    #[test]
    fn crashes_create_epoch_labels_and_stay_safe() {
        let assign = IdentityAssignment::round_robin(5, 2);
        let sched = FailureSchedule::none(5)
            .with_crash(1, Time::from_ticks(2))
            .with_crash(3, Time::from_ticks(4));
        let hist = run_fig7(assign.clone(), sched.clone(), 8, 2, false);
        let rep = check_h_sigma(&hist, &sched, &assign).expect("HΣ class valid");
        assert!(rep.labels_observed >= 3, "one label per alive-set epoch");
    }

    #[test]
    fn partial_final_broadcast_is_still_safe() {
        // A dying process's IDENT reaches an arbitrary subset: receivers
        // record different multisets for the same step; safety must hold.
        for seed in 0..20 {
            let assign = IdentityAssignment::round_robin(5, 2);
            let sched = FailureSchedule::none(5)
                .with_crash(0, Time::from_ticks(1))
                .with_crash(2, Time::from_ticks(3));
            let hist = run_fig7(assign.clone(), sched.clone(), 7, seed, true);
            check_h_sigma(&hist, &sched, &assign).expect("HΣ class valid");
        }
    }

    #[test]
    fn anonymous_system_yields_count_quora() {
        let assign = IdentityAssignment::anonymous(4);
        let sched = FailureSchedule::none(4).with_crash(3, Time::from_ticks(2));
        let hist = run_fig7(assign.clone(), sched.clone(), 6, 3, false);
        check_h_sigma(&hist, &sched, &assign).expect("HΣ class valid");
        // Final quorum multiset is ⊥^3.
        let last = &hist[0].last().expect("steps ran").1;
        let expected: Multiset<Identity> = [(Identity::BOTTOM, 3)].into_iter().collect();
        assert!(last.h_quora.values().any(|m| m == &expected));
    }

    #[test]
    fn liveness_pair_is_i_correct_after_last_crash() {
        let assign = IdentityAssignment::round_robin(6, 3);
        let sched = FailureSchedule::none(6).with_crash(5, Time::from_ticks(1));
        let hist = run_fig7(assign.clone(), sched.clone(), 6, 4, false);
        let i_correct = sched.i_correct(&assign);
        for p in sched.correct_set() {
            let last = &hist[p].last().expect("steps ran").1;
            assert!(
                last.h_quora.values().any(|m| m == &i_correct),
                "process {p} never recorded the I(Correct) quorum"
            );
        }
    }
}
