//! Ground-truth oracles for every failure-detector class.
//!
//! A failure detector is formally a function of the **failure pattern** —
//! it may even be prescient. These oracles compute class-compliant outputs
//! directly from the [`FailureSchedule`], which lets us:
//!
//! * drive the consensus algorithms with detectors that sit exactly at the
//!   class boundary (including adversarially unstable behaviour before a
//!   configurable stabilization time), and
//! * cross-validate the property checkers themselves.
//!
//! All oracles are built from an [`OracleWorld`] and handed to the process
//! factory; each implements the matching `*Source` trait from
//! [`homonym_core::query`].

use std::sync::Arc;

use homonym_core::classes::{
    AOmegaOutput, APOutput, ASigmaOutput, EListOutput, EvtHPOutput, HOmegaOutput, HSigmaOutput,
    Label, OmegaOutput, SigmaOutput,
};
use homonym_core::failure::FailureSchedule;
use homonym_core::identity::{Identity, IdentityAssignment};
use homonym_core::multiset::Multiset;
use homonym_core::query::{
    AOmegaSource, APSource, ASigmaSource, EListSource, EvtHPSource, HOmegaSource, HSigmaSource,
    OmegaSource, SigmaSource,
};
use homonym_core::time::{Span, Time};

/// Behaviour of an oracle before its stabilization time.
///
/// Classes with *eventual* properties leave pre-stabilization outputs
/// unconstrained; the adversarial variants exercise exactly that freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreStability {
    /// Output the truth immediately (stabilization time is ignored for
    /// classes whose truth is time-dependent, e.g. `AP` tracks `Alive`).
    Truthful,
    /// Output deterministic, per-process-diverging junk until
    /// stabilization: rotating leaders, stale multisets, inflated counts.
    Chaotic,
    /// Adversarially withhold usefulness until stabilization: leader
    /// oracles name an identifier **no process carries** (so nobody acts
    /// as leader and leader-gated algorithms provably stall), quorum
    /// oracles withhold their pairs. Classes with only eventual
    /// properties permit this.
    Paralyzing,
}

/// Shared ground truth from which per-process oracles are derived.
#[derive(Debug, Clone)]
pub struct OracleWorld {
    inner: Arc<WorldInner>,
}

#[derive(Debug)]
struct WorldInner {
    sched: FailureSchedule,
    assign: IdentityAssignment,
    stabilize_at: Time,
    epochs: Vec<Time>,
    // --- query caches ---------------------------------------------------
    // A failure-pattern oracle's output is a pure function of (time,
    // salt, pre-stability mode), and every time-dependent ingredient is
    // constant within an alive-set epoch. Everything an oracle can be
    // asked for is therefore precomputed here once per world: consensus
    // eval loops query leader/quorum oracles several times per message,
    // so recomputing rotating-leader junk or re-scanning the schedule on
    // every call dominated the chaos-sweep profile.
    /// `I(Π)`.
    ids: Multiset<Identity>,
    /// Distinct identifiers, ascending (the chaotic rotation wheel).
    support: Vec<Identity>,
    /// `I(Correct)`.
    i_correct: Multiset<Identity>,
    /// The post-stabilization `HΩ` output.
    stable_h_omega: HOmegaOutput,
    /// Smallest-index correct process (the `AΩ` stable leader).
    first_correct: usize,
    /// `I(Alive(epoch start))` per epoch.
    alive_per_epoch: Vec<Multiset<Identity>>,
    /// `|Alive(epoch start)|` per epoch.
    alive_count_per_epoch: Vec<usize>,
    /// `HΣ` output prefixes per epoch: labels + quora (the visible
    /// flavor) and labels only (the withholding flavor).
    h_sigma_full: Vec<HSigmaOutput>,
    h_sigma_labels_only: Vec<HSigmaOutput>,
    /// `AΣ` output prefixes per epoch (visible flavor; the withholding
    /// flavor is the empty output).
    a_sigma_full: Vec<ASigmaOutput>,
    /// Class-`E` base lists per epoch: correct identifiers first, then
    /// the still-alive faulty ones.
    e_list_per_epoch: Vec<Vec<Identity>>,
}

impl WorldInner {
    /// The index of the alive-set epoch containing `now`.
    fn epoch_idx(&self, now: Time) -> usize {
        // epochs[0] == Time::ZERO <= now always holds.
        self.epochs.partition_point(|&start| start <= now) - 1
    }
}

impl OracleWorld {
    /// Builds a world; oracles stabilize at `stabilize_at` (chaotic ones
    /// output junk strictly before it).
    ///
    /// # Panics
    ///
    /// Panics if sizes mismatch or no process is correct (a failure
    /// detector of these classes is not defined for runs where everyone
    /// crashes).
    #[must_use]
    pub fn new(sched: FailureSchedule, assign: IdentityAssignment, stabilize_at: Time) -> Self {
        assert_eq!(sched.n(), assign.n(), "size mismatch");
        assert!(
            sched.num_correct() > 0,
            "at least one process must be correct"
        );
        let epochs = sched.epoch_starts();
        let ids = assign.multiset();
        let support: Vec<Identity> = ids.support().copied().collect();
        let i_correct = sched.i_correct(&assign);
        let leader = *i_correct.min_elem().expect("some process is correct");
        let stable_h_omega = HOmegaOutput::new(leader, i_correct.multiplicity(&leader));
        let first_correct = sched.correct_set()[0];
        let alive_per_epoch: Vec<Multiset<Identity>> = epochs
            .iter()
            .map(|&t| sched.i_alive_at(t, &assign))
            .collect();
        let alive_count_per_epoch: Vec<usize> =
            epochs.iter().map(|&t| sched.alive_at(t).len()).collect();
        let mut h_sigma_full = Vec::with_capacity(epochs.len());
        let mut h_sigma_labels_only = Vec::with_capacity(epochs.len());
        let mut a_sigma_full = Vec::with_capacity(epochs.len());
        let mut full = HSigmaOutput::new();
        let mut labels_only = HSigmaOutput::new();
        let mut asig = ASigmaOutput::new();
        for e in 0..epochs.len() {
            let label = Label::opaque(e as u64);
            labels_only.insert_label(label.clone());
            full.insert_label(label.clone());
            full.insert_quorum(label.clone(), alive_per_epoch[e].clone());
            asig.insert(label, alive_count_per_epoch[e]);
            h_sigma_full.push(full.clone());
            h_sigma_labels_only.push(labels_only.clone());
            a_sigma_full.push(asig.clone());
        }
        let e_list_per_epoch: Vec<Vec<Identity>> = epochs
            .iter()
            .map(|&start| {
                let mut list: Vec<Identity> = Vec::new();
                for p in sched.correct_set() {
                    list.push(assign.id_of(p));
                }
                for p in sched.alive_at(start) {
                    if !sched.is_correct(p) {
                        list.push(assign.id_of(p));
                    }
                }
                list
            })
            .collect();
        OracleWorld {
            inner: Arc::new(WorldInner {
                sched,
                assign,
                stabilize_at,
                epochs,
                ids,
                support,
                i_correct,
                stable_h_omega,
                first_correct,
                alive_per_epoch,
                alive_count_per_epoch,
                h_sigma_full,
                h_sigma_labels_only,
                a_sigma_full,
                e_list_per_epoch,
            }),
        }
    }

    /// The failure schedule.
    #[must_use]
    pub fn sched(&self) -> &FailureSchedule {
        &self.inner.sched
    }

    /// The identity assignment.
    #[must_use]
    pub fn assign(&self) -> &IdentityAssignment {
        &self.inner.assign
    }

    /// The stabilization time handed to chaotic oracles.
    #[must_use]
    pub fn stabilize_at(&self) -> Time {
        self.inner.stabilize_at
    }

    fn stable(&self, now: Time) -> bool {
        now >= self.inner.stabilize_at
    }

    fn i_correct(&self) -> Multiset<Identity> {
        self.inner.i_correct.clone()
    }

    /// Deterministic per-(time, salt) mixer for chaotic outputs.
    fn mix(now: Time, salt: u64) -> u64 {
        let x = now
            .ticks()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        (x ^ (x >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB)
    }

    /// A `◇HP` oracle for process `p`.
    #[must_use]
    pub fn evt_hp_for(&self, p: usize, pre: PreStability) -> EvtHPOracle {
        EvtHPOracle {
            world: self.clone(),
            salt: p as u64,
            pre,
        }
    }

    /// An `HΩ` oracle for process `p`.
    #[must_use]
    pub fn h_omega_for(&self, p: usize, pre: PreStability) -> HOmegaOracle {
        HOmegaOracle {
            world: self.clone(),
            salt: p as u64,
            pre,
        }
    }

    /// An `HΣ` oracle for process `p`. Chaotic variants *withhold* quorum
    /// pairs until stabilization (monotonicity forbids lying outright).
    #[must_use]
    pub fn h_sigma_for(&self, _p: usize, pre: PreStability) -> HSigmaOracle {
        HSigmaOracle {
            world: self.clone(),
            pre,
        }
    }

    /// A `Σ` oracle (shared by all processes) with the given staleness lag.
    #[must_use]
    pub fn sigma(&self, lag: Span) -> SigmaOracle {
        SigmaOracle {
            world: self.clone(),
            lag,
        }
    }

    /// An `Ω` oracle for process `p`.
    #[must_use]
    pub fn omega_for(&self, p: usize, pre: PreStability) -> OmegaOracle {
        OmegaOracle {
            world: self.clone(),
            salt: p as u64,
            pre,
        }
    }

    /// An `AΩ` oracle for process `p` (flag detector).
    #[must_use]
    pub fn a_omega_for(&self, p: usize, pre: PreStability) -> AOmegaOracle {
        AOmegaOracle {
            world: self.clone(),
            p,
            pre,
        }
    }

    /// An `AP` oracle with the given staleness lag (its safety property is
    /// perpetual, so there is no chaotic variant).
    #[must_use]
    pub fn ap(&self, lag: Span) -> APOracle {
        APOracle {
            world: self.clone(),
            lag,
        }
    }

    /// An `AΣ` oracle for process `p`.
    #[must_use]
    pub fn a_sigma_for(&self, _p: usize, pre: PreStability) -> ASigmaOracle {
        ASigmaOracle {
            world: self.clone(),
            pre,
        }
    }

    /// A class-`E` oracle for process `p` (unique identifiers only).
    ///
    /// # Panics
    ///
    /// Panics if identifiers are not unique.
    #[must_use]
    pub fn e_list_for(&self, p: usize, pre: PreStability) -> EListOracle {
        assert!(self.inner.assign.is_unique(), "class E needs unique ids");
        EListOracle {
            world: self.clone(),
            salt: p as u64,
            pre,
        }
    }
}

/// `◇HP` oracle: junk before stabilization, `I(Correct)` after.
#[derive(Debug, Clone)]
pub struct EvtHPOracle {
    world: OracleWorld,
    salt: u64,
    pre: PreStability,
}

impl EvtHPSource for EvtHPOracle {
    fn evt_hp(&self, now: Time) -> EvtHPOutput {
        let w = &self.world;
        if w.stable(now) || self.pre == PreStability::Truthful {
            if self.pre == PreStability::Truthful && !w.stable(now) {
                // Natural pre-stability truth: the currently alive
                // multiset (cached per epoch).
                let e = w.inner.epoch_idx(now);
                return EvtHPOutput::new(w.inner.alive_per_epoch[e].clone());
            }
            return EvtHPOutput::new(w.i_correct());
        }
        if self.pre == PreStability::Paralyzing {
            return EvtHPOutput::new(Multiset::new());
        }
        // Chaotic: rotate between stale views, per process.
        match OracleWorld::mix(now, self.salt) % 3 {
            0 => EvtHPOutput::new(Multiset::new()),
            1 => EvtHPOutput::new(w.inner.ids.clone()),
            _ => {
                let k =
                    (OracleWorld::mix(now, self.salt ^ 7) as usize) % w.inner.support.len().max(1);
                let id = w.inner.support.get(k).copied().unwrap_or(Identity::BOTTOM);
                EvtHPOutput::new([id].into_iter().collect())
            }
        }
    }
}

/// `HΩ` oracle: rotating wrong leaders before stabilization; the smallest
/// correct identifier (with its correct multiplicity) after.
#[derive(Debug, Clone)]
pub struct HOmegaOracle {
    world: OracleWorld,
    salt: u64,
    pre: PreStability,
}

impl HOmegaOracle {
    /// The post-stabilization output: smallest correct identifier and its
    /// multiplicity among correct processes.
    #[must_use]
    pub fn stable_output(&self) -> HOmegaOutput {
        self.world.inner.stable_h_omega
    }
}

impl HOmegaSource for HOmegaOracle {
    fn h_omega(&self, now: Time) -> HOmegaOutput {
        let w = &self.world;
        if w.stable(now) {
            return self.stable_output();
        }
        match self.pre {
            PreStability::Truthful => {
                // Truth about the *currently alive* multiset: converges to
                // the stable output once the last faulty process crashed.
                let alive = &w.inner.alive_per_epoch[w.inner.epoch_idx(now)];
                let leader = *alive.min_elem().expect("someone is alive");
                HOmegaOutput::new(leader, alive.multiplicity(&leader))
            }
            PreStability::Chaotic => {
                let k = (OracleWorld::mix(now, self.salt) as usize) % w.inner.support.len();
                let id = w.inner.support[k];
                let mult =
                    1 + (OracleWorld::mix(now, self.salt ^ 13) as usize) % w.inner.assign.n();
                HOmegaOutput::new(id, mult)
            }
            // An identifier nobody carries: no process considers itself a
            // leader before stabilization.
            PreStability::Paralyzing => HOmegaOutput::new(Identity::new(u64::MAX - 1), 1),
        }
    }
}

/// `HΣ` oracle built on alive-set **epochs**: one label per epoch, whose
/// quorum is the multiset of identifiers alive at the epoch start.
///
/// Every realization of such a quorum is the full epoch alive-set, and any
/// two epochs' alive sets share the correct processes — safety. The final
/// epoch's quorum is exactly `I(Correct)` — liveness.
#[derive(Debug, Clone)]
pub struct HSigmaOracle {
    world: OracleWorld,
    pre: PreStability,
}

impl HSigmaSource for HSigmaOracle {
    fn h_sigma(&self, now: Time) -> HSigmaOutput {
        let w = &self.world;
        // Labels are visible from their epoch start (the queried process
        // is alive now, hence was alive at every earlier epoch start);
        // chaotic oracles withhold quorum pairs until stabilization —
        // monotonicity forbids emitting anything false instead. Both
        // flavors are precomputed per epoch prefix.
        let e = w.inner.epoch_idx(now);
        let visible = match self.pre {
            PreStability::Truthful => true,
            PreStability::Chaotic | PreStability::Paralyzing => w.stable(now),
        };
        if visible {
            w.inner.h_sigma_full[e].clone()
        } else {
            w.inner.h_sigma_labels_only[e].clone()
        }
    }
}

/// `Σ` oracle: the alive multiset `lag` ticks in the past (any two such
/// views intersect in the correct processes).
#[derive(Debug, Clone)]
pub struct SigmaOracle {
    world: OracleWorld,
    lag: Span,
}

impl SigmaSource for SigmaOracle {
    fn sigma(&self, now: Time) -> SigmaOutput {
        let w = &self.world;
        let t = Time::from_ticks(now.ticks().saturating_sub(self.lag.ticks()));
        SigmaOutput::new(w.inner.alive_per_epoch[w.inner.epoch_idx(t)].clone())
    }
}

/// `Ω` oracle (unique identifiers): rotating leaders before stabilization,
/// the smallest correct identifier after.
#[derive(Debug, Clone)]
pub struct OmegaOracle {
    world: OracleWorld,
    salt: u64,
    pre: PreStability,
}

impl OmegaSource for OmegaOracle {
    fn omega(&self, now: Time) -> OmegaOutput {
        let w = &self.world;
        if w.stable(now) {
            return OmegaOutput::new(w.inner.stable_h_omega.h_leader);
        }
        match self.pre {
            PreStability::Truthful => {
                let alive = &w.inner.alive_per_epoch[w.inner.epoch_idx(now)];
                OmegaOutput::new(*alive.min_elem().expect("someone is alive"))
            }
            PreStability::Chaotic => {
                let k = (OracleWorld::mix(now, self.salt) as usize) % w.inner.support.len();
                OmegaOutput::new(w.inner.support[k])
            }
            PreStability::Paralyzing => OmegaOutput::new(Identity::new(u64::MAX - 1)),
        }
    }
}

/// `AΩ` oracle: after stabilization, `true` exactly at the smallest-index
/// correct process; before (chaotic), flags flip per process.
#[derive(Debug, Clone)]
pub struct AOmegaOracle {
    world: OracleWorld,
    p: usize,
    pre: PreStability,
}

impl AOmegaSource for AOmegaOracle {
    fn a_omega(&self, now: Time) -> AOmegaOutput {
        let w = &self.world;
        let stable_leader = w.inner.first_correct;
        if w.stable(now) || self.pre == PreStability::Truthful {
            return AOmegaOutput::new(self.p == stable_leader);
        }
        if self.pre == PreStability::Paralyzing {
            return AOmegaOutput::new(false);
        }
        AOmegaOutput::new(OracleWorld::mix(now, self.p as u64).is_multiple_of(2))
    }
}

/// `AP` oracle: `|Alive(now − lag)|`, a sound upper bound on the current
/// alive count that converges to `|Correct|`.
#[derive(Debug, Clone)]
pub struct APOracle {
    world: OracleWorld,
    lag: Span,
}

impl APSource for APOracle {
    fn ap(&self, now: Time) -> APOutput {
        let w = &self.world;
        let t = Time::from_ticks(now.ticks().saturating_sub(self.lag.ticks()));
        APOutput::new(w.inner.alive_count_per_epoch[w.inner.epoch_idx(t)])
    }
}

/// `AΣ` oracle: one `(label, size)` pair per alive-set epoch.
#[derive(Debug, Clone)]
pub struct ASigmaOracle {
    world: OracleWorld,
    pre: PreStability,
}

impl ASigmaSource for ASigmaOracle {
    fn a_sigma(&self, now: Time) -> ASigmaOutput {
        let w = &self.world;
        let visible = match self.pre {
            PreStability::Truthful => true,
            PreStability::Chaotic | PreStability::Paralyzing => w.stable(now),
        };
        if visible {
            w.inner.a_sigma_full[w.inner.epoch_idx(now)].clone()
        } else {
            ASigmaOutput::new()
        }
    }
}

/// Class-`E` oracle: correct identifiers first (ascending), then the still-
/// alive faulty ones; chaotic variants rotate the whole list before
/// stabilization.
#[derive(Debug, Clone)]
pub struct EListOracle {
    world: OracleWorld,
    salt: u64,
    pre: PreStability,
}

impl EListSource for EListOracle {
    fn e_list(&self, now: Time) -> EListOutput {
        let w = &self.world;
        let mut list = w.inner.e_list_per_epoch[w.inner.epoch_idx(now)].clone();
        if !w.stable(now) && self.pre != PreStability::Truthful && !list.is_empty() {
            let k = (OracleWorld::mix(now, self.salt) as usize) % list.len();
            list.rotate_left(k);
        }
        EListOutput { alive: list }
    }
}

// Snapshot support: an oracle is a pure function of `(time, salt, pre)`
// over the world's precomputed tables, so a fork is a plain clone — the
// tables stay `Arc`-shared (never deep-copied per fork) and there is no
// mutable state to duplicate.
macro_rules! impl_fork_state_by_clone {
    ($($oracle:ident),+ $(,)?) => {
        $(impl homonym_core::fork::ForkState for $oracle {
            fn fork_in(&self, _space: &mut homonym_core::fork::ForkSpace) -> Self {
                self.clone()
            }
        })+
    };
}

impl_fork_state_by_clone!(
    EvtHPOracle,
    HOmegaOracle,
    HSigmaOracle,
    SigmaOracle,
    OmegaOracle,
    AOmegaOracle,
    APOracle,
    ASigmaOracle,
    EListOracle,
);

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::properties::{
        check_a_omega, check_a_sigma, check_ap, check_e_list, check_evt_hp, check_h_omega,
        check_h_sigma, check_omega, check_sigma, History,
    };

    fn world(pre_chaos: bool) -> OracleWorld {
        let sched = FailureSchedule::none(5)
            .with_crash(1, Time::from_ticks(7))
            .with_crash(3, Time::from_ticks(15));
        let assign = IdentityAssignment::round_robin(5, 3); // A B C A B
        let stab = if pre_chaos {
            Time::from_ticks(30)
        } else {
            Time::ZERO
        };
        OracleWorld::new(sched, assign, stab)
    }

    /// Samples an oracle into a per-process history over [0, horizon],
    /// querying only while the process is alive.
    fn sample<T, F: Fn(usize, Time) -> T>(w: &OracleWorld, horizon: u64, f: F) -> Vec<History<T>> {
        (0..w.sched().n())
            .map(|p| {
                (0..=horizon)
                    .map(Time::from_ticks)
                    .filter(|&t| w.sched().is_alive(p, t))
                    .map(|t| (t, f(p, t)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn evt_hp_oracle_is_class_valid() {
        for chaos in [false, true] {
            let w = world(chaos);
            let pre = if chaos {
                PreStability::Chaotic
            } else {
                PreStability::Truthful
            };
            let h = sample(&w, 60, |p, t| w.evt_hp_for(p, pre).evt_hp(t));
            let rep = check_evt_hp(&h, w.sched(), w.assign()).expect("class valid");
            assert!(rep.stabilization <= Time::from_ticks(30));
        }
    }

    #[test]
    fn h_omega_oracle_is_class_valid_and_unstable_before() {
        let w = world(true);
        let h = sample(&w, 60, |p, t| {
            w.h_omega_for(p, PreStability::Chaotic).h_omega(t)
        });
        // Chaos: before stabilization two processes should disagree somewhere.
        let early: Vec<_> = (0..w.sched().n())
            .map(|p| {
                w.h_omega_for(p, PreStability::Chaotic)
                    .h_omega(Time::from_ticks(3))
            })
            .collect();
        assert!(
            early.windows(2).any(|w2| w2[0] != w2[1]),
            "chaotic oracles should diverge: {early:?}"
        );
        let rep = check_h_omega(&h, w.sched(), w.assign()).expect("class valid");
        // Correct set is {p0(A), p2(C), p4(B)}: leader A with multiplicity 1.
        assert_eq!(rep.leader, Identity::new(0));
        assert_eq!(rep.multiplicity, 1);
    }

    #[test]
    fn h_omega_stable_output_matches_ground_truth() {
        let w = world(false);
        // Correct: p0(A) p2(C) p4(B); smallest correct id = A, multiplicity 1.
        let out = w.h_omega_for(0, PreStability::Truthful).stable_output();
        assert_eq!(out.h_leader, Identity::new(0));
        assert_eq!(out.h_multiplicity, 1);
    }

    #[test]
    fn h_sigma_oracle_is_class_valid() {
        for chaos in [false, true] {
            let w = world(chaos);
            let pre = if chaos {
                PreStability::Chaotic
            } else {
                PreStability::Truthful
            };
            let h = sample(&w, 60, |p, t| w.h_sigma_for(p, pre).h_sigma(t));
            check_h_sigma(&h, w.sched(), w.assign()).expect("class valid");
        }
    }

    #[test]
    fn sigma_oracle_is_class_valid() {
        let w = world(false);
        let h = sample(&w, 60, |_, t| w.sigma(Span::from_ticks(4)).sigma(t));
        check_sigma(&h, w.sched(), w.assign()).expect("class valid");
    }

    #[test]
    fn omega_oracle_is_class_valid() {
        let sched = FailureSchedule::none(4).with_crash(0, Time::from_ticks(9));
        let assign = IdentityAssignment::unique(4);
        let w = OracleWorld::new(sched, assign, Time::from_ticks(20));
        let h = sample(&w, 50, |p, t| {
            w.omega_for(p, PreStability::Chaotic).omega(t)
        });
        let rep = check_omega(&h, w.sched(), w.assign()).expect("class valid");
        assert_eq!(rep.leader, Identity::new(1));
    }

    #[test]
    fn a_omega_oracle_is_class_valid() {
        let w = world(true);
        let h = sample(&w, 60, |p, t| {
            w.a_omega_for(p, PreStability::Chaotic).a_omega(t)
        });
        let rep = check_a_omega(&h, w.sched()).expect("class valid");
        assert_eq!(rep.leader_process, 0);
    }

    #[test]
    fn ap_oracle_is_class_valid() {
        let w = world(false);
        for lag in [0u64, 3, 10] {
            let h = sample(&w, 60, |_, t| w.ap(Span::from_ticks(lag)).ap(t));
            check_ap(&h, w.sched()).expect("class valid");
        }
    }

    #[test]
    fn a_sigma_oracle_is_class_valid() {
        for chaos in [false, true] {
            let w = world(chaos);
            let pre = if chaos {
                PreStability::Chaotic
            } else {
                PreStability::Truthful
            };
            let h = sample(&w, 60, |p, t| w.a_sigma_for(p, pre).a_sigma(t));
            check_a_sigma(&h, w.sched()).expect("class valid");
        }
    }

    #[test]
    fn e_list_oracle_is_class_valid() {
        let sched = FailureSchedule::none(4).with_crash(2, Time::from_ticks(11));
        let assign = IdentityAssignment::unique(4);
        let w = OracleWorld::new(sched, assign, Time::from_ticks(25));
        let h = sample(&w, 50, |p, t| {
            w.e_list_for(p, PreStability::Chaotic).e_list(t)
        });
        check_e_list(&h, w.sched(), w.assign()).expect("class valid");
    }

    #[test]
    #[should_panic(expected = "at least one process must be correct")]
    fn world_rejects_all_faulty() {
        let sched = FailureSchedule::none(2)
            .with_crash(0, Time::ZERO)
            .with_crash(1, Time::ZERO);
        let _ = OracleWorld::new(sched, IdentityAssignment::unique(2), Time::ZERO);
    }
}
