//! An `AP` implementation for anonymous systems — and its breaking point.
//!
//! The paper notes (§1, citing \[5\]/\[6\]) that `AP` **can** be implemented
//! in an anonymous *synchronous* system, but **cannot** in most partially
//! synchronous ones (e.g. with all links eventually timely): before GST,
//! heartbeats may be delayed past any timeout, the count under-estimates
//! the alive set, and `AP`'s *perpetual* safety property
//! (`anap_p ≥ |Alive|` at every instant) is violated.
//!
//! [`ApEstimatorProcess`] implements the natural windowed-count algorithm:
//! every `period` ticks broadcast `ALIVE`, and output as `anap` the number
//! of `ALIVE` messages received in the last window. Under the synchronous
//! model (latency 1 < period) this is a correct `AP` implementation; under
//! `HPS` the `exp_ap_realism` experiment shows the safety checker
//! catching real violations — reproducing the implementability boundary
//! the paper draws, and motivating why `HΩ` (implementable in `HPS`,
//! Figure 6) is the right detector for partial synchrony.

use homonym_core::classes::APOutput;
use homonym_core::query::SharedCell;
use homonym_core::time::Span;
use homonym_sim::process::{ActionSink, Process, TimerTag};

/// Protocol message: an anonymous heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AliveMsg;

const STEP: TimerTag = TimerTag(0);

/// Windowed-count `AP` estimator (sound only under synchrony).
#[derive(Debug)]
pub struct ApEstimatorProcess {
    period: Span,
    window_count: usize,
    anap: usize,
    mirror: Option<SharedCell<APOutput>>,
}

impl ApEstimatorProcess {
    /// Creates an estimator with the given step period; sound when every
    /// message latency is below `period`.
    #[must_use]
    pub fn new(period: Span) -> Self {
        ApEstimatorProcess {
            period,
            window_count: 0,
            anap: usize::MAX, // "no information yet": a safe over-estimate
            mirror: None,
        }
    }

    /// Mirrors `anap` into `cell` after every window.
    #[must_use]
    pub fn with_mirror(mut self, cell: SharedCell<APOutput>) -> Self {
        self.mirror = Some(cell);
        self
    }

    /// Current estimate.
    #[must_use]
    pub fn anap(&self) -> usize {
        self.anap
    }
}

impl Process for ApEstimatorProcess {
    type Msg = AliveMsg;
    type Output = APOutput;

    fn on_start(&mut self, ctx: &mut ActionSink<'_, AliveMsg, APOutput>) {
        ctx.broadcast(AliveMsg);
        ctx.set_timer(self.period, STEP);
    }

    fn on_message(&mut self, _msg: AliveMsg, _ctx: &mut ActionSink<'_, AliveMsg, APOutput>) {
        self.window_count += 1;
    }

    fn on_timer(&mut self, timer: TimerTag, ctx: &mut ActionSink<'_, AliveMsg, APOutput>) {
        debug_assert_eq!(timer, STEP);
        self.anap = self.window_count;
        self.window_count = 0;
        if let Some(cell) = &self.mirror {
            cell.set(APOutput::new(self.anap));
        }
        ctx.publish(APOutput::new(self.anap));
        ctx.broadcast(AliveMsg);
        ctx.set_timer(self.period, STEP);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::prelude::*;
    use homonym_sim::prelude::*;

    fn run(
        n: usize,
        sched: FailureSchedule,
        network: NetworkModel,
        horizon: u64,
        seed: u64,
    ) -> Vec<History<APOutput>> {
        let mut cfg =
            SimConfig::new(IdentityAssignment::anonymous(n), sched, network).with_seed(seed);
        // Keep final-step broadcasts whole so the synchronous-soundness
        // argument (every alive sender's copy arrives) is exact.
        cfg.partial_broadcast_on_crash = false;
        let mut engine = Engine::new(cfg, |_, _| ApEstimatorProcess::new(Span::from_ticks(2)));
        engine.run_until(Time::from_ticks(horizon));
        engine.histories().to_vec()
    }

    #[test]
    fn sound_under_synchrony() {
        let sched = FailureSchedule::none(5)
            .with_crash(1, Time::from_ticks(9))
            .with_crash(3, Time::from_ticks(21));
        let hist = run(5, sched.clone(), NetworkModel::Synchronous, 120, 1);
        check_ap(&hist, &sched).expect("AP class valid in a synchronous system");
    }

    #[test]
    fn sound_across_seeds_and_patterns() {
        for seed in 0..8 {
            let sched = FailureSchedule::none(4).with_crash(0, Time::from_ticks(5 + seed));
            let hist = run(4, sched.clone(), NetworkModel::Synchronous, 100, seed);
            check_ap(&hist, &sched).expect("AP class valid");
        }
    }

    #[test]
    fn unsound_under_partial_synchrony() {
        // Pre-GST delays push heartbeats past the window: the count
        // under-estimates |Alive| and AP safety breaks. This reproduces
        // the paper's implementability boundary.
        let mut violated = false;
        for seed in 0..10 {
            let sched = FailureSchedule::none(5);
            let network = NetworkModel::PartialSync {
                gst: Time::from_ticks(60),
                delta: Span::TICK,
                pre_gst: PreGstBehavior::DelayOnly {
                    max_delay: Span::from_ticks(30),
                },
            };
            let hist = run(5, sched.clone(), network, 200, seed);
            if let Err(e) = check_ap(&hist, &sched) {
                assert_eq!(e.property, "safety");
                violated = true;
            }
        }
        assert!(
            violated,
            "expected at least one AP safety violation before GST"
        );
    }

    #[test]
    fn initial_output_is_a_safe_overestimate() {
        let p = ApEstimatorProcess::new(Span::from_ticks(2));
        assert_eq!(p.anap(), usize::MAX);
    }
}
