//! Figure 3: a failure detector of class `E` in `AS[∅]`.
//!
//! Class `E` (Definition 1) equips each process with a sequence `alive_p`
//! of process identifiers such that eventually the correct identifiers
//! permanently occupy the prefix. The algorithm is heartbeat + move-to-
//! front:
//!
//! * Task T1 — repeat forever: `broadcast ALIVE(id(p))`;
//! * Task T2 — upon reception of `ALIVE(i)`: move `i` to the first
//!   position of `alive_p` (inserting it if absent).
//!
//! Faulty processes stop broadcasting, so their identifiers sink below
//! every correct identifier (Lemma 1). The class is only defined for
//! systems with **unique** identifiers; membership is *not* known
//! initially — the list grows as identifiers are heard.

use homonym_core::classes::EListOutput;
use homonym_core::identity::Identity;
use homonym_core::query::SharedCell;
use homonym_core::time::Span;
use homonym_sim::process::{ActionSink, Process, TimerTag};

/// Protocol message of Figure 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EListMsg {
    /// `ALIVE(id)` heartbeat.
    Alive(Identity),
}

/// Returns a static class name for a message, for metrics classifiers.
#[must_use]
pub fn classify_e_list(msg: &EListMsg) -> &'static str {
    match msg {
        EListMsg::Alive(_) => "ALIVE",
    }
}

const HEARTBEAT: TimerTag = TimerTag(0);

/// The Figure 3 process.
#[derive(Debug)]
pub struct EListProcess {
    output: EListOutput,
    period: Span,
    mirror: Option<SharedCell<EListOutput>>,
}

impl EListProcess {
    /// Creates a process that heartbeats every `period` ticks.
    #[must_use]
    pub fn new(period: Span) -> Self {
        EListProcess {
            output: EListOutput::new(),
            period,
            mirror: None,
        }
    }

    /// Also mirrors every update into `cell` (for stacked consumers).
    #[must_use]
    pub fn with_mirror(mut self, cell: SharedCell<EListOutput>) -> Self {
        self.mirror = Some(cell);
        self
    }

    /// The current `alive_p` list.
    #[must_use]
    pub fn output(&self) -> &EListOutput {
        &self.output
    }
}

impl Process for EListProcess {
    type Msg = EListMsg;
    type Output = EListOutput;

    fn on_start(&mut self, ctx: &mut ActionSink<'_, EListMsg, EListOutput>) {
        ctx.broadcast(EListMsg::Alive(ctx.my_id()));
        ctx.set_timer(self.period, HEARTBEAT);
        ctx.publish(self.output.clone());
    }

    fn on_message(&mut self, msg: EListMsg, ctx: &mut ActionSink<'_, EListMsg, EListOutput>) {
        let EListMsg::Alive(i) = msg;
        self.output.move_to_front(i);
        if let Some(cell) = &self.mirror {
            cell.set(self.output.clone());
        }
        ctx.publish(self.output.clone());
    }

    fn on_timer(&mut self, timer: TimerTag, ctx: &mut ActionSink<'_, EListMsg, EListOutput>) {
        debug_assert_eq!(timer, HEARTBEAT);
        ctx.broadcast(EListMsg::Alive(ctx.my_id()));
        ctx.set_timer(self.period, HEARTBEAT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::prelude::*;
    use homonym_sim::prelude::*;

    fn run(
        n: usize,
        sched: FailureSchedule,
        horizon: u64,
        seed: u64,
    ) -> (
        Vec<History<EListOutput>>,
        FailureSchedule,
        IdentityAssignment,
    ) {
        let assign = IdentityAssignment::unique(n);
        let cfg = SimConfig::new(
            assign.clone(),
            sched.clone(),
            NetworkModel::Asynchronous(LatencyDistribution::Uniform {
                min: Span::from_ticks(1),
                max: Span::from_ticks(4),
            }),
        )
        .with_seed(seed);
        let mut engine = Engine::new(cfg, |_, _| EListProcess::new(Span::from_ticks(2)));
        engine.run_until(Time::from_ticks(horizon));
        (engine.histories().to_vec(), sched, assign)
    }

    #[test]
    fn failure_free_run_satisfies_class_e() {
        let (hist, sched, assign) = run(4, FailureSchedule::none(4), 100, 1);
        check_e_list(&hist, &sched, &assign).expect("class valid");
    }

    #[test]
    fn crashed_identifiers_sink_below_correct_ones() {
        let sched = FailureSchedule::none(5)
            .with_crash(0, Time::from_ticks(20))
            .with_crash(3, Time::from_ticks(35));
        let (hist, sched, assign) = run(5, sched, 300, 2);
        let rep = check_e_list(&hist, &sched, &assign).expect("class valid");
        assert!(rep.stabilization > Time::from_ticks(20));
        // Final list at a correct process: crashed ids have rank > |Correct|.
        let last = &hist[1].last().expect("nonempty").1;
        assert!(last.rank(Identity::new(0)).expect("heard once") > 3);
        assert!(last.rank(Identity::new(3)).expect("heard once") > 3);
    }

    #[test]
    fn works_across_many_seeds() {
        for seed in 0..10 {
            let sched = FailureSchedule::none(3).with_crash(1, Time::from_ticks(10));
            let (hist, sched, assign) = run(3, sched, 200, seed);
            check_e_list(&hist, &sched, &assign).expect("class valid");
        }
    }

    #[test]
    fn mirror_cell_tracks_output() {
        let cell: SharedCell<EListOutput> = SharedCell::new(EListOutput::new());
        let assign = IdentityAssignment::unique(2);
        let cfg = SimConfig::new(
            assign,
            FailureSchedule::none(2),
            NetworkModel::reliable(Span::TICK),
        );
        let mirror = cell.clone();
        let mut engine = Engine::new(cfg, move |p, _| {
            let proc_ = EListProcess::new(Span::from_ticks(2));
            if p == 0 {
                proc_.with_mirror(mirror.clone())
            } else {
                proc_
            }
        });
        engine.run_until(Time::from_ticks(50));
        assert_eq!(&cell.get(), engine.process(0).output());
        assert_eq!(cell.get().alive.len(), 2);
    }
}
