//! Figure 6: `◇HP` in `HPS[∅]`, plus the Corollary 2 `HΩ` extraction.
//!
//! A polling-based detector for homonymous systems with partially
//! synchronous processes and eventually timely links, **without membership
//! knowledge**:
//!
//! * Task T1 runs in rounds: broadcast `POLLING(r, id(p))`, wait
//!   `timeout_p`, then gather into `h_trusted_p` the multiset of sender
//!   identifiers of `P_REPLY(r, r', id(p), id(q))` messages whose round
//!   interval covers the current round (`r ≤ r_p ≤ r'`).
//! * Task T2 answers a poll `POLLING(r_q, id(q))` with a **single**
//!   `P_REPLY(latest_r_p[id(q)] + 1, r_q, id(q), id(p))` covering every
//!   round not yet answered for that identifier — so homonymous pollers
//!   sharing an identifier are all served by one reply, and each correct
//!   process contributes exactly one identifier instance per round.
//! * Receiving a reply for an already-passed round (`r < r_p`) increases
//!   `timeout_p`, adapting to the unknown post-GST latency `δ` and process
//!   speeds (Lemma 5).
//!
//! `HΩ` is extracted without extra communication (Corollary 2): after each
//! round, `h_leader_p ← min(h_trusted_p)` and `h_multiplicity_p ←
//! mult(h_leader_p)`.
//!
//! The paper's round-interval comparisons are implemented inclusively
//! (`r ≤ r_p ≤ r'`): a reply generated for exactly the current round
//! must count, otherwise no reply would ever match during lock-step
//! executions.

use homonym_core::classes::{EvtHPOutput, HOmegaOutput};
use homonym_core::fork::{ForkSpace, ForkState};
use homonym_core::identity::Identity;
use homonym_core::multiset::Multiset;
use homonym_core::query::SharedCell;
use homonym_core::time::Span;
use homonym_core::wire::{Loader, Persist, Saver, WireError};
use homonym_sim::process::{ActionSink, Process, TimerTag};
use homonym_sim::snapshot::ForkProcess;
use homonym_sim::ObsKind;

/// Protocol messages of Figure 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvtHpMsg {
    /// `POLLING(r, id)` — the sender (some process with identifier `id`)
    /// polls for round `r`.
    Polling {
        /// The poller's current round.
        round: u64,
        /// The poller's identifier.
        id: Identity,
    },
    /// `P_REPLY(from, to, target, sender)` — one reply covering every round
    /// in `[from, to]` for the polled identifier `target`.
    PReply {
        /// First round covered.
        from: u64,
        /// Last round covered.
        to: u64,
        /// The identifier that was polled.
        target: Identity,
        /// The replier's identifier (what `h_trusted` accumulates).
        sender: Identity,
    },
}

/// Returns a static class name for a message, for metrics classifiers.
#[must_use]
pub fn classify_evt_hp(msg: &EvtHpMsg) -> &'static str {
    match msg {
        EvtHpMsg::Polling { .. } => "POLLING",
        EvtHpMsg::PReply { .. } => "P_REPLY",
    }
}

/// Round extractor for trace annotation: a poll's round, or the last
/// round a reply covers.
#[must_use]
pub fn round_of_evt_hp(msg: &EvtHpMsg) -> Option<u64> {
    match msg {
        EvtHpMsg::Polling { round, .. } => Some(*round),
        EvtHpMsg::PReply { to, .. } => Some(*to),
    }
}

/// The Byzantine payload mutation of a Figure 6 message (the
/// `Process::mutate_payload` hook of every `◇HP`-speaking process): the
/// carried **identifier** is forged by a small deterministic
/// perturbation — a corrupt homonym claiming a namesake's (or a
/// phantom's) identity. Forged `P_REPLY` senders pollute the victims'
/// `h_trusted` bags — under homonymy the forgery is indistinguishable
/// from an honest namesake's reply — and forged `POLLING` identifiers
/// make victims track (and answer) phantom pollers. Rounds and reply
/// windows stay intact so receivers accept the copy as in-protocol.
#[must_use]
pub fn mutate_evt_hp_msg(msg: &EvtHpMsg, entropy: u64) -> EvtHpMsg {
    let forge = |id: Identity| Identity::new(id.raw().wrapping_add(1 + entropy % 3));
    match *msg {
        EvtHpMsg::Polling { round, id } => EvtHpMsg::Polling {
            round,
            id: forge(id),
        },
        EvtHpMsg::PReply {
            from,
            to,
            target,
            sender,
        } => EvtHpMsg::PReply {
            from,
            to,
            target,
            sender: forge(sender),
        },
    }
}

/// Snapshot published at the end of every round: the `◇HP` output together
/// with the `HΩ` view extracted from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvtHpSnapshot {
    /// The `◇HP` variable `h_trusted_p`.
    pub evt_hp: EvtHPOutput,
    /// The Corollary 2 extraction `(h_leader_p, h_multiplicity_p)`.
    pub h_omega: HOmegaOutput,
    /// The round that just ended (diagnostic, not part of the class).
    pub round: u64,
    /// The adaptive timeout at the end of that round (diagnostic).
    pub timeout: u64,
}

/// Splits a recorded snapshot history into the two class histories.
#[must_use]
pub fn split_snapshots(
    hist: &homonym_core::properties::History<EvtHpSnapshot>,
) -> (
    homonym_core::properties::History<EvtHPOutput>,
    homonym_core::properties::History<HOmegaOutput>,
) {
    let evt = hist.iter().map(|(t, s)| (*t, s.evt_hp.clone())).collect();
    let omg = hist.iter().map(|(t, s)| (*t, s.h_omega)).collect();
    (evt, omg)
}

const ROUND: TimerTag = TimerTag(0);

/// Identifiers below this use the direct-indexed membership table.
const MSHIP_DENSE: u64 = 256;

/// The Figure 6 process.
#[derive(Debug)]
pub struct EvtHpProcess {
    h_trusted: Multiset<Identity>,
    h_omega: HOmegaOutput,
    round: u64,
    timeout: u64,
    /// `identifier -> latest_r` for small dense identifiers
    /// (`raw < MSHIP_DENSE`): a direct-indexed table, since the paper's
    /// homonymy degree ℓ is tiny and identifiers are usually `0..ℓ`.
    /// Entry `0` doubles as "never answered" — exactly the initial
    /// `latest_r` the sparse path would insert.
    mship_dense: Vec<u64>,
    /// `identifier -> latest_r` fallback for large/`⊥` identifiers: a
    /// sorted, binary-searched vector (still cheaper than a tree).
    mship: Vec<(Identity, u64)>,
    /// Replies addressed to my identifier, kept while they may still cover
    /// a future round: `(from, to, sender)`.
    pending: Vec<(u64, u64, Identity)>,
    /// Scratch: this round's covering senders, sorted (reused each round).
    gather: Vec<Identity>,
    /// The previous round's sorted covering senders: `end_round` diffs
    /// against it instead of rebuilding `h_trusted`, so a stabilized
    /// detector (same membership every round) does no bag work at all.
    prev_gather: Vec<Identity>,
    /// Cached `◇HP` output snapshot, rebuilt only when the membership
    /// actually changes; publishing clones this instead of re-wrapping
    /// the bag every round.
    snapshot: EvtHPOutput,
    evt_mirror: Option<SharedCell<EvtHPOutput>>,
    omega_mirror: Option<SharedCell<HOmegaOutput>>,
    /// Whether the mirror cells may lag the local state (set at start,
    /// cleared by the first mirror store).
    mirrors_dirty: bool,
    adaptive: bool,
    started: bool,
}

impl EvtHpProcess {
    /// Creates a Figure 6 process with the paper's initial values
    /// (`r_p = 1`, `timeout_p = 1`, empty membership).
    #[must_use]
    pub fn new() -> Self {
        EvtHpProcess {
            h_trusted: Multiset::new(),
            // Arbitrary initial HΩ view; the class only constrains the
            // eventual output. Set at start to (id(p), 1).
            h_omega: HOmegaOutput::new(Identity::BOTTOM, 1),
            round: 1,
            timeout: 1,
            mship_dense: Vec::new(),
            mship: Vec::new(),
            pending: Vec::new(),
            gather: Vec::new(),
            prev_gather: Vec::new(),
            snapshot: EvtHPOutput::default(),
            evt_mirror: None,
            omega_mirror: None,
            mirrors_dirty: true,
            adaptive: true,
            started: false,
        }
    }

    /// **Ablation**: freezes `timeout_p` at `ticks` and disables the
    /// lines 33-34 adaptation. With a timeout below the (unknown) round
    /// trip the detector provably never converges — the experiment
    /// `exp_ablation` uses this to show the adaptation is load-bearing
    /// (Lemma 5).
    #[must_use]
    pub fn with_fixed_timeout(mut self, ticks: u64) -> Self {
        self.timeout = ticks.max(1);
        self.adaptive = false;
        self
    }

    /// Mirrors `h_trusted` into `cell` after every round.
    #[must_use]
    pub fn with_evt_hp_mirror(mut self, cell: SharedCell<EvtHPOutput>) -> Self {
        self.evt_mirror = Some(cell);
        self
    }

    /// Mirrors the `HΩ` extraction into `cell` after every round.
    #[must_use]
    pub fn with_h_omega_mirror(mut self, cell: SharedCell<HOmegaOutput>) -> Self {
        self.omega_mirror = Some(cell);
        self
    }

    /// Current `h_trusted_p`.
    #[must_use]
    pub fn h_trusted(&self) -> &Multiset<Identity> {
        &self.h_trusted
    }

    /// Current `HΩ` extraction.
    #[must_use]
    pub fn h_omega(&self) -> HOmegaOutput {
        self.h_omega
    }

    /// Current round `r_p`.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current adaptive `timeout_p` in ticks.
    #[must_use]
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    fn poll(&self, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        ctx.broadcast(EvtHpMsg::Polling {
            round: self.round,
            id: ctx.my_id(),
        });
        ctx.set_timer(Span::from_ticks(self.timeout), ROUND);
    }

    fn end_round(&mut self, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        // Lines 12-17: gather one identifier instance per covering reply,
        // and drop replies that cannot cover any later round, in one pass
        // over the pending list.
        let r = self.round;
        let mut gather = std::mem::take(&mut self.gather);
        gather.clear();
        self.pending.retain(|&(from, to, sender)| {
            if from <= r && r <= to {
                gather.push(sender);
            }
            to > r
        });
        gather.sort_unstable();
        // Incremental update: once the detector has converged every round
        // gathers the same membership, so the common case skips the bag
        // rebuild, the HΩ extraction, the mirror stores and the snapshot
        // re-wrap entirely — the round then allocates nothing but the
        // published clone.
        let changed = gather != self.prev_gather;
        if changed {
            self.h_trusted.clear();
            let mut i = 0;
            while i < gather.len() {
                let id = gather[i];
                let run = gather[i..].iter().take_while(|&&x| x == id).count();
                self.h_trusted.insert_n(id, run);
                i += run;
            }
            // Corollary 2: HΩ extraction, no communication.
            if let Some(&leader) = self.h_trusted.min_elem() {
                let next = HOmegaOutput::new(leader, self.h_trusted.multiplicity(&leader));
                if next != self.h_omega {
                    let mult = self.h_trusted.multiplicity(&leader);
                    ctx.observe(|| ObsKind::LeaderFlip {
                        round: r,
                        leader,
                        multiplicity: u32::try_from(mult).unwrap_or(u32::MAX),
                    });
                }
                self.h_omega = next;
            }
            self.snapshot = EvtHPOutput::new(self.h_trusted.clone());
            std::mem::swap(&mut self.prev_gather, &mut gather);
        }
        let trusted = self.h_trusted.len();
        ctx.observe(|| ObsKind::DetectorEpoch {
            round: r,
            trusted: u32::try_from(trusted).unwrap_or(u32::MAX),
            changed,
        });
        // Mirrors are skipped only when they provably already hold the
        // current values (`mirrors_dirty` covers the start-step HΩ
        // re-initialization, which changes `h_omega` without a gather
        // change).
        if changed || self.mirrors_dirty {
            if let Some(cell) = &self.evt_mirror {
                cell.set(self.snapshot.clone());
            }
            if let Some(cell) = &self.omega_mirror {
                cell.set(self.h_omega);
            }
            self.mirrors_dirty = false;
        }
        self.gather = gather;
        ctx.publish(EvtHpSnapshot {
            evt_hp: self.snapshot.clone(),
            h_omega: self.h_omega,
            round: r,
            timeout: self.timeout,
        });
        self.round += 1;
        self.poll(ctx);
    }
}

impl Default for EvtHpProcess {
    fn default() -> Self {
        EvtHpProcess::new()
    }
}

/// Snapshot support: all round/membership/timeout state is duplicated,
/// while the mirror cells are re-seated through the [`ForkSpace`] so a
/// forked detector publishes into its *own* stack's cells (shared with
/// the forked consensus half, never with the original run).
impl ForkProcess for EvtHpProcess {
    fn fork_in(&self, space: &mut ForkSpace) -> Self {
        EvtHpProcess {
            h_trusted: self.h_trusted.clone(),
            h_omega: self.h_omega,
            round: self.round,
            timeout: self.timeout,
            mship_dense: self.mship_dense.clone(),
            mship: self.mship.clone(),
            pending: self.pending.clone(),
            gather: self.gather.clone(),
            prev_gather: self.prev_gather.clone(),
            snapshot: self.snapshot.clone(),
            evt_mirror: self.evt_mirror.as_ref().map(|c| c.fork_in(space)),
            omega_mirror: self.omega_mirror.as_ref().map(|c| c.fork_in(space)),
            mirrors_dirty: self.mirrors_dirty,
            adaptive: self.adaptive,
            started: self.started,
        }
    }
}

impl Process for EvtHpProcess {
    type Msg = EvtHpMsg;
    type Output = EvtHpSnapshot;

    fn mutate_payload(msg: &EvtHpMsg, entropy: u64) -> Option<EvtHpMsg> {
        Some(mutate_evt_hp_msg(msg, entropy))
    }

    fn on_start(&mut self, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        self.started = true;
        self.h_omega = HOmegaOutput::new(ctx.my_id(), 1);
        self.mirrors_dirty = true;
        self.poll(ctx);
    }

    fn on_message(&mut self, msg: EvtHpMsg, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        match msg {
            // Task T2, lines 22-31.
            EvtHpMsg::Polling { round, id } => {
                let latest: &mut u64 = if id.raw() < MSHIP_DENSE {
                    let idx = id.raw() as usize;
                    if self.mship_dense.len() <= idx {
                        self.mship_dense.resize(idx + 1, 0);
                    }
                    &mut self.mship_dense[idx]
                } else {
                    let slot = match self.mship.binary_search_by_key(&id, |&(i, _)| i) {
                        Ok(i) => i,
                        Err(i) => {
                            self.mship.insert(i, (id, 0));
                            i
                        }
                    };
                    &mut self.mship[slot].1
                };
                if *latest < round {
                    ctx.broadcast(EvtHpMsg::PReply {
                        from: *latest + 1,
                        to: round,
                        target: id,
                        sender: ctx.my_id(),
                    });
                    *latest = round;
                }
            }
            // Reply handling: lines 13-16 (gathering) + 33-34 (adaptation).
            EvtHpMsg::PReply {
                from,
                to,
                target,
                sender,
            } => {
                if target != ctx.my_id() {
                    return;
                }
                // Lines 33-34: a reply whose interval starts before the
                // current round arrived late; widen the timeout.
                if self.adaptive && from < self.round {
                    self.timeout += 1;
                }
                if to >= self.round {
                    self.pending.push((from, to, sender));
                }
            }
        }
    }

    fn on_timer(&mut self, timer: TimerTag, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        debug_assert_eq!(timer, ROUND);
        self.end_round(ctx);
    }
}

impl Persist for EvtHpMsg {
    fn save(&self, s: &mut Saver) {
        match self {
            EvtHpMsg::Polling { round, id } => {
                s.u8(0);
                round.save(s);
                id.save(s);
            }
            EvtHpMsg::PReply {
                from,
                to,
                target,
                sender,
            } => {
                s.u8(1);
                from.save(s);
                to.save(s);
                target.save(s);
                sender.save(s);
            }
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(match l.u8()? {
            0 => EvtHpMsg::Polling {
                round: Persist::load(l)?,
                id: Persist::load(l)?,
            },
            1 => EvtHpMsg::PReply {
                from: Persist::load(l)?,
                to: Persist::load(l)?,
                target: Persist::load(l)?,
                sender: Persist::load(l)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "EvtHpMsg",
                    tag,
                })
            }
        })
    }
}

homonym_core::persist_fields!(EvtHpSnapshot {
    evt_hp,
    h_omega,
    round,
    timeout
});

// The mirror cells persist through the saver's alias table, so the
// consensus half decoded from the same byte stream comes out re-seated
// onto the identical rebuilt cells (see `homonym_core::wire`).
homonym_core::persist_fields!(EvtHpProcess {
    h_trusted,
    h_omega,
    round,
    timeout,
    mship_dense,
    mship,
    pending,
    gather,
    prev_gather,
    snapshot,
    evt_mirror,
    omega_mirror,
    mirrors_dirty,
    adaptive,
    started
});

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::prelude::*;
    use homonym_sim::prelude::*;

    fn hps_network(gst: u64, delta: u64) -> NetworkModel {
        NetworkModel::PartialSync {
            gst: Time::from_ticks(gst),
            delta: Span::from_ticks(delta),
            pre_gst: PreGstBehavior::LossyDelay {
                loss_percent: 40,
                max_delay: Span::from_ticks(30),
            },
        }
    }

    fn run_fig6(
        assign: IdentityAssignment,
        sched: FailureSchedule,
        network: NetworkModel,
        horizon: u64,
        seed: u64,
    ) -> (Vec<History<EvtHPOutput>>, Vec<History<HOmegaOutput>>) {
        let cfg = SimConfig::new(assign, sched, network).with_seed(seed);
        let mut engine = Engine::new(cfg, |_, _| EvtHpProcess::new());
        engine.set_classifier(classify_evt_hp);
        engine.run_until(Time::from_ticks(horizon));
        let mut evt = Vec::new();
        let mut omg = Vec::new();
        for h in engine.histories() {
            let (e, o) = split_snapshots(h);
            evt.push(e);
            omg.push(o);
        }
        (evt, omg)
    }

    #[test]
    fn converges_in_partial_synchrony_with_homonyms() {
        let assign = IdentityAssignment::round_robin(5, 2); // A B A B A
        let sched = FailureSchedule::none(5)
            .with_crash(1, Time::from_ticks(30))
            .with_crash(4, Time::from_ticks(80));
        let (evt, omg) = run_fig6(assign.clone(), sched.clone(), hps_network(60, 3), 1200, 7);
        let rep = check_evt_hp(&evt, &sched, &assign).expect("◇HP class valid");
        assert!(
            rep.stabilization >= Time::from_ticks(60),
            "cannot converge before GST"
        );
        let orep = check_h_omega(&omg, &sched, &assign).expect("HΩ class valid");
        // Correct: p0(A), p2(A), p3(B) -> leader A with multiplicity 2.
        assert_eq!(orep.leader, Identity::new(0));
        assert_eq!(orep.multiplicity, 2);
    }

    #[test]
    fn converges_under_synchronous_links_immediately() {
        let assign = IdentityAssignment::round_robin(4, 2);
        let sched = FailureSchedule::none(4);
        let (evt, _) = run_fig6(
            assign.clone(),
            sched.clone(),
            NetworkModel::reliable(Span::TICK),
            400,
            3,
        );
        let rep = check_evt_hp(&evt, &sched, &assign).expect("◇HP class valid");
        assert!(rep.stabilization < Time::from_ticks(100));
    }

    #[test]
    fn anonymous_system_counts_alive_bottoms() {
        // All processes share ⊥: h_trusted converges to ⊥^|Correct|,
        // which is exactly the AP-style alive count.
        let assign = IdentityAssignment::anonymous(4);
        let sched = FailureSchedule::none(4).with_crash(0, Time::from_ticks(25));
        let (evt, omg) = run_fig6(assign.clone(), sched.clone(), hps_network(40, 2), 900, 11);
        check_evt_hp(&evt, &sched, &assign).expect("◇HP class valid");
        let orep = check_h_omega(&omg, &sched, &assign).expect("HΩ class valid");
        assert_eq!(orep.leader, Identity::BOTTOM);
        assert_eq!(orep.multiplicity, 3);
    }

    #[test]
    fn unique_ids_reduce_to_classical_leader_election() {
        let assign = IdentityAssignment::unique(5);
        let sched = FailureSchedule::none(5).with_crash(0, Time::from_ticks(10));
        let (_, omg) = run_fig6(assign.clone(), sched.clone(), hps_network(30, 2), 900, 5);
        let orep = check_h_omega(&omg, &sched, &assign).expect("HΩ class valid");
        // Smallest *correct* identifier: B (p0=A crashed).
        assert_eq!(orep.leader, Identity::new(1));
        assert_eq!(orep.multiplicity, 1);
    }

    #[test]
    fn timeout_adapts_and_stops_growing_after_convergence() {
        let assign = IdentityAssignment::unique(3);
        let sched = FailureSchedule::none(3);
        let cfg = SimConfig::new(assign, sched, hps_network(50, 4)).with_seed(9);
        let mut engine = Engine::new(cfg, |_, _| EvtHpProcess::new());
        engine.run_until(Time::from_ticks(2000));
        for p in 0..3 {
            let hist = engine.histories()[p].clone();
            let final_timeout = hist.last().expect("rounds ran").1.timeout;
            assert!(final_timeout >= 1);
            // The timeout must stop growing well before the horizon:
            // find the last round where it changed.
            let last_growth = hist
                .windows(2)
                .rev()
                .find(|w| w[1].1.timeout != w[0].1.timeout)
                .map(|w| w[1].0);
            if let Some(t) = last_growth {
                assert!(
                    t < Time::from_ticks(1500),
                    "timeout still growing at {t} (final {final_timeout})"
                );
            }
        }
    }

    #[test]
    fn one_reply_serves_all_homonymous_pollers() {
        // Two homonyms poll with the same identifier; every other process
        // must answer each identifier-round at most once.
        let assign =
            IdentityAssignment::custom(vec![Identity::new(0), Identity::new(0), Identity::new(1)]);
        let sched = FailureSchedule::none(3);
        let cfg = SimConfig::new(assign, sched, NetworkModel::reliable(Span::TICK)).with_seed(1);
        let mut engine = Engine::new(cfg, |_, _| EvtHpProcess::new());
        engine.set_classifier(classify_evt_hp);
        engine.run_until(Time::from_ticks(300));
        let m = engine.metrics().by_class.clone();
        // Each receiver answers each *identifier* (2 distinct) once per
        // round, so P_REPLY ≈ 2 × POLLING. Without identifier-level dedup
        // each *poller* (3 of them) would be answered: ≈ 3 × POLLING.
        assert!(
            m["P_REPLY"] * 10 <= m["POLLING"] * 22,
            "reply dedup failed: {m:?}"
        );
        assert!(
            m["P_REPLY"] * 10 >= m["POLLING"] * 15,
            "replies unexpectedly scarce: {m:?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let assign = IdentityAssignment::round_robin(4, 2);
        let sched = FailureSchedule::none(4).with_crash(2, Time::from_ticks(20));
        let run = |seed| run_fig6(assign.clone(), sched.clone(), hps_network(30, 3), 500, seed);
        assert_eq!(run(21), run(21));
    }
}
