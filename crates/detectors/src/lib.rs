//! # homonym-detectors
//!
//! Failure-detector implementations for homonymous distributed systems,
//! reproducing Section 4 of *"Failure Detectors in Homonymous Distributed
//! Systems"* (ICDCS 2012):
//!
//! * [`evt_hp`] — **Figure 6**: the polling-based `◇HP` detector for
//!   `HPS[∅]` (partially synchronous processes, eventually timely links),
//!   with the **Corollary 2** `HΩ` extraction — all without membership
//!   knowledge;
//! * [`h_sigma_sync`] — **Figure 7**: `HΣ` in synchronous systems
//!   (`HSS[∅]`), quorum labels being the received multisets themselves;
//! * [`h_sigma_step`] — the same algorithm paced by timers (legitimate
//!   under `HSS`'s known bounds) so it can be stacked under asynchronous
//!   consumers in the event engine;
//! * [`ap_estimator`] — the windowed-count `AP` implementation that is
//!   sound under synchrony and **provably breaks** under partial
//!   synchrony, reproducing the implementability boundary of §1;
//! * [`e_list`] — **Figure 3**: the auxiliary class `E` (ranked alive
//!   list) in classical asynchronous systems, used by the Figure 4
//!   reduction;
//! * [`oracle`] — ground-truth oracles for *every* class in the paper
//!   (`◇HP`, `HΩ`, `HΣ`, `Σ`, `Ω`, `AΩ`, `AP`, `AΣ`, `E`), including
//!   adversarial pre-stabilization behaviour, used to drive consensus at
//!   the exact class boundary and to cross-validate the property checkers.
//!
//! # Examples
//!
//! Running the Figure 6 detector in a partially synchronous homonymous
//! system and checking its `◇HP` output:
//!
//! ```
//! use homonym_core::prelude::*;
//! use homonym_detectors::evt_hp::{split_snapshots, EvtHpProcess};
//! use homonym_sim::prelude::*;
//!
//! let assign = IdentityAssignment::round_robin(4, 2); // A B A B
//! let sched = FailureSchedule::none(4).with_crash(3, Time::from_ticks(25));
//! let cfg = SimConfig::new(assign.clone(), sched.clone(), NetworkModel::reliable(Span::TICK));
//! let mut engine = Engine::new(cfg, |_, _| EvtHpProcess::new());
//! engine.run_until(Time::from_ticks(300));
//!
//! let trusted: Vec<_> = engine.histories().iter()
//!     .map(|h| split_snapshots(h).0)
//!     .collect();
//! let report = check_evt_hp(&trusted, &sched, &assign).unwrap();
//! assert!(report.stabilization > Time::from_ticks(25), "after the crash");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ap_estimator;
pub mod e_list;
pub mod evt_hp;
pub mod h_sigma_step;
pub mod h_sigma_sync;
pub mod oracle;

pub use ap_estimator::{AliveMsg, ApEstimatorProcess};
pub use e_list::{classify_e_list, EListMsg, EListProcess};
pub use evt_hp::{
    classify_evt_hp, mutate_evt_hp_msg, round_of_evt_hp, split_snapshots, EvtHpMsg, EvtHpProcess,
    EvtHpSnapshot,
};
pub use h_sigma_step::{HSigmaStepProcess, StepIdentMsg};
pub use h_sigma_sync::{HSigmaSyncProcess, IdentMsg};
pub use oracle::{
    AOmegaOracle, APOracle, ASigmaOracle, EListOracle, EvtHPOracle, HOmegaOracle, HSigmaOracle,
    OmegaOracle, OracleWorld, PreStability, SigmaOracle,
};
