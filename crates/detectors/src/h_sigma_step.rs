//! Figure 7 re-expressed for the event-driven engine: `HΣ` via timer-paced
//! steps under **known** synchrony bounds.
//!
//! The synchronous model `HSS[∅]` has *known* bounds on step time and
//! message latency, so a process may legitimately pace itself with a
//! timer: broadcast `IDENT(id(p))` at each step boundary, and at the next
//! boundary gather everything received in between — under the
//! [`NetworkModel::Synchronous`](homonym_sim::network::NetworkModel)
//! latency of exactly one tick, a period of two ticks makes the windows
//! coincide with Figure 7's lock-step steps.
//!
//! This variant exists so the `HΣ` detector can be **stacked** under the
//! asynchronously-written consensus layer (Figure 9) in the event engine —
//! realizing the paper's second combined result: consensus in synchronous
//! homonymous systems with any number of crash failures, knowing neither
//! `t` nor the membership (§1). The lock-step twin lives in
//! [`crate::h_sigma_sync`].

use homonym_core::classes::{HSigmaOutput, Label};
use homonym_core::identity::Identity;
use homonym_core::multiset::Multiset;
use homonym_core::query::SharedCell;
use homonym_core::time::Span;
use homonym_sim::process::{ActionSink, Process, TimerTag};

/// Protocol message: `IDENT(id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepIdentMsg(pub Identity);

const STEP: TimerTag = TimerTag(0);

/// Timer-paced Figure 7 for the event engine.
#[derive(Debug)]
pub struct HSigmaStepProcess {
    period: Span,
    window: Vec<Identity>,
    output: HSigmaOutput,
    mirror: Option<SharedCell<HSigmaOutput>>,
}

impl HSigmaStepProcess {
    /// Creates the process. `period` must exceed the known latency bound
    /// (use 2 ticks with [`NetworkModel::Synchronous`]'s 1-tick latency).
    ///
    /// [`NetworkModel::Synchronous`]: homonym_sim::network::NetworkModel
    #[must_use]
    pub fn new(period: Span) -> Self {
        HSigmaStepProcess {
            period,
            window: Vec::new(),
            output: HSigmaOutput::new(),
            mirror: None,
        }
    }

    /// Mirrors the output into `cell` after every step.
    #[must_use]
    pub fn with_mirror(mut self, cell: SharedCell<HSigmaOutput>) -> Self {
        self.mirror = Some(cell);
        self
    }

    /// Current `(h_quora, h_labels)`.
    #[must_use]
    pub fn output(&self) -> &HSigmaOutput {
        &self.output
    }
}

impl Process for HSigmaStepProcess {
    type Msg = StepIdentMsg;
    type Output = HSigmaOutput;

    fn on_start(&mut self, ctx: &mut ActionSink<'_, StepIdentMsg, HSigmaOutput>) {
        ctx.broadcast(StepIdentMsg(ctx.my_id()));
        ctx.set_timer(self.period, STEP);
    }

    fn on_message(
        &mut self,
        msg: StepIdentMsg,
        _ctx: &mut ActionSink<'_, StepIdentMsg, HSigmaOutput>,
    ) {
        self.window.push(msg.0);
    }

    fn on_timer(&mut self, timer: TimerTag, ctx: &mut ActionSink<'_, StepIdentMsg, HSigmaOutput>) {
        debug_assert_eq!(timer, STEP);
        let mset: Multiset<Identity> = core::mem::take(&mut self.window).into_iter().collect();
        if !mset.is_empty() {
            let label = Label::id_multiset(mset.clone());
            self.output.insert_quorum(label.clone(), mset);
            self.output.insert_label(label);
            if let Some(cell) = &self.mirror {
                cell.set(self.output.clone());
            }
            ctx.publish(self.output.clone());
        }
        ctx.broadcast(StepIdentMsg(ctx.my_id()));
        ctx.set_timer(self.period, STEP);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::prelude::*;
    use homonym_sim::prelude::*;

    fn run(
        assign: IdentityAssignment,
        sched: FailureSchedule,
        horizon: u64,
        seed: u64,
    ) -> Vec<History<HSigmaOutput>> {
        let cfg = SimConfig::new(assign, sched, NetworkModel::Synchronous).with_seed(seed);
        let mut engine = Engine::new(cfg, |_, _| HSigmaStepProcess::new(Span::from_ticks(2)));
        engine.run_until(Time::from_ticks(horizon));
        engine.histories().to_vec()
    }

    #[test]
    fn failure_free_run_is_class_valid() {
        let assign = IdentityAssignment::round_robin(5, 2);
        let sched = FailureSchedule::none(5);
        let hist = run(assign.clone(), sched.clone(), 40, 1);
        let rep = check_h_sigma(&hist, &sched, &assign).expect("HΣ class valid");
        assert_eq!(rep.labels_observed, 1, "one label: the full multiset");
    }

    #[test]
    fn crash_epochs_stay_valid() {
        for seed in 0..6 {
            let assign = IdentityAssignment::round_robin(6, 3);
            let sched = FailureSchedule::none(6)
                .with_crash(1, Time::from_ticks(7))
                .with_crash(4, Time::from_ticks(15));
            let hist = run(assign.clone(), sched.clone(), 60, seed);
            check_h_sigma(&hist, &sched, &assign).expect("HΣ class valid");
        }
    }

    #[test]
    fn matches_lockstep_twin_on_failure_free_runs() {
        use crate::h_sigma_sync::HSigmaSyncProcess;
        let assign = IdentityAssignment::round_robin(4, 2);
        let sched = FailureSchedule::none(4);

        let step_hist = run(assign.clone(), sched.clone(), 30, 2);
        let cfg = SyncConfig::new(assign.clone(), sched.clone()).with_seed(2);
        let mut lockstep = SyncEngine::new(cfg, |_, id| HSigmaSyncProcess::new(id));
        lockstep.run_steps(10);

        // Both converge to the same single quorum pair.
        let a = &step_hist[0].last().expect("steps ran").1;
        let b = &lockstep.histories()[0].last().expect("steps ran").1;
        assert_eq!(a.h_quora, b.h_quora);
    }

    #[test]
    fn liveness_pair_is_i_correct() {
        let assign = IdentityAssignment::round_robin(5, 2);
        let sched = FailureSchedule::none(5).with_crash(2, Time::from_ticks(9));
        let hist = run(assign.clone(), sched.clone(), 60, 3);
        let i_correct = sched.i_correct(&assign);
        for p in sched.correct_set() {
            let last = &hist[p].last().expect("steps ran").1;
            assert!(last.h_quora.values().any(|m| m == &i_correct));
        }
    }
}
