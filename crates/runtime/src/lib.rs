//! # homonym-runtime
//!
//! A thread-based **real-time** engine running the same
//! [`Process`](trait@homonym_sim::Process) implementations as the
//! deterministic simulator, over OS threads and `crossbeam` channels.
//!
//! Its purpose is demonstrative: the algorithms of the paper are written
//! against an abstract message-passing interface, and this engine shows
//! they are not simulator-bound — a `◇HP` detector or a Figure 8 consensus
//! instance runs unchanged on real concurrency with wall-clock timers.
//!
//! Semantics:
//!
//! * one thread per process, one router thread delivering broadcast
//!   copies with a configurable wall-clock latency range;
//! * one simulator **tick equals one millisecond** of wall time;
//! * crashes stop a process's thread at its scheduled wall time (the
//!   "arbitrary subset" mid-broadcast semantics of the simulator is not
//!   reproduced here — copies already handed to the router are delivered);
//! * runs are **not** deterministic (that is the point); property checks
//!   on runtime histories therefore use generous convergence windows.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use homonym_core::failure::FailureSchedule;
use homonym_core::identity::{Identity, IdentityAssignment};
use homonym_core::properties::{ConsensusOutcome, History};
use homonym_core::time::Time;
use homonym_sim::process::{Action, ActionSink, Process, TimerTag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wall-clock configuration of a runtime run.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Identity of each process.
    pub assign: IdentityAssignment,
    /// Crash schedule; crash times are in **milliseconds** of wall time.
    pub sched: FailureSchedule,
    /// Message latency range in milliseconds (sampled uniformly per copy).
    pub latency_ms: (u64, u64),
    /// Total run duration in milliseconds.
    pub duration_ms: u64,
    /// Seed for the router's latency sampling and per-process RNGs.
    pub seed: u64,
}

impl RtConfig {
    /// A configuration with 1–5 ms latencies and the given duration.
    ///
    /// # Panics
    ///
    /// Panics if the assignment and schedule disagree on `n`.
    #[must_use]
    pub fn new(assign: IdentityAssignment, sched: FailureSchedule, duration_ms: u64) -> Self {
        assert_eq!(assign.n(), sched.n(), "assignment/schedule size mismatch");
        RtConfig {
            assign,
            sched,
            latency_ms: (1, 5),
            duration_ms,
            seed: 0,
        }
    }
}

/// What a runtime run produced.
#[derive(Debug, Clone)]
pub struct RtReport<O> {
    /// Per-process output histories (timestamps in ms since start).
    pub histories: Vec<History<O>>,
    /// Per-process decisions (timestamps in ms since start).
    pub decisions: Vec<Option<(Time, u64)>>,
}

impl<O> RtReport<O> {
    /// Packages decisions into a [`ConsensusOutcome`] for checking.
    #[must_use]
    pub fn outcome(&self, proposals: Vec<u64>) -> ConsensusOutcome {
        ConsensusOutcome {
            proposals,
            decisions: self.decisions.clone(),
        }
    }
}

struct PendingTimer {
    due: Instant,
    tag: TimerTag,
    seq: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// One process thread's state and event loop.
struct Worker<P: Process> {
    process: P,
    my_id: Identity,
    start: Instant,
    rng: StdRng,
    inbox: Receiver<P::Msg>,
    to_router: Sender<P::Msg>,
    timers: BinaryHeap<PendingTimer>,
    timer_seq: u64,
    history: History<P::Output>,
    decision: Option<(Time, u64)>,
    halted: bool,
    crash_after: Option<StdDuration>,
    stop: Arc<AtomicBool>,
}

enum Callback<M> {
    Start,
    Message(M),
    Timer(TimerTag),
}

impl<P: Process> Worker<P> {
    fn dispatch(&mut self, cb: Callback<P::Msg>) {
        let now = Time::from_ticks(self.start.elapsed().as_millis() as u64);
        let mut actions: Vec<Action<P::Msg, P::Output>> = Vec::new();
        {
            let mut sink = ActionSink::new(self.my_id, now, &mut self.rng, &mut actions);
            match cb {
                Callback::Start => self.process.on_start(&mut sink),
                Callback::Message(m) => self.process.on_message(m, &mut sink),
                Callback::Timer(t) => self.process.on_timer(t, &mut sink),
            }
        }
        for action in actions {
            match action {
                Action::Broadcast(m) => {
                    let _ = self.to_router.send(m);
                }
                Action::SetTimer(delay, tag) => {
                    self.timers.push(PendingTimer {
                        due: Instant::now() + StdDuration::from_millis(delay.ticks().max(1)),
                        tag,
                        seq: self.timer_seq,
                    });
                    self.timer_seq += 1;
                }
                Action::Publish(o) => self.history.push((now, o)),
                Action::Decide(v) => {
                    if self.decision.is_none() {
                        self.decision = Some((now, v));
                    }
                }
                Action::Halt => self.halted = true,
                // The real-time runtime keeps no recorder: the sink's
                // observe channel is off, so `Observe` never reaches the
                // action list; `Discard` notes are dropped (the runtime
                // reports no copy metrics).
                Action::Observe(_) | Action::Discard => {}
            }
        }
    }

    fn run(mut self) -> (History<P::Output>, Option<(Time, u64)>) {
        self.dispatch(Callback::Start);
        while !self.halted && !self.stop.load(Ordering::Relaxed) {
            if let Some(limit) = self.crash_after {
                if self.start.elapsed() >= limit {
                    break;
                }
            }
            // Fire a due timer, if any.
            let now = Instant::now();
            let due = self
                .timers
                .peek()
                .is_some_and(|t| t.due <= now)
                .then(|| self.timers.pop().expect("peeked").tag);
            if let Some(tag) = due {
                self.dispatch(Callback::Timer(tag));
                continue;
            }
            // Otherwise wait for a message, bounded by the next timer,
            // the crash deadline, and a polling floor for the stop flag.
            let mut timeout = self
                .timers
                .peek()
                .map_or(StdDuration::from_millis(2), |t| {
                    t.due.saturating_duration_since(now)
                })
                .min(StdDuration::from_millis(5));
            if let Some(limit) = self.crash_after {
                timeout = timeout.min(limit.saturating_sub(self.start.elapsed()));
            }
            match self
                .inbox
                .recv_timeout(timeout.max(StdDuration::from_micros(100)))
            {
                Ok(m) => self.dispatch(Callback::Message(m)),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        (self.history, self.decision)
    }
}

/// Runs `factory`-built processes for `config.duration_ms` wall-clock
/// milliseconds and returns their histories and decisions.
///
/// # Panics
///
/// Panics if a process or router thread panics.
pub fn run<P, F>(config: &RtConfig, mut factory: F) -> RtReport<P::Output>
where
    P: Process,
    F: FnMut(usize, Identity) -> P,
{
    let n = config.assign.n();
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    let mut inbox_tx: Vec<Sender<P::Msg>> = Vec::with_capacity(n);
    let mut inbox_rx: Vec<Option<Receiver<P::Msg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<P::Msg>();
        inbox_tx.push(tx);
        inbox_rx.push(Some(rx));
    }
    let (router_tx, router_rx) = bounded::<P::Msg>(4096);

    // Router thread: fan out each broadcast with per-copy latency.
    let router_stop = Arc::clone(&stop);
    let router_inboxes = inbox_tx;
    let (lat_lo, lat_hi) = config.latency_ms;
    let router_seed = config.seed;
    let router = thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(router_seed);
        let mut delayed: BinaryHeap<(Reverse<Instant>, u64, usize)> = BinaryHeap::new();
        let mut stash: Vec<P::Msg> = Vec::new();
        loop {
            let now = Instant::now();
            while let Some(&(Reverse(due), key, dst)) = delayed.peek() {
                if due > now {
                    break;
                }
                delayed.pop();
                let _ = router_inboxes[dst].send(stash[key as usize].clone());
            }
            let timeout =
                delayed
                    .peek()
                    .map_or(StdDuration::from_millis(5), |&(Reverse(due), _, _)| {
                        due.saturating_duration_since(Instant::now())
                            .max(StdDuration::from_micros(100))
                    });
            match router_rx.recv_timeout(timeout) {
                Ok(m) => {
                    let key = stash.len() as u64;
                    stash.push(m);
                    for dst in 0..router_inboxes.len() {
                        let delay =
                            StdDuration::from_millis(rng.gen_range(lat_lo..=lat_hi.max(lat_lo)));
                        delayed.push((Reverse(Instant::now() + delay), key, dst));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if router_stop.load(Ordering::Relaxed) && delayed.is_empty() {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    });

    let mut handles = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // p indexes several parallel structures
    for p in 0..n {
        let worker = Worker {
            process: factory(p, config.assign.id_of(p)),
            my_id: config.assign.id_of(p),
            start,
            rng: StdRng::seed_from_u64(
                config.seed ^ (p as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            inbox: inbox_rx[p].take().expect("untaken inbox"),
            to_router: router_tx.clone(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            history: Vec::new(),
            decision: None,
            halted: false,
            crash_after: config
                .sched
                .crash_time(p)
                .map(|t| StdDuration::from_millis(t.ticks())),
            stop: Arc::clone(&stop),
        };
        handles.push(thread::spawn(move || worker.run()));
    }
    drop(router_tx);

    thread::sleep(StdDuration::from_millis(config.duration_ms));
    stop.store(true, Ordering::Relaxed);

    let mut histories = Vec::with_capacity(n);
    let mut decisions = Vec::with_capacity(n);
    for h in handles {
        let (hist, dec) = h.join().expect("process thread panicked");
        histories.push(hist);
        decisions.push(dec);
    }
    router.join().expect("router thread panicked");

    RtReport {
        histories,
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::prelude::*;
    use homonym_sim::process::{ActionSink, Process, TimerTag};

    /// Minimal echo-consensus: broadcast the proposal, decide the smallest
    /// value among the first three heard.
    #[derive(Debug)]
    struct MinOfThree {
        proposal: u64,
        heard: Vec<u64>,
    }

    impl Process for MinOfThree {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut ActionSink<'_, u64, u64>) {
            ctx.broadcast(self.proposal);
        }

        fn on_message(&mut self, m: u64, ctx: &mut ActionSink<'_, u64, u64>) {
            self.heard.push(m);
            ctx.publish(m);
            if self.heard.len() == 3 {
                ctx.decide(*self.heard.iter().min().expect("nonempty"));
                ctx.halt();
            }
        }

        fn on_timer(&mut self, _t: TimerTag, _ctx: &mut ActionSink<'_, u64, u64>) {}
    }

    #[test]
    fn threads_exchange_broadcasts_and_decide() {
        let config = RtConfig::new(
            IdentityAssignment::round_robin(3, 2),
            FailureSchedule::none(3),
            500,
        );
        let proposals = [30u64, 10, 20];
        let report = run(&config, |p, _| MinOfThree {
            proposal: proposals[p],
            heard: Vec::new(),
        });
        for p in 0..3 {
            assert_eq!(report.decisions[p].map(|(_, v)| v), Some(10), "process {p}");
        }
        check_consensus(&report.outcome(proposals.to_vec()), &config.sched)
            .expect("consensus holds");
    }

    #[test]
    fn crashed_thread_stops_participating() {
        let config = RtConfig::new(
            IdentityAssignment::unique(2),
            FailureSchedule::none(2).with_crash(1, Time::from_ticks(0)),
            300,
        );
        let report = run(&config, |p, _| MinOfThree {
            proposal: p as u64,
            heard: Vec::new(),
        });
        assert_eq!(report.decisions[1], None, "a crashed process cannot decide");
    }

    #[test]
    fn timers_fire_in_wall_clock_time() {
        #[derive(Debug)]
        struct Clock {
            fired: u32,
        }
        impl Process for Clock {
            type Msg = ();
            type Output = u32;
            fn on_start(&mut self, ctx: &mut ActionSink<'_, (), u32>) {
                ctx.set_timer(Span::from_ticks(20), TimerTag(0));
            }
            fn on_message(&mut self, _m: (), _ctx: &mut ActionSink<'_, (), u32>) {}
            fn on_timer(&mut self, _t: TimerTag, ctx: &mut ActionSink<'_, (), u32>) {
                self.fired += 1;
                ctx.publish(self.fired);
                ctx.set_timer(Span::from_ticks(20), TimerTag(0));
            }
        }
        let config = RtConfig::new(IdentityAssignment::unique(1), FailureSchedule::none(1), 250);
        let report = run(&config, |_, _| Clock { fired: 0 });
        let fired = report.histories[0].len();
        // ~250ms at a 20ms period; allow generous scheduling slack.
        assert!((4..=15).contains(&fired), "fired {fired} times");
    }
}
