//! Communication-free reductions, expressed as query wrappers.
//!
//! Several of the paper's transformations need **no communication at
//! all** — the new detector's variables are a pointwise function of the
//! old detector's variables:
//!
//! * **Observation 1** — `HΩ` from `◇HP`: take the smallest trusted
//!   identifier and its multiplicity.
//! * **Lemma 2** — `◇HP` from `AP` (anonymous systems): `h_trusted` is the
//!   multiset of `anap` copies of `⊥`.
//! * **Theorem 3** — `HΣ` from `AΣ` (anonymous systems): each pair
//!   `(x, y)` becomes the label `x` with quorum `⊥^y`.
//!
//! Each wrapper implements the target class's `*Source` trait on top of a
//! source of the origin class, so it can be plugged anywhere a detector of
//! the target class is expected (e.g. under the consensus algorithms).

use homonym_core::classes::{EvtHPOutput, HOmegaOutput, HSigmaOutput};
use homonym_core::identity::Identity;
use homonym_core::multiset::Multiset;
use homonym_core::query::{APSource, ASigmaSource, EvtHPSource, HOmegaSource, HSigmaSource};
use homonym_core::time::Time;

/// Observation 1: a detector of class `HΩ` obtained from any detector of
/// class `◇HP` without any communication.
///
/// `h_leader_p` is set to the smallest element of `h_trusted_p` and
/// `h_multiplicity_p` to its multiplicity. While `h_trusted_p` is still
/// empty (which `◇HP` permits before convergence) the wrapper reports the
/// fallback pair `(⊥, 1)` — the class constrains only the eventual output.
///
/// # Examples
///
/// ```
/// use homonym_core::prelude::*;
/// use homonym_reductions::pure::EvtHPToHOmega;
///
/// let src = |_now: Time| EvtHPOutput::new(
///     [Identity::new(2), Identity::new(2), Identity::new(5)].into_iter().collect(),
/// );
/// let homega = EvtHPToHOmega::new(src);
/// let out = homega.h_omega(Time::ZERO);
/// assert_eq!(out.h_leader, Identity::new(2));
/// assert_eq!(out.h_multiplicity, 2);
/// ```
#[derive(Debug, Clone)]
pub struct EvtHPToHOmega<S> {
    source: S,
}

impl<S: EvtHPSource> EvtHPToHOmega<S> {
    /// Wraps a `◇HP` source.
    #[must_use]
    pub fn new(source: S) -> Self {
        EvtHPToHOmega { source }
    }
}

impl<S: EvtHPSource> HOmegaSource for EvtHPToHOmega<S> {
    fn h_omega(&self, now: Time) -> HOmegaOutput {
        let trusted = self.source.evt_hp(now).h_trusted;
        match trusted.min_elem() {
            Some(&leader) => HOmegaOutput::new(leader, trusted.multiplicity(&leader)),
            None => HOmegaOutput::new(Identity::BOTTOM, 1),
        }
    }
}

/// Lemma 2: a detector of class `◇HP` obtained from any detector of class
/// `AP` in an anonymous system, without communication: `h_trusted_p` is a
/// multiset of `anap_p` default identifiers `⊥`.
///
/// # Examples
///
/// ```
/// use homonym_core::prelude::*;
/// use homonym_reductions::pure::APToEvtHP;
///
/// let ap = |_now: Time| APOutput::new(3);
/// let evt_hp = APToEvtHP::new(ap);
/// assert_eq!(evt_hp.evt_hp(Time::ZERO).h_trusted.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct APToEvtHP<S> {
    source: S,
}

impl<S: APSource> APToEvtHP<S> {
    /// Wraps an `AP` source.
    #[must_use]
    pub fn new(source: S) -> Self {
        APToEvtHP { source }
    }
}

impl<S: APSource> EvtHPSource for APToEvtHP<S> {
    fn evt_hp(&self, now: Time) -> EvtHPOutput {
        let anap = self.source.ap(now).anap;
        let trusted: Multiset<Identity> = [(Identity::BOTTOM, anap)].into_iter().collect();
        EvtHPOutput::new(trusted)
    }
}

/// Theorem 3: a detector of class `HΣ` obtained from any detector of class
/// `AΣ` in an anonymous system, without communication: every pair `(x, y)`
/// of `a_sigma_p` contributes label `x` to `h_labels_p` and the pair
/// `(x, ⊥^y)` to `h_quora_p` (replacing any previous pair labelled `x`,
/// which `AΣ` monotonicity makes a shrink).
#[derive(Debug, Clone)]
pub struct ASigmaToHSigma<S> {
    source: S,
}

impl<S: ASigmaSource> ASigmaToHSigma<S> {
    /// Wraps an `AΣ` source.
    #[must_use]
    pub fn new(source: S) -> Self {
        ASigmaToHSigma { source }
    }
}

impl<S: ASigmaSource> HSigmaSource for ASigmaToHSigma<S> {
    fn h_sigma(&self, now: Time) -> HSigmaOutput {
        let a = self.source.a_sigma(now);
        let mut out = HSigmaOutput::new();
        for (x, &y) in &a.a_sigma {
            let bot_y: Multiset<Identity> = [(Identity::BOTTOM, y)].into_iter().collect();
            out.insert_label(x.clone());
            out.insert_quorum(x.clone(), bot_y);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::prelude::*;
    use homonym_core::properties::History;
    use homonym_detectors::oracle::{OracleWorld, PreStability};

    fn anonymous_world() -> OracleWorld {
        let sched = FailureSchedule::none(5)
            .with_crash(0, Time::from_ticks(6))
            .with_crash(2, Time::from_ticks(14));
        OracleWorld::new(
            sched,
            IdentityAssignment::anonymous(5),
            Time::from_ticks(20),
        )
    }

    fn sample<T>(w: &OracleWorld, horizon: u64, f: impl Fn(usize, Time) -> T) -> Vec<History<T>> {
        (0..w.sched().n())
            .map(|p| {
                (0..=horizon)
                    .map(Time::from_ticks)
                    .filter(|&t| w.sched().is_alive(p, t))
                    .map(|t| (t, f(p, t)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn obs1_h_omega_from_evt_hp_is_class_valid() {
        let w = anonymous_world();
        let h = sample(&w, 40, |p, t| {
            EvtHPToHOmega::new(w.evt_hp_for(p, PreStability::Chaotic)).h_omega(t)
        });
        let rep = check_h_omega(&h, w.sched(), w.assign()).expect("HΩ class valid");
        assert_eq!(rep.leader, Identity::BOTTOM);
        assert_eq!(rep.multiplicity, 3);
    }

    #[test]
    fn obs1_also_works_with_homonymous_ids() {
        let sched = FailureSchedule::none(6).with_crash(1, Time::from_ticks(4));
        let assign = IdentityAssignment::round_robin(6, 2);
        let w = OracleWorld::new(sched, assign, Time::from_ticks(10));
        let h = sample(&w, 30, |p, t| {
            EvtHPToHOmega::new(w.evt_hp_for(p, PreStability::Truthful)).h_omega(t)
        });
        let rep = check_h_omega(&h, w.sched(), w.assign()).expect("HΩ class valid");
        // Correct A-carriers: p0, p2, p4 (p1 has B... round_robin: A B A B A B).
        assert_eq!(rep.leader, Identity::new(0));
        assert_eq!(rep.multiplicity, 3);
    }

    #[test]
    fn lemma2_evt_hp_from_ap_is_class_valid() {
        let w = anonymous_world();
        let h = sample(&w, 40, |_, t| {
            APToEvtHP::new(w.ap(Span::from_ticks(3))).evt_hp(t)
        });
        let rep = check_evt_hp(&h, w.sched(), w.assign()).expect("◇HP class valid");
        assert!(rep.stabilization >= Time::from_ticks(14));
    }

    #[test]
    fn lemma2_then_obs1_gives_h_omega_from_ap() {
        // The composition AP → ◇HP → HΩ (the Figure 5 path).
        let w = anonymous_world();
        let h = sample(&w, 40, |_, t| {
            EvtHPToHOmega::new(APToEvtHP::new(w.ap(Span::from_ticks(2)))).h_omega(t)
        });
        let rep = check_h_omega(&h, w.sched(), w.assign()).expect("HΩ class valid");
        assert_eq!(rep.leader, Identity::BOTTOM);
        assert_eq!(rep.multiplicity, 3);
    }

    #[test]
    fn theorem3_h_sigma_from_a_sigma_is_class_valid() {
        for pre in [PreStability::Truthful, PreStability::Chaotic] {
            let w = anonymous_world();
            let h = sample(&w, 40, |p, t| {
                ASigmaToHSigma::new(w.a_sigma_for(p, pre)).h_sigma(t)
            });
            check_h_sigma(&h, w.sched(), w.assign()).expect("HΣ class valid");
        }
    }

    #[test]
    fn empty_trusted_yields_fallback_leader() {
        let src = |_now: Time| EvtHPOutput::new(Multiset::new());
        let out = EvtHPToHOmega::new(src).h_omega(Time::ZERO);
        assert_eq!(out.h_leader, Identity::BOTTOM);
    }
}
