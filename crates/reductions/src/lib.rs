//! # homonym-reductions
//!
//! Reductions between failure-detector classes, reproducing §3.3 of
//! *"Failure Detectors in Homonymous Distributed Systems"* (ICDCS 2012) —
//! the arrows of the paper's **Figure 5** relation diagram:
//!
//! | Arrow | Result | Module |
//! |---|---|---|
//! | `Σ → HΣ` (membership known)  | Theorem 1(1), Figure 1 | [`sigma_to_hsigma`] |
//! | `Σ → HΣ` (membership unknown)| Theorem 1(2), Figure 2 | [`sigma_to_hsigma`] |
//! | `HΣ → Σ` via class `E`       | Theorem 2, Figure 4    | [`hsigma_to_sigma`] |
//! | `AΣ → HΣ`                    | Theorem 3              | [`pure`] |
//! | `AP → ◇HP`                   | Lemma 2 / Theorem 4    | [`pure`] |
//! | `AP → HΣ`                    | Lemma 3 / Theorem 4    | [`ap_to_hsigma`] |
//! | `◇HP → HΩ`                   | Observation 1          | [`pure`] |
//!
//! Communication-free transformations are query wrappers ([`pure`]);
//! the others are simulator processes whose recorded output histories are
//! validated with the `homonym-core` property checkers.
//!
//! # Examples
//!
//! The `AP → ◇HP → HΩ` path of the Figure 5 diagram, as pure wrappers:
//!
//! ```
//! use homonym_core::prelude::*;
//! use homonym_reductions::{APToEvtHP, EvtHPToHOmega};
//!
//! // An AP source reporting 3 alive anonymous processes.
//! let ap = |_now: Time| APOutput::new(3);
//! let h_omega = EvtHPToHOmega::new(APToEvtHP::new(ap));
//! let out = h_omega.h_omega(Time::ZERO);
//! assert_eq!(out.h_leader, Identity::new(u64::MAX)); // the ⊥ identifier
//! assert_eq!(out.h_multiplicity, 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ap_to_hsigma;
pub mod hsigma_to_sigma;
pub mod pure;
pub mod sigma_to_hsigma;

pub use ap_to_hsigma::APToHSigmaProcess;
pub use hsigma_to_sigma::{classify_labels, HSigmaToSigmaProcess, LabelsMsg};
pub use pure::{APToEvtHP, ASigmaToHSigma, EvtHPToHOmega};
pub use sigma_to_hsigma::{classify_membership, MembershipMsg, SigmaToHSigmaProcess};
