//! Figures 1 and 2: transforming `Σ` into `HΣ` in systems with unique
//! identifiers (Theorem 1).
//!
//! * **Figure 1** (membership known): `h_labels_p` is fixed once and for
//!   all to every subset of `I(Π)` containing `id(p)`; the quorum pairs
//!   `(q, q)` are sampled forever from the underlying `Σ` detector. No
//!   message is ever sent.
//! * **Figure 2** (membership unknown): processes additionally broadcast
//!   `IDENT(id(p))` forever and grow `h_labels_p` to every subset of the
//!   learned membership `mship_p` containing `id(p)`.
//!
//! Labels are *sets* of identifiers; since identifiers are unique, the `Σ`
//! output multiset `q` is itself a set and serves directly as the label of
//! the pair `(q, q)`.
//!
//! Both transformations are driven by a sampling timer: the paper's
//! `repeat forever` loop body — query `D.trusted_p`, extend `h_quora` —
//! runs every `period` ticks.

use std::collections::BTreeSet;

use homonym_core::classes::{HSigmaOutput, Label};
use homonym_core::identity::Identity;
use homonym_core::multiset::Multiset;
use homonym_core::query::{SharedCell, SigmaSource};
use homonym_core::time::Span;
use homonym_sim::process::{ActionSink, Process, TimerTag};

/// Protocol message of Figure 2 (Figure 1 sends nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipMsg {
    /// `IDENT(id)` membership announcement.
    Ident(Identity),
}

/// Returns a static class name for a message, for metrics classifiers.
#[must_use]
pub fn classify_membership(msg: &MembershipMsg) -> &'static str {
    match msg {
        MembershipMsg::Ident(_) => "IDENT",
    }
}

const SAMPLE: TimerTag = TimerTag(0);

/// All subsets of `universe` containing `pivot`, as labels.
///
/// Exponential in `|universe|` by the paper's own construction — Figures 1
/// and 2 are computability results, not efficient algorithms. Keep the
/// membership small in experiments.
fn labels_containing(universe: &BTreeSet<Identity>, pivot: Identity) -> BTreeSet<Label> {
    let others: Vec<Identity> = universe.iter().copied().filter(|&i| i != pivot).collect();
    assert!(others.len() < 24, "label universe would explode");
    let mut labels = BTreeSet::new();
    for mask in 0u32..(1 << others.len()) {
        let mut s: BTreeSet<Identity> = others
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &id)| id)
            .collect();
        s.insert(pivot);
        labels.insert(Label::IdSet(s));
    }
    labels
}

/// Figure 1 or Figure 2, selected by whether an initial membership is
/// supplied.
#[derive(Debug)]
pub struct SigmaToHSigmaProcess<S> {
    sigma: S,
    output: HSigmaOutput,
    mship: BTreeSet<Identity>,
    /// `None` = Figure 2 (learn membership via `IDENT`); `Some` = Figure 1.
    known_membership: bool,
    period: Span,
    mirror: Option<SharedCell<HSigmaOutput>>,
}

impl<S: SigmaSource> SigmaToHSigmaProcess<S> {
    /// **Figure 1**: the membership `I(Π)` is known initially; the label
    /// set is computed once and no message is ever sent.
    #[must_use]
    pub fn with_known_membership(sigma: S, membership: BTreeSet<Identity>, period: Span) -> Self {
        SigmaToHSigmaProcess {
            sigma,
            output: HSigmaOutput::new(),
            mship: membership,
            known_membership: true,
            period,
            mirror: None,
        }
    }

    /// **Figure 2**: the membership is learned from `IDENT` exchanges.
    #[must_use]
    pub fn learning_membership(sigma: S, period: Span) -> Self {
        SigmaToHSigmaProcess {
            sigma,
            output: HSigmaOutput::new(),
            mship: BTreeSet::new(),
            known_membership: false,
            period,
            mirror: None,
        }
    }

    /// Mirrors the output into `cell` after every update.
    #[must_use]
    pub fn with_mirror(mut self, cell: SharedCell<HSigmaOutput>) -> Self {
        self.mirror = Some(cell);
        self
    }

    /// Current `(h_quora, h_labels)`.
    #[must_use]
    pub fn output(&self) -> &HSigmaOutput {
        &self.output
    }

    fn refresh_labels(&mut self, my_id: Identity) {
        if self.mship.contains(&my_id) || self.known_membership {
            self.output.h_labels = labels_containing(&self.mship, my_id);
        }
    }

    fn sample_sigma(&mut self, ctx: &mut ActionSink<'_, MembershipMsg, HSigmaOutput>) {
        let q: Multiset<Identity> = self.sigma.sigma(ctx.local_now()).trusted;
        let label = Label::IdSet(q.to_set());
        self.output.insert_quorum(label, q);
        if let Some(cell) = &self.mirror {
            cell.set(self.output.clone());
        }
        ctx.publish(self.output.clone());
    }
}

impl<S: SigmaSource + Send + 'static> Process for SigmaToHSigmaProcess<S> {
    type Msg = MembershipMsg;
    type Output = HSigmaOutput;

    fn on_start(&mut self, ctx: &mut ActionSink<'_, MembershipMsg, HSigmaOutput>) {
        if self.known_membership {
            assert!(
                self.mship.contains(&ctx.my_id()),
                "the known membership must contain the process's own identifier"
            );
            self.refresh_labels(ctx.my_id());
        } else {
            ctx.broadcast(MembershipMsg::Ident(ctx.my_id()));
        }
        self.sample_sigma(ctx);
        ctx.set_timer(self.period, SAMPLE);
    }

    fn on_message(
        &mut self,
        msg: MembershipMsg,
        ctx: &mut ActionSink<'_, MembershipMsg, HSigmaOutput>,
    ) {
        let MembershipMsg::Ident(i) = msg;
        debug_assert!(!self.known_membership, "Figure 1 sends no messages");
        if self.mship.insert(i) {
            self.refresh_labels(ctx.my_id());
            ctx.publish(self.output.clone());
        }
    }

    fn on_timer(&mut self, timer: TimerTag, ctx: &mut ActionSink<'_, MembershipMsg, HSigmaOutput>) {
        debug_assert_eq!(timer, SAMPLE);
        if !self.known_membership {
            ctx.broadcast(MembershipMsg::Ident(ctx.my_id()));
        }
        self.sample_sigma(ctx);
        ctx.set_timer(self.period, SAMPLE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::prelude::*;
    use homonym_detectors::oracle::OracleWorld;
    use homonym_sim::prelude::*;

    fn world(n: usize, crashes: &[(usize, u64)]) -> OracleWorld {
        let mut sched = FailureSchedule::none(n);
        for &(p, t) in crashes {
            sched.set_crash(p, Time::from_ticks(t));
        }
        OracleWorld::new(sched, IdentityAssignment::unique(n), Time::ZERO)
    }

    fn run(w: &OracleWorld, known: bool, horizon: u64, seed: u64) -> Vec<History<HSigmaOutput>> {
        let cfg = SimConfig::new(
            w.assign().clone(),
            w.sched().clone(),
            NetworkModel::Asynchronous(LatencyDistribution::Uniform {
                min: Span::from_ticks(1),
                max: Span::from_ticks(5),
            }),
        )
        .with_seed(seed);
        let world = w.clone();
        let membership: BTreeSet<Identity> = w.assign().multiset().to_set();
        let mut engine = Engine::new(cfg, move |_, _| {
            let sigma = world.sigma(Span::from_ticks(8));
            if known {
                SigmaToHSigmaProcess::with_known_membership(
                    sigma,
                    membership.clone(),
                    Span::from_ticks(3),
                )
            } else {
                SigmaToHSigmaProcess::learning_membership(sigma, Span::from_ticks(3))
            }
        });
        engine.set_classifier(classify_membership);
        engine.run_until(Time::from_ticks(horizon));
        if known {
            assert_eq!(
                engine.metrics().broadcasts,
                0,
                "Figure 1 must not communicate"
            );
        } else {
            assert!(engine.metrics().broadcasts > 0);
        }
        engine.histories().to_vec()
    }

    #[test]
    fn fig1_known_membership_is_class_valid_without_communication() {
        let w = world(4, &[(1, 12)]);
        let hist = run(&w, true, 120, 1);
        check_h_sigma(&hist, w.sched(), w.assign()).expect("HΣ class valid");
    }

    #[test]
    fn fig2_learned_membership_is_class_valid() {
        let w = world(4, &[(1, 12)]);
        let hist = run(&w, false, 120, 2);
        let rep = check_h_sigma(&hist, w.sched(), w.assign()).expect("HΣ class valid");
        // Labels: subsets of the 4-id membership containing the owner (8
        // per process), the union over owners is every nonempty subset: 15.
        assert_eq!(rep.labels_observed, 15);
    }

    #[test]
    fn fig2_labels_grow_with_membership() {
        let w = world(3, &[]);
        let hist = run(&w, false, 100, 3);
        // First snapshot has few labels, final snapshot has 2^(3-1) = 4.
        let first = &hist[0].first().expect("published at start").1;
        let last = &hist[0].last().expect("published at end").1;
        assert!(first.h_labels.len() <= last.h_labels.len());
        assert_eq!(last.h_labels.len(), 4);
    }

    #[test]
    fn fig1_works_across_seeds_and_crash_patterns() {
        for seed in 0..5 {
            let w = world(5, &[(0, 9), (4, 25)]);
            let hist = run(&w, true, 150, seed);
            check_h_sigma(&hist, w.sched(), w.assign()).expect("HΣ class valid");
        }
    }

    #[test]
    fn labels_containing_enumerates_pivoted_subsets() {
        let universe: BTreeSet<Identity> = [0u64, 1, 2].map(Identity::new).into_iter().collect();
        let labels = labels_containing(&universe, Identity::new(1));
        assert_eq!(labels.len(), 4);
        for l in &labels {
            match l {
                Label::IdSet(s) => assert!(s.contains(&Identity::new(1))),
                other => panic!("unexpected label shape {other:?}"),
            }
        }
    }
}
