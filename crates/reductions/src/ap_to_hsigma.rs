//! Lemma 3 / Theorem 4: transforming `AP` into `HΣ` in anonymous systems
//! without communication.
//!
//! Each process periodically reads `y = D.anap_p`, inserts the label
//! `⊥^y` into `h_labels_p` and the pair `(⊥^y, ⊥^y)` into `h_quora_p`.
//! Safety follows from the perpetual `AP` bound: whenever `y` is output,
//! at most `y` processes are alive, so any two fully-realized quora
//! `S(⊥^y), S(⊥^y')` are nested. Liveness follows because every correct
//! process eventually outputs `y = |Correct|` forever.
//!
//! Although communication-free, the transformation is *stateful* (labels
//! accumulate), so it is packaged as a timer-driven process; the engine's
//! metrics confirm it never broadcasts.

use homonym_core::classes::{HSigmaOutput, Label};
use homonym_core::identity::Identity;
use homonym_core::multiset::Multiset;
use homonym_core::query::{APSource, SharedCell};
use homonym_core::time::Span;
use homonym_sim::process::{ActionSink, Process, TimerTag};

const SAMPLE: TimerTag = TimerTag(0);

/// The Lemma 3 transformation process.
#[derive(Debug)]
pub struct APToHSigmaProcess<S> {
    ap: S,
    output: HSigmaOutput,
    period: Span,
    mirror: Option<SharedCell<HSigmaOutput>>,
}

impl<S: APSource> APToHSigmaProcess<S> {
    /// Creates the process; `D.anap_p` is sampled every `period` ticks.
    #[must_use]
    pub fn new(ap: S, period: Span) -> Self {
        APToHSigmaProcess {
            ap,
            output: HSigmaOutput::new(),
            period,
            mirror: None,
        }
    }

    /// Mirrors the output into `cell` after every sample.
    #[must_use]
    pub fn with_mirror(mut self, cell: SharedCell<HSigmaOutput>) -> Self {
        self.mirror = Some(cell);
        self
    }

    /// Current `(h_quora, h_labels)`.
    #[must_use]
    pub fn output(&self) -> &HSigmaOutput {
        &self.output
    }

    fn sample(&mut self, ctx: &mut ActionSink<'_, (), HSigmaOutput>) {
        let y = self.ap.ap(ctx.local_now()).anap;
        let label = Label::count(y);
        let bot_y: Multiset<Identity> = [(Identity::BOTTOM, y)].into_iter().collect();
        self.output.insert_label(label.clone());
        self.output.insert_quorum(label, bot_y);
        if let Some(cell) = &self.mirror {
            cell.set(self.output.clone());
        }
        ctx.publish(self.output.clone());
    }
}

impl<S: APSource + Send + 'static> Process for APToHSigmaProcess<S> {
    type Msg = ();
    type Output = HSigmaOutput;

    fn on_start(&mut self, ctx: &mut ActionSink<'_, (), HSigmaOutput>) {
        self.sample(ctx);
        ctx.set_timer(self.period, SAMPLE);
    }

    fn on_message(&mut self, _msg: (), _ctx: &mut ActionSink<'_, (), HSigmaOutput>) {
        unreachable!("the Lemma 3 transformation never communicates");
    }

    fn on_timer(&mut self, timer: TimerTag, ctx: &mut ActionSink<'_, (), HSigmaOutput>) {
        debug_assert_eq!(timer, SAMPLE);
        self.sample(ctx);
        ctx.set_timer(self.period, SAMPLE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::prelude::*;
    use homonym_detectors::oracle::OracleWorld;
    use homonym_sim::prelude::*;

    fn run_lemma3(
        n: usize,
        crashes: &[(usize, u64)],
        lag: u64,
        horizon: u64,
        seed: u64,
    ) -> (Vec<History<HSigmaOutput>>, OracleWorld) {
        let mut sched = FailureSchedule::none(n);
        for &(p, t) in crashes {
            sched.set_crash(p, Time::from_ticks(t));
        }
        let w = OracleWorld::new(sched, IdentityAssignment::anonymous(n), Time::ZERO);
        let cfg = SimConfig::new(
            w.assign().clone(),
            w.sched().clone(),
            NetworkModel::reliable(Span::TICK),
        )
        .with_seed(seed);
        let world = w.clone();
        let mut engine = Engine::new(cfg, move |_, _| {
            APToHSigmaProcess::new(world.ap(Span::from_ticks(lag)), Span::from_ticks(2))
        });
        engine.run_until(Time::from_ticks(horizon));
        assert_eq!(
            engine.metrics().broadcasts,
            0,
            "Lemma 3 must not communicate"
        );
        (engine.histories().to_vec(), w)
    }

    #[test]
    fn lemma3_output_is_class_valid() {
        let (hist, w) = run_lemma3(5, &[(0, 10), (3, 30)], 4, 120, 1);
        let rep = check_h_sigma(&hist, w.sched(), w.assign()).expect("HΣ class valid");
        // Labels ⊥^5, ⊥^4, ⊥^3 as the alive count decays.
        assert_eq!(rep.labels_observed, 3);
    }

    #[test]
    fn lemma3_failure_free_has_single_label() {
        let (hist, w) = run_lemma3(4, &[], 0, 60, 2);
        let rep = check_h_sigma(&hist, w.sched(), w.assign()).expect("HΣ class valid");
        assert_eq!(rep.labels_observed, 1);
        let last = &hist[0].last().expect("sampled").1;
        assert!(last.h_labels.contains(&Label::count(4)));
    }

    #[test]
    fn lemma3_various_lags_stay_valid() {
        for lag in [0u64, 2, 9] {
            let (hist, w) = run_lemma3(4, &[(1, 15)], lag, 150, 3);
            check_h_sigma(&hist, w.sched(), w.assign()).expect("HΣ class valid");
        }
    }
}
