//! Figure 4: transforming `HΣ` into `Σ` in a system with unique
//! identifiers but no initial membership knowledge (Theorem 2).
//!
//! The transformation uses an auxiliary detector `X` of class `E`
//! (Definition 1, implementable in plain `AS[∅]` — Figure 3 / Lemma 1):
//!
//! * Task T1 — repeat forever: broadcast `LABELS(id(p), D.h_labels_p)`;
//!   if some pair `(x, m) ∈ D.h_quora_p` has every identifier of `m`
//!   *known* to participate in `x` (via `idents_p[x]`), pick among such
//!   candidate multisets the one whose worst rank in `X.alive_p` is
//!   smallest and write it to `trusted_p`.
//! * Task T2 — upon `LABELS(i, ℓ)`: record `i` into `idents_p[x]` for
//!   every `x ∈ ℓ`.
//!
//! The `E` ranking steers `trusted_p` towards quora made of correct
//! processes (liveness); the `idents` filter plus `HΣ` safety gives `Σ`
//! safety.

use std::collections::{BTreeMap, BTreeSet};

use homonym_core::classes::{Label, SigmaOutput};
use homonym_core::identity::Identity;
use homonym_core::multiset::Multiset;
use homonym_core::query::{EListSource, HSigmaSource, SharedCell};
use homonym_core::time::Span;
use homonym_sim::process::{ActionSink, Process, TimerTag};

/// Protocol message of Figure 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelsMsg {
    /// `LABELS(id, h_labels)` — the sender's identifier and its current
    /// label set.
    Labels(Identity, BTreeSet<Label>),
}

/// Returns a static class name for a message, for metrics classifiers.
#[must_use]
pub fn classify_labels(msg: &LabelsMsg) -> &'static str {
    match msg {
        LabelsMsg::Labels(..) => "LABELS",
    }
}

const SAMPLE: TimerTag = TimerTag(0);

/// The Figure 4 process, generic over its `HΣ` detector `D` and its class-
/// `E` detector `X`.
#[derive(Debug)]
pub struct HSigmaToSigmaProcess<D, X> {
    h_sigma: D,
    e_list: X,
    idents: BTreeMap<Label, BTreeSet<Identity>>,
    trusted: Option<Multiset<Identity>>,
    period: Span,
    mirror: Option<SharedCell<SigmaOutput>>,
}

impl<D: HSigmaSource, X: EListSource> HSigmaToSigmaProcess<D, X> {
    /// Creates the process; the T1 loop body runs every `period` ticks.
    #[must_use]
    pub fn new(h_sigma: D, e_list: X, period: Span) -> Self {
        HSigmaToSigmaProcess {
            h_sigma,
            e_list,
            idents: BTreeMap::new(),
            trusted: None,
            period,
            mirror: None,
        }
    }

    /// Mirrors `trusted_p` into `cell` whenever it is assigned.
    #[must_use]
    pub fn with_mirror(mut self, cell: SharedCell<SigmaOutput>) -> Self {
        self.mirror = Some(cell);
        self
    }

    /// The current `trusted_p`, if assigned yet.
    #[must_use]
    pub fn trusted(&self) -> Option<&Multiset<Identity>> {
        self.trusted.as_ref()
    }

    fn t1_body(&mut self, ctx: &mut ActionSink<'_, LabelsMsg, SigmaOutput>) {
        let now = ctx.local_now();
        let snapshot = self.h_sigma.h_sigma(now);
        ctx.broadcast(LabelsMsg::Labels(ctx.my_id(), snapshot.h_labels.clone()));

        // Line 6-8: candidate quora whose members all provably carry the
        // label, then the one best-ranked by X.
        let candidates: Vec<&Multiset<Identity>> = snapshot
            .h_quora
            .iter()
            .filter(|(x, m)| {
                self.idents
                    .get(x)
                    .is_some_and(|known| m.support().all(|i| known.contains(i)))
            })
            .map(|(_, m)| m)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let alive = self.e_list.e_list(now);
        let worst_rank = |m: &Multiset<Identity>| -> usize {
            m.support()
                .map(|&i| alive.rank(i).unwrap_or(usize::MAX))
                .max()
                .unwrap_or(usize::MAX)
        };
        let best = candidates
            .into_iter()
            .min_by_key(|m| worst_rank(m))
            .expect("nonempty")
            .clone();
        if let Some(cell) = &self.mirror {
            cell.set(SigmaOutput::new(best.clone()));
        }
        ctx.publish(SigmaOutput::new(best.clone()));
        self.trusted = Some(best);
    }
}

impl<D, X> Process for HSigmaToSigmaProcess<D, X>
where
    D: HSigmaSource + Send + 'static,
    X: EListSource + Send + 'static,
{
    type Msg = LabelsMsg;
    type Output = SigmaOutput;

    fn on_start(&mut self, ctx: &mut ActionSink<'_, LabelsMsg, SigmaOutput>) {
        self.t1_body(ctx);
        ctx.set_timer(self.period, SAMPLE);
    }

    fn on_message(&mut self, msg: LabelsMsg, _ctx: &mut ActionSink<'_, LabelsMsg, SigmaOutput>) {
        let LabelsMsg::Labels(i, labels) = msg;
        for x in labels {
            self.idents.entry(x).or_default().insert(i);
        }
    }

    fn on_timer(&mut self, timer: TimerTag, ctx: &mut ActionSink<'_, LabelsMsg, SigmaOutput>) {
        debug_assert_eq!(timer, SAMPLE);
        self.t1_body(ctx);
        ctx.set_timer(self.period, SAMPLE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::prelude::*;
    use homonym_detectors::oracle::{OracleWorld, PreStability};
    use homonym_sim::prelude::*;

    fn run_fig4(
        n: usize,
        crashes: &[(usize, u64)],
        stabilize: u64,
        horizon: u64,
        seed: u64,
    ) -> (Vec<History<SigmaOutput>>, OracleWorld) {
        let mut sched = FailureSchedule::none(n);
        for &(p, t) in crashes {
            sched.set_crash(p, Time::from_ticks(t));
        }
        let w = OracleWorld::new(
            sched,
            IdentityAssignment::unique(n),
            Time::from_ticks(stabilize),
        );
        let cfg = SimConfig::new(
            w.assign().clone(),
            w.sched().clone(),
            NetworkModel::Asynchronous(LatencyDistribution::Uniform {
                min: Span::from_ticks(1),
                max: Span::from_ticks(4),
            }),
        )
        .with_seed(seed);
        let world = w.clone();
        let mut engine = Engine::new(cfg, move |p, _| {
            HSigmaToSigmaProcess::new(
                world.h_sigma_for(p, PreStability::Truthful),
                world.e_list_for(p, PreStability::Chaotic),
                Span::from_ticks(3),
            )
        });
        engine.run_until(Time::from_ticks(horizon));
        (engine.histories().to_vec(), w)
    }

    #[test]
    fn fig4_output_is_class_sigma_valid() {
        let (hist, w) = run_fig4(4, &[(2, 15)], 30, 200, 1);
        let rep = check_sigma(&hist, w.sched(), w.assign()).expect("Σ class valid");
        assert!(rep.values_checked >= 1);
    }

    #[test]
    fn fig4_converges_to_correct_only_quorum() {
        let (hist, w) = run_fig4(5, &[(0, 10), (1, 20)], 40, 300, 2);
        let i_correct = w.sched().i_correct(w.assign());
        for p in w.sched().correct_set() {
            let last = &hist[p].last().expect("assigned trusted").1;
            assert!(
                last.trusted.is_subset(&i_correct),
                "process {p} still trusts a crashed identifier: {}",
                last.trusted
            );
        }
    }

    #[test]
    fn fig4_many_seeds_stay_valid() {
        for seed in 0..6 {
            let (hist, w) = run_fig4(4, &[(3, 12)], 25, 250, seed);
            check_sigma(&hist, w.sched(), w.assign()).expect("Σ class valid");
        }
    }

    #[test]
    fn candidates_require_label_participation_knowledge() {
        // Until LABELS messages arrive, no candidate passes the idents
        // filter, so nothing is published at start time.
        let (hist, _) = run_fig4(3, &[], 0, 60, 3);
        for h in &hist {
            if let Some((t, _)) = h.first() {
                assert!(
                    *t > Time::ZERO,
                    "trusted assigned before any LABELS arrived"
                );
            }
        }
    }
}
