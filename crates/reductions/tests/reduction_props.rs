//! Property-based tests of the reductions: class validity of the target
//! class must hold for arbitrary worlds and oracle staleness.

use homonym_core::prelude::*;
use homonym_detectors::oracle::{OracleWorld, PreStability};
use homonym_reductions::{
    APToEvtHP, APToHSigmaProcess, ASigmaToHSigma, EvtHPToHOmega, HSigmaToSigmaProcess,
    SigmaToHSigmaProcess,
};
use homonym_sim::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct World {
    n: usize,
    crash_times: Vec<Option<u64>>,
    stabilize: u64,
    lag: u64,
    seed: u64,
}

fn world(max_n: usize) -> impl Strategy<Value = World> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(proptest::option::weighted(0.3, 1u64..40), n),
                0u64..60,
                0u64..8,
                any::<u64>(),
            )
        })
        .prop_map(|(n, crash_times, stabilize, lag, seed)| World {
            n,
            crash_times,
            stabilize,
            lag,
            seed,
        })
        .prop_filter("need one correct process", |w| {
            w.crash_times.iter().any(Option::is_none)
        })
}

fn build(w: &World, assign: IdentityAssignment) -> (FailureSchedule, OracleWorld) {
    let mut sched = FailureSchedule::none(w.n);
    for (p, c) in w.crash_times.iter().enumerate() {
        if let Some(at) = c {
            sched.set_crash(p, Time::from_ticks(*at));
        }
    }
    let ow = OracleWorld::new(sched.clone(), assign, Time::from_ticks(w.stabilize));
    (sched, ow)
}

fn sample_histories<T>(
    sched: &FailureSchedule,
    horizon: u64,
    f: impl Fn(usize, Time) -> T,
) -> Vec<History<T>> {
    (0..sched.n())
        .map(|p| {
            (0..=horizon)
                .map(Time::from_ticks)
                .filter(|&t| sched.is_alive(p, t))
                .map(|t| (t, f(p, t)))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// AP → ◇HP → HΩ (Lemma 2 + Observation 1) is class valid on any
    /// anonymous world.
    #[test]
    fn ap_to_evt_hp_to_h_omega_valid(w in world(7)) {
        let assign = IdentityAssignment::anonymous(w.n);
        let (sched, ow) = build(&w, assign.clone());
        let horizon = w.stabilize + 80;
        let evt = sample_histories(&sched, horizon, |_p, t| {
            APToEvtHP::new(ow.ap(Span::from_ticks(w.lag))).evt_hp(t)
        });
        check_evt_hp(&evt, &sched, &assign)
            .map_err(|e| TestCaseError::fail(format!("{w:?}: {e}")))?;
        let omg = sample_histories(&sched, horizon, |_p, t| {
            EvtHPToHOmega::new(APToEvtHP::new(ow.ap(Span::from_ticks(w.lag)))).h_omega(t)
        });
        check_h_omega(&omg, &sched, &assign)
            .map_err(|e| TestCaseError::fail(format!("{w:?}: {e}")))?;
    }

    /// AΣ → HΣ (Theorem 3) is class valid on any anonymous world, under
    /// any oracle behaviour.
    #[test]
    fn a_sigma_to_h_sigma_valid(w in world(7)) {
        let assign = IdentityAssignment::anonymous(w.n);
        let (sched, ow) = build(&w, assign.clone());
        for pre in [PreStability::Truthful, PreStability::Chaotic] {
            let h = sample_histories(&sched, w.stabilize + 80, |p, t| {
                ASigmaToHSigma::new(ow.a_sigma_for(p, pre)).h_sigma(t)
            });
            check_h_sigma(&h, &sched, &assign)
                .map_err(|e| TestCaseError::fail(format!("{w:?} {pre:?}: {e}")))?;
        }
    }

    /// AP → HΣ (Lemma 3) as a process is class valid and silent.
    #[test]
    fn ap_to_h_sigma_process_valid(w in world(6)) {
        let assign = IdentityAssignment::anonymous(w.n);
        let (sched, ow) = build(&w, assign.clone());
        let cfg = SimConfig::new(assign.clone(), sched.clone(), NetworkModel::reliable(Span::TICK))
            .with_seed(w.seed);
        let lag = w.lag;
        let mut engine = Engine::new(cfg, move |_, _| {
            APToHSigmaProcess::new(ow.ap(Span::from_ticks(lag)), Span::from_ticks(2))
        });
        engine.run_until(Time::from_ticks(w.stabilize + 120));
        prop_assert_eq!(engine.metrics().broadcasts, 0);
        check_h_sigma(engine.histories(), &sched, &assign)
            .map_err(|e| TestCaseError::fail(format!("{w:?}: {e}")))?;
    }

    /// Σ → HΣ (Figures 1-2) is class valid for unique identifiers, with
    /// and without membership knowledge.
    #[test]
    fn sigma_to_h_sigma_valid(w in world(5), known in any::<bool>()) {
        let assign = IdentityAssignment::unique(w.n);
        let (sched, ow) = build(&w, assign.clone());
        let membership = assign.multiset().to_set();
        let cfg = SimConfig::new(
            assign.clone(),
            sched.clone(),
            NetworkModel::Asynchronous(LatencyDistribution::Uniform {
                min: Span::TICK,
                max: Span::from_ticks(4),
            }),
        )
        .with_seed(w.seed);
        let lag = w.lag;
        let mut engine = Engine::new(cfg, move |_, _| {
            let sigma = ow.sigma(Span::from_ticks(lag + 4));
            if known {
                SigmaToHSigmaProcess::with_known_membership(
                    sigma,
                    membership.clone(),
                    Span::from_ticks(3),
                )
            } else {
                SigmaToHSigmaProcess::learning_membership(sigma, Span::from_ticks(3))
            }
        });
        engine.run_until(Time::from_ticks(200));
        if known {
            prop_assert_eq!(engine.metrics().broadcasts, 0);
        }
        check_h_sigma(engine.histories(), &sched, &assign)
            .map_err(|e| TestCaseError::fail(format!("{w:?} known={known}: {e}")))?;
    }

    /// HΣ → Σ (Figure 4) is class valid for unique identifiers.
    #[test]
    fn h_sigma_to_sigma_valid(w in world(5)) {
        let assign = IdentityAssignment::unique(w.n);
        let (sched, ow) = build(&w, assign.clone());
        let cfg = SimConfig::new(
            assign.clone(),
            sched.clone(),
            NetworkModel::Asynchronous(LatencyDistribution::Uniform {
                min: Span::TICK,
                max: Span::from_ticks(4),
            }),
        )
        .with_seed(w.seed);
        let mut engine = Engine::new(cfg, move |p, _| {
            HSigmaToSigmaProcess::new(
                ow.h_sigma_for(p, PreStability::Truthful),
                ow.e_list_for(p, PreStability::Chaotic),
                Span::from_ticks(3),
            )
        });
        engine.run_until(Time::from_ticks(w.stabilize + 220));
        check_sigma(engine.histories(), &sched, &assign)
            .map_err(|e| TestCaseError::fail(format!("{w:?}: {e}")))?;
    }
}
