//! # homonym-obs
//!
//! Zero-cost structured observability for the homonymous-systems
//! workspace: a typed span/event [`Recorder`], a derived metrics
//! registry ([`RunStats`], [`detector_quality`], [`Histogram`],
//! [`VerdictMatrix`]), and renderers that turn a recorded run into
//! ASCII / Mermaid per-process timelines and percentile tables.
//!
//! ## The zero-cost contract
//!
//! Both engines own an `Option<Recorder>`. Algorithms emit events
//! through their sink's `observe` hook, which takes a **closure**: when
//! no recorder is attached the closure is never evaluated and the hook
//! is a single predictable branch — dispatch, RNG draws, traces and
//! metrics stay byte-identical with or without instrumentation. The
//! `obs_props` proptests in the root crate pin this down under active
//! Byzantine scripts, and the `obs_overhead` row in `BENCH_sim.json`
//! prices the attached case.
//!
//! Recorder state snapshots and restores with the engines
//! (`EngineSnapshot` / `SyncSnapshot`), so a forked prefix-sweep run
//! carries the spans of its shared prefix.
//!
//! ## A rendered example
//!
//! A three-process quorum round, recorded and rendered:
//!
//! ```
//! use homonym_core::identity::Identity;
//! use homonym_core::time::Time;
//! use homonym_obs::{render_mermaid_timeline, ObsKind, Recorder};
//!
//! let mut rec = Recorder::new(1024);
//! let t = Time::from_ticks;
//! rec.record(t(0), 0, ObsKind::PhaseEnter { round: 0, phase: "VOTE" });
//! rec.record(t(0), 1, ObsKind::PhaseEnter { round: 0, phase: "VOTE" });
//! rec.record(t(6), 0, ObsKind::CertificateFormed {
//!     round: 0,
//!     phase: "VOTE",
//!     size: 3,
//!     labels: vec![(Identity::new(0), 2), (Identity::new(1), 1)],
//! });
//! rec.record(t(6), 0, ObsKind::PhaseEnter { round: 0, phase: "COMMIT" });
//! rec.record(t(11), 0, ObsKind::Decided { value: 100 });
//! let mermaid = render_mermaid_timeline(&rec, 3, "example");
//! assert_eq!(mermaid, "\
//! gantt
//!     title example
//!     dateFormat X
//!     axisFormat %s
//!     section p0
//!     r0 VOTE : 0, 6
//!     cert r0 VOTE size 3 : milestone, 6, 0
//!     r0 COMMIT : 6, 11
//!     decided 100 : milestone, 11, 0
//!     section p1
//!     r0 VOTE : 0, 11
//! ");
//! ```
//!
//! The same recorder renders as an ASCII story via
//! [`render_ascii_timeline`], and aggregates into time-to-decision /
//! certificate-size distributions via [`RunStats::from_recorder`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod record;
pub mod render;

pub use metrics::{detector_quality, EpochQuality, Histogram, RunStats, VerdictMatrix};
pub use record::{ObsEvent, ObsKind, Recorder};
pub use render::{percentile_table, render_ascii_timeline, render_mermaid_timeline};

/// Everything most callers need, importable as
/// `use homonym_obs::prelude::*`.
pub mod prelude {
    pub use crate::metrics::{detector_quality, EpochQuality, Histogram, RunStats, VerdictMatrix};
    pub use crate::record::{ObsEvent, ObsKind, Recorder};
    pub use crate::render::{percentile_table, render_ascii_timeline, render_mermaid_timeline};
}
