//! The typed span/event recorder: what actually happened inside a run,
//! at protocol granularity.
//!
//! [`TraceEvent`](https://docs.rs/)-style engine traces record *message
//! mechanics* (a copy was delivered, a timer fired). An [`ObsEvent`]
//! records *protocol meaning*: a round's phase was entered, a quorum
//! certificate formed with these member labels, a ledger shed an
//! over-cap copy, a detector epoch changed its trusted bag, an attack
//! clause fired. Algorithms emit them through their engine sink's
//! `observe` hook, which evaluates nothing when no recorder is attached
//! — the zero-cost contract the `obs_props` proptests pin down.

use homonym_core::identity::Identity;
use homonym_core::time::Time;
use homonym_core::wire::{Loader, Persist, Saver, WireError};

/// The protocol-level meaning of one recorded instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsKind {
    /// A process entered `phase` of round `round`.
    PhaseEnter {
        /// The round being entered.
        round: u64,
        /// Static phase name (e.g. `"VOTE"`, `"COMMIT"`).
        phase: &'static str,
    },
    /// A process left `phase` of round `round`.
    PhaseExit {
        /// The round being left.
        round: u64,
        /// Static phase name.
        phase: &'static str,
    },
    /// A quorum certificate formed: `size` admitted copies over the
    /// listed `(label, count)` members.
    CertificateFormed {
        /// The round the certificate belongs to.
        round: u64,
        /// The phase whose window certified (e.g. `"VOTE"`, `"COMMIT"`,
        /// `"DECIDE"`).
        phase: &'static str,
        /// Total admitted copies backing the certificate.
        size: u32,
        /// Per-label occupancy of the certifying window, ascending by
        /// label.
        labels: Vec<(Identity, u32)>,
    },
    /// A value lock was acquired on `value` in `round`.
    LockAcquired {
        /// The locking round.
        round: u64,
        /// The locked value.
        value: u64,
    },
    /// The lock held since some earlier round was released in `round`.
    LockReleased {
        /// The releasing round.
        round: u64,
    },
    /// A window ledger rejected an over-cap copy of class `class`.
    LedgerDiscard {
        /// The round whose window rejected the copy (`DECIDE` ledgers
        /// are cumulative; they report the receiver's current round).
        round: u64,
        /// The message class that was shed.
        class: &'static str,
    },
    /// A detector finished an epoch (one gather round).
    DetectorEpoch {
        /// The detector round that just ended.
        round: u64,
        /// Total multiplicity of the trusted bag after the gather.
        trusted: u32,
        /// Whether the gathered membership differs from the previous
        /// epoch's.
        changed: bool,
    },
    /// The `HΩ` extraction changed its leader.
    LeaderFlip {
        /// The detector round of the flip.
        round: u64,
        /// The new leader label.
        leader: Identity,
        /// The new leader's multiplicity.
        multiplicity: u32,
    },
    /// A Byzantine clause fired on an outgoing copy.
    AttackFired {
        /// Static effect name (`"equivocate"`, `"corrupt"`,
        /// `"suppress"`, `"replay"`).
        kind: &'static str,
        /// The copy's destination process.
        victim: u32,
    },
    /// The adversary (link faults) dropped a copy.
    CopyBlocked {
        /// The copy's source process.
        from: u32,
    },
    /// The process decided `value`.
    Decided {
        /// The decided value.
        value: u64,
    },
}

impl ObsKind {
    /// A short static tag naming the variant (stable across runs, used
    /// by renderers and aggregation).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            ObsKind::PhaseEnter { .. } => "phase-enter",
            ObsKind::PhaseExit { .. } => "phase-exit",
            ObsKind::CertificateFormed { .. } => "certificate",
            ObsKind::LockAcquired { .. } => "lock-acquired",
            ObsKind::LockReleased { .. } => "lock-released",
            ObsKind::LedgerDiscard { .. } => "ledger-discard",
            ObsKind::DetectorEpoch { .. } => "detector-epoch",
            ObsKind::LeaderFlip { .. } => "leader-flip",
            ObsKind::AttackFired { .. } => "attack",
            ObsKind::CopyBlocked { .. } => "copy-blocked",
            ObsKind::Decided { .. } => "decided",
        }
    }
}

impl core::fmt::Display for ObsKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ObsKind::PhaseEnter { round, phase } => write!(f, "enter r{round} {phase}"),
            ObsKind::PhaseExit { round, phase } => write!(f, "exit r{round} {phase}"),
            ObsKind::CertificateFormed {
                round,
                phase,
                size,
                labels,
            } => {
                write!(f, "certificate r{round} {phase} size={size} labels={{")?;
                for (i, (id, c)) in labels.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{id}x{c}")?;
                }
                write!(f, "}}")
            }
            ObsKind::LockAcquired { round, value } => write!(f, "lock r{round} value={value}"),
            ObsKind::LockReleased { round } => write!(f, "unlock r{round}"),
            ObsKind::LedgerDiscard { round, class } => write!(f, "discard r{round} {class}"),
            ObsKind::DetectorEpoch {
                round,
                trusted,
                changed,
            } => {
                let mark = if *changed { " (changed)" } else { "" };
                write!(f, "epoch r{round} trusted={trusted}{mark}")
            }
            ObsKind::LeaderFlip {
                round,
                leader,
                multiplicity,
            } => write!(f, "leader r{round} -> {leader}x{multiplicity}"),
            ObsKind::AttackFired { kind, victim } => write!(f, "attack {kind} -> p{victim}"),
            ObsKind::CopyBlocked { from } => write!(f, "blocked copy from p{from}"),
            ObsKind::Decided { value } => write!(f, "DECIDED {value}"),
        }
    }
}

/// One recorded event: when, at which process, and what it meant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Engine time of the event.
    pub at: Time,
    /// The observing process's index.
    pub process: usize,
    /// The protocol meaning.
    pub kind: ObsKind,
}

impl core::fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} p{} {}", self.at, self.process, self.kind)
    }
}

/// A bounded in-memory recording of a run's [`ObsEvent`]s, in engine
/// dispatch order.
///
/// The engines own an `Option<Recorder>`; when `None`, the `observe`
/// sink hook is a single branch and the closure producing the event is
/// never evaluated — attaching or detaching a recorder provably leaves
/// dispatch byte-identical (see the `obs_props` proptests). The recorder
/// is part of snapshot state, so a forked prefix-sweep run carries the
/// spans of its shared prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recorder {
    events: Vec<ObsEvent>,
    capacity: usize,
    dropped: u64,
}

impl Recorder {
    /// An empty recorder retaining at most `capacity` events (later
    /// events are counted in [`Recorder::dropped`] instead of stored).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Recorder {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event (or counts it as dropped when full).
    pub fn record(&mut self, at: Time, process: usize, kind: ObsKind) {
        if self.events.len() < self.capacity {
            self.events.push(ObsEvent { at, process, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// The retained events, in recording order.
    #[must_use]
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Events that arrived after the capacity was exhausted.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events of one process, in recording order.
    pub fn for_process(&self, process: usize) -> impl Iterator<Item = &ObsEvent> {
        self.events.iter().filter(move |e| e.process == process)
    }
}

impl Default for Recorder {
    /// A recorder with a generous default capacity (1 Mi events).
    fn default() -> Self {
        Recorder::new(1 << 20)
    }
}

impl Persist for ObsKind {
    fn save(&self, s: &mut Saver) {
        match self {
            ObsKind::PhaseEnter { round, phase } => {
                s.u8(0);
                round.save(s);
                phase.save(s);
            }
            ObsKind::PhaseExit { round, phase } => {
                s.u8(1);
                round.save(s);
                phase.save(s);
            }
            ObsKind::CertificateFormed {
                round,
                phase,
                size,
                labels,
            } => {
                s.u8(2);
                round.save(s);
                phase.save(s);
                size.save(s);
                labels.save(s);
            }
            ObsKind::LockAcquired { round, value } => {
                s.u8(3);
                round.save(s);
                value.save(s);
            }
            ObsKind::LockReleased { round } => {
                s.u8(4);
                round.save(s);
            }
            ObsKind::LedgerDiscard { round, class } => {
                s.u8(5);
                round.save(s);
                class.save(s);
            }
            ObsKind::DetectorEpoch {
                round,
                trusted,
                changed,
            } => {
                s.u8(6);
                round.save(s);
                trusted.save(s);
                changed.save(s);
            }
            ObsKind::LeaderFlip {
                round,
                leader,
                multiplicity,
            } => {
                s.u8(7);
                round.save(s);
                leader.save(s);
                multiplicity.save(s);
            }
            ObsKind::AttackFired { kind, victim } => {
                s.u8(8);
                kind.save(s);
                victim.save(s);
            }
            ObsKind::CopyBlocked { from } => {
                s.u8(9);
                from.save(s);
            }
            ObsKind::Decided { value } => {
                s.u8(10);
                value.save(s);
            }
        }
    }

    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(match l.u8()? {
            0 => ObsKind::PhaseEnter {
                round: Persist::load(l)?,
                phase: Persist::load(l)?,
            },
            1 => ObsKind::PhaseExit {
                round: Persist::load(l)?,
                phase: Persist::load(l)?,
            },
            2 => ObsKind::CertificateFormed {
                round: Persist::load(l)?,
                phase: Persist::load(l)?,
                size: Persist::load(l)?,
                labels: Persist::load(l)?,
            },
            3 => ObsKind::LockAcquired {
                round: Persist::load(l)?,
                value: Persist::load(l)?,
            },
            4 => ObsKind::LockReleased {
                round: Persist::load(l)?,
            },
            5 => ObsKind::LedgerDiscard {
                round: Persist::load(l)?,
                class: Persist::load(l)?,
            },
            6 => ObsKind::DetectorEpoch {
                round: Persist::load(l)?,
                trusted: Persist::load(l)?,
                changed: Persist::load(l)?,
            },
            7 => ObsKind::LeaderFlip {
                round: Persist::load(l)?,
                leader: Persist::load(l)?,
                multiplicity: Persist::load(l)?,
            },
            8 => ObsKind::AttackFired {
                kind: Persist::load(l)?,
                victim: Persist::load(l)?,
            },
            9 => ObsKind::CopyBlocked {
                from: Persist::load(l)?,
            },
            10 => ObsKind::Decided {
                value: Persist::load(l)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "ObsKind",
                    tag,
                })
            }
        })
    }
}

homonym_core::persist_fields!(ObsEvent { at, process, kind });
homonym_core::persist_fields!(Recorder {
    events,
    capacity,
    dropped
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_drops_and_counts() {
        let mut r = Recorder::new(2);
        for i in 0..4 {
            r.record(Time::from_ticks(i), 0, ObsKind::Decided { value: i });
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn per_process_filter() {
        let mut r = Recorder::new(16);
        r.record(Time::ZERO, 0, ObsKind::LockReleased { round: 1 });
        r.record(Time::ZERO, 1, ObsKind::LockReleased { round: 2 });
        r.record(Time::ZERO, 0, ObsKind::Decided { value: 7 });
        assert_eq!(r.for_process(0).count(), 2);
        assert_eq!(r.for_process(1).count(), 1);
    }

    #[test]
    fn display_is_compact() {
        let e = ObsEvent {
            at: Time::from_ticks(3),
            process: 2,
            kind: ObsKind::CertificateFormed {
                round: 1,
                phase: "VOTE",
                size: 6,
                labels: vec![(Identity::new(0), 3), (Identity::new(1), 3)],
            },
        };
        let s = e.to_string();
        assert!(s.contains("p2"), "{s}");
        assert!(s.contains("certificate r1 VOTE size=6"), "{s}");
    }
}
