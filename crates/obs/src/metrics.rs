//! The metrics registry: counters and histograms aggregated per run and
//! per sweep from a [`Recorder`]'s event stream.
//!
//! Everything here is *derived* — the recorder stays a flat, cheap event
//! log during the run, and aggregation happens once at report time, so
//! the hot path never touches a histogram.

use std::collections::BTreeMap;

use crate::record::{ObsKind, Recorder};

/// A sample-retaining histogram of `u64` observations.
///
/// Samples are kept raw (runs record at most a few thousand) and sorted
/// at query time, so percentiles are exact rather than bucketed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn add(&mut self, sample: u64) {
        self.samples.push(sample);
    }

    /// Absorbs every sample of `other`.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest sample (`0` when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Largest sample (`0` when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Arithmetic mean (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// The exact `p`-th percentile (nearest-rank; `p` clamped to
    /// `0..=100`; `0` when empty).
    #[must_use]
    pub fn percentile(&self, p: u8) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let p = usize::from(p.min(100));
        // Nearest-rank: ceil(p/100 * N) clamped to [1, N], as an index.
        let rank = (p * sorted.len()).div_ceil(100).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// Per-run aggregation of a recorded event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Tick of each process's `Decided` event.
    pub time_to_decision: Histogram,
    /// Highest round each deciding process had entered at decision time.
    pub rounds_to_decide: Histogram,
    /// Sizes of every formed certificate.
    pub certificate_sizes: Histogram,
    /// Lock acquisitions observed.
    pub locks_acquired: u64,
    /// Lock releases observed.
    pub locks_released: u64,
    /// Window-ledger discards observed.
    pub ledger_discards: u64,
    /// Byzantine attack firings observed.
    pub attacks_fired: u64,
    /// Adversary-blocked copies observed.
    pub copies_blocked: u64,
    /// `HΩ` leader flips observed.
    pub leader_flips: u64,
    /// Processes that decided.
    pub decided: usize,
}

impl RunStats {
    /// Aggregates one recorded run.
    #[must_use]
    pub fn from_recorder(rec: &Recorder) -> Self {
        let mut stats = RunStats::default();
        // Highest entered round per process, read off phase entries.
        let mut round_high: BTreeMap<usize, u64> = BTreeMap::new();
        let mut seen_decided: BTreeMap<usize, ()> = BTreeMap::new();
        for e in rec.events() {
            match &e.kind {
                ObsKind::PhaseEnter { round, .. } => {
                    let r = round_high.entry(e.process).or_insert(*round);
                    *r = (*r).max(*round);
                }
                ObsKind::CertificateFormed { size, .. } => {
                    stats.certificate_sizes.add(u64::from(*size));
                }
                ObsKind::LockAcquired { .. } => stats.locks_acquired += 1,
                ObsKind::LockReleased { .. } => stats.locks_released += 1,
                ObsKind::LedgerDiscard { .. } => stats.ledger_discards += 1,
                ObsKind::AttackFired { .. } => stats.attacks_fired += 1,
                ObsKind::CopyBlocked { .. } => stats.copies_blocked += 1,
                ObsKind::LeaderFlip { .. } => stats.leader_flips += 1,
                ObsKind::Decided { .. } => {
                    if seen_decided.insert(e.process, ()).is_none() {
                        stats.time_to_decision.add(e.at.ticks());
                        stats
                            .rounds_to_decide
                            .add(round_high.get(&e.process).copied().unwrap_or(0));
                    }
                }
                ObsKind::PhaseExit { .. } | ObsKind::DetectorEpoch { .. } => {}
            }
        }
        stats.decided = seen_decided.len();
        stats
    }

    /// Absorbs another run's stats (for sweep-level aggregation).
    pub fn merge(&mut self, other: &RunStats) {
        self.time_to_decision.merge(&other.time_to_decision);
        self.rounds_to_decide.merge(&other.rounds_to_decide);
        self.certificate_sizes.merge(&other.certificate_sizes);
        self.locks_acquired += other.locks_acquired;
        self.locks_released += other.locks_released;
        self.ledger_discards += other.ledger_discards;
        self.attacks_fired += other.attacks_fired;
        self.copies_blocked += other.copies_blocked;
        self.leader_flips += other.leader_flips;
        self.decided += other.decided;
    }
}

/// One detector epoch's quality aggregate across all processes (see
/// [`detector_quality`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochQuality {
    /// The detector round.
    pub round: u64,
    /// `DetectorEpoch` samples gathered for this round.
    pub samples: usize,
    /// Mean trusted-bag multiplicity across samples.
    pub mean_trusted: f64,
    /// Samples whose trusted bag was still **larger** than the correct
    /// population — completeness not yet reached (a crashed process's
    /// identity still trusted).
    pub incomplete: usize,
    /// Samples whose trusted bag was **smaller** than the correct
    /// population — accuracy violated (a correct identity suspected).
    pub inaccurate: usize,
    /// Leader flips observed in this round.
    pub flips: usize,
}

/// Aggregates a recorded run's `DetectorEpoch`/`LeaderFlip` events into
/// per-epoch quality rows against the known correct population size —
/// the paper's `◇HP` completeness ("eventually only correct identities")
/// and accuracy ("eventually all correct identities") read as curves
/// over time.
#[must_use]
pub fn detector_quality(rec: &Recorder, correct: usize) -> Vec<EpochQuality> {
    let correct = correct as u64;
    let mut rows: BTreeMap<u64, EpochQuality> = BTreeMap::new();
    for e in rec.events() {
        match &e.kind {
            ObsKind::DetectorEpoch { round, trusted, .. } => {
                let row = rows.entry(*round).or_insert_with(|| EpochQuality {
                    round: *round,
                    samples: 0,
                    mean_trusted: 0.0,
                    incomplete: 0,
                    inaccurate: 0,
                    flips: 0,
                });
                row.samples += 1;
                // Accumulate the sum here; normalized to a mean below.
                row.mean_trusted += f64::from(*trusted);
                if u64::from(*trusted) > correct {
                    row.incomplete += 1;
                }
                if u64::from(*trusted) < correct {
                    row.inaccurate += 1;
                }
            }
            ObsKind::LeaderFlip { round, .. } => {
                let row = rows.entry(*round).or_insert_with(|| EpochQuality {
                    round: *round,
                    samples: 0,
                    mean_trusted: 0.0,
                    incomplete: 0,
                    inaccurate: 0,
                    flips: 0,
                });
                row.flips += 1;
            }
            _ => {}
        }
    }
    let mut out: Vec<EpochQuality> = rows.into_values().collect();
    for row in &mut out {
        if row.samples > 0 {
            row.mean_trusted /= row.samples as f64;
        }
    }
    out
}

/// A named-rows × named-columns counting matrix (family × verdict in the
/// chaos sweeps), rendered as a markdown table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerdictMatrix {
    cols: Vec<String>,
    rows: Vec<(String, Vec<u64>)>,
}

impl VerdictMatrix {
    /// A matrix with the given column headers and no rows yet.
    #[must_use]
    pub fn new(cols: Vec<String>) -> Self {
        VerdictMatrix {
            cols,
            rows: Vec::new(),
        }
    }

    /// Increments `(row, col)` by `by`, creating the row on first use.
    ///
    /// # Panics
    ///
    /// Panics if `col` names no configured column.
    pub fn add(&mut self, row: &str, col: &str, by: u64) {
        let c = self
            .cols
            .iter()
            .position(|x| x == col)
            .unwrap_or_else(|| panic!("unknown verdict column {col:?}"));
        let cells = match self.rows.iter_mut().find(|(name, _)| name == row) {
            Some((_, cells)) => cells,
            None => {
                self.rows.push((row.to_string(), vec![0; self.cols.len()]));
                &mut self.rows.last_mut().expect("just pushed").1
            }
        };
        cells[c] += by;
    }

    /// Renders the matrix as a markdown table (row order = insertion
    /// order).
    #[must_use]
    pub fn render_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("| |");
        for c in &self.cols {
            let _ = write!(out, " {c} |");
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.cols {
            out.push_str("---|");
        }
        out.push('\n');
        for (name, cells) in &self.rows {
            let _ = write!(out, "| {name} |");
            for v in cells {
                let _ = write!(out, " {v} |");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::identity::Identity;
    use homonym_core::time::Time;

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.add(v);
        }
        assert_eq!(h.percentile(0), 1);
        assert_eq!(h.percentile(50), 50);
        assert_eq!(h.percentile(99), 99);
        assert_eq!(h.percentile(100), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn run_stats_aggregate_the_stream() {
        let mut rec = Recorder::new(64);
        rec.record(
            Time::from_ticks(1),
            0,
            ObsKind::PhaseEnter {
                round: 0,
                phase: "VOTE",
            },
        );
        rec.record(
            Time::from_ticks(4),
            0,
            ObsKind::PhaseEnter {
                round: 3,
                phase: "VOTE",
            },
        );
        rec.record(
            Time::from_ticks(5),
            0,
            ObsKind::CertificateFormed {
                round: 3,
                phase: "VOTE",
                size: 6,
                labels: vec![(Identity::new(0), 6)],
            },
        );
        rec.record(Time::from_ticks(6), 0, ObsKind::Decided { value: 100 });
        // A duplicate decide event must not double-count.
        rec.record(Time::from_ticks(7), 0, ObsKind::Decided { value: 100 });
        let stats = RunStats::from_recorder(&rec);
        assert_eq!(stats.decided, 1);
        assert_eq!(stats.time_to_decision.count(), 1);
        assert_eq!(stats.time_to_decision.max(), 6);
        assert_eq!(stats.rounds_to_decide.max(), 3);
        assert_eq!(stats.certificate_sizes.percentile(50), 6);
    }

    #[test]
    fn detector_quality_flags_both_directions() {
        let mut rec = Recorder::new(64);
        for (round, trusted) in [(1, 8), (2, 6), (3, 4)] {
            rec.record(
                Time::from_ticks(round),
                0,
                ObsKind::DetectorEpoch {
                    round,
                    trusted,
                    changed: true,
                },
            );
        }
        rec.record(
            Time::from_ticks(3),
            0,
            ObsKind::LeaderFlip {
                round: 3,
                leader: Identity::new(1),
                multiplicity: 2,
            },
        );
        let q = detector_quality(&rec, 6);
        assert_eq!(q.len(), 3);
        assert_eq!(q[0].incomplete, 1);
        assert_eq!(q[1].incomplete + q[1].inaccurate, 0);
        assert_eq!(q[2].inaccurate, 1);
        assert_eq!(q[2].flips, 1);
    }

    #[test]
    fn verdict_matrix_renders_markdown() {
        let mut m = VerdictMatrix::new(vec!["pass".into(), "fail".into()]);
        m.add("split-brain", "pass", 3);
        m.add("split-brain", "fail", 1);
        m.add("flapping", "pass", 2);
        let md = m.render_markdown();
        assert!(md.contains("| split-brain | 3 | 1 |"), "{md}");
        assert!(md.contains("| flapping | 2 | 0 |"), "{md}");
    }
}
