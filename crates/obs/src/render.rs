//! Renderers: a recorded run as ASCII / Mermaid per-process timelines,
//! and histograms as markdown percentile tables.
//!
//! Renderers are pure functions of recorded data — nothing here touches
//! an engine or a clock, so the same recorder renders identically
//! wherever it was captured (a live run, a snapshot-forked replay, a
//! counterexample story).

use std::fmt::Write as _;

use crate::metrics::Histogram;
use crate::record::{ObsEvent, ObsKind, Recorder};

/// Per-process cap on rendered lines/spans; deeper histories are
/// summarized as a trailing elision so a million-round run still renders
/// a readable page.
const MAX_PER_PROCESS: usize = 64;

/// Renders the recorded run as a per-process ASCII timeline: one block
/// per process, one line per event, in time order.
#[must_use]
pub fn render_ascii_timeline(rec: &Recorder, n: usize) -> String {
    let mut out = String::new();
    for p in 0..n {
        let events: Vec<&ObsEvent> = rec.for_process(p).collect();
        let _ = writeln!(out, "p{p} ({} events)", events.len());
        for e in events.iter().take(MAX_PER_PROCESS) {
            let _ = writeln!(out, "  t={:<8} {}", e.at.ticks(), e.kind);
        }
        if events.len() > MAX_PER_PROCESS {
            let _ = writeln!(out, "  ... {} more", events.len() - MAX_PER_PROCESS);
        }
    }
    if rec.dropped() > 0 {
        let _ = writeln!(out, "({} events dropped at capacity)", rec.dropped());
    }
    out
}

/// Escapes characters Mermaid gantt task names cannot carry.
fn mermaid_safe(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            ':' | ',' | '#' | ';' => ' ',
            _ => c,
        })
        .collect()
}

/// Renders the recorded run as a Mermaid gantt chart: one section per
/// process, phase spans as tasks, certificates / decisions / leader
/// flips / attack firings as milestones.
///
/// Paste the output into any Mermaid renderer; `dateFormat X` makes the
/// axis raw engine ticks.
#[must_use]
pub fn render_mermaid_timeline(rec: &Recorder, n: usize, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "gantt");
    let _ = writeln!(out, "    title {}", mermaid_safe(title));
    let _ = writeln!(out, "    dateFormat X");
    let _ = writeln!(out, "    axisFormat %s");
    let end = rec.events().iter().map(|e| e.at.ticks()).max().unwrap_or(0);
    for p in 0..n {
        let events: Vec<&ObsEvent> = rec.for_process(p).collect();
        if events.is_empty() {
            continue;
        }
        let _ = writeln!(out, "    section p{p}");
        // Phase spans: each entry closes at the matching exit, the next
        // entry, or the run's end.
        let mut spans = 0usize;
        let mut milestones = 0usize;
        for (i, e) in events.iter().enumerate() {
            match &e.kind {
                ObsKind::PhaseEnter { round, phase } => {
                    if spans >= MAX_PER_PROCESS {
                        continue;
                    }
                    let close = events[i + 1..]
                        .iter()
                        .find_map(|later| match &later.kind {
                            ObsKind::PhaseExit {
                                round: r2,
                                phase: ph2,
                            } if r2 == round && ph2 == phase => Some(later.at.ticks()),
                            ObsKind::PhaseEnter { .. } => Some(later.at.ticks()),
                            _ => None,
                        })
                        .unwrap_or(end)
                        .max(e.at.ticks() + 1);
                    let _ = writeln!(out, "    r{round} {phase} : {}, {close}", e.at.ticks());
                    spans += 1;
                }
                ObsKind::CertificateFormed {
                    round, phase, size, ..
                } if milestones < MAX_PER_PROCESS => {
                    let _ = writeln!(
                        out,
                        "    cert r{round} {phase} size {size} : milestone, {}, 0",
                        e.at.ticks()
                    );
                    milestones += 1;
                }
                ObsKind::Decided { value } => {
                    let _ = writeln!(out, "    decided {value} : milestone, {}, 0", e.at.ticks());
                }
                ObsKind::LeaderFlip { leader, .. } if milestones < MAX_PER_PROCESS => {
                    let _ = writeln!(
                        out,
                        "    leader {} : milestone, {}, 0",
                        mermaid_safe(&leader.to_string()),
                        e.at.ticks()
                    );
                    milestones += 1;
                }
                ObsKind::AttackFired { kind, victim } if milestones < MAX_PER_PROCESS => {
                    let _ = writeln!(
                        out,
                        "    attack {kind} on p{victim} : milestone, {}, 0",
                        e.at.ticks()
                    );
                    milestones += 1;
                }
                _ => {}
            }
        }
    }
    out
}

/// Renders named histograms as one markdown percentile table.
#[must_use]
pub fn percentile_table(entries: &[(&str, &Histogram)]) -> String {
    let mut out = String::new();
    out.push_str("| metric | count | min | p50 | p90 | p99 | max | mean |\n");
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for (name, h) in entries {
        let _ = writeln!(
            out,
            "| {name} | {} | {} | {} | {} | {} | {} | {:.1} |",
            h.count(),
            h.min(),
            h.percentile(50),
            h.percentile(90),
            h.percentile(99),
            h.max(),
            h.mean()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::identity::Identity;
    use homonym_core::time::Time;

    fn sample_recorder() -> Recorder {
        let mut rec = Recorder::new(64);
        rec.record(
            Time::from_ticks(0),
            0,
            ObsKind::PhaseEnter {
                round: 0,
                phase: "VOTE",
            },
        );
        rec.record(
            Time::from_ticks(4),
            0,
            ObsKind::PhaseExit {
                round: 0,
                phase: "VOTE",
            },
        );
        rec.record(
            Time::from_ticks(4),
            0,
            ObsKind::CertificateFormed {
                round: 0,
                phase: "VOTE",
                size: 6,
                labels: vec![(Identity::new(0), 3), (Identity::new(1), 3)],
            },
        );
        rec.record(
            Time::from_ticks(5),
            1,
            ObsKind::AttackFired {
                kind: "equivocate",
                victim: 0,
            },
        );
        rec.record(Time::from_ticks(9), 0, ObsKind::Decided { value: 101 });
        rec
    }

    #[test]
    fn ascii_timeline_lists_every_process_block() {
        let s = render_ascii_timeline(&sample_recorder(), 2);
        assert!(s.contains("p0 (4 events)"), "{s}");
        assert!(s.contains("certificate r0 VOTE size=6"), "{s}");
        assert!(s.contains("attack equivocate -> p0"), "{s}");
    }

    #[test]
    fn mermaid_timeline_is_a_gantt_with_spans_and_milestones() {
        let s = render_mermaid_timeline(&sample_recorder(), 2, "test run");
        assert!(s.starts_with("gantt\n"), "{s}");
        assert!(s.contains("section p0"), "{s}");
        assert!(s.contains("r0 VOTE : 0, 4"), "{s}");
        assert!(s.contains("cert r0 VOTE size 6 : milestone, 4, 0"), "{s}");
        assert!(s.contains("decided 101 : milestone, 9, 0"), "{s}");
        assert!(s.contains("attack equivocate on p0"), "{s}");
    }

    #[test]
    fn percentile_table_has_a_row_per_histogram() {
        let mut h = Histogram::new();
        for v in [2, 4, 6] {
            h.add(v);
        }
        let t = percentile_table(&[("rounds", &h)]);
        assert!(t.contains("| rounds | 3 | 2 | 4 |"), "{t}");
    }
}
