//! A counted multiset (bag), the paper's `I(S)` machinery.
//!
//! Homonymous failure detectors output **multisets** of identifiers instead
//! of sets: the multiset `I(S) = {id(p) : p ∈ S}` of a process subset `S`
//! may contain the same identity several times, and `|I(S)| = |S|` always
//! holds. [`Multiset`] implements the bag algebra the algorithms and the
//! property checkers need: multiplicity queries, inclusion, union (max),
//! intersection (min), sum, and saturating difference.

use core::cmp::Ordering;
use core::fmt;
use std::collections::BTreeMap;

/// An ordered multiset with per-element multiplicities.
///
/// # Examples
///
/// ```
/// use homonym_core::multiset::Multiset;
///
/// let m: Multiset<char> = ['a', 'a', 'b'].into_iter().collect();
/// assert_eq!(m.len(), 3);
/// assert_eq!(m.multiplicity(&'a'), 2);
/// assert!(m.is_subset(&['a', 'a', 'b', 'c'].into_iter().collect()));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Multiset<T: Ord> {
    counts: BTreeMap<T, usize>,
    len: usize,
}

impl<T: Ord> Multiset<T> {
    /// Creates an empty multiset.
    #[must_use]
    pub fn new() -> Self {
        Multiset {
            counts: BTreeMap::new(),
            len: 0,
        }
    }

    /// Total number of elements, counted with multiplicity (`|I(S)| = |S|`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the multiset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of *distinct* elements.
    #[must_use]
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Multiplicity `mult_I(x)` of an element (0 if absent).
    #[must_use]
    pub fn multiplicity(&self, x: &T) -> usize {
        self.counts.get(x).copied().unwrap_or(0)
    }

    /// Whether the element occurs at least once.
    #[must_use]
    pub fn contains(&self, x: &T) -> bool {
        self.counts.contains_key(x)
    }

    /// Inserts one occurrence of `x`.
    pub fn insert(&mut self, x: T) {
        self.insert_n(x, 1);
    }

    /// Inserts `n` occurrences of `x` (no-op when `n == 0`).
    pub fn insert_n(&mut self, x: T, n: usize) {
        if n == 0 {
            return;
        }
        *self.counts.entry(x).or_insert(0) += n;
        self.len += n;
    }

    /// Removes one occurrence of `x`; returns whether one was present.
    pub fn remove(&mut self, x: &T) -> bool {
        match self.counts.get_mut(x) {
            Some(c) if *c > 1 => {
                *c -= 1;
                self.len -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(x);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Removes all occurrences of `x`; returns how many were removed.
    pub fn remove_all(&mut self, x: &T) -> usize {
        match self.counts.remove(x) {
            Some(c) => {
                self.len -= c;
                c
            }
            None => 0,
        }
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.len = 0;
    }

    /// Iterator over `(element, multiplicity)` pairs in element order.
    pub fn counted(&self) -> impl Iterator<Item = (&T, usize)> + '_ {
        self.counts.iter().map(|(x, &c)| (x, c))
    }

    /// Iterator over elements expanded by multiplicity, in element order.
    ///
    /// ```
    /// use homonym_core::multiset::Multiset;
    /// let m: Multiset<u8> = [2, 1, 2].into_iter().collect();
    /// assert_eq!(m.iter().copied().collect::<Vec<_>>(), vec![1, 2, 2]);
    /// ```
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.counts
            .iter()
            .flat_map(|(x, &c)| core::iter::repeat_n(x, c))
    }

    /// Iterator over the distinct elements (the *support*).
    pub fn support(&self) -> impl Iterator<Item = &T> + '_ {
        self.counts.keys()
    }

    /// The smallest element, if any (used by `HΩ` extraction).
    ///
    /// Named `min_elem` to avoid colliding with [`Ord::min`], which method
    /// resolution would otherwise prefer.
    #[must_use]
    pub fn min_elem(&self) -> Option<&T> {
        self.counts.keys().next()
    }

    /// The largest element, if any.
    #[must_use]
    pub fn max_elem(&self) -> Option<&T> {
        self.counts.keys().next_back()
    }

    /// Sub-multiset test: every multiplicity in `self` is `<=` the one in
    /// `other` (the paper's `m ⊆ m'` over bags).
    #[must_use]
    pub fn is_subset(&self, other: &Multiset<T>) -> bool {
        if self.len > other.len {
            return false;
        }
        self.counts
            .iter()
            .all(|(x, &c)| other.multiplicity(x) >= c)
    }

    /// Super-multiset test (`other ⊆ self`).
    #[must_use]
    pub fn is_superset(&self, other: &Multiset<T>) -> bool {
        other.is_subset(self)
    }

    /// Whether the supports are disjoint (no common element at all).
    #[must_use]
    pub fn is_disjoint(&self, other: &Multiset<T>) -> bool {
        // Walk the smaller support, probe the larger.
        let (small, large) = if self.distinct_len() <= other.distinct_len() {
            (self, other)
        } else {
            (other, self)
        };
        !small.support().any(|x| large.contains(x))
    }
}

impl<T: Ord + Clone> Multiset<T> {
    /// Multiset union: per-element **maximum** of multiplicities.
    #[must_use]
    pub fn union(&self, other: &Multiset<T>) -> Multiset<T> {
        let mut out = self.clone();
        for (x, c) in other.counted() {
            let mine = out.multiplicity(x);
            if c > mine {
                out.insert_n(x.clone(), c - mine);
            }
        }
        out
    }

    /// Multiset intersection: per-element **minimum** of multiplicities.
    #[must_use]
    pub fn intersection(&self, other: &Multiset<T>) -> Multiset<T> {
        let mut out = Multiset::new();
        for (x, c) in self.counted() {
            let m = c.min(other.multiplicity(x));
            if m > 0 {
                out.insert_n(x.clone(), m);
            }
        }
        out
    }

    /// Multiset sum: per-element **addition** of multiplicities
    /// (`|a ⊎ b| = |a| + |b|`).
    #[must_use]
    pub fn sum(&self, other: &Multiset<T>) -> Multiset<T> {
        let mut out = self.clone();
        for (x, c) in other.counted() {
            out.insert_n(x.clone(), c);
        }
        out
    }

    /// Saturating multiset difference: per-element subtraction clamped at 0.
    #[must_use]
    pub fn difference(&self, other: &Multiset<T>) -> Multiset<T> {
        let mut out = Multiset::new();
        for (x, c) in self.counted() {
            let d = c.saturating_sub(other.multiplicity(x));
            if d > 0 {
                out.insert_n(x.clone(), d);
            }
        }
        out
    }

    /// Converts to the underlying set (support), dropping multiplicities.
    #[must_use]
    pub fn to_set(&self) -> std::collections::BTreeSet<T> {
        self.support().cloned().collect()
    }
}

impl<T: Ord> Default for Multiset<T> {
    fn default() -> Self {
        Multiset::new()
    }
}

impl<T: Ord> FromIterator<T> for Multiset<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut m = Multiset::new();
        for x in iter {
            m.insert(x);
        }
        m
    }
}

impl<T: Ord> FromIterator<(T, usize)> for Multiset<T> {
    fn from_iter<I: IntoIterator<Item = (T, usize)>>(iter: I) -> Self {
        let mut m = Multiset::new();
        for (x, c) in iter {
            m.insert_n(x, c);
        }
        m
    }
}

impl<T: Ord> Extend<T> for Multiset<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.insert(x);
        }
    }
}

impl<T: Ord> IntoIterator for Multiset<T> {
    type Item = (T, usize);
    type IntoIter = std::collections::btree_map::IntoIter<T, usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.counts.into_iter()
    }
}

impl<T: Ord + Clone> From<&[T]> for Multiset<T> {
    fn from(slice: &[T]) -> Self {
        slice.iter().cloned().collect()
    }
}

impl<T: Ord, const N: usize> From<[T; N]> for Multiset<T> {
    fn from(arr: [T; N]) -> Self {
        arr.into_iter().collect()
    }
}

/// Multisets are ordered lexicographically over their expanded element
/// sequence, which gives a deterministic total order for use as map keys
/// (e.g. Figure 7 uses the received multiset itself as a quorum label).
impl<T: Ord> PartialOrd for Multiset<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Multiset<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.counts.iter().cmp(other.counts.iter())
    }
}

impl<T: Ord + fmt::Debug> fmt::Debug for Multiset<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (x, c) in self.counted() {
            for _ in 0..c {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{x:?}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

impl<T: Ord + fmt::Display> fmt::Display for Multiset<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (x, c) in self.counted() {
            for _ in 0..c {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{x}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(items: &[u32]) -> Multiset<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn len_counts_multiplicity() {
        let m = ms(&[1, 1, 2, 3, 3, 3]);
        assert_eq!(m.len(), 6);
        assert_eq!(m.distinct_len(), 3);
        assert_eq!(m.multiplicity(&3), 3);
        assert_eq!(m.multiplicity(&9), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut m = Multiset::new();
        m.insert_n('x', 2);
        assert!(m.remove(&'x'));
        assert_eq!(m.multiplicity(&'x'), 1);
        assert!(m.remove(&'x'));
        assert!(!m.remove(&'x'));
        assert!(m.is_empty());
    }

    #[test]
    fn remove_all_drains_one_key() {
        let mut m = ms(&[5, 5, 5, 7]);
        assert_eq!(m.remove_all(&5), 3);
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove_all(&5), 0);
    }

    #[test]
    fn subset_respects_multiplicity() {
        assert!(ms(&[1, 1]).is_subset(&ms(&[1, 1, 2])));
        assert!(!ms(&[1, 1, 1]).is_subset(&ms(&[1, 1, 2])));
        assert!(ms(&[]).is_subset(&ms(&[])));
    }

    #[test]
    fn union_takes_max() {
        let u = ms(&[1, 1, 2]).union(&ms(&[1, 2, 2, 3]));
        assert_eq!(u, ms(&[1, 1, 2, 2, 3]));
    }

    #[test]
    fn intersection_takes_min() {
        let i = ms(&[1, 1, 2]).intersection(&ms(&[1, 2, 2, 3]));
        assert_eq!(i, ms(&[1, 2]));
    }

    #[test]
    fn sum_adds() {
        let s = ms(&[1, 2]).sum(&ms(&[1, 3]));
        assert_eq!(s, ms(&[1, 1, 2, 3]));
    }

    #[test]
    fn difference_saturates() {
        let d = ms(&[1, 1, 2]).difference(&ms(&[1, 2, 2]));
        assert_eq!(d, ms(&[1]));
    }

    #[test]
    fn disjointness_is_support_level() {
        assert!(ms(&[1, 1]).is_disjoint(&ms(&[2, 3])));
        assert!(!ms(&[1, 1]).is_disjoint(&ms(&[1])));
        assert!(ms(&[]).is_disjoint(&ms(&[])));
    }

    #[test]
    fn iter_expands_in_order() {
        let m = ms(&[3, 1, 3]);
        assert_eq!(m.iter().copied().collect::<Vec<_>>(), vec![1, 3, 3]);
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let a = ms(&[1, 2]);
        let b = ms(&[1, 1, 2]);
        assert_ne!(a.cmp(&b), Ordering::Equal);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_shows_repeats() {
        assert_eq!(ms(&[2, 1, 2]).to_string(), "{1, 2, 2}");
    }

    #[test]
    fn min_max() {
        let m = ms(&[4, 2, 9]);
        assert_eq!(m.min_elem(), Some(&2));
        assert_eq!(m.max_elem(), Some(&9));
        assert_eq!(Multiset::<u32>::new().min_elem(), None);
    }

    #[test]
    fn from_array_and_counted_pairs() {
        let a = Multiset::from([1, 1, 2]);
        let b: Multiset<u32> = [(1u32, 2usize), (2, 1)].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn to_set_drops_multiplicity() {
        let s = ms(&[1, 1, 2]).to_set();
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
