//! A counted multiset (bag), the paper's `I(S)` machinery.
//!
//! Homonymous failure detectors output **multisets** of identifiers instead
//! of sets: the multiset `I(S) = {id(p) : p ∈ S}` of a process subset `S`
//! may contain the same identity several times, and `|I(S)| = |S|` always
//! holds. [`Multiset`] implements the bag algebra the algorithms and the
//! property checkers need: multiplicity queries, inclusion, union (max),
//! intersection (min), sum, and saturating difference.
//!
//! # Representation
//!
//! Detector outputs live on the simulator's hot path and almost always
//! range over a *small* identifier universe (the paper's homonymy degree
//! `ℓ` is tiny compared to `n`). The bag therefore keeps up to
//! [`INLINE_DISTINCT`] distinct elements in a sorted inline vector —
//! binary-searched, cache-friendly, one allocation — and only spills to a
//! `BTreeMap` beyond that. The representation is invisible to callers:
//! equality, ordering and hashing are defined over the *content* (the
//! ordered `(element, multiplicity)` pairs), so an inline bag and a
//! spilled bag with the same content compare and hash identically.

use core::cmp::Ordering;
use core::fmt;
use core::hash::{Hash, Hasher};
use std::collections::BTreeMap;

/// Distinct-element capacity of the inline representation; beyond this
/// the bag spills to a `BTreeMap` (and never converts back, which is
/// fine because comparisons are content-based).
pub const INLINE_DISTINCT: usize = 16;

#[derive(Clone)]
enum Repr<T: Ord> {
    /// Sorted by element, no zero multiplicities, at most
    /// [`INLINE_DISTINCT`] entries.
    Inline(Vec<(T, usize)>),
    /// Arbitrary distinct count, no zero multiplicities.
    Spilled(BTreeMap<T, usize>),
}

/// An ordered multiset with per-element multiplicities.
///
/// # Examples
///
/// ```
/// use homonym_core::multiset::Multiset;
///
/// let m: Multiset<char> = ['a', 'a', 'b'].into_iter().collect();
/// assert_eq!(m.len(), 3);
/// assert_eq!(m.multiplicity(&'a'), 2);
/// assert!(m.is_subset(&['a', 'a', 'b', 'c'].into_iter().collect()));
/// ```
#[derive(Clone)]
pub struct Multiset<T: Ord> {
    repr: Repr<T>,
    len: usize,
}

impl<T: Ord> Multiset<T> {
    /// Creates an empty multiset.
    #[must_use]
    pub fn new() -> Self {
        Multiset {
            repr: Repr::Inline(Vec::new()),
            len: 0,
        }
    }

    /// Total number of elements, counted with multiplicity (`|I(S)| = |S|`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the multiset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of *distinct* elements.
    #[must_use]
    pub fn distinct_len(&self) -> usize {
        match &self.repr {
            Repr::Inline(v) => v.len(),
            Repr::Spilled(m) => m.len(),
        }
    }

    /// Multiplicity `mult_I(x)` of an element (0 if absent).
    #[must_use]
    pub fn multiplicity(&self, x: &T) -> usize {
        match &self.repr {
            Repr::Inline(v) => v.binary_search_by(|(e, _)| e.cmp(x)).map_or(0, |i| v[i].1),
            Repr::Spilled(m) => m.get(x).copied().unwrap_or(0),
        }
    }

    /// Whether the element occurs at least once.
    #[must_use]
    pub fn contains(&self, x: &T) -> bool {
        match &self.repr {
            Repr::Inline(v) => v.binary_search_by(|(e, _)| e.cmp(x)).is_ok(),
            Repr::Spilled(m) => m.contains_key(x),
        }
    }

    /// Inserts one occurrence of `x`.
    pub fn insert(&mut self, x: T) {
        self.insert_n(x, 1);
    }

    /// Inserts `n` occurrences of `x` (no-op when `n == 0`).
    pub fn insert_n(&mut self, x: T, n: usize) {
        if n == 0 {
            return;
        }
        self.len += n;
        match &mut self.repr {
            Repr::Inline(v) => match v.binary_search_by(|(e, _)| e.cmp(&x)) {
                Ok(i) => v[i].1 += n,
                Err(i) => {
                    if v.len() < INLINE_DISTINCT {
                        v.insert(i, (x, n));
                    } else {
                        let mut map: BTreeMap<T, usize> = std::mem::take(v).into_iter().collect();
                        map.insert(x, n);
                        self.repr = Repr::Spilled(map);
                    }
                }
            },
            Repr::Spilled(m) => *m.entry(x).or_insert(0) += n,
        }
    }

    /// Removes one occurrence of `x`; returns whether one was present.
    pub fn remove(&mut self, x: &T) -> bool {
        match &mut self.repr {
            Repr::Inline(v) => match v.binary_search_by(|(e, _)| e.cmp(x)) {
                Ok(i) => {
                    if v[i].1 > 1 {
                        v[i].1 -= 1;
                    } else {
                        v.remove(i);
                    }
                    self.len -= 1;
                    true
                }
                Err(_) => false,
            },
            Repr::Spilled(m) => match m.get_mut(x) {
                Some(c) if *c > 1 => {
                    *c -= 1;
                    self.len -= 1;
                    true
                }
                Some(_) => {
                    m.remove(x);
                    self.len -= 1;
                    true
                }
                None => false,
            },
        }
    }

    /// Removes all occurrences of `x`; returns how many were removed.
    pub fn remove_all(&mut self, x: &T) -> usize {
        let removed = match &mut self.repr {
            Repr::Inline(v) => match v.binary_search_by(|(e, _)| e.cmp(x)) {
                Ok(i) => v.remove(i).1,
                Err(_) => 0,
            },
            Repr::Spilled(m) => m.remove(x).unwrap_or(0),
        };
        self.len -= removed;
        removed
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline(v) => v.clear(),
            Repr::Spilled(m) => m.clear(),
        }
        self.len = 0;
    }

    /// Iterator over `(element, multiplicity)` pairs in element order.
    pub fn counted(&self) -> Counted<'_, T> {
        match &self.repr {
            Repr::Inline(v) => Counted::Inline(v.iter()),
            Repr::Spilled(m) => Counted::Spilled(m.iter()),
        }
    }

    /// Iterator over elements expanded by multiplicity, in element order.
    ///
    /// ```
    /// use homonym_core::multiset::Multiset;
    /// let m: Multiset<u8> = [2, 1, 2].into_iter().collect();
    /// assert_eq!(m.iter().copied().collect::<Vec<_>>(), vec![1, 2, 2]);
    /// ```
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.counted().flat_map(|(x, c)| core::iter::repeat_n(x, c))
    }

    /// Iterator over the distinct elements (the *support*).
    pub fn support(&self) -> impl Iterator<Item = &T> + '_ {
        self.counted().map(|(x, _)| x)
    }

    /// The smallest element, if any (used by `HΩ` extraction).
    ///
    /// Named `min_elem` to avoid colliding with [`Ord::min`], which method
    /// resolution would otherwise prefer.
    #[must_use]
    pub fn min_elem(&self) -> Option<&T> {
        match &self.repr {
            Repr::Inline(v) => v.first().map(|(x, _)| x),
            Repr::Spilled(m) => m.keys().next(),
        }
    }

    /// The largest element, if any.
    #[must_use]
    pub fn max_elem(&self) -> Option<&T> {
        match &self.repr {
            Repr::Inline(v) => v.last().map(|(x, _)| x),
            Repr::Spilled(m) => m.keys().next_back(),
        }
    }

    /// Sub-multiset test: every multiplicity in `self` is `<=` the one in
    /// `other` (the paper's `m ⊆ m'` over bags).
    #[must_use]
    pub fn is_subset(&self, other: &Multiset<T>) -> bool {
        if self.len > other.len {
            return false;
        }
        self.counted().all(|(x, c)| other.multiplicity(x) >= c)
    }

    /// Super-multiset test (`other ⊆ self`).
    #[must_use]
    pub fn is_superset(&self, other: &Multiset<T>) -> bool {
        other.is_subset(self)
    }

    /// Whether the supports are disjoint (no common element at all).
    #[must_use]
    pub fn is_disjoint(&self, other: &Multiset<T>) -> bool {
        // Walk the smaller support, probe the larger.
        let (small, large) = if self.distinct_len() <= other.distinct_len() {
            (self, other)
        } else {
            (other, self)
        };
        !small.support().any(|x| large.contains(x))
    }
}

impl<T: Ord + Clone> Multiset<T> {
    /// Builds a bag from `(element, multiplicity)` pairs already in
    /// strictly increasing element order with nonzero counts.
    fn from_sorted_pairs(pairs: Vec<(T, usize)>) -> Multiset<T> {
        let len = pairs.iter().map(|(_, c)| c).sum();
        let repr = if pairs.len() <= INLINE_DISTINCT {
            Repr::Inline(pairs)
        } else {
            Repr::Spilled(pairs.into_iter().collect())
        };
        Multiset { repr, len }
    }

    /// Merges the ordered counted streams of two bags; `combine` maps the
    /// per-element multiplicity pair to the output multiplicity (zero
    /// drops the element).
    fn merge_with(
        &self,
        other: &Multiset<T>,
        combine: impl Fn(usize, usize) -> usize,
    ) -> Multiset<T> {
        let mut out = Vec::with_capacity(self.distinct_len() + other.distinct_len());
        let mut a = self.counted().peekable();
        let mut b = other.counted().peekable();
        loop {
            let ord = match (a.peek(), b.peek()) {
                (Some((x, _)), Some((y, _))) => x.cmp(y),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => break,
            };
            let (x, ca, cb) = match ord {
                Ordering::Less => {
                    let (x, c) = a.next().expect("peeked");
                    (x, c, 0)
                }
                Ordering::Greater => {
                    let (y, c) = b.next().expect("peeked");
                    (y, 0, c)
                }
                Ordering::Equal => {
                    let (x, ca) = a.next().expect("peeked");
                    let (_, cb) = b.next().expect("peeked");
                    (x, ca, cb)
                }
            };
            let c = combine(ca, cb);
            if c > 0 {
                out.push((x.clone(), c));
            }
        }
        Multiset::from_sorted_pairs(out)
    }

    /// Multiset union: per-element **maximum** of multiplicities.
    #[must_use]
    pub fn union(&self, other: &Multiset<T>) -> Multiset<T> {
        self.merge_with(other, usize::max)
    }

    /// Multiset intersection: per-element **minimum** of multiplicities.
    #[must_use]
    pub fn intersection(&self, other: &Multiset<T>) -> Multiset<T> {
        self.merge_with(other, usize::min)
    }

    /// Multiset sum: per-element **addition** of multiplicities
    /// (`|a ⊎ b| = |a| + |b|`).
    #[must_use]
    pub fn sum(&self, other: &Multiset<T>) -> Multiset<T> {
        self.merge_with(other, |a, b| a + b)
    }

    /// Saturating multiset difference: per-element subtraction clamped at 0.
    #[must_use]
    pub fn difference(&self, other: &Multiset<T>) -> Multiset<T> {
        self.merge_with(other, usize::saturating_sub)
    }

    /// Converts to the underlying set (support), dropping multiplicities.
    #[must_use]
    pub fn to_set(&self) -> std::collections::BTreeSet<T> {
        self.support().cloned().collect()
    }
}

/// Iterator over `(element, multiplicity)` pairs; see [`Multiset::counted`].
pub enum Counted<'a, T> {
    /// Inline representation walk.
    Inline(core::slice::Iter<'a, (T, usize)>),
    /// Spilled representation walk.
    Spilled(std::collections::btree_map::Iter<'a, T, usize>),
}

impl<'a, T> Iterator for Counted<'a, T> {
    type Item = (&'a T, usize);
    fn next(&mut self) -> Option<(&'a T, usize)> {
        match self {
            Counted::Inline(it) => it.next().map(|(x, c)| (x, *c)),
            Counted::Spilled(it) => it.next().map(|(x, &c)| (x, c)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Counted::Inline(it) => it.size_hint(),
            Counted::Spilled(it) => it.size_hint(),
        }
    }
}

impl<T: Ord> Default for Multiset<T> {
    fn default() -> Self {
        Multiset::new()
    }
}

impl<T: Ord> FromIterator<T> for Multiset<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut m = Multiset::new();
        for x in iter {
            m.insert(x);
        }
        m
    }
}

impl<T: Ord> FromIterator<(T, usize)> for Multiset<T> {
    fn from_iter<I: IntoIterator<Item = (T, usize)>>(iter: I) -> Self {
        let mut m = Multiset::new();
        for (x, c) in iter {
            m.insert_n(x, c);
        }
        m
    }
}

impl<T: Ord> Extend<T> for Multiset<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.insert(x);
        }
    }
}

/// Owning `(element, multiplicity)` iterator; see [`Multiset::into_iter`].
pub enum IntoIter<T> {
    /// Inline representation walk.
    Inline(std::vec::IntoIter<(T, usize)>),
    /// Spilled representation walk.
    Spilled(std::collections::btree_map::IntoIter<T, usize>),
}

impl<T> Iterator for IntoIter<T> {
    type Item = (T, usize);
    fn next(&mut self) -> Option<(T, usize)> {
        match self {
            IntoIter::Inline(it) => it.next(),
            IntoIter::Spilled(it) => it.next(),
        }
    }
}

impl<T: Ord> IntoIterator for Multiset<T> {
    type Item = (T, usize);
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        match self.repr {
            Repr::Inline(v) => IntoIter::Inline(v.into_iter()),
            Repr::Spilled(m) => IntoIter::Spilled(m.into_iter()),
        }
    }
}

impl<T: Ord + Clone> From<&[T]> for Multiset<T> {
    fn from(slice: &[T]) -> Self {
        slice.iter().cloned().collect()
    }
}

impl<T: Ord, const N: usize> From<[T; N]> for Multiset<T> {
    fn from(arr: [T; N]) -> Self {
        arr.into_iter().collect()
    }
}

// Equality, ordering and hashing are content-based so that an inline bag
// and a spilled bag holding the same elements are indistinguishable.

impl<T: Ord> PartialEq for Multiset<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.counted().eq(other.counted())
    }
}

impl<T: Ord> Eq for Multiset<T> {}

impl<T: Ord + Hash> Hash for Multiset<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.distinct_len());
        for (x, c) in self.counted() {
            x.hash(state);
            state.write_usize(c);
        }
    }
}

/// Multisets are ordered lexicographically over their ordered
/// `(element, multiplicity)` pairs, which gives a deterministic total
/// order for use as map keys (e.g. Figure 7 uses the received multiset
/// itself as a quorum label).
impl<T: Ord> PartialOrd for Multiset<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Multiset<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.counted().cmp(other.counted())
    }
}

#[cfg(feature = "serde")]
impl<T: Ord + serde::Serialize> serde::Serialize for Multiset<T> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(self.distinct_len()))?;
        for (x, c) in self.counted() {
            seq.serialize_element(&(x, c))?;
        }
        seq.end()
    }
}

/// Marker impl matching the offline serde stand-in (which carries no
/// deserializer machinery); present so `#[derive(serde::Deserialize)]`
/// on types containing bags compiles under the `serde` feature.
#[cfg(feature = "serde")]
impl<'de, T: Ord> serde::Deserialize<'de> for Multiset<T> {}

impl<T: Ord + fmt::Debug> fmt::Debug for Multiset<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (x, c) in self.counted() {
            for _ in 0..c {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{x:?}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

impl<T: Ord + fmt::Display> fmt::Display for Multiset<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (x, c) in self.counted() {
            for _ in 0..c {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{x}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(items: &[u32]) -> Multiset<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn len_counts_multiplicity() {
        let m = ms(&[1, 1, 2, 3, 3, 3]);
        assert_eq!(m.len(), 6);
        assert_eq!(m.distinct_len(), 3);
        assert_eq!(m.multiplicity(&3), 3);
        assert_eq!(m.multiplicity(&9), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut m = Multiset::new();
        m.insert_n('x', 2);
        assert!(m.remove(&'x'));
        assert_eq!(m.multiplicity(&'x'), 1);
        assert!(m.remove(&'x'));
        assert!(!m.remove(&'x'));
        assert!(m.is_empty());
    }

    #[test]
    fn remove_all_drains_one_key() {
        let mut m = ms(&[5, 5, 5, 7]);
        assert_eq!(m.remove_all(&5), 3);
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove_all(&5), 0);
    }

    #[test]
    fn subset_respects_multiplicity() {
        assert!(ms(&[1, 1]).is_subset(&ms(&[1, 1, 2])));
        assert!(!ms(&[1, 1, 1]).is_subset(&ms(&[1, 1, 2])));
        assert!(ms(&[]).is_subset(&ms(&[])));
    }

    #[test]
    fn union_takes_max() {
        let u = ms(&[1, 1, 2]).union(&ms(&[1, 2, 2, 3]));
        assert_eq!(u, ms(&[1, 1, 2, 2, 3]));
    }

    #[test]
    fn intersection_takes_min() {
        let i = ms(&[1, 1, 2]).intersection(&ms(&[1, 2, 2, 3]));
        assert_eq!(i, ms(&[1, 2]));
    }

    #[test]
    fn sum_adds() {
        let s = ms(&[1, 2]).sum(&ms(&[1, 3]));
        assert_eq!(s, ms(&[1, 1, 2, 3]));
    }

    #[test]
    fn difference_saturates() {
        let d = ms(&[1, 1, 2]).difference(&ms(&[1, 2, 2]));
        assert_eq!(d, ms(&[1]));
    }

    #[test]
    fn disjointness_is_support_level() {
        assert!(ms(&[1, 1]).is_disjoint(&ms(&[2, 3])));
        assert!(!ms(&[1, 1]).is_disjoint(&ms(&[1])));
        assert!(ms(&[]).is_disjoint(&ms(&[])));
    }

    #[test]
    fn iter_expands_in_order() {
        let m = ms(&[3, 1, 3]);
        assert_eq!(m.iter().copied().collect::<Vec<_>>(), vec![1, 3, 3]);
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let a = ms(&[1, 2]);
        let b = ms(&[1, 1, 2]);
        assert_ne!(a.cmp(&b), Ordering::Equal);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_shows_repeats() {
        assert_eq!(ms(&[2, 1, 2]).to_string(), "{1, 2, 2}");
    }

    #[test]
    fn min_max() {
        let m = ms(&[4, 2, 9]);
        assert_eq!(m.min_elem(), Some(&2));
        assert_eq!(m.max_elem(), Some(&9));
        assert_eq!(Multiset::<u32>::new().min_elem(), None);
    }

    #[test]
    fn from_array_and_counted_pairs() {
        let a = Multiset::from([1, 1, 2]);
        let b: Multiset<u32> = [(1u32, 2usize), (2, 1)].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn to_set_drops_multiplicity() {
        let s = ms(&[1, 1, 2]).to_set();
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    // --- representation-boundary coverage ---

    fn is_spilled(m: &Multiset<u32>) -> bool {
        matches!(m.repr, Repr::Spilled(_))
    }

    #[test]
    fn spills_beyond_inline_capacity_and_back_compares_equal() {
        let mut big: Multiset<u32> = (0..INLINE_DISTINCT as u32 + 4).collect();
        assert!(is_spilled(&big));
        // Shrink back under the threshold: stays spilled, but must stay
        // indistinguishable from a freshly built inline bag.
        for x in 4..INLINE_DISTINCT as u32 + 4 {
            assert_eq!(big.remove_all(&x), 1);
        }
        let small: Multiset<u32> = (0..4).collect();
        assert!(!is_spilled(&small));
        assert!(is_spilled(&big));
        assert_eq!(big, small);
        assert_eq!(big.cmp(&small), Ordering::Equal);
        assert_eq!(hash_of(&big), hash_of(&small));
    }

    fn hash_of(m: &Multiset<u32>) -> u64 {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut h = DefaultHasher::new();
        m.hash(&mut h);
        h.finish()
    }

    #[test]
    fn exactly_at_capacity_stays_inline() {
        let m: Multiset<u32> = (0..INLINE_DISTINCT as u32).collect();
        assert!(!is_spilled(&m));
        let mut over = m.clone();
        over.insert(INLINE_DISTINCT as u32);
        assert!(is_spilled(&over));
        assert_eq!(over.len(), INLINE_DISTINCT + 1);
    }

    #[test]
    fn algebra_crosses_the_boundary() {
        let a: Multiset<u32> = (0..12).collect();
        let b: Multiset<u32> = (8..24).collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 24);
        assert!(is_spilled(&u));
        let i = a.intersection(&b);
        assert_eq!(i, (8..12).collect::<Multiset<u32>>());
        assert!(!is_spilled(&i));
        assert_eq!(u.difference(&b), (0..8).collect::<Multiset<u32>>());
        assert_eq!(a.sum(&b).len(), a.len() + b.len());
    }

    #[test]
    fn mixed_representation_ops_agree() {
        let mut spilled: Multiset<u32> = (0..20).collect();
        for x in 3..20 {
            spilled.remove_all(&x);
        }
        let inline = ms(&[0, 1, 2]);
        assert!(is_spilled(&spilled) && !is_spilled(&inline));
        assert!(spilled.is_subset(&inline) && inline.is_subset(&spilled));
        assert_eq!(spilled.union(&inline), inline);
        assert_eq!(spilled.intersection(&inline), inline);
        assert_eq!(spilled.difference(&inline), Multiset::new());
    }

    #[test]
    fn into_iter_yields_counted_pairs_in_order() {
        let small = ms(&[2, 1, 2]);
        assert_eq!(small.into_iter().collect::<Vec<_>>(), vec![(1, 1), (2, 2)]);
        let big: Multiset<u32> = (0..20).rev().collect();
        assert_eq!(
            big.into_iter().map(|(x, _)| x).collect::<Vec<_>>(),
            (0..20).collect::<Vec<_>>()
        );
    }
}
