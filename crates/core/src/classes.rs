//! Output types for every failure-detector class in the paper.
//!
//! A failure detector of a class provides each process with one or two
//! local variables; a *class* is the set of properties those variables
//! satisfy over a run (see [`crate::properties`] for machine-checkable
//! versions of the properties). This module defines the **shape** of each
//! class's output:
//!
//! | Class  | System      | Output                                        |
//! |--------|-------------|-----------------------------------------------|
//! | `◇HP`  | homonymous  | `h_trusted`: multiset of identifiers          |
//! | `HΩ`   | homonymous  | `h_leader` + `h_multiplicity`                  |
//! | `HΣ`   | homonymous  | `h_quora`: set of `(label, multiset)` pairs + `h_labels` |
//! | `Σ`    | classical   | `trusted`: multiset (set when ids are unique) |
//! | `Ω`    | classical   | `leader`: identifier                           |
//! | `E`    | classical   | `alive`: ranked identifier sequence (Def. 1)  |
//! | `AP`   | anonymous   | `anap`: upper bound on #alive                  |
//! | `AΣ`   | anonymous   | `a_sigma`: set of `(label, count)` pairs      |
//! | `AΩ`   | anonymous   | `a_leader`: boolean flag                       |

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use crate::identity::Identity;
use crate::multiset::Multiset;

/// An opaque quorum label `x` for `HΣ` / `AΣ`.
///
/// Different algorithms instantiate labels with different payloads: Figures
/// 1–2 use *sets* of identifiers, Figure 7 uses the received *multiset*
/// itself, Theorem 3 reuses `AΣ` labels, and Lemma 3 uses `⊥^y` (a bare
/// count). `Label` is the sum of those shapes so every reduction can keep
/// its labels distinguishable and totally ordered.
///
/// # Examples
///
/// ```
/// use homonym_core::classes::Label;
/// use homonym_core::identity::Identity;
///
/// let x = Label::id_set([Identity::new(0), Identity::new(1)]);
/// let y = Label::count(3);
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Label {
    /// A set of identifiers (Figures 1 and 2).
    IdSet(BTreeSet<Identity>),
    /// A multiset of identifiers (Figure 7 uses `mset_p` itself).
    IdMultiset(Multiset<Identity>),
    /// An opaque token (oracles, `AΣ` carry-over in Theorem 3).
    Opaque(u64),
    /// The anonymous label `⊥^y` of Lemma 3, identified by the count `y`.
    Count(usize),
}

impl Label {
    /// Builds an [`Label::IdSet`] label from identifiers.
    #[must_use]
    pub fn id_set<I: IntoIterator<Item = Identity>>(ids: I) -> Self {
        Label::IdSet(ids.into_iter().collect())
    }

    /// Builds an [`Label::IdMultiset`] label.
    #[must_use]
    pub fn id_multiset(m: Multiset<Identity>) -> Self {
        Label::IdMultiset(m)
    }

    /// Builds an opaque label.
    #[must_use]
    pub fn opaque(token: u64) -> Self {
        Label::Opaque(token)
    }

    /// Builds the anonymous `⊥^y` label.
    #[must_use]
    pub fn count(y: usize) -> Self {
        Label::Count(y)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::IdSet(s) => {
                write!(f, "⟨")?;
                for (i, id) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{id}")?;
                }
                write!(f, "⟩")
            }
            Label::IdMultiset(m) => write!(f, "⟨{m}⟩"),
            Label::Opaque(t) => write!(f, "#{t}"),
            Label::Count(y) => write!(f, "⊥^{y}"),
        }
    }
}

/// Output of class `◇HP`: eventually the multiset `I(Correct)` forever.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvtHPOutput {
    /// The `h_trusted_p` variable.
    pub h_trusted: Multiset<Identity>,
}

impl EvtHPOutput {
    /// Wraps a trusted multiset.
    #[must_use]
    pub fn new(h_trusted: Multiset<Identity>) -> Self {
        EvtHPOutput { h_trusted }
    }
}

impl fmt::Display for EvtHPOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h_trusted={}", self.h_trusted)
    }
}

/// Output of class `HΩ`: eventually, at every correct process, the same
/// identifier `ℓ` of a correct process together with the number of correct
/// processes carrying `ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HOmegaOutput {
    /// The `h_leader_p` variable.
    pub h_leader: Identity,
    /// The `h_multiplicity_p` variable.
    pub h_multiplicity: usize,
}

impl HOmegaOutput {
    /// Creates an `HΩ` output pair.
    #[must_use]
    pub fn new(h_leader: Identity, h_multiplicity: usize) -> Self {
        HOmegaOutput {
            h_leader,
            h_multiplicity,
        }
    }
}

impl fmt::Display for HOmegaOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "leader={} ×{}", self.h_leader, self.h_multiplicity)
    }
}

/// Output of class `HΣ`: the `(h_quora, h_labels)` pair of §3.2.
///
/// `h_quora` maps each label to its quorum multiset — the map keying makes
/// the **Validity** property ("no two pairs with the same label") structural.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HSigmaOutput {
    /// The `h_quora_p` variable: pairs `(x, m)`.
    pub h_quora: BTreeMap<Label, Multiset<Identity>>,
    /// The `h_labels_p` variable: labels whose quorum this process joined.
    pub h_labels: BTreeSet<Label>,
}

impl HSigmaOutput {
    /// Creates an empty output (both variables start empty in every
    /// algorithm of the paper).
    #[must_use]
    pub fn new() -> Self {
        HSigmaOutput::default()
    }

    /// Inserts a `(label, multiset)` pair into `h_quora`, replacing any
    /// previous multiset for the label (as Theorem 3's transformation does).
    pub fn insert_quorum(&mut self, label: Label, m: Multiset<Identity>) {
        self.h_quora.insert(label, m);
    }

    /// Adds a label to `h_labels`.
    pub fn insert_label(&mut self, label: Label) {
        self.h_labels.insert(label);
    }
}

impl fmt::Display for HSigmaOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "quora{{")?;
        for (i, (x, m)) in self.h_quora.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{x}→{m}")?;
        }
        write!(f, "}} labels{{")?;
        for (i, x) in self.h_labels.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "}}")
    }
}

/// Output of class `Σ` (quorum failure detector, classical systems).
///
/// In a homonymous system the natural generalization makes `trusted` a
/// multiset (footnote 6 of the paper); with unique identifiers it
/// degenerates to a set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SigmaOutput {
    /// The `trusted_p` variable.
    pub trusted: Multiset<Identity>,
}

impl SigmaOutput {
    /// Wraps a trusted multiset.
    #[must_use]
    pub fn new(trusted: Multiset<Identity>) -> Self {
        SigmaOutput { trusted }
    }
}

impl fmt::Display for SigmaOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trusted={}", self.trusted)
    }
}

/// Output of class `Ω` (eventual leader election, classical systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OmegaOutput {
    /// The `leader_p` variable.
    pub leader: Identity,
}

impl OmegaOutput {
    /// Wraps a leader identifier.
    #[must_use]
    pub fn new(leader: Identity) -> Self {
        OmegaOutput { leader }
    }
}

impl fmt::Display for OmegaOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "leader={}", self.leader)
    }
}

/// Output of class `AΩ` (anonymous eventual leader): a boolean flag that is
/// eventually `true` at exactly one correct process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AOmegaOutput {
    /// The `a_leader_p` Boolean variable.
    pub a_leader: bool,
}

impl AOmegaOutput {
    /// Wraps a leader flag.
    #[must_use]
    pub fn new(a_leader: bool) -> Self {
        AOmegaOutput { a_leader }
    }
}

impl fmt::Display for AOmegaOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a_leader={}", self.a_leader)
    }
}

/// Output of class `AP` (anonymous perfect detector): an upper bound on the
/// current number of alive processes that eventually equals `|Correct|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct APOutput {
    /// The `anap_p` variable.
    pub anap: usize,
}

impl APOutput {
    /// Wraps an alive-count bound.
    #[must_use]
    pub fn new(anap: usize) -> Self {
        APOutput { anap }
    }
}

impl fmt::Display for APOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "anap={}", self.anap)
    }
}

/// Output of class `AΣ` (anonymous quorum detector): pairs `(x, y)` where
/// `y` processes knowing label `x` form a quorum.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ASigmaOutput {
    /// The `a_sigma_p` variable: label → quorum size (map keying makes the
    /// Validity property structural).
    pub a_sigma: BTreeMap<Label, usize>,
}

impl ASigmaOutput {
    /// Creates an empty output.
    #[must_use]
    pub fn new() -> Self {
        ASigmaOutput::default()
    }

    /// Inserts (or tightens) a `(label, count)` pair.
    pub fn insert(&mut self, label: Label, y: usize) {
        self.a_sigma.insert(label, y);
    }
}

impl fmt::Display for ASigmaOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a_sigma{{")?;
        for (i, (x, y)) in self.a_sigma.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "({x},{y})")?;
        }
        write!(f, "}}")
    }
}

/// Output of the auxiliary class `E` (Definition 1): a sequence of process
/// identifiers such that eventually the correct identifiers occupy the
/// prefix permanently. Only defined for systems with **unique** identifiers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EListOutput {
    /// The `alive_p` sequence, most-recently-heard-from first.
    pub alive: Vec<Identity>,
}

impl EListOutput {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        EListOutput::default()
    }

    /// `rank(i, alive_p)`: 1-based position of `i`, or `None` when absent
    /// (the paper uses rank `∞` for absent identifiers).
    #[must_use]
    pub fn rank(&self, id: Identity) -> Option<usize> {
        self.alive.iter().position(|&x| x == id).map(|i| i + 1)
    }

    /// Moves `id` to the front, inserting it if absent (Figure 3, lines
    /// 11–12).
    pub fn move_to_front(&mut self, id: Identity) {
        if let Some(pos) = self.alive.iter().position(|&x| x == id) {
            self.alive.remove(pos);
        }
        self.alive.insert(0, id);
    }
}

impl fmt::Display for EListOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alive=[")?;
        for (i, id) in self.alive.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_of_different_shapes_are_distinct() {
        let a = Label::id_set([Identity::new(0)]);
        let b = Label::id_multiset([Identity::new(0)].into_iter().collect());
        let c = Label::opaque(0);
        let d = Label::count(0);
        let all = [a, b, c, d];
        for i in 0..all.len() {
            for j in 0..all.len() {
                assert_eq!(i == j, all[i] == all[j]);
            }
        }
    }

    #[test]
    fn label_ordering_is_total() {
        let mut v = [Label::count(2), Label::opaque(1), Label::count(1)];
        v.sort();
        assert_eq!(v[0], v.iter().min().unwrap().clone());
    }

    #[test]
    fn hsigma_validity_is_structural() {
        let mut o = HSigmaOutput::new();
        let x = Label::opaque(1);
        o.insert_quorum(x.clone(), [Identity::new(0)].into_iter().collect());
        o.insert_quorum(x.clone(), [Identity::new(1)].into_iter().collect());
        // Re-inserting the same label replaces: never two pairs per label.
        assert_eq!(o.h_quora.len(), 1);
        assert_eq!(
            o.h_quora[&x],
            [Identity::new(1)].into_iter().collect::<Multiset<_>>()
        );
    }

    #[test]
    fn elist_rank_is_one_based() {
        let mut e = EListOutput::new();
        e.move_to_front(Identity::new(3));
        e.move_to_front(Identity::new(5));
        assert_eq!(e.rank(Identity::new(5)), Some(1));
        assert_eq!(e.rank(Identity::new(3)), Some(2));
        assert_eq!(e.rank(Identity::new(9)), None);
    }

    #[test]
    fn elist_move_to_front_deduplicates() {
        let mut e = EListOutput::new();
        e.move_to_front(Identity::new(1));
        e.move_to_front(Identity::new(2));
        e.move_to_front(Identity::new(1));
        assert_eq!(e.alive, vec![Identity::new(1), Identity::new(2)]);
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert!(!EvtHPOutput::default().to_string().is_empty());
        assert!(!HOmegaOutput::new(Identity::new(0), 2)
            .to_string()
            .is_empty());
        assert!(!HSigmaOutput::new().to_string().is_empty());
        assert!(!SigmaOutput::default().to_string().is_empty());
        assert!(!OmegaOutput::new(Identity::new(0)).to_string().is_empty());
        assert!(!AOmegaOutput::new(true).to_string().is_empty());
        assert!(!APOutput::new(3).to_string().is_empty());
        assert!(!ASigmaOutput::new().to_string().is_empty());
        assert!(!EListOutput::new().to_string().is_empty());
        assert!(!Label::count(2).to_string().is_empty());
    }
}
