//! Machine-checkable versions of the paper's class properties.
//!
//! Every checker takes per-process **histories** (chronological snapshots of
//! a detector's local variables), the ground-truth [`FailureSchedule`] and
//! the [`IdentityAssignment`], and verifies the properties of §3 of the
//! paper post-hoc. "Eventually forever" properties are checked as "holds on
//! a suffix of the (finite) recorded run that extends to its end", which is
//! the strongest finite-trace approximation; the returned reports carry the
//! start of that suffix so experiments can measure convergence times.
//!
//! The `HΣ`/`AΣ` **Safety** quantifier (`∀Q1 ⊆ S(x1) … ∀Q2 ⊆ S(x2) …`) is
//! decided exactly, without subset enumeration, by a per-identity counting
//! argument: disjoint realizations `Q1, Q2` with `I(Q1) = m1, I(Q2) = m2`
//! exist **iff** for every identity `i`,
//! `m1(i) ≤ |S1(i)|`, `m2(i) ≤ |S2(i)|` and `m1(i) + m2(i) ≤ |S1(i) ∪ S2(i)|`
//! (greedily place `Q1`'s picks preferring `S1 \ S2`). Tests cross-validate
//! this against a brute-force enumerator on small universes.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use crate::classes::{
    AOmegaOutput, APOutput, ASigmaOutput, EListOutput, EvtHPOutput, HOmegaOutput, HSigmaOutput,
    Label, OmegaOutput, SigmaOutput,
};
use crate::failure::FailureSchedule;
use crate::identity::{Identity, IdentityAssignment};
use crate::multiset::Multiset;
use crate::time::Time;

/// A chronological sequence of `(time, snapshot)` pairs for one process.
pub type History<T> = Vec<(Time, T)>;

/// A violated class property, with enough detail to debug the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyViolation {
    /// The detector class or problem whose property failed (e.g. `"HΣ"`).
    pub class: &'static str,
    /// The property that failed (e.g. `"safety"`).
    pub property: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl PropertyViolation {
    fn new(class: &'static str, property: &'static str, detail: String) -> Self {
        PropertyViolation {
            class,
            property,
            detail,
        }
    }
}

impl PropertyViolation {
    /// Whether the violated property is a **liveness** property — one the
    /// paper only requires of eventually-well-behaved runs (`◇HP`
    /// convergence, `HΩ`/`Ω` election, `Σ`-family liveness, consensus
    /// termination). Safety properties (quorum intersection, validity,
    /// agreement, monotonicity) must hold in *every* run, however
    /// adversarial; this split is what [`classify_run`] keys on.
    ///
    /// The classification matches on the `property` name, so a checker
    /// introducing a new liveness property **must** add its name here;
    /// an unlisted name is conservatively treated as safety, which makes
    /// the falsification sweep fail loudly (a spurious counterexample)
    /// rather than silently excuse a real violation.
    #[must_use]
    pub fn is_liveness(&self) -> bool {
        matches!(self.property, "liveness" | "termination" | "election")
    }
}

impl fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} violated: {}",
            self.class, self.property, self.detail
        )
    }
}

impl std::error::Error for PropertyViolation {}

/// How well-behaved a run's environment was, as established by whoever
/// scheduled its faults (the chaos scenario layer, an oracle world, or a
/// hand-written test) — never by algorithm code.
///
/// The paper splits every detector class into safety (required of every
/// run) and liveness (required only of runs whose environment eventually
/// becomes clean: partitions heal, loss stops, GST passes, and enough of
/// the observation window remains). This struct carries that judgement
/// alongside a run so [`classify_run`] can turn a checker verdict into a
/// scenario-conditional one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunCondition {
    /// Whether the run's environment became (and stayed) clean early
    /// enough that liveness properties are required of it.
    pub eventually_clean: bool,
    /// The instant from which the environment was clean, when known
    /// (`None` for runs that never stabilized inside the window).
    pub clean_from: Option<Time>,
    /// Number of **Byzantine** (corrupt) processes in the run — processes
    /// whose broadcasts a payload-mutation adversary may equivocate,
    /// corrupt, replay or selectively suppress. `0` is the paper's
    /// crash-stop model.
    pub corrupt: usize,
    /// Whether the algorithm under test **claims to tolerate** the run's
    /// corrupt processes (a BFT algorithm within its `n > 3f` envelope —
    /// the caller asserts `corrupt` satisfies `3 * corrupt < n`). The
    /// crash-stop algorithms of the paper never claim this.
    pub byzantine_tolerated: bool,
}

impl RunCondition {
    /// A run whose environment was clean from `t` onward.
    #[must_use]
    pub fn clean_from(t: Time) -> Self {
        RunCondition {
            eventually_clean: true,
            clean_from: Some(t),
            corrupt: 0,
            byzantine_tolerated: false,
        }
    }

    /// A run whose environment never became clean inside the window.
    #[must_use]
    pub fn never_clean() -> Self {
        RunCondition {
            eventually_clean: false,
            clean_from: None,
            corrupt: 0,
            byzantine_tolerated: false,
        }
    }

    /// Marks `corrupt` processes of the run as Byzantine (builder style).
    #[must_use]
    pub fn with_corrupt(mut self, corrupt: usize) -> Self {
        self.corrupt = corrupt;
        self
    }

    /// Declares that the algorithm under test claims Byzantine tolerance
    /// for this run's `corrupt` count (builder style): violations then
    /// falsify exactly as in crash-only runs, instead of being recorded
    /// as expected demonstrations.
    ///
    /// # Panics
    ///
    /// Panics unless `3 * corrupt < n` — tolerance claims outside the
    /// standard `f < n/3` BFT envelope are vacuous and almost certainly
    /// a harness bug.
    #[must_use]
    pub fn claiming_byzantine_tolerance(self, n: usize) -> Self {
        assert!(
            3 * self.corrupt < n,
            "a Byzantine-tolerance claim needs f < n/3 (got f={}, n={n})",
            self.corrupt
        );
        RunCondition {
            byzantine_tolerated: true,
            ..self
        }
    }
}

/// The scenario-conditional verdict on one run: safety violations
/// falsify unconditionally, liveness violations only on eventually-clean
/// runs — and in Byzantine runs of an algorithm that never claimed
/// Byzantine tolerance, any violation is an **expected demonstration**
/// rather than a falsification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunVerdict<R> {
    /// Every checked property held (carries the checker's report).
    Pass(R),
    /// A safety property failed — a counterexample in **any** run.
    SafetyViolated(PropertyViolation),
    /// A liveness property failed on an eventually-clean run — a
    /// counterexample.
    LivenessViolated(PropertyViolation),
    /// A liveness property failed on a run whose environment never
    /// became clean — correctly excused, exactly as the definitions
    /// permit.
    LivenessExcused(PropertyViolation),
    /// A property failed in a run with corrupt processes, against an
    /// algorithm that only claims crash tolerance — **not** a bug in the
    /// implementation but a *demonstrated counterexample* to running the
    /// crash-stop algorithm under Byzantine faults (the equivocator hid
    /// among its honest homonyms and broke the stack, exactly as the
    /// BFT literature predicts for algorithms without `n > 3f` quorum
    /// machinery). A Byzantine-**tolerant** algorithm within `f < n/3`
    /// never receives this verdict: its violations classify as
    /// [`RunVerdict::SafetyViolated`] / [`RunVerdict::LivenessViolated`]
    /// via [`RunCondition::claiming_byzantine_tolerance`].
    ByzantineExpected(PropertyViolation),
}

impl<R> RunVerdict<R> {
    /// Whether this verdict falsifies the implementation (safety broken
    /// anywhere, or liveness broken on a clean run; expected Byzantine
    /// demonstrations do not falsify).
    #[must_use]
    pub fn is_falsifying(&self) -> bool {
        matches!(
            self,
            RunVerdict::SafetyViolated(_) | RunVerdict::LivenessViolated(_)
        )
    }

    /// The violation carried by a non-passing verdict.
    #[must_use]
    pub fn violation(&self) -> Option<&PropertyViolation> {
        match self {
            RunVerdict::Pass(_) => None,
            RunVerdict::SafetyViolated(v)
            | RunVerdict::LivenessViolated(v)
            | RunVerdict::LivenessExcused(v)
            | RunVerdict::ByzantineExpected(v) => Some(v),
        }
    }
}

/// Turns a property checker's result into a scenario-conditional
/// [`RunVerdict`]: safety failures are counterexamples regardless of the
/// run's condition, liveness failures only when the environment was
/// [`RunCondition::eventually_clean`] — except in runs with corrupt
/// processes against a crash-only algorithm, where every violation is a
/// [`RunVerdict::ByzantineExpected`] demonstration (the paper's
/// algorithms assume crash-stop failures; a falsification sweep asserts
/// these demonstrations *exist* rather than that they don't).
pub fn classify_run<R>(
    condition: RunCondition,
    result: Result<R, PropertyViolation>,
) -> RunVerdict<R> {
    match result {
        Ok(report) => RunVerdict::Pass(report),
        Err(v) if condition.corrupt > 0 && !condition.byzantine_tolerated => {
            RunVerdict::ByzantineExpected(v)
        }
        Err(v) if !v.is_liveness() => RunVerdict::SafetyViolated(v),
        Err(v) if condition.eventually_clean => RunVerdict::LivenessViolated(v),
        Err(v) => RunVerdict::LivenessExcused(v),
    }
}

/// Finds the earliest snapshot index from which `pred` holds through the end
/// of the history (inclusive), returning its time. `None` when the final
/// snapshot itself fails or the history is empty.
fn stable_suffix_start<T>(hist: &History<T>, mut pred: impl FnMut(&T) -> bool) -> Option<Time> {
    if hist.is_empty() || !pred(&hist.last().expect("nonempty").1) {
        return None;
    }
    let mut start = hist.len() - 1;
    while start > 0 && pred(&hist[start - 1].1) {
        start -= 1;
    }
    Some(hist[start].0)
}

fn require_history<T>(
    class: &'static str,
    histories: &[History<T>],
    sched: &FailureSchedule,
) -> Result<(), PropertyViolation> {
    if histories.len() != sched.n() {
        return Err(PropertyViolation::new(
            class,
            "input",
            format!("{} histories for {} processes", histories.len(), sched.n()),
        ));
    }
    for p in sched.correct_set() {
        if histories[p].is_empty() {
            return Err(PropertyViolation::new(
                class,
                "liveness",
                format!("correct process {p} produced no output at all"),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// ◇HP
// ---------------------------------------------------------------------------

/// Report for a `◇HP` run: when each correct process converged to
/// `I(Correct)` for good.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvtHPReport {
    /// Per-process convergence time (`None` for faulty processes).
    pub convergence: Vec<Option<Time>>,
    /// The latest convergence time across correct processes.
    pub stabilization: Time,
}

/// Checks the `◇HP` liveness property: every correct process eventually
/// outputs `I(Correct)` permanently.
///
/// # Errors
///
/// Returns a [`PropertyViolation`] when some correct process never
/// converges (its final snapshot differs from `I(Correct)`).
pub fn check_evt_hp(
    histories: &[History<EvtHPOutput>],
    sched: &FailureSchedule,
    assign: &IdentityAssignment,
) -> Result<EvtHPReport, PropertyViolation> {
    require_history("◇HP", histories, sched)?;
    let target = sched.i_correct(assign);
    let mut convergence = vec![None; sched.n()];
    let mut stabilization = Time::ZERO;
    for p in sched.correct_set() {
        match stable_suffix_start(&histories[p], |o| o.h_trusted == target) {
            Some(t) => {
                convergence[p] = Some(t);
                stabilization = stabilization.max(t);
            }
            None => {
                return Err(PropertyViolation::new(
                    "◇HP",
                    "liveness",
                    format!(
                        "process {p} ended with h_trusted={} but I(Correct)={}",
                        histories[p].last().expect("nonempty").1.h_trusted,
                        target
                    ),
                ));
            }
        }
    }
    Ok(EvtHPReport {
        convergence,
        stabilization,
    })
}

// ---------------------------------------------------------------------------
// HΩ
// ---------------------------------------------------------------------------

/// Report for an `HΩ` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HOmegaReport {
    /// The elected identifier.
    pub leader: Identity,
    /// Number of correct processes carrying the elected identifier.
    pub multiplicity: usize,
    /// Time from which every correct process output the pair permanently.
    pub stabilization: Time,
}

/// Checks the `HΩ` election property: eventually all correct processes
/// permanently agree on `(ℓ, c)` with `ℓ ∈ I(Correct)` and
/// `c = mult_{I(Correct)}(ℓ)`.
///
/// # Errors
///
/// Returns a [`PropertyViolation`] when final outputs disagree, name a
/// faulty identifier, or report a wrong multiplicity.
pub fn check_h_omega(
    histories: &[History<HOmegaOutput>],
    sched: &FailureSchedule,
    assign: &IdentityAssignment,
) -> Result<HOmegaReport, PropertyViolation> {
    require_history("HΩ", histories, sched)?;
    let i_correct = sched.i_correct(assign);
    let correct = sched.correct_set();
    let final_of = |p: usize| histories[p].last().expect("nonempty").1;
    let elected = final_of(correct[0]);
    for &p in &correct {
        let f = final_of(p);
        if f != elected {
            return Err(PropertyViolation::new(
                "HΩ",
                "election",
                format!(
                    "correct processes disagree: p{} ends with {} while p{} ends with {}",
                    correct[0], elected, p, f
                ),
            ));
        }
    }
    if !i_correct.contains(&elected.h_leader) {
        return Err(PropertyViolation::new(
            "HΩ",
            "election",
            format!("elected identifier {} is not correct", elected.h_leader),
        ));
    }
    if elected.h_multiplicity != i_correct.multiplicity(&elected.h_leader) {
        return Err(PropertyViolation::new(
            "HΩ",
            "election",
            format!(
                "multiplicity {} reported for {}, ground truth {}",
                elected.h_multiplicity,
                elected.h_leader,
                i_correct.multiplicity(&elected.h_leader)
            ),
        ));
    }
    let mut stabilization = Time::ZERO;
    for &p in &correct {
        let t = stable_suffix_start(&histories[p], |o| *o == elected)
            .expect("final snapshot equals elected by construction");
        stabilization = stabilization.max(t);
    }
    Ok(HOmegaReport {
        leader: elected.h_leader,
        multiplicity: elected.h_multiplicity,
        stabilization,
    })
}

// ---------------------------------------------------------------------------
// HΣ
// ---------------------------------------------------------------------------

/// Report for an `HΣ` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HSigmaReport {
    /// Per-process time from which the liveness predicate held permanently.
    pub liveness_from: Vec<Option<Time>>,
    /// Number of distinct labels observed across the run.
    pub labels_observed: usize,
    /// Number of distinct `(label, multiset)` pairs safety-checked.
    pub pairs_checked: usize,
}

/// The participation map `S(x) = {p | ∃T : x ∈ h_labels_p^T}`, built from
/// the recorded label histories.
#[must_use]
pub fn participation_map(histories: &[History<HSigmaOutput>]) -> BTreeMap<Label, BTreeSet<usize>> {
    let mut s_map: BTreeMap<Label, BTreeSet<usize>> = BTreeMap::new();
    for (p, hist) in histories.iter().enumerate() {
        for (_, snap) in hist {
            for x in &snap.h_labels {
                s_map.entry(x.clone()).or_default().insert(p);
            }
        }
    }
    s_map
}

/// Decides whether two **disjoint** realizations `Q1 ⊆ s1, Q2 ⊆ s2` with
/// `I(Q1) = m1` and `I(Q2) = m2` exist, by per-identity counting.
///
/// Returns `false` either when one of the multisets is not realizable at
/// all, or when every pair of realizations necessarily intersects — both
/// cases satisfy the Safety property for this pair.
#[must_use]
pub fn disjoint_realizations_exist(
    m1: &Multiset<Identity>,
    s1: &BTreeSet<usize>,
    m2: &Multiset<Identity>,
    s2: &BTreeSet<usize>,
    assign: &IdentityAssignment,
) -> bool {
    let ids: BTreeSet<Identity> = m1.support().chain(m2.support()).copied().collect();
    for id in ids {
        let a1 = m1.multiplicity(&id);
        let a2 = m2.multiplicity(&id);
        let in1 = s1.iter().filter(|&&p| assign.id_of(p) == id).count();
        let in2 = s2.iter().filter(|&&p| assign.id_of(p) == id).count();
        let in_union = s1.union(s2).filter(|&&p| assign.id_of(p) == id).count();
        if a1 > in1 || a2 > in2 || a1 + a2 > in_union {
            return false;
        }
    }
    true
}

/// Brute-force version of [`disjoint_realizations_exist`], enumerating all
/// subsets; only usable for small `n`. Exposed for cross-validation tests.
///
/// # Panics
///
/// Panics if the union of `s1` and `s2` has more than 20 processes.
#[must_use]
pub fn disjoint_realizations_exist_brute(
    m1: &Multiset<Identity>,
    s1: &BTreeSet<usize>,
    m2: &Multiset<Identity>,
    s2: &BTreeSet<usize>,
    assign: &IdentityAssignment,
) -> bool {
    let procs: Vec<usize> = s1.union(s2).copied().collect();
    assert!(procs.len() <= 20, "brute-force checker is exponential");
    let realizations = |m: &Multiset<Identity>, s: &BTreeSet<usize>| -> Vec<BTreeSet<usize>> {
        let members: Vec<usize> = s.iter().copied().collect();
        let mut out = Vec::new();
        for mask in 0u32..(1 << members.len()) {
            let q: BTreeSet<usize> = members
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &p)| p)
                .collect();
            if &assign.multiset_of(q.iter().copied()) == m {
                out.push(q);
            }
        }
        out
    };
    let q1s = realizations(m1, s1);
    let q2s = realizations(m2, s2);
    q1s.iter().any(|q1| q2s.iter().any(|q2| q1.is_disjoint(q2)))
}

/// Checks all four `HΣ` properties (§3.2) over recorded histories.
///
/// # Errors
///
/// Returns the first [`PropertyViolation`] found (monotonicity, liveness,
/// or safety; validity is structural in [`HSigmaOutput`]).
pub fn check_h_sigma(
    histories: &[History<HSigmaOutput>],
    sched: &FailureSchedule,
    assign: &IdentityAssignment,
) -> Result<HSigmaReport, PropertyViolation> {
    require_history("HΣ", histories, sched)?;

    // Monotonicity over consecutive snapshots of every process.
    for (p, hist) in histories.iter().enumerate() {
        for w in hist.windows(2) {
            let (prev, next) = (&w[0].1, &w[1].1);
            if !prev.h_labels.is_subset(&next.h_labels) {
                return Err(PropertyViolation::new(
                    "HΣ",
                    "monotonicity",
                    format!(
                        "process {p}: h_labels shrank between {} and {}",
                        w[0].0, w[1].0
                    ),
                ));
            }
            for (x, m) in &prev.h_quora {
                match next.h_quora.get(x) {
                    Some(m_next) if m_next.is_subset(m) => {}
                    Some(_) => {
                        return Err(PropertyViolation::new(
                            "HΣ",
                            "monotonicity",
                            format!("process {p}: quorum multiset for {x} grew at {}", w[1].0),
                        ));
                    }
                    None => {
                        return Err(PropertyViolation::new(
                            "HΣ",
                            "monotonicity",
                            format!("process {p}: pair for {x} disappeared at {}", w[1].0),
                        ));
                    }
                }
            }
        }
    }

    let s_map = participation_map(histories);
    let empty = BTreeSet::new();
    let correct: BTreeSet<usize> = sched.correct_set().into_iter().collect();

    // Liveness: eventually permanently, some pair (x, m) has
    // m ⊆ I(S(x) ∩ Correct).
    let mut liveness_from = vec![None; sched.n()];
    for p in sched.correct_set() {
        let satisfied = |snap: &HSigmaOutput| {
            snap.h_quora.iter().any(|(x, m)| {
                let s_x = s_map.get(x).unwrap_or(&empty);
                let live_ids = assign.multiset_of(s_x.intersection(&correct).copied());
                m.is_subset(&live_ids)
            })
        };
        match stable_suffix_start(&histories[p], satisfied) {
            Some(t) => liveness_from[p] = Some(t),
            None => {
                return Err(PropertyViolation::new(
                    "HΣ",
                    "liveness",
                    format!(
                        "process {p}: final h_quora has no pair (x,m) with m ⊆ I(S(x) ∩ Correct)"
                    ),
                ));
            }
        }
    }

    // Safety: over every (label, multiset) version ever output anywhere.
    let mut all_pairs: BTreeSet<(Label, Multiset<Identity>)> = BTreeSet::new();
    for hist in histories {
        for (_, snap) in hist {
            for (x, m) in &snap.h_quora {
                all_pairs.insert((x.clone(), m.clone()));
            }
        }
    }
    let pairs: Vec<&(Label, Multiset<Identity>)> = all_pairs.iter().collect();
    for i in 0..pairs.len() {
        for j in i..pairs.len() {
            let (x1, m1) = pairs[i];
            let (x2, m2) = pairs[j];
            let s1 = s_map.get(x1).unwrap_or(&empty);
            let s2 = s_map.get(x2).unwrap_or(&empty);
            if disjoint_realizations_exist(m1, s1, m2, s2, assign) {
                return Err(PropertyViolation::new(
                    "HΣ",
                    "safety",
                    format!("pairs ({x1},{m1}) and ({x2},{m2}) admit disjoint quora"),
                ));
            }
        }
    }

    Ok(HSigmaReport {
        liveness_from,
        labels_observed: s_map.len(),
        pairs_checked: pairs.len(),
    })
}

// ---------------------------------------------------------------------------
// Σ
// ---------------------------------------------------------------------------

/// Report for a `Σ` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigmaReport {
    /// Per-process time from which `trusted ⊆ I(Correct)` held permanently.
    pub liveness_from: Vec<Option<Time>>,
    /// Number of distinct trusted multisets safety-checked.
    pub values_checked: usize,
}

/// Checks `Σ` liveness and safety over recorded histories.
///
/// # Errors
///
/// Returns a [`PropertyViolation`] when two outputs have empty
/// intersection or some correct process never converges into `I(Correct)`.
pub fn check_sigma(
    histories: &[History<SigmaOutput>],
    sched: &FailureSchedule,
    assign: &IdentityAssignment,
) -> Result<SigmaReport, PropertyViolation> {
    require_history("Σ", histories, sched)?;
    let i_correct = sched.i_correct(assign);
    let mut liveness_from = vec![None; sched.n()];
    for p in sched.correct_set() {
        match stable_suffix_start(&histories[p], |o| o.trusted.is_subset(&i_correct)) {
            Some(t) => liveness_from[p] = Some(t),
            None => {
                return Err(PropertyViolation::new(
                    "Σ",
                    "liveness",
                    format!(
                        "process {p} ended with trusted={} ⊄ I(Correct)={}",
                        histories[p].last().expect("nonempty").1.trusted,
                        i_correct
                    ),
                ));
            }
        }
    }
    let mut values: BTreeSet<Multiset<Identity>> = BTreeSet::new();
    for hist in histories {
        for (_, snap) in hist {
            values.insert(snap.trusted.clone());
        }
    }
    let vals: Vec<&Multiset<Identity>> = values.iter().collect();
    for i in 0..vals.len() {
        for j in i..vals.len() {
            if vals[i].is_disjoint(vals[j]) {
                return Err(PropertyViolation::new(
                    "Σ",
                    "safety",
                    format!("quora {} and {} do not intersect", vals[i], vals[j]),
                ));
            }
        }
    }
    Ok(SigmaReport {
        liveness_from,
        values_checked: vals.len(),
    })
}

// ---------------------------------------------------------------------------
// Ω / AΩ
// ---------------------------------------------------------------------------

/// Report for an `Ω` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmegaReport {
    /// The elected identifier.
    pub leader: Identity,
    /// Time from which all correct processes output it permanently.
    pub stabilization: Time,
}

/// Checks the `Ω` election property (unique-identifier systems).
///
/// # Errors
///
/// Returns a [`PropertyViolation`] when correct processes end with
/// different leaders or with a faulty leader.
pub fn check_omega(
    histories: &[History<OmegaOutput>],
    sched: &FailureSchedule,
    assign: &IdentityAssignment,
) -> Result<OmegaReport, PropertyViolation> {
    require_history("Ω", histories, sched)?;
    let i_correct = sched.i_correct(assign);
    let correct = sched.correct_set();
    let elected = histories[correct[0]].last().expect("nonempty").1;
    for &p in &correct {
        let f = histories[p].last().expect("nonempty").1;
        if f != elected {
            return Err(PropertyViolation::new(
                "Ω",
                "election",
                format!(
                    "p{} ends with {} but p{} ends with {}",
                    correct[0], elected, p, f
                ),
            ));
        }
    }
    if !i_correct.contains(&elected.leader) {
        return Err(PropertyViolation::new(
            "Ω",
            "election",
            format!("elected identifier {} is not correct", elected.leader),
        ));
    }
    let mut stabilization = Time::ZERO;
    for &p in &correct {
        let t = stable_suffix_start(&histories[p], |o| *o == elected)
            .expect("final snapshot matches by construction");
        stabilization = stabilization.max(t);
    }
    Ok(OmegaReport {
        leader: elected.leader,
        stabilization,
    })
}

/// Report for an `AΩ` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AOmegaReport {
    /// The process index whose flag is eventually permanently `true`.
    pub leader_process: usize,
    /// Time from which the single-leader configuration held permanently.
    pub stabilization: Time,
}

/// Checks the `AΩ` election property: eventually exactly one correct
/// process's Boolean is permanently `true` and all other correct processes'
/// are permanently `false`.
///
/// # Errors
///
/// Returns a [`PropertyViolation`] when the final configuration does not
/// have exactly one correct leader.
pub fn check_a_omega(
    histories: &[History<AOmegaOutput>],
    sched: &FailureSchedule,
) -> Result<AOmegaReport, PropertyViolation> {
    require_history("AΩ", histories, sched)?;
    let correct = sched.correct_set();
    let leaders: Vec<usize> = correct
        .iter()
        .copied()
        .filter(|&p| histories[p].last().expect("nonempty").1.a_leader)
        .collect();
    if leaders.len() != 1 {
        return Err(PropertyViolation::new(
            "AΩ",
            "election",
            format!("{} correct processes end with a_leader=true", leaders.len()),
        ));
    }
    let leader_process = leaders[0];
    let mut stabilization = Time::ZERO;
    for &p in &correct {
        let want = p == leader_process;
        let t = stable_suffix_start(&histories[p], |o| o.a_leader == want)
            .expect("final snapshot matches by construction");
        stabilization = stabilization.max(t);
    }
    Ok(AOmegaReport {
        leader_process,
        stabilization,
    })
}

// ---------------------------------------------------------------------------
// AP / AΣ
// ---------------------------------------------------------------------------

/// Report for an `AP` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct APReport {
    /// Time from which every correct process output `|Correct|` permanently.
    pub stabilization: Time,
}

/// Checks `AP`: safety (`anap_p^T ≥ |Alive^T|` at **every** snapshot) and
/// liveness (correct processes eventually output `|Correct|` permanently).
///
/// # Errors
///
/// Returns a [`PropertyViolation`] on any under-count or missed convergence.
pub fn check_ap(
    histories: &[History<APOutput>],
    sched: &FailureSchedule,
) -> Result<APReport, PropertyViolation> {
    require_history("AP", histories, sched)?;
    for (p, hist) in histories.iter().enumerate() {
        for (t, snap) in hist {
            let alive = sched.alive_at(*t).len();
            if snap.anap < alive {
                return Err(PropertyViolation::new(
                    "AP",
                    "safety",
                    format!(
                        "process {p} output anap={} at {t} but {alive} were alive",
                        snap.anap
                    ),
                ));
            }
        }
    }
    let c = sched.num_correct();
    let mut stabilization = Time::ZERO;
    for p in sched.correct_set() {
        match stable_suffix_start(&histories[p], |o| o.anap == c) {
            Some(t) => stabilization = stabilization.max(t),
            None => {
                return Err(PropertyViolation::new(
                    "AP",
                    "liveness",
                    format!(
                        "process {p} ended with anap={} but |Correct|={c}",
                        histories[p].last().expect("nonempty").1.anap
                    ),
                ));
            }
        }
    }
    Ok(APReport { stabilization })
}

/// Report for an `AΣ` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ASigmaReport {
    /// Per-process time from which the liveness predicate held permanently.
    pub liveness_from: Vec<Option<Time>>,
    /// Number of distinct `(label, count)` pairs safety-checked.
    pub pairs_checked: usize,
}

/// Checks the `AΣ` properties over recorded histories.
///
/// `SA(x)` is reconstructed as every process that ever carried a pair with
/// label `x`.
///
/// # Errors
///
/// Returns the first [`PropertyViolation`] found.
pub fn check_a_sigma(
    histories: &[History<ASigmaOutput>],
    sched: &FailureSchedule,
) -> Result<ASigmaReport, PropertyViolation> {
    require_history("AΣ", histories, sched)?;

    // Monotonicity: a pair (x, y) may only be followed by (x, y') with y' <= y.
    for (p, hist) in histories.iter().enumerate() {
        for w in hist.windows(2) {
            for (x, y) in &w[0].1.a_sigma {
                match w[1].1.a_sigma.get(x) {
                    Some(y_next) if y_next <= y => {}
                    _ => {
                        return Err(PropertyViolation::new(
                            "AΣ",
                            "monotonicity",
                            format!("process {p}: pair for {x} grew or vanished at {}", w[1].0),
                        ));
                    }
                }
            }
        }
    }

    // SA(x): every process that ever held a pair labelled x.
    let mut sa: BTreeMap<Label, BTreeSet<usize>> = BTreeMap::new();
    for (p, hist) in histories.iter().enumerate() {
        for (_, snap) in hist {
            for x in snap.a_sigma.keys() {
                sa.entry(x.clone()).or_default().insert(p);
            }
        }
    }
    let empty = BTreeSet::new();
    let correct: BTreeSet<usize> = sched.correct_set().into_iter().collect();

    let mut liveness_from = vec![None; sched.n()];
    for p in sched.correct_set() {
        let satisfied = |snap: &ASigmaOutput| {
            snap.a_sigma.iter().any(|(x, &y)| {
                let s = sa.get(x).unwrap_or(&empty);
                s.intersection(&correct).count() >= y
            })
        };
        match stable_suffix_start(&histories[p], satisfied) {
            Some(t) => liveness_from[p] = Some(t),
            None => {
                return Err(PropertyViolation::new(
                    "AΣ",
                    "liveness",
                    format!(
                        "process {p}: no pair (x,y) with y live-correct participants at the end"
                    ),
                ));
            }
        }
    }

    let mut all_pairs: BTreeSet<(Label, usize)> = BTreeSet::new();
    for hist in histories {
        for (_, snap) in hist {
            for (x, y) in &snap.a_sigma {
                all_pairs.insert((x.clone(), *y));
            }
        }
    }
    let pairs: Vec<&(Label, usize)> = all_pairs.iter().collect();
    for i in 0..pairs.len() {
        for j in i..pairs.len() {
            let (x1, y1) = pairs[i];
            let (x2, y2) = pairs[j];
            let s1 = sa.get(x1).unwrap_or(&empty);
            let s2 = sa.get(x2).unwrap_or(&empty);
            let union = s1.union(s2).count();
            if *y1 <= s1.len() && *y2 <= s2.len() && y1 + y2 <= union {
                return Err(PropertyViolation::new(
                    "AΣ",
                    "safety",
                    format!("pairs ({x1},{y1}) and ({x2},{y2}) admit disjoint quora"),
                ));
            }
        }
    }

    Ok(ASigmaReport {
        liveness_from,
        pairs_checked: pairs.len(),
    })
}

// ---------------------------------------------------------------------------
// E
// ---------------------------------------------------------------------------

/// Report for a class-`E` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EListReport {
    /// Time from which the prefix property held at every correct process.
    pub stabilization: Time,
}

/// Checks Definition 1: eventually, at every correct process, every correct
/// identifier has rank `≤ |Correct|` permanently.
///
/// # Errors
///
/// Returns a [`PropertyViolation`] when identifiers are not unique or the
/// prefix property fails at the end of the run.
pub fn check_e_list(
    histories: &[History<EListOutput>],
    sched: &FailureSchedule,
    assign: &IdentityAssignment,
) -> Result<EListReport, PropertyViolation> {
    require_history("E", histories, sched)?;
    if !assign.is_unique() {
        return Err(PropertyViolation::new(
            "E",
            "input",
            "class E is only defined for unique identifiers".to_string(),
        ));
    }
    let correct = sched.correct_set();
    let c = correct.len();
    let correct_ids: Vec<Identity> = correct.iter().map(|&q| assign.id_of(q)).collect();
    let prefix_ok = |o: &EListOutput| {
        correct_ids
            .iter()
            .all(|&id| o.rank(id).is_some_and(|r| r <= c))
    };
    let mut stabilization = Time::ZERO;
    for &p in &correct {
        match stable_suffix_start(&histories[p], prefix_ok) {
            Some(t) => stabilization = stabilization.max(t),
            None => {
                return Err(PropertyViolation::new(
                    "E",
                    "liveness",
                    format!(
                        "process {p} ends with {} where some correct id has rank > {c}",
                        histories[p].last().expect("nonempty").1
                    ),
                ));
            }
        }
    }
    Ok(EListReport { stabilization })
}

// ---------------------------------------------------------------------------
// Consensus
// ---------------------------------------------------------------------------

/// What a consensus run produced: the proposals and each process's decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusOutcome {
    /// Proposal of each process (indexed by process).
    pub proposals: Vec<u64>,
    /// Decision of each process: `(time, value)`, or `None` if undecided.
    pub decisions: Vec<Option<(Time, u64)>>,
}

/// Report for a successful consensus run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusReport {
    /// The common decided value.
    pub value: u64,
    /// The last decision time among correct processes.
    pub last_decision: Time,
    /// The first decision time in the run.
    pub first_decision: Time,
}

/// Checks Validity, Agreement, and Termination for a consensus run.
///
/// # Errors
///
/// Returns a [`PropertyViolation`] naming the violated consensus property.
pub fn check_consensus(
    outcome: &ConsensusOutcome,
    sched: &FailureSchedule,
) -> Result<ConsensusReport, PropertyViolation> {
    if outcome.proposals.len() != sched.n() || outcome.decisions.len() != sched.n() {
        return Err(PropertyViolation::new(
            "consensus",
            "input",
            "proposals/decisions length mismatch".to_string(),
        ));
    }
    let mut value: Option<u64> = None;
    let mut first = Time::MAX;
    let mut last = Time::ZERO;
    for (p, d) in outcome.decisions.iter().enumerate() {
        if let Some((t, v)) = d {
            if !outcome.proposals.contains(v) {
                return Err(PropertyViolation::new(
                    "consensus",
                    "validity",
                    format!("process {p} decided {v}, which no process proposed"),
                ));
            }
            match value {
                None => value = Some(*v),
                Some(w) if w == *v => {}
                Some(w) => {
                    return Err(PropertyViolation::new(
                        "consensus",
                        "agreement",
                        format!("process {p} decided {v} but another decided {w}"),
                    ));
                }
            }
            first = first.min(*t);
            if sched.is_correct(p) {
                last = last.max(*t);
            }
        }
    }
    for p in sched.correct_set() {
        if outcome.decisions[p].is_none() {
            return Err(PropertyViolation::new(
                "consensus",
                "termination",
                format!("correct process {p} never decided"),
            ));
        }
    }
    let value = value.expect("at least one correct process exists and decided");
    Ok(ConsensusReport {
        value,
        last_decision: last,
        first_decision: first,
    })
}

/// Checks a consensus run against **BFT validity**: Agreement and
/// Termination always, Validity only when the run had no corrupt process.
///
/// The paper's crash-model validity — every decided value was proposed by
/// *some* process — is provably unattainable against an unsigned
/// equivocator, and demanding it would mark every Byzantine-tolerant
/// protocol broken. The argument is an indistinguishability one: let a
/// corrupt coordinator-label carrier equivocate, delivering a forged
/// estimate `w` (a value nobody proposed) to a majority of receivers in
/// one consistent broadcast. Each victim's view of that broadcast is
/// *identical* to its view of an honest run in which the sender genuinely
/// proposed `w` — messages carry no unforgeable binding to their sender's
/// true state, because homonymous senders share identifiers and the model
/// has no signatures. In the honest twin run the protocol **must** be
/// able to adopt and decide `w` (otherwise it cannot terminate at all),
/// so in the real run the same protocol steps decide the forged `w`.
/// Multivalued BFT definitions (PBFT's, Tendermint's) therefore promise
/// exactly what is checked here: agreement among all deciders,
/// termination of every correct process, and full validity in runs where
/// no sender lies — which keeps the crash families of the chaos sweep
/// checked at full paper strength.
///
/// `corrupt` is the number of Byzantine senders the failure schedule's
/// run actually contained (a corrupt process still *runs* the honest
/// program, so it appears in `sched` as correct and is held to
/// termination like everyone else).
///
/// # Errors
///
/// Returns a [`PropertyViolation`] naming the violated consensus
/// property (`"agreement"`, `"termination"`, or — in corrupt-free runs —
/// `"validity"`).
pub fn check_byzantine_consensus(
    outcome: &ConsensusOutcome,
    sched: &FailureSchedule,
    corrupt: usize,
) -> Result<ConsensusReport, PropertyViolation> {
    if corrupt == 0 {
        return check_consensus(outcome, sched);
    }
    if outcome.proposals.len() != sched.n() || outcome.decisions.len() != sched.n() {
        return Err(PropertyViolation::new(
            "consensus",
            "input",
            "proposals/decisions length mismatch".to_string(),
        ));
    }
    let mut value: Option<u64> = None;
    let mut first = Time::MAX;
    let mut last = Time::ZERO;
    for (p, d) in outcome.decisions.iter().enumerate() {
        if let Some((t, v)) = d {
            match value {
                None => value = Some(*v),
                Some(w) if w == *v => {}
                Some(w) => {
                    return Err(PropertyViolation::new(
                        "consensus",
                        "agreement",
                        format!("process {p} decided {v} but another decided {w}"),
                    ));
                }
            }
            first = first.min(*t);
            if sched.is_correct(p) {
                last = last.max(*t);
            }
        }
    }
    for p in sched.correct_set() {
        if outcome.decisions[p].is_none() {
            return Err(PropertyViolation::new(
                "consensus",
                "termination",
                format!("correct process {p} never decided"),
            ));
        }
    }
    let value = value.expect("at least one correct process exists and decided");
    Ok(ConsensusReport {
        value,
        last_decision: last,
        first_decision: first,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist<T>(items: Vec<(u64, T)>) -> History<T> {
        items
            .into_iter()
            .map(|(t, o)| (Time::from_ticks(t), o))
            .collect()
    }

    fn two_proc_setup() -> (FailureSchedule, IdentityAssignment) {
        (FailureSchedule::none(2), IdentityAssignment::unique(2))
    }

    #[test]
    fn classify_run_splits_safety_from_liveness() {
        let live = PropertyViolation::new("◇HP", "liveness", "never converged".into());
        let safe = PropertyViolation::new("consensus", "agreement", "two values".into());
        assert!(live.is_liveness());
        assert!(!safe.is_liveness());
        let clean = RunCondition::clean_from(Time::from_ticks(10));
        let dirty = RunCondition::never_clean();

        // Safety failures falsify regardless of the run's condition.
        for cond in [clean, dirty] {
            let v = classify_run::<()>(cond, Err(safe.clone()));
            assert_eq!(v, RunVerdict::SafetyViolated(safe.clone()));
            assert!(v.is_falsifying());
            assert_eq!(v.violation(), Some(&safe));
        }
        // Liveness failures falsify only eventually-clean runs.
        let required = classify_run::<()>(clean, Err(live.clone()));
        assert_eq!(required, RunVerdict::LivenessViolated(live.clone()));
        assert!(required.is_falsifying());
        let excused = classify_run::<()>(dirty, Err(live.clone()));
        assert_eq!(excused, RunVerdict::LivenessExcused(live.clone()));
        assert!(!excused.is_falsifying());
        // Passing runs pass.
        let pass = classify_run(dirty, Ok(7u64));
        assert_eq!(pass, RunVerdict::Pass(7));
        assert!(!pass.is_falsifying() && pass.violation().is_none());
    }

    #[test]
    fn byzantine_runs_demonstrate_rather_than_falsify_crash_only_stacks() {
        let live = PropertyViolation::new("◇HP", "liveness", "never converged".into());
        let safe = PropertyViolation::new("consensus", "agreement", "two values".into());
        let cond = RunCondition::clean_from(Time::from_ticks(10)).with_corrupt(1);
        // Any violation — safety or liveness — in a corrupt run of a
        // crash-only algorithm is an expected demonstration.
        for v in [&live, &safe] {
            let verdict = classify_run::<()>(cond, Err(v.clone()));
            assert_eq!(verdict, RunVerdict::ByzantineExpected(v.clone()));
            assert!(!verdict.is_falsifying());
            assert_eq!(verdict.violation(), Some(v));
        }
        // A clean Byzantine run that still satisfies everything passes.
        assert_eq!(classify_run(cond, Ok(3u64)), RunVerdict::Pass(3));
    }

    #[test]
    fn byzantine_tolerance_claims_restore_falsification() {
        let safe = PropertyViolation::new("consensus", "agreement", "two values".into());
        let live = PropertyViolation::new("consensus", "termination", "stuck".into());
        let cond = RunCondition::clean_from(Time::ZERO)
            .with_corrupt(2)
            .claiming_byzantine_tolerance(7); // 3·2 < 7
        assert_eq!(
            classify_run::<()>(cond, Err(safe.clone())),
            RunVerdict::SafetyViolated(safe)
        );
        assert_eq!(
            classify_run::<()>(cond, Err(live.clone())),
            RunVerdict::LivenessViolated(live.clone())
        );
        let dirty = RunCondition::never_clean()
            .with_corrupt(1)
            .claiming_byzantine_tolerance(4);
        assert_eq!(
            classify_run::<()>(dirty, Err(live.clone())),
            RunVerdict::LivenessExcused(live)
        );
    }

    #[test]
    #[should_panic(expected = "f < n/3")]
    fn tolerance_claims_outside_the_bft_envelope_are_rejected() {
        let _ = RunCondition::clean_from(Time::ZERO)
            .with_corrupt(2)
            .claiming_byzantine_tolerance(6); // 3·2 = 6, not < 6
    }

    #[test]
    fn termination_and_election_count_as_liveness() {
        for prop in ["termination", "election", "liveness"] {
            assert!(PropertyViolation::new("x", prop, String::new()).is_liveness());
        }
        for prop in ["safety", "validity", "agreement", "monotonicity", "input"] {
            assert!(!PropertyViolation::new("x", prop, String::new()).is_liveness());
        }
    }

    #[test]
    fn evt_hp_accepts_converged_run() {
        let (sched, assign) = two_proc_setup();
        let target = sched.i_correct(&assign);
        let wrong: Multiset<Identity> = [Identity::new(9)].into_iter().collect();
        let histories = vec![
            hist(vec![
                (0, EvtHPOutput::new(wrong.clone())),
                (5, EvtHPOutput::new(target.clone())),
            ]),
            hist(vec![(0, EvtHPOutput::new(target.clone()))]),
        ];
        let rep = check_evt_hp(&histories, &sched, &assign).expect("valid");
        assert_eq!(rep.stabilization, Time::from_ticks(5));
        assert_eq!(rep.convergence[1], Some(Time::ZERO));
    }

    #[test]
    fn evt_hp_rejects_unconverged_run() {
        let (sched, assign) = two_proc_setup();
        let wrong: Multiset<Identity> = [Identity::new(9)].into_iter().collect();
        let histories = vec![
            hist(vec![(0, EvtHPOutput::new(wrong))]),
            hist(vec![(0, EvtHPOutput::new(sched.i_correct(&assign)))]),
        ];
        let err = check_evt_hp(&histories, &sched, &assign).unwrap_err();
        assert_eq!(err.property, "liveness");
    }

    #[test]
    fn h_omega_accepts_agreeing_run() {
        let sched = FailureSchedule::none(3).with_crash(2, Time::from_ticks(1));
        let assign = IdentityAssignment::round_robin(3, 2); // A B A; p2 (A) crashes
        let good = HOmegaOutput::new(Identity::new(0), 1);
        let bad = HOmegaOutput::new(Identity::new(1), 2);
        let histories = vec![
            hist(vec![(0, bad), (4, good)]),
            hist(vec![(0, good)]),
            hist(vec![(0, bad)]),
        ];
        let rep = check_h_omega(&histories, &sched, &assign).expect("valid");
        assert_eq!(rep.leader, Identity::new(0));
        assert_eq!(rep.multiplicity, 1);
        assert_eq!(rep.stabilization, Time::from_ticks(4));
    }

    #[test]
    fn h_omega_rejects_wrong_multiplicity() {
        let (sched, assign) = two_proc_setup();
        let out = HOmegaOutput::new(Identity::new(0), 2); // mult of id 0 is 1
        let histories = vec![hist(vec![(0, out)]), hist(vec![(0, out)])];
        let err = check_h_omega(&histories, &sched, &assign).unwrap_err();
        assert!(err.detail.contains("multiplicity"));
    }

    #[test]
    fn disjoint_realizations_counting_matches_brute_force() {
        // 4 processes: ids A A B B; quorum multiset {A, B}.
        let assign = IdentityAssignment::round_robin(4, 2);
        let m: Multiset<Identity> = [Identity::new(0), Identity::new(1)].into_iter().collect();
        let all: BTreeSet<usize> = (0..4).collect();
        assert_eq!(
            disjoint_realizations_exist(&m, &all, &m, &all, &assign),
            disjoint_realizations_exist_brute(&m, &all, &m, &all, &assign)
        );
        // {A,B} twice from 4 processes: {0,1} and {2,3} are disjoint.
        assert!(disjoint_realizations_exist(&m, &all, &m, &all, &assign));

        // Whole multiset {A,A,B,B}: only one realization, intersects itself.
        let whole = assign.multiset();
        assert!(!disjoint_realizations_exist(
            &whole, &all, &whole, &all, &assign
        ));
        assert!(!disjoint_realizations_exist_brute(
            &whole, &all, &whole, &all, &assign
        ));
    }

    #[test]
    fn h_sigma_detects_safety_violation() {
        // 4 anonymous-ish processes, single label whose quorum multiset can be
        // realized by two disjoint halves.
        let sched = FailureSchedule::none(4);
        let assign = IdentityAssignment::anonymous(4);
        let label = Label::opaque(0);
        let m: Multiset<Identity> = [(Identity::BOTTOM, 2)].into_iter().collect();
        let mut out = HSigmaOutput::new();
        out.insert_quorum(label.clone(), m);
        out.insert_label(label);
        let histories: Vec<History<HSigmaOutput>> =
            (0..4).map(|_| hist(vec![(0, out.clone())])).collect();
        let err = check_h_sigma(&histories, &sched, &assign).unwrap_err();
        assert_eq!(err.property, "safety");
    }

    #[test]
    fn h_sigma_accepts_fig7_style_run() {
        // Labels are the alive multisets themselves; quorum = everyone.
        let sched = FailureSchedule::none(3);
        let assign = IdentityAssignment::round_robin(3, 2);
        let whole = assign.multiset();
        let label = Label::id_multiset(whole.clone());
        let mut out = HSigmaOutput::new();
        out.insert_quorum(label.clone(), whole);
        out.insert_label(label);
        let histories: Vec<History<HSigmaOutput>> =
            (0..3).map(|_| hist(vec![(0, out.clone())])).collect();
        let rep = check_h_sigma(&histories, &sched, &assign).expect("valid");
        assert_eq!(rep.labels_observed, 1);
        assert_eq!(rep.pairs_checked, 1);
    }

    #[test]
    fn h_sigma_rejects_monotonicity_break() {
        let sched = FailureSchedule::none(1);
        let assign = IdentityAssignment::unique(1);
        let label = Label::opaque(7);
        let mut with = HSigmaOutput::new();
        with.insert_label(label.clone());
        with.insert_quorum(label, assign.multiset());
        let without = HSigmaOutput::new();
        let histories = vec![hist(vec![(0, with), (1, without)])];
        let err = check_h_sigma(&histories, &sched, &assign).unwrap_err();
        assert_eq!(err.property, "monotonicity");
    }

    #[test]
    fn sigma_rejects_disjoint_quora() {
        let (sched, assign) = two_proc_setup();
        let a = SigmaOutput::new([Identity::new(0)].into_iter().collect());
        let b = SigmaOutput::new([Identity::new(1)].into_iter().collect());
        let histories = vec![hist(vec![(0, a)]), hist(vec![(0, b)])];
        let err = check_sigma(&histories, &sched, &assign).unwrap_err();
        assert_eq!(err.property, "safety");
    }

    #[test]
    fn sigma_accepts_overlapping_quora() {
        let (sched, assign) = two_proc_setup();
        let both: Multiset<Identity> = assign.multiset();
        let a = SigmaOutput::new(both.clone());
        let histories = vec![hist(vec![(0, a.clone())]), hist(vec![(0, a)])];
        check_sigma(&histories, &sched, &assign).expect("valid");
    }

    #[test]
    fn ap_rejects_undercount() {
        let sched = FailureSchedule::none(3);
        let histories = vec![
            hist(vec![(0, APOutput::new(2))]), // 3 alive at t0
            hist(vec![(0, APOutput::new(3))]),
            hist(vec![(0, APOutput::new(3))]),
        ];
        let err = check_ap(&histories, &sched).unwrap_err();
        assert_eq!(err.property, "safety");
    }

    #[test]
    fn ap_accepts_tightening_run() {
        let sched = FailureSchedule::none(2).with_crash(1, Time::from_ticks(3));
        let histories = vec![
            hist(vec![(0, APOutput::new(2)), (5, APOutput::new(1))]),
            hist(vec![(0, APOutput::new(2))]),
        ];
        let rep = check_ap(&histories, &sched).expect("valid");
        assert_eq!(rep.stabilization, Time::from_ticks(5));
    }

    #[test]
    fn e_list_checks_prefix_property() {
        let sched = FailureSchedule::none(3).with_crash(2, Time::from_ticks(1));
        let assign = IdentityAssignment::unique(3);
        let mut good = EListOutput::new();
        good.move_to_front(Identity::new(2)); // crashed id at rank 3 after:
        good.move_to_front(Identity::new(1));
        good.move_to_front(Identity::new(0));
        let histories = vec![
            hist(vec![(0, good.clone())]),
            hist(vec![(0, good.clone())]),
            hist(vec![(0, good)]),
        ];
        check_e_list(&histories, &sched, &assign).expect("valid");
    }

    #[test]
    fn e_list_rejects_correct_id_out_of_prefix() {
        let sched = FailureSchedule::none(3).with_crash(2, Time::from_ticks(1));
        let assign = IdentityAssignment::unique(3);
        let mut bad = EListOutput::new();
        bad.move_to_front(Identity::new(1)); // rank 3 at the end
        bad.move_to_front(Identity::new(2));
        bad.move_to_front(Identity::new(0));
        let histories = vec![
            hist(vec![(0, bad.clone())]),
            hist(vec![(0, bad.clone())]),
            hist(vec![(0, bad)]),
        ];
        let err = check_e_list(&histories, &sched, &assign).unwrap_err();
        assert_eq!(err.property, "liveness");
    }

    #[test]
    fn consensus_checker_catches_disagreement() {
        let sched = FailureSchedule::none(2);
        let outcome = ConsensusOutcome {
            proposals: vec![1, 2],
            decisions: vec![
                Some((Time::from_ticks(4), 1)),
                Some((Time::from_ticks(5), 2)),
            ],
        };
        let err = check_consensus(&outcome, &sched).unwrap_err();
        assert_eq!(err.property, "agreement");
    }

    #[test]
    fn consensus_checker_catches_invalid_value() {
        let sched = FailureSchedule::none(1);
        let outcome = ConsensusOutcome {
            proposals: vec![1],
            decisions: vec![Some((Time::ZERO, 9))],
        };
        let err = check_consensus(&outcome, &sched).unwrap_err();
        assert_eq!(err.property, "validity");
    }

    #[test]
    fn consensus_checker_catches_missing_decision() {
        let sched = FailureSchedule::none(2);
        let outcome = ConsensusOutcome {
            proposals: vec![1, 2],
            decisions: vec![Some((Time::ZERO, 1)), None],
        };
        let err = check_consensus(&outcome, &sched).unwrap_err();
        assert_eq!(err.property, "termination");
    }

    #[test]
    fn consensus_checker_accepts_good_run() {
        let sched = FailureSchedule::none(2).with_crash(1, Time::ZERO);
        let outcome = ConsensusOutcome {
            proposals: vec![3, 4],
            decisions: vec![Some((Time::from_ticks(7), 4)), None],
        };
        let rep = check_consensus(&outcome, &sched).expect("valid");
        assert_eq!(rep.value, 4);
        assert_eq!(rep.last_decision, Time::from_ticks(7));
    }

    #[test]
    fn byzantine_checker_waives_validity_only_under_corruption() {
        let sched = FailureSchedule::none(2);
        // 99 was proposed by nobody: a forged value decided unanimously.
        let outcome = ConsensusOutcome {
            proposals: vec![1, 2],
            decisions: vec![
                Some((Time::from_ticks(3), 99)),
                Some((Time::from_ticks(5), 99)),
            ],
        };
        // With a corrupt sender in the run, BFT validity accepts it...
        let rep = check_byzantine_consensus(&outcome, &sched, 1).expect("BFT-valid");
        assert_eq!(rep.value, 99);
        assert_eq!(rep.last_decision, Time::from_ticks(5));
        // ...but a corrupt-free run is held to full crash validity.
        let err = check_byzantine_consensus(&outcome, &sched, 0).unwrap_err();
        assert_eq!(err.property, "validity");
    }

    #[test]
    fn byzantine_checker_still_enforces_agreement_and_termination() {
        let sched = FailureSchedule::none(2);
        let split = ConsensusOutcome {
            proposals: vec![1, 2],
            decisions: vec![Some((Time::ZERO, 1)), Some((Time::ZERO, 2))],
        };
        let err = check_byzantine_consensus(&split, &sched, 1).unwrap_err();
        assert_eq!(err.property, "agreement");
        let hung = ConsensusOutcome {
            proposals: vec![1, 2],
            decisions: vec![Some((Time::ZERO, 1)), None],
        };
        let err = check_byzantine_consensus(&hung, &sched, 1).unwrap_err();
        assert_eq!(err.property, "termination");
    }

    #[test]
    fn a_omega_requires_exactly_one_leader() {
        let sched = FailureSchedule::none(2);
        let t = AOmegaOutput::new(true);
        let f = AOmegaOutput::new(false);
        let ok = vec![hist(vec![(0, t)]), hist(vec![(0, f)])];
        check_a_omega(&ok, &sched).expect("valid");
        let bad = vec![hist(vec![(0, t)]), hist(vec![(0, t)])];
        assert!(check_a_omega(&bad, &sched).is_err());
    }

    #[test]
    fn a_sigma_detects_disjoint_quora() {
        let sched = FailureSchedule::none(4);
        let mut o1 = ASigmaOutput::new();
        o1.insert(Label::opaque(1), 2);
        let mut o2 = ASigmaOutput::new();
        o2.insert(Label::opaque(2), 2);
        // Label 1 known to p0,p1; label 2 known to p2,p3: disjoint quora.
        let histories = vec![
            hist(vec![(0, o1.clone())]),
            hist(vec![(0, o1)]),
            hist(vec![(0, o2.clone())]),
            hist(vec![(0, o2)]),
        ];
        let err = check_a_sigma(&histories, &sched).unwrap_err();
        assert_eq!(err.property, "safety");
    }

    #[test]
    fn a_sigma_accepts_global_quorum() {
        let sched = FailureSchedule::none(3);
        let mut o = ASigmaOutput::new();
        o.insert(Label::opaque(1), 3);
        let histories: Vec<History<ASigmaOutput>> =
            (0..3).map(|_| hist(vec![(0, o.clone())])).collect();
        check_a_sigma(&histories, &sched).expect("valid");
    }
}
