//! Failure patterns: which process crashes, and when.
//!
//! A **failure schedule** is the ground truth of a run: it is known to the
//! simulator, the oracles and the property checkers, never to algorithm
//! code. A process that crashes at time `T` takes no step at or after `T`;
//! a process with no crash time is *correct*. A process that has not crashed
//! yet at `T` is *alive* at `T` (so every correct process is always alive).

use core::fmt;
use std::sync::Arc;

use crate::identity::IdentityAssignment;
use crate::multiset::Multiset;
use crate::time::Time;
use crate::Identity;

/// Crash times for the `n` processes of a run.
///
/// # Examples
///
/// ```
/// use homonym_core::failure::FailureSchedule;
/// use homonym_core::time::Time;
///
/// let sched = FailureSchedule::none(4).with_crash(2, Time::from_ticks(10));
/// assert!(sched.is_alive(2, Time::from_ticks(9)));
/// assert!(!sched.is_alive(2, Time::from_ticks(10)));
/// assert_eq!(sched.correct_set(), vec![0, 1, 3]);
/// ```
/// Cloning is O(1): the crash table is behind an [`Arc`] with
/// copy-on-write mutation, so the per-run `sched.clone()` churn in the
/// experiment sweeps costs a refcount bump instead of a table copy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FailureSchedule {
    crash_at: Arc<Vec<Option<Time>>>,
}

impl FailureSchedule {
    /// A failure-free schedule for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn none(n: usize) -> Self {
        assert!(n > 0, "a system has at least one process");
        FailureSchedule {
            crash_at: Arc::new(vec![None; n]),
        }
    }

    /// Builder: schedules process `p` to crash at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= n`.
    #[must_use]
    pub fn with_crash(mut self, p: usize, t: Time) -> Self {
        self.set_crash(p, t);
        self
    }

    /// Schedules process `p` to crash at `t` (later calls overwrite).
    ///
    /// # Panics
    ///
    /// Panics if `p >= n`.
    pub fn set_crash(&mut self, p: usize, t: Time) {
        Arc::make_mut(&mut self.crash_at)[p] = Some(t);
    }

    /// Number of processes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.crash_at.len()
    }

    /// The crash time of `p`, or `None` when `p` is correct.
    #[must_use]
    pub fn crash_time(&self, p: usize) -> Option<Time> {
        self.crash_at[p]
    }

    /// Whether `p` is correct (never crashes in this run).
    #[must_use]
    pub fn is_correct(&self, p: usize) -> bool {
        self.crash_at[p].is_none()
    }

    /// Whether `p` is alive at `t` (has not crashed *before or at* `t`).
    #[must_use]
    pub fn is_alive(&self, p: usize, t: Time) -> bool {
        match self.crash_at[p] {
            None => true,
            Some(c) => t < c,
        }
    }

    /// Indices of the correct processes (`Correct`).
    #[must_use]
    pub fn correct_set(&self) -> Vec<usize> {
        (0..self.n()).filter(|&p| self.is_correct(p)).collect()
    }

    /// Indices of the faulty processes.
    #[must_use]
    pub fn faulty_set(&self) -> Vec<usize> {
        (0..self.n()).filter(|&p| !self.is_correct(p)).collect()
    }

    /// Indices of the processes alive at `t`.
    #[must_use]
    pub fn alive_at(&self, t: Time) -> Vec<usize> {
        (0..self.n()).filter(|&p| self.is_alive(p, t)).collect()
    }

    /// `|Correct|`.
    #[must_use]
    pub fn num_correct(&self) -> usize {
        self.crash_at.iter().filter(|c| c.is_none()).count()
    }

    /// Number of faulty processes in this run (the effective `t`).
    #[must_use]
    pub fn num_faulty(&self) -> usize {
        self.n() - self.num_correct()
    }

    /// The multiset `I(Correct)` under an identity assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment has a different `n`.
    #[must_use]
    pub fn i_correct(&self, assign: &IdentityAssignment) -> Multiset<Identity> {
        assert_eq!(assign.n(), self.n(), "assignment size mismatch");
        assign.multiset_of(self.correct_set())
    }

    /// The multiset `I(Alive(t))` under an identity assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment has a different `n`.
    #[must_use]
    pub fn i_alive_at(&self, t: Time, assign: &IdentityAssignment) -> Multiset<Identity> {
        assert_eq!(assign.n(), self.n(), "assignment size mismatch");
        assign.multiset_of(self.alive_at(t))
    }

    /// The latest crash time, or `None` in a failure-free run.
    #[must_use]
    pub fn last_crash_time(&self) -> Option<Time> {
        self.crash_at.iter().flatten().max().copied()
    }

    /// The distinct times at which the alive set changes, in increasing
    /// order and starting with [`Time::ZERO`]. Between two consecutive
    /// epoch starts the alive set is constant — oracles exploit this to
    /// keep `HΣ`/`AΣ` label universes small.
    #[must_use]
    pub fn epoch_starts(&self) -> Vec<Time> {
        let mut times: Vec<Time> = vec![Time::ZERO];
        let mut crashes: Vec<Time> = self.crash_at.iter().flatten().copied().collect();
        crashes.sort_unstable();
        crashes.dedup();
        times.extend(crashes.into_iter().filter(|&t| t > Time::ZERO));
        times
    }

    /// Whether a majority of processes is correct (`t < n/2`), the
    /// assumption of the Figure 8 consensus algorithm.
    #[must_use]
    pub fn has_correct_majority(&self) -> bool {
        2 * self.num_correct() > self.n()
    }
}

impl fmt::Display for FailureSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crashes{{")?;
        let mut first = true;
        for (p, c) in self.crash_at.iter().enumerate() {
            if let Some(t) = c {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "p{p}@{t}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alive_is_strict_before_crash_time() {
        let s = FailureSchedule::none(3).with_crash(1, Time::from_ticks(5));
        assert!(s.is_alive(1, Time::from_ticks(4)));
        assert!(!s.is_alive(1, Time::from_ticks(5)));
        assert!(s.is_alive(0, Time::MAX));
    }

    #[test]
    fn correct_and_faulty_partition() {
        let s = FailureSchedule::none(5)
            .with_crash(0, Time::from_ticks(1))
            .with_crash(4, Time::from_ticks(9));
        assert_eq!(s.correct_set(), vec![1, 2, 3]);
        assert_eq!(s.faulty_set(), vec![0, 4]);
        assert_eq!(s.num_correct(), 3);
        assert_eq!(s.num_faulty(), 2);
        assert!(s.has_correct_majority());
    }

    #[test]
    fn alive_at_shrinks_over_time() {
        let s = FailureSchedule::none(3)
            .with_crash(0, Time::from_ticks(2))
            .with_crash(1, Time::from_ticks(4));
        assert_eq!(s.alive_at(Time::ZERO).len(), 3);
        assert_eq!(s.alive_at(Time::from_ticks(2)), vec![1, 2]);
        assert_eq!(s.alive_at(Time::from_ticks(4)), vec![2]);
    }

    #[test]
    fn i_correct_uses_assignment() {
        let s = FailureSchedule::none(4).with_crash(0, Time::from_ticks(1));
        let a = IdentityAssignment::round_robin(4, 2);
        let m = s.i_correct(&a);
        assert_eq!(m.len(), 3);
        assert_eq!(m.multiplicity(&Identity::new(0)), 1);
        assert_eq!(m.multiplicity(&Identity::new(1)), 2);
    }

    #[test]
    fn epochs_start_at_zero_and_dedup() {
        let s = FailureSchedule::none(4)
            .with_crash(0, Time::from_ticks(3))
            .with_crash(1, Time::from_ticks(3))
            .with_crash(2, Time::from_ticks(7));
        assert_eq!(
            s.epoch_starts(),
            vec![Time::ZERO, Time::from_ticks(3), Time::from_ticks(7)]
        );
    }

    #[test]
    fn last_crash_time() {
        assert_eq!(FailureSchedule::none(2).last_crash_time(), None);
        let s = FailureSchedule::none(2).with_crash(1, Time::from_ticks(8));
        assert_eq!(s.last_crash_time(), Some(Time::from_ticks(8)));
    }

    #[test]
    fn majority_boundary() {
        // n = 4: exactly 2 correct is NOT a majority.
        let s = FailureSchedule::none(4)
            .with_crash(0, Time::ZERO)
            .with_crash(1, Time::ZERO);
        assert!(!s.has_correct_majority());
    }

    #[test]
    fn display_lists_crashes() {
        let s = FailureSchedule::none(3).with_crash(2, Time::from_ticks(4));
        assert_eq!(s.to_string(), "crashes{p2@t4}");
    }
}
