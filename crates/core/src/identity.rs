//! Process identities and homonymous identity assignments.
//!
//! In a homonymous system several processes may carry the same identifier:
//! `p != q` does **not** imply `id(p) != id(q)`. An [`Identity`] is the
//! identifier an algorithm can observe; the *process index* (a plain
//! `usize` in `0..n`) is the formalization tool `Π` of the paper — it is
//! known to the simulator, the failure schedule and the property checkers,
//! but never to algorithm code.

use core::fmt;
use std::sync::Arc;

use crate::multiset::Multiset;

/// An observable process identifier.
///
/// Identifiers are ordered and hashable so they can be carried in
/// [`Multiset`]s and used as map keys; the paper's algorithms compare them
/// (e.g. `HΩ` extraction takes the *smallest* trusted identifier).
///
/// The `Display` form uses spreadsheet-style letters (`A`, `B`, …, `Z`,
/// `AA`, …) which keeps traces readable when identities collide.
///
/// # Examples
///
/// ```
/// use homonym_core::identity::Identity;
///
/// let a = Identity::new(0);
/// let b = Identity::new(1);
/// assert!(a < b);
/// assert_eq!(a.to_string(), "A");
/// assert_eq!(Identity::new(26).to_string(), "AA");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Identity(u64);

impl Identity {
    /// The "default identifier" `⊥` used when modelling anonymous systems
    /// as homonymous systems in which every process holds the same id.
    pub const BOTTOM: Identity = Identity(u64::MAX);

    /// Creates an identity from a raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Identity(raw)
    }

    /// Returns the raw value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the anonymous default identifier `⊥`.
    #[must_use]
    pub const fn is_bottom(self) -> bool {
        self.0 == u64::MAX
    }
}

impl fmt::Display for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            return write!(f, "⊥");
        }
        // Spreadsheet-style bijective base-26: 0 -> A, 25 -> Z, 26 -> AA.
        let mut n = self.0 + 1;
        let mut buf = [0u8; 16];
        let mut i = buf.len();
        while n > 0 {
            let rem = ((n - 1) % 26) as u8;
            i -= 1;
            buf[i] = b'A' + rem;
            n = (n - 1) / 26;
        }
        f.write_str(core::str::from_utf8(&buf[i..]).expect("ASCII"))
    }
}

impl From<u64> for Identity {
    fn from(raw: u64) -> Self {
        Identity(raw)
    }
}

/// How the `n` processes of a run map onto identifiers.
///
/// This is the static adversary of the paper: the degree of homonymy is the
/// number `ℓ` of *distinct* identifiers, with `ℓ = n` the classical
/// unique-identifier system and `ℓ = 1` the anonymous system.
///
/// # Examples
///
/// ```
/// use homonym_core::identity::{Identity, IdentityAssignment};
///
/// // 5 processes over 2 identifiers: A, B, A, B, A.
/// let assign = IdentityAssignment::round_robin(5, 2);
/// assert_eq!(assign.n(), 5);
/// assert_eq!(assign.distinct_count(), 2);
/// assert_eq!(assign.multiplicity(Identity::new(0)), 3);
/// ```
/// Cloning is O(1): the identifier table is behind an [`Arc`], so the
/// experiment sweeps can hand each of thousands of runs its own
/// assignment without copying the table (there are no mutators, so the
/// sharing is never observable).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IdentityAssignment {
    ids: Arc<Vec<Identity>>,
}

impl IdentityAssignment {
    /// Every process gets its own identifier (`ℓ = n`): the classical model.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn unique(n: usize) -> Self {
        assert!(n > 0, "a system has at least one process");
        IdentityAssignment {
            ids: Arc::new((0..n as u64).map(Identity::new).collect()),
        }
    }

    /// Every process gets the default identifier `⊥` (`ℓ = 1`): the
    /// anonymous model.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn anonymous(n: usize) -> Self {
        assert!(n > 0, "a system has at least one process");
        IdentityAssignment {
            ids: Arc::new(vec![Identity::BOTTOM; n]),
        }
    }

    /// `n` processes spread round-robin over `l` distinct identifiers
    /// `0..l`, giving the most balanced homonymy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `l == 0` or `l > n`.
    #[must_use]
    pub fn round_robin(n: usize, l: usize) -> Self {
        assert!(n > 0, "a system has at least one process");
        assert!(l > 0 && l <= n, "need 1 <= l <= n distinct identifiers");
        IdentityAssignment {
            ids: Arc::new((0..n).map(|p| Identity::new((p % l) as u64)).collect()),
        }
    }

    /// `n` processes over `l` identifiers with maximal skew: identifiers
    /// `1..l` get one process each and identifier `0` gets all the rest.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `l == 0` or `l > n`.
    #[must_use]
    pub fn skewed(n: usize, l: usize) -> Self {
        assert!(n > 0, "a system has at least one process");
        assert!(l > 0 && l <= n, "need 1 <= l <= n distinct identifiers");
        let mut ids = Vec::with_capacity(n);
        for p in 0..n {
            if p < l - 1 {
                ids.push(Identity::new((p + 1) as u64));
            } else {
                ids.push(Identity::new(0));
            }
        }
        IdentityAssignment { ids: Arc::new(ids) }
    }

    /// An arbitrary assignment, e.g. produced by a random generator.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty.
    #[must_use]
    pub fn custom(ids: Vec<Identity>) -> Self {
        assert!(!ids.is_empty(), "a system has at least one process");
        IdentityAssignment { ids: Arc::new(ids) }
    }

    /// Number of processes `n = |Π|`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.ids.len()
    }

    /// The identifier `id(p)` of process index `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= n`.
    #[must_use]
    pub fn id_of(&self, p: usize) -> Identity {
        self.ids[p]
    }

    /// The multiset `I(S)` of identifiers of an arbitrary subset of
    /// process indices.
    #[must_use]
    pub fn multiset_of<I: IntoIterator<Item = usize>>(&self, procs: I) -> Multiset<Identity> {
        procs.into_iter().map(|p| self.id_of(p)).collect()
    }

    /// The full multiset `I(Π)`.
    #[must_use]
    pub fn multiset(&self) -> Multiset<Identity> {
        self.ids.iter().copied().collect()
    }

    /// Number of distinct identifiers `ℓ`.
    #[must_use]
    pub fn distinct_count(&self) -> usize {
        self.multiset().distinct_len()
    }

    /// Multiplicity of `id` in `I(Π)`.
    #[must_use]
    pub fn multiplicity(&self, id: Identity) -> usize {
        self.ids.iter().filter(|&&i| i == id).count()
    }

    /// Process indices carrying identifier `id` (the paper's `P({id})`).
    #[must_use]
    pub fn processes_with(&self, id: Identity) -> Vec<usize> {
        (0..self.n()).filter(|&p| self.ids[p] == id).collect()
    }

    /// Iterator over `(process index, identity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Identity)> + '_ {
        self.ids.iter().copied().enumerate()
    }

    /// Whether all identifiers are pairwise distinct (classical system).
    #[must_use]
    pub fn is_unique(&self) -> bool {
        self.distinct_count() == self.n()
    }

    /// Whether all identifiers are equal (anonymous system).
    #[must_use]
    pub fn is_anonymous(&self) -> bool {
        self.distinct_count() == 1
    }
}

impl fmt::Display for IdentityAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (p, id) in self.iter() {
            if p > 0 {
                write!(f, " ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_bijective_base26() {
        assert_eq!(Identity::new(0).to_string(), "A");
        assert_eq!(Identity::new(25).to_string(), "Z");
        assert_eq!(Identity::new(26).to_string(), "AA");
        assert_eq!(Identity::new(27).to_string(), "AB");
        assert_eq!(Identity::new(701).to_string(), "ZZ");
        assert_eq!(Identity::new(702).to_string(), "AAA");
        assert_eq!(Identity::BOTTOM.to_string(), "⊥");
    }

    #[test]
    fn unique_assignment_has_no_collisions() {
        let a = IdentityAssignment::unique(7);
        assert!(a.is_unique());
        assert!(!a.is_anonymous());
        assert_eq!(a.distinct_count(), 7);
    }

    #[test]
    fn anonymous_assignment_is_all_bottom() {
        let a = IdentityAssignment::anonymous(4);
        assert!(a.is_anonymous());
        assert_eq!(a.id_of(2), Identity::BOTTOM);
        assert_eq!(a.multiplicity(Identity::BOTTOM), 4);
    }

    #[test]
    fn round_robin_balances() {
        let a = IdentityAssignment::round_robin(7, 3);
        assert_eq!(a.multiplicity(Identity::new(0)), 3);
        assert_eq!(a.multiplicity(Identity::new(1)), 2);
        assert_eq!(a.multiplicity(Identity::new(2)), 2);
        assert_eq!(a.distinct_count(), 3);
    }

    #[test]
    fn skewed_piles_on_id_zero() {
        let a = IdentityAssignment::skewed(8, 3);
        assert_eq!(a.multiplicity(Identity::new(0)), 6);
        assert_eq!(a.multiplicity(Identity::new(1)), 1);
        assert_eq!(a.multiplicity(Identity::new(2)), 1);
    }

    #[test]
    fn multiset_of_subset() {
        let a = IdentityAssignment::round_robin(6, 2);
        let m = a.multiset_of([0, 2, 4]);
        assert_eq!(m.multiplicity(&Identity::new(0)), 3);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn processes_with_finds_homonyms() {
        let a = IdentityAssignment::round_robin(6, 2);
        assert_eq!(a.processes_with(Identity::new(1)), vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "1 <= l <= n")]
    fn round_robin_rejects_more_ids_than_processes() {
        let _ = IdentityAssignment::round_robin(2, 3);
    }

    #[test]
    fn display_assignment() {
        let a = IdentityAssignment::round_robin(4, 2);
        assert_eq!(a.to_string(), "[A B A B]");
    }
}
