//! Structural forking of per-run state, the foundation of the engine
//! snapshot layer.
//!
//! A *fork* of a piece of run state is an independent copy whose future
//! behaviour is byte-identical to the original's: mutable state is
//! duplicated, immutable payloads (precomputed oracle tables, frozen
//! configuration) may stay `Arc`-shared, and **aliasing is preserved
//! structurally** — two handles to the same shared cell fork into two
//! handles to the same *new* cell, never to the original.
//!
//! That last point is why plain [`Clone`] is not enough. A
//! [`SharedCell`] clones by aliasing (that is its purpose: a detector
//! half and a consensus half of one simulated process share it), so a
//! naive clone of a process would leave the copy writing into the
//! original's cell and vice versa — the fork would not be independent.
//! [`ForkSpace`] fixes this: it maps each *original* shared allocation
//! (by pointer identity) to the single fresh duplicate made for the fork
//! in progress, so every handle that aliased the original ends up
//! aliasing the duplicate.
//!
//! Types opt in through [`ForkState`]; whole simulated processes opt in
//! through `homonym_sim::snapshot::ForkProcess`, which threads one
//! `ForkSpace` through all of a process's state.

use std::any::Any;
use std::collections::HashMap;

use crate::query::SharedCell;

/// The alias-preserving workspace of one fork operation.
///
/// Create one per fork (e.g. per engine snapshot), thread it through
/// every [`ForkState::fork_in`] call of that fork, and drop it when the
/// fork is complete. Reusing a space across *independent* forks would
/// incorrectly alias them to each other.
#[derive(Debug, Default)]
pub struct ForkSpace {
    /// Original allocation address → the duplicate handle made for this
    /// fork, type-erased (each entry is downcast by the handle type that
    /// inserted it).
    map: HashMap<usize, Box<dyn Any + Send>>,
}

impl ForkSpace {
    /// An empty space.
    #[must_use]
    pub fn new() -> Self {
        ForkSpace::default()
    }

    /// Returns the duplicate registered for the original allocation at
    /// `key`, making it with `make` (and registering it) on first sight.
    /// Every caller that passes the same `key` within one space receives
    /// handles aliasing the same duplicate.
    pub fn dedup<T: Clone + Send + 'static>(&mut self, key: usize, make: impl FnOnce() -> T) -> T {
        if let Some(found) = self.map.get(&key).and_then(|b| b.downcast_ref::<T>()) {
            return found.clone();
        }
        let fresh = make();
        self.map.insert(key, Box::new(fresh.clone()));
        fresh
    }
}

/// State that can fork itself into an independent copy.
///
/// Implementations must guarantee the copy's future behaviour is
/// byte-identical to the original's while sharing no mutable state with
/// it. Immutable interior payloads may stay `Arc`-shared; handles to
/// shared mutable state must be re-seated through the [`ForkSpace`].
pub trait ForkState {
    /// Forks this value inside `space` (see the module docs).
    fn fork_in(&self, space: &mut ForkSpace) -> Self;
}

impl<T: Clone + Send + 'static> ForkState for SharedCell<T> {
    /// Forks the cell: the first handle to reach the space duplicates the
    /// current value into a fresh cell; every further handle aliasing the
    /// same original receives that same fresh cell.
    fn fork_in(&self, space: &mut ForkSpace) -> Self {
        space.dedup(self.alias_key(), || SharedCell::new(self.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::HOmegaOutput;
    use crate::identity::Identity;

    #[test]
    fn forked_cell_is_independent_of_the_original() {
        let cell = SharedCell::new(HOmegaOutput::new(Identity::new(1), 2));
        let mut space = ForkSpace::new();
        let fork = cell.fork_in(&mut space);
        assert_eq!(fork.get(), cell.get());
        cell.set(HOmegaOutput::new(Identity::new(9), 9));
        assert_eq!(fork.get(), HOmegaOutput::new(Identity::new(1), 2));
    }

    #[test]
    fn aliasing_handles_fork_to_one_duplicate() {
        let writer = SharedCell::new(7u64);
        let reader = writer.clone();
        let mut space = ForkSpace::new();
        let writer_fork = writer.fork_in(&mut space);
        let reader_fork = reader.fork_in(&mut space);
        writer_fork.set(42);
        // The two forks alias each other (one duplicate)...
        assert_eq!(reader_fork.get(), 42);
        // ...but not the originals.
        assert_eq!(writer.get(), 7);
    }

    #[test]
    fn distinct_cells_fork_to_distinct_duplicates() {
        let a = SharedCell::new(1u64);
        let b = SharedCell::new(2u64);
        let mut space = ForkSpace::new();
        let fa = a.fork_in(&mut space);
        let fb = b.fork_in(&mut space);
        fa.set(10);
        assert_eq!(fb.get(), 2);
    }
}
