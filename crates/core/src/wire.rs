//! Hand-rolled binary persistence for durable snapshots.
//!
//! The workspace's vendored `serde` can serialize but its `Deserialize`
//! is a marker-only trait (no `Deserializer` machinery is vendored), so
//! the durable checkpoint layer cannot round-trip through it. This
//! module is the replacement: a small, deterministic, little-endian
//! binary codec with exactly the features snapshots need and nothing
//! more.
//!
//! # The aliasing contract
//!
//! Process state may contain [`SharedCell`]
//! handles that alias one shared allocation (a detector half wired to a
//! consensus half inside one simulated process — see [`crate::fork`]).
//! A naive per-field encoding would tear that wiring apart: each handle
//! would decode into its own private cell and the halves would stop
//! observing each other. [`Saver`] and [`Loader`] therefore carry an
//! alias table, the serialization analogue of
//! [`ForkSpace`](crate::fork::ForkSpace): the first handle to a cell
//! encodes its value and claims an index, every later handle encodes
//! only the index, and decoding re-seats all of them onto one rebuilt
//! cell. A round-tripped process keeps its internal wiring.
//!
//! # Determinism
//!
//! Encoding is a pure function of the traversal order, which is a pure
//! function of the value — no maps with nondeterministic iteration
//! order, no pointers, no timestamps. Encoding the same snapshot twice
//! yields identical bytes, which is what lets the checkpoint layer
//! fingerprint and checksum its files.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::classes::{EvtHPOutput, HOmegaOutput, HSigmaOutput, Label};
use crate::identity::Identity;
use crate::multiset::Multiset;
use crate::properties::{PropertyViolation, RunVerdict};
use crate::query::SharedCell;
use crate::time::{Span, Time};

/// Why a decode failed. Carried up into the store layer's corruption
/// handling: any `WireError` on a checkpoint file means "treat this
/// checkpoint as absent and re-execute", never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Eof {
        /// Bytes the decoder needed.
        wanted: usize,
        /// Bytes that were left.
        left: usize,
    },
    /// An enum tag byte had no matching variant.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A decoded value was structurally impossible (e.g. a length that
    /// does not fit `usize`, or an unknown family name).
    BadValue {
        /// The type being decoded.
        what: &'static str,
    },
    /// A shared-cell back-reference pointed outside the alias table or
    /// at a cell of a different type.
    BadCellIndex {
        /// The offending index.
        index: u32,
    },
    /// The value decoded cleanly but bytes remained — a framing bug or
    /// a corrupted payload that happened to parse.
    TrailingBytes {
        /// Bytes left over.
        left: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof { wanted, left } => {
                write!(
                    f,
                    "unexpected end of input (wanted {wanted} bytes, {left} left)"
                )
            }
            WireError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            WireError::BadValue { what } => write!(f, "invalid value for {what}"),
            WireError::BadCellIndex { index } => {
                write!(
                    f,
                    "shared-cell back-reference {index} out of range or wrong type"
                )
            }
            WireError::TrailingBytes { left } => {
                write!(f, "{left} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A value that round-trips through the durable binary codec.
///
/// The contract mirrors [`ForkState`](crate::fork::ForkState): `load`
/// must rebuild a value whose *future behaviour* is byte-identical to
/// the saved one's. Representation may differ (a
/// [`Multiset`]'s spill threshold, a recycling ring's spare pool) as
/// long as no observable behaviour can tell.
pub trait Persist: Sized {
    /// Appends this value's encoding to `s`.
    fn save(&self, s: &mut Saver);
    /// Decodes a value from the cursor position of `l`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] when the bytes do not describe a valid value.
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError>;
}

/// Encoding state: the output buffer plus the shared-cell alias table.
#[derive(Default)]
pub struct Saver {
    buf: Vec<u8>,
    cells: HashMap<usize, u32>,
}

impl Saver {
    /// A fresh saver with an empty buffer and alias table.
    #[must_use]
    pub fn new() -> Self {
        Saver::default()
    }

    /// Consumes the saver, returning the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (lengths, indices).
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// The alias-table index of a cell already encoded this pass, if any.
    #[must_use]
    pub fn cell_ref(&self, alias_key: usize) -> Option<u32> {
        self.cells.get(&alias_key).copied()
    }

    /// Claims the next alias-table index for a cell about to be encoded.
    /// Must be called **before** encoding the cell's value so nested
    /// cells number themselves in the same order the loader rebuilds.
    pub fn cell_define(&mut self, alias_key: usize) -> u32 {
        let idx = self.cells.len() as u32;
        self.cells.insert(alias_key, idx);
        idx
    }
}

/// Decoding state: a cursor over the input plus the rebuilt alias table.
pub struct Loader<'a> {
    buf: &'a [u8],
    pos: usize,
    cells: Vec<Option<Box<dyn Any>>>,
}

impl<'a> Loader<'a> {
    /// A loader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Loader {
            buf,
            pos: 0,
            cells: Vec::new(),
        }
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Eof`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let left = self.buf.len() - self.pos;
        if left < n {
            return Err(WireError::Eof { wanted: n, left });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Eof`] at end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Eof`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Eof`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length (`u64`) and checks it fits `usize` and the
    /// remaining input can plausibly hold that many elements (each at
    /// least one byte — rejects absurd lengths from corrupt input
    /// before any allocation).
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] on an implausible length.
    // Not a container: `len` consumes a length *prefix* from the
    // stream, so an `is_empty` counterpart would be meaningless.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| WireError::BadValue { what: "length" })?;
        if v > self.buf.len().saturating_sub(self.pos).saturating_add(1) * 8 {
            return Err(WireError::BadValue { what: "length" });
        }
        Ok(v)
    }

    /// Asserts the whole input was consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] when bytes remain.
    pub fn expect_end(&self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(WireError::TrailingBytes { left });
        }
        Ok(())
    }

    /// Reserves the next alias-table slot (mirroring
    /// [`Saver::cell_define`]) and returns its index; fill it with
    /// [`Loader::cell_fill`] once the cell exists.
    pub fn cell_reserve(&mut self) -> u32 {
        self.cells.push(None);
        (self.cells.len() - 1) as u32
    }

    /// Seats the rebuilt cell into its reserved slot.
    pub fn cell_fill(&mut self, idx: u32, cell: Box<dyn Any>) {
        self.cells[idx as usize] = Some(cell);
    }

    /// An aliasing handle to the cell at `idx`.
    ///
    /// # Errors
    ///
    /// [`WireError::BadCellIndex`] when the slot is absent, unfilled, or
    /// holds a cell of a different type.
    pub fn cell_ref<T: Clone + 'static>(&self, idx: u32) -> Result<T, WireError> {
        self.cells
            .get(idx as usize)
            .and_then(|slot| slot.as_ref())
            .and_then(|boxed| boxed.downcast_ref::<T>())
            .cloned()
            .ok_or(WireError::BadCellIndex { index: idx })
    }
}

/// Interns a decoded string, returning a `'static` reference. Each
/// distinct string leaks exactly once for the process lifetime — the
/// price of round-tripping the workspace's pervasive `&'static str`
/// labels (message classes, property names, observability phases)
/// through a byte stream. Repeated decodes of the same label are free.
#[must_use]
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = pool.lock().expect("intern pool poisoned");
    if let Some(&hit) = guard.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(leaked);
    leaked
}

/// Generates a [`Persist`](crate::wire::Persist) impl for a struct by
/// encoding its named fields in declaration order. Invoke it in the
/// module that defines the type so private fields stay private.
#[macro_export]
macro_rules! persist_fields {
    ($ty:ty { $($f:ident),+ $(,)? }) => {
        impl $crate::wire::Persist for $ty {
            fn save(&self, s: &mut $crate::wire::Saver) {
                $( $crate::wire::Persist::save(&self.$f, s); )+
            }
            fn load(
                l: &mut $crate::wire::Loader<'_>,
            ) -> Result<Self, $crate::wire::WireError> {
                Ok(Self { $( $f: $crate::wire::Persist::load(l)? ),+ })
            }
        }
    };
}

/// Generates a [`Persist`](crate::wire::Persist) impl for a fieldless
/// enum from explicit `variant = tag` pairs.
#[macro_export]
macro_rules! persist_unit_enum {
    ($ty:ty { $($variant:ident = $tag:literal),+ $(,)? }) => {
        impl $crate::wire::Persist for $ty {
            fn save(&self, s: &mut $crate::wire::Saver) {
                s.u8(match self { $( <$ty>::$variant => $tag, )+ });
            }
            fn load(
                l: &mut $crate::wire::Loader<'_>,
            ) -> Result<Self, $crate::wire::WireError> {
                match l.u8()? {
                    $( $tag => Ok(<$ty>::$variant), )+
                    tag => Err($crate::wire::WireError::BadTag {
                        what: stringify!($ty),
                        tag,
                    }),
                }
            }
        }
    };
}

// ---------------------------------------------------------------------
// Primitive and std-container impls.
// ---------------------------------------------------------------------

impl Persist for u8 {
    fn save(&self, s: &mut Saver) {
        s.u8(*self);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        l.u8()
    }
}

impl Persist for u32 {
    fn save(&self, s: &mut Saver) {
        s.u32(*self);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        l.u32()
    }
}

impl Persist for u64 {
    fn save(&self, s: &mut Saver) {
        s.u64(*self);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        l.u64()
    }
}

impl Persist for usize {
    fn save(&self, s: &mut Saver) {
        s.len(*self);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        let v = l.u64()?;
        usize::try_from(v).map_err(|_| WireError::BadValue { what: "usize" })
    }
}

impl Persist for bool {
    fn save(&self, s: &mut Saver) {
        s.u8(u8::from(*self));
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        match l.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Persist for () {
    fn save(&self, _s: &mut Saver) {}
    fn load(_l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Persist for [u64; 4] {
    fn save(&self, s: &mut Saver) {
        for w in self {
            s.u64(*w);
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok([l.u64()?, l.u64()?, l.u64()?, l.u64()?])
    }
}

impl Persist for String {
    fn save(&self, s: &mut Saver) {
        s.len(self.len());
        s.bytes(self.as_bytes());
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        let n = l.len()?;
        let raw = l.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadValue { what: "String" })
    }
}

impl Persist for &'static str {
    fn save(&self, s: &mut Saver) {
        s.len(self.len());
        s.bytes(self.as_bytes());
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        let n = l.len()?;
        let raw = l.take(n)?;
        let utf8 = std::str::from_utf8(raw).map_err(|_| WireError::BadValue {
            what: "&'static str",
        })?;
        Ok(intern(utf8))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, s: &mut Saver) {
        match self {
            None => s.u8(0),
            Some(v) => {
                s.u8(1);
                v.save(s);
            }
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        match l.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(l)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, s: &mut Saver) {
        s.len(self.len());
        for v in self {
            v.save(s);
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        let n = l.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::load(l)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn save(&self, s: &mut Saver) {
        s.len(self.len());
        for v in self {
            v.save(s);
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        let n = l.len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::load(l)?);
        }
        Ok(out)
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn save(&self, s: &mut Saver) {
        s.len(self.len());
        for (k, v) in self {
            k.save(s);
            v.save(s);
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        let n = l.len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::load(l)?;
            let v = V::load(l)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Persist + Ord> Persist for BTreeSet<T> {
    fn save(&self, s: &mut Saver) {
        s.len(self.len());
        for v in self {
            v.save(s);
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        let n = l.len()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::load(l)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, s: &mut Saver) {
        self.0.save(s);
        self.1.save(s);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok((A::load(l)?, B::load(l)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn save(&self, s: &mut Saver) {
        self.0.save(s);
        self.1.save(s);
        self.2.save(s);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok((A::load(l)?, B::load(l)?, C::load(l)?))
    }
}

/// `Arc` payloads are encoded by value; decoding allocates a fresh
/// `Arc`. Cross-handle sharing of *immutable* payloads is a cost
/// optimization, not observable state, so losing it across a round
/// trip cannot change behaviour.
impl<T: Persist> Persist for Arc<T> {
    fn save(&self, s: &mut Saver) {
        T::save(self, s);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(Arc::new(T::load(l)?))
    }
}

// ---------------------------------------------------------------------
// Core model types.
// ---------------------------------------------------------------------

impl Persist for Identity {
    fn save(&self, s: &mut Saver) {
        s.u64(self.raw());
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(Identity::new(l.u64()?))
    }
}

impl Persist for Time {
    fn save(&self, s: &mut Saver) {
        s.u64(self.ticks());
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(Time::from_ticks(l.u64()?))
    }
}

impl Persist for Span {
    fn save(&self, s: &mut Saver) {
        s.u64(self.ticks());
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(Span::from_ticks(l.u64()?))
    }
}

/// Multisets round-trip representation-independently through their
/// `(element, multiplicity)` pairs; whether the rebuilt set is inline
/// or spilled is unobservable.
impl<T: Persist + Ord> Persist for Multiset<T> {
    fn save(&self, s: &mut Saver) {
        s.len(self.distinct_len());
        for (x, n) in self.counted() {
            x.save(s);
            s.len(n);
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        let distinct = l.len()?;
        let mut out = Multiset::new();
        for _ in 0..distinct {
            let x = T::load(l)?;
            let n = usize::load(l)?;
            out.insert_n(x, n);
        }
        Ok(out)
    }
}

impl Persist for Label {
    fn save(&self, s: &mut Saver) {
        match self {
            Label::IdSet(ids) => {
                s.u8(0);
                ids.save(s);
            }
            Label::IdMultiset(m) => {
                s.u8(1);
                m.save(s);
            }
            Label::Opaque(token) => {
                s.u8(2);
                s.u64(*token);
            }
            Label::Count(y) => {
                s.u8(3);
                s.len(*y);
            }
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        match l.u8()? {
            0 => Ok(Label::IdSet(Persist::load(l)?)),
            1 => Ok(Label::IdMultiset(Persist::load(l)?)),
            2 => Ok(Label::Opaque(l.u64()?)),
            3 => Ok(Label::Count(usize::load(l)?)),
            tag => Err(WireError::BadTag { what: "Label", tag }),
        }
    }
}

crate::persist_fields!(EvtHPOutput { h_trusted });
crate::persist_fields!(HOmegaOutput {
    h_leader,
    h_multiplicity
});
crate::persist_fields!(HSigmaOutput { h_quora, h_labels });
crate::persist_fields!(PropertyViolation {
    class,
    property,
    detail
});

impl<R: Persist> Persist for RunVerdict<R> {
    fn save(&self, s: &mut Saver) {
        match self {
            RunVerdict::Pass(r) => {
                s.u8(0);
                r.save(s);
            }
            RunVerdict::SafetyViolated(v) => {
                s.u8(1);
                v.save(s);
            }
            RunVerdict::LivenessViolated(v) => {
                s.u8(2);
                v.save(s);
            }
            RunVerdict::LivenessExcused(v) => {
                s.u8(3);
                v.save(s);
            }
            RunVerdict::ByzantineExpected(v) => {
                s.u8(4);
                v.save(s);
            }
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        match l.u8()? {
            0 => Ok(RunVerdict::Pass(R::load(l)?)),
            1 => Ok(RunVerdict::SafetyViolated(Persist::load(l)?)),
            2 => Ok(RunVerdict::LivenessViolated(Persist::load(l)?)),
            3 => Ok(RunVerdict::LivenessExcused(Persist::load(l)?)),
            4 => Ok(RunVerdict::ByzantineExpected(Persist::load(l)?)),
            tag => Err(WireError::BadTag {
                what: "RunVerdict",
                tag,
            }),
        }
    }
}

/// Shared cells encode through the alias table (see the module docs):
/// tag 0 carries the value and claims the next index, tag 1 is a
/// back-reference. Decoding re-seats every back-reference onto the one
/// rebuilt cell, so aliasing survives the round trip.
impl<T: Persist + Clone + Send + 'static> Persist for SharedCell<T> {
    fn save(&self, s: &mut Saver) {
        if let Some(idx) = s.cell_ref(self.alias_key()) {
            s.u8(1);
            s.u32(idx);
        } else {
            s.u8(0);
            s.cell_define(self.alias_key());
            self.get().save(s);
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        match l.u8()? {
            0 => {
                let idx = l.cell_reserve();
                let value = T::load(l)?;
                let cell = SharedCell::new(value);
                l.cell_fill(idx, Box::new(cell.clone()));
                Ok(cell)
            }
            1 => {
                let idx = l.u32()?;
                l.cell_ref::<SharedCell<T>>(idx)
            }
            tag => Err(WireError::BadTag {
                what: "SharedCell",
                tag,
            }),
        }
    }
}

/// Encodes a value into a standalone byte vector.
#[must_use]
pub fn to_bytes<T: Persist>(value: &T) -> Vec<u8> {
    let mut s = Saver::new();
    value.save(&mut s);
    s.finish()
}

/// Decodes a value from a standalone byte vector, requiring the whole
/// input to be consumed.
///
/// # Errors
///
/// Any [`WireError`] on malformed or trailing bytes.
pub fn from_bytes<T: Persist>(bytes: &[u8]) -> Result<T, WireError> {
    let mut l = Loader::new(bytes);
    let v = T::load(&mut l)?;
    l.expect_end()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) -> T {
        let bytes = to_bytes(v);
        from_bytes(&bytes).expect("roundtrip")
    }

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(roundtrip(&7u64), 7);
        assert!(roundtrip(&true));
        assert!(!roundtrip(&false));
        assert_eq!(roundtrip(&String::from("hé")), "hé");
        assert_eq!(roundtrip(&Some(3u32)), Some(3));
        assert_eq!(roundtrip(&vec![1u64, 2, 3]), vec![1, 2, 3]);
        assert_eq!(
            roundtrip(&(Time::from_ticks(5), Span::from_ticks(9)))
                .0
                .ticks(),
            5
        );
    }

    #[test]
    fn static_str_interns_to_equal_value() {
        let s: &'static str = "safety";
        let back = roundtrip(&s);
        assert_eq!(back, "safety");
        // Two decodes of the same label share one interned allocation.
        let again: &'static str = from_bytes(&to_bytes(&s)).unwrap();
        assert!(std::ptr::eq(back.as_ptr(), again.as_ptr()));
    }

    #[test]
    fn multiset_roundtrips_representation_independently() {
        let mut m = Multiset::new();
        for i in 0..40u64 {
            m.insert_n(Identity::new(i % 5), (i as usize % 3) + 1);
        }
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn shared_cell_aliasing_survives() {
        let cell = SharedCell::new(HOmegaOutput::new(Identity::new(3), 2));
        let pair = (cell.clone(), cell.clone());
        let bytes = to_bytes(&pair);
        let (a, b): (SharedCell<HOmegaOutput>, SharedCell<HOmegaOutput>) =
            from_bytes(&bytes).unwrap();
        // Same rebuilt allocation: a write through one is seen by the other.
        a.set(HOmegaOutput::new(Identity::new(9), 1));
        assert_eq!(b.get().h_leader, Identity::new(9));
        // But fully detached from the original.
        assert_eq!(cell.get().h_leader, Identity::new(3));
    }

    #[test]
    fn distinct_cells_stay_distinct() {
        let a = SharedCell::new(1u64);
        let b = SharedCell::new(1u64);
        let (ra, rb): (SharedCell<u64>, SharedCell<u64>) =
            from_bytes(&to_bytes(&(a.clone(), b.clone()))).unwrap();
        ra.set(5);
        assert_eq!(rb.get(), 1);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let r: Result<Vec<u64>, _> = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&3u64);
        bytes.push(0);
        let r: Result<u64, _> = from_bytes(&bytes);
        assert_eq!(r, Err(WireError::TrailingBytes { left: 1 }));
    }

    #[test]
    fn verdicts_roundtrip() {
        let v: RunVerdict<()> = RunVerdict::SafetyViolated(PropertyViolation {
            class: "HΣ",
            property: "safety",
            detail: "quorums missed".into(),
        });
        assert_eq!(roundtrip(&v), v);
        let p: RunVerdict<()> = RunVerdict::Pass(());
        assert_eq!(roundtrip(&p), p);
    }
}
