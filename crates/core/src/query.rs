//! Query traits that decouple algorithms from detector implementations.
//!
//! The paper writes its consensus algorithms against an abstract detector
//! (`D ∈ HΩ`, `D2 ∈ HΣ`): the algorithm reads the detector's local
//! variables whenever it likes. These traits are the Rust rendering of that
//! contract. An implementor may be:
//!
//! * an **oracle** computed from the ground-truth failure schedule
//!   (see `homonym_detectors::oracle`), or
//! * a **real message-passing implementation** (Figures 3, 6, 7) exposing
//!   its current variables through a [`SharedCell`].
//!
//! Queries take the current global [`Time`]; implementations backed by a
//! process-local variable simply ignore it.

use std::sync::{Arc, Mutex};

use crate::classes::{
    AOmegaOutput, APOutput, ASigmaOutput, EListOutput, EvtHPOutput, HOmegaOutput, HSigmaOutput,
    OmegaOutput, SigmaOutput,
};
use crate::time::Time;

/// Read access to a `◇HP` detector (`h_trusted`).
pub trait EvtHPSource {
    /// Current value of `h_trusted_p`.
    fn evt_hp(&self, now: Time) -> EvtHPOutput;
}

/// Read access to an `HΩ` detector (`h_leader`, `h_multiplicity`).
pub trait HOmegaSource {
    /// Current value of `(h_leader_p, h_multiplicity_p)`.
    fn h_omega(&self, now: Time) -> HOmegaOutput;
}

/// Read access to an `HΣ` detector (`h_quora`, `h_labels`).
pub trait HSigmaSource {
    /// Current value of `(h_quora_p, h_labels_p)`.
    fn h_sigma(&self, now: Time) -> HSigmaOutput;
}

/// Read access to a `Σ` detector (`trusted`).
pub trait SigmaSource {
    /// Current value of `trusted_p`.
    fn sigma(&self, now: Time) -> SigmaOutput;
}

/// Read access to an `Ω` detector (`leader`).
pub trait OmegaSource {
    /// Current value of `leader_p`.
    fn omega(&self, now: Time) -> OmegaOutput;
}

/// Read access to an `AΩ` detector (`a_leader` flag).
pub trait AOmegaSource {
    /// Current value of `a_leader_p`.
    fn a_omega(&self, now: Time) -> AOmegaOutput;
}

/// Read access to an `AP` detector (`anap`).
pub trait APSource {
    /// Current value of `anap_p`.
    fn ap(&self, now: Time) -> APOutput;
}

/// Read access to an `AΣ` detector (`a_sigma`).
pub trait ASigmaSource {
    /// Current value of `a_sigma_p`.
    fn a_sigma(&self, now: Time) -> ASigmaOutput;
}

/// Read access to a class-`E` detector (`alive` ranked list).
pub trait EListSource {
    /// Current value of `alive_p`.
    fn e_list(&self, now: Time) -> EListOutput;
}

/// A shared, mutable detector-output cell.
///
/// Real detector implementations run as one half of a stacked process and
/// publish their current variables here; the consumer half (e.g. a
/// consensus algorithm) reads them through the matching `*Source` trait.
///
/// # Examples
///
/// ```
/// use homonym_core::query::{HOmegaSource, SharedCell};
/// use homonym_core::classes::HOmegaOutput;
/// use homonym_core::identity::Identity;
/// use homonym_core::time::Time;
///
/// let cell = SharedCell::new(HOmegaOutput::new(Identity::new(0), 1));
/// let reader = cell.clone();
/// cell.set(HOmegaOutput::new(Identity::new(2), 3));
/// assert_eq!(reader.h_omega(Time::ZERO).h_leader, Identity::new(2));
/// ```
#[derive(Debug, Default)]
pub struct SharedCell<T> {
    inner: Arc<Mutex<T>>,
}

impl<T> Clone for SharedCell<T> {
    fn clone(&self) -> Self {
        SharedCell {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone> SharedCell<T> {
    /// Creates a cell holding `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        SharedCell {
            inner: Arc::new(Mutex::new(value)),
        }
    }

    /// Returns a clone of the current value.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    #[must_use]
    pub fn get(&self) -> T {
        self.inner.lock().expect("cell poisoned").clone()
    }

    /// Replaces the current value.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    pub fn set(&self, value: T) {
        *self.inner.lock().expect("cell poisoned") = value;
    }

    /// Mutates the current value in place.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.lock().expect("cell poisoned"))
    }
}

impl<T> SharedCell<T> {
    /// The identity of the underlying shared allocation: equal exactly
    /// for handles that alias the same cell. Used by the fork layer
    /// ([`crate::fork`]) to re-seat aliasing handles onto one duplicate.
    #[must_use]
    pub fn alias_key(&self) -> usize {
        Arc::as_ptr(&self.inner).cast::<()>() as usize
    }
}

macro_rules! impl_source_for_cell {
    ($trait_:ident, $method:ident, $out:ty) => {
        impl $trait_ for SharedCell<$out> {
            fn $method(&self, _now: Time) -> $out {
                self.get()
            }
        }
    };
}

impl_source_for_cell!(EvtHPSource, evt_hp, EvtHPOutput);
impl_source_for_cell!(HOmegaSource, h_omega, HOmegaOutput);
impl_source_for_cell!(HSigmaSource, h_sigma, HSigmaOutput);
impl_source_for_cell!(SigmaSource, sigma, SigmaOutput);
impl_source_for_cell!(OmegaSource, omega, OmegaOutput);
impl_source_for_cell!(AOmegaSource, a_omega, AOmegaOutput);
impl_source_for_cell!(APSource, ap, APOutput);
impl_source_for_cell!(ASigmaSource, a_sigma, ASigmaOutput);
impl_source_for_cell!(EListSource, e_list, EListOutput);

macro_rules! impl_source_for_fn {
    ($trait_:ident, $method:ident, $out:ty) => {
        impl<F: Fn(Time) -> $out> $trait_ for F {
            fn $method(&self, now: Time) -> $out {
                self(now)
            }
        }
    };
}

impl_source_for_fn!(EvtHPSource, evt_hp, EvtHPOutput);
impl_source_for_fn!(HOmegaSource, h_omega, HOmegaOutput);
impl_source_for_fn!(HSigmaSource, h_sigma, HSigmaOutput);
impl_source_for_fn!(SigmaSource, sigma, SigmaOutput);
impl_source_for_fn!(OmegaSource, omega, OmegaOutput);
impl_source_for_fn!(AOmegaSource, a_omega, AOmegaOutput);
impl_source_for_fn!(APSource, ap, APOutput);
impl_source_for_fn!(ASigmaSource, a_sigma, ASigmaOutput);
impl_source_for_fn!(EListSource, e_list, EListOutput);

macro_rules! impl_source_for_box {
    ($trait_:ident, $method:ident, $out:ty) => {
        impl $trait_ for Box<dyn $trait_ + Send> {
            fn $method(&self, now: Time) -> $out {
                (**self).$method(now)
            }
        }
    };
}

impl_source_for_box!(EvtHPSource, evt_hp, EvtHPOutput);
impl_source_for_box!(HOmegaSource, h_omega, HOmegaOutput);
impl_source_for_box!(HSigmaSource, h_sigma, HSigmaOutput);
impl_source_for_box!(SigmaSource, sigma, SigmaOutput);
impl_source_for_box!(OmegaSource, omega, OmegaOutput);
impl_source_for_box!(AOmegaSource, a_omega, AOmegaOutput);
impl_source_for_box!(APSource, ap, APOutput);
impl_source_for_box!(ASigmaSource, a_sigma, ASigmaOutput);
impl_source_for_box!(EListSource, e_list, EListOutput);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Identity;

    #[test]
    fn closure_is_a_source() {
        let src = |now: Time| HOmegaOutput::new(Identity::new(now.ticks()), 1);
        assert_eq!(src.h_omega(Time::from_ticks(4)).h_leader, Identity::new(4));
    }

    #[test]
    fn cell_updates_are_visible_to_clones() {
        let cell = SharedCell::new(APOutput::new(5));
        let reader = cell.clone();
        cell.update(|o| o.anap = 3);
        assert_eq!(reader.ap(Time::ZERO).anap, 3);
    }

    #[test]
    fn boxed_source_dispatches() {
        let boxed: Box<dyn OmegaSource + Send> =
            Box::new(|_: Time| OmegaOutput::new(Identity::new(7)));
        assert_eq!(boxed.omega(Time::ZERO).leader, Identity::new(7));
    }
}
