//! # homonym-core
//!
//! Model layer for **homonymous distributed systems** — systems in which
//! several crash-prone processes may carry the same identifier and no
//! process initially knows the membership. This crate is the foundation of
//! the `homonym` workspace, a full reproduction of
//!
//! > *Failure Detectors in Homonymous Distributed Systems (with an
//! > Application to Consensus)* — S. Arévalo, A. Fernández Anta, D. Imbs,
//! > E. Jiménez, M. Raynal (ICDCS 2012).
//!
//! It provides:
//!
//! * [`identity`] — observable process identifiers and homonymous
//!   assignments (`ℓ` distinct identifiers over `n` processes);
//! * [`multiset`] — the counted-bag algebra behind the paper's `I(S)`
//!   notation;
//! * [`time`] — the discrete global clock (a formalization tool processes
//!   cannot read);
//! * [`failure`] — crash schedules, the ground truth of a run;
//! * [`classes`] — output shapes of every failure-detector class in the
//!   paper (`◇HP`, `HΩ`, `HΣ`, `Σ`, `Ω`, `E`, `AP`, `AΩ`, `AΣ`);
//! * [`query`] — the traits algorithms use to read a detector, independent
//!   of whether it is an oracle or a real message-passing implementation;
//! * [`properties`] — post-hoc checkers for each class's properties and for
//!   consensus (validity / agreement / termination).
//!
//! # Examples
//!
//! ```
//! use homonym_core::prelude::*;
//!
//! // Five processes over two identifiers: A B A B A.
//! let assign = IdentityAssignment::round_robin(5, 2);
//! let sched = FailureSchedule::none(5).with_crash(4, Time::from_ticks(10));
//!
//! // The multiset of correct identifiers: {A, A, B, B}.
//! let correct = sched.i_correct(&assign);
//! assert_eq!(correct.len(), 4);
//! assert_eq!(correct.multiplicity(&Identity::new(0)), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classes;
pub mod failure;
pub mod fork;
pub mod identity;
pub mod multiset;
pub mod properties;
pub mod query;
pub mod time;
pub mod wire;

pub use classes::{
    AOmegaOutput, APOutput, ASigmaOutput, EListOutput, EvtHPOutput, HOmegaOutput, HSigmaOutput,
    Label, OmegaOutput, SigmaOutput,
};
pub use failure::FailureSchedule;
pub use fork::{ForkSpace, ForkState};
pub use identity::{Identity, IdentityAssignment};
pub use multiset::Multiset;
pub use time::{Span, Time};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::classes::{
        AOmegaOutput, APOutput, ASigmaOutput, EListOutput, EvtHPOutput, HOmegaOutput, HSigmaOutput,
        Label, OmegaOutput, SigmaOutput,
    };
    pub use crate::failure::FailureSchedule;
    pub use crate::fork::{ForkSpace, ForkState};
    pub use crate::identity::{Identity, IdentityAssignment};
    pub use crate::multiset::Multiset;
    pub use crate::properties::{
        check_a_omega, check_a_sigma, check_ap, check_byzantine_consensus, check_consensus,
        check_e_list, check_evt_hp, check_h_omega, check_h_sigma, check_omega, check_sigma,
        classify_run, ConsensusOutcome, History, PropertyViolation, RunCondition, RunVerdict,
    };
    pub use crate::query::{
        AOmegaSource, APSource, ASigmaSource, EListSource, EvtHPSource, HOmegaSource, HSigmaSource,
        OmegaSource, SharedCell, SigmaSource,
    };
    pub use crate::time::{Span, Time};
}
