//! Discrete time for the homonymous system model.
//!
//! The paper assumes "time advances at discrete steps" measured by a global
//! clock whose values are the natural numbers, and that **processes cannot
//! access this clock**. [`Time`] and [`Span`] are the formalization tool:
//! they are used by the simulator, the failure schedule, the oracles and the
//! property checkers, but algorithm code only ever observes time through
//! timers it sets itself.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point on the discrete global clock (a natural number of ticks).
///
/// # Examples
///
/// ```
/// use homonym_core::time::{Time, Span};
///
/// let t = Time::ZERO + Span::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// assert!(t > Time::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Time(u64);

/// A length of (discrete) time: the difference between two [`Time`] values.
///
/// # Examples
///
/// ```
/// use homonym_core::time::{Time, Span};
///
/// let a = Time::from_ticks(3);
/// let b = Time::from_ticks(10);
/// assert_eq!(b - a, Span::from_ticks(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Span(u64);

impl Time {
    /// The origin of the global clock.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as "never" by failure schedules.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from a raw tick count.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference: `self - earlier`, clamped at zero.
    #[must_use]
    pub const fn saturating_since(self, earlier: Time) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// The immediately following instant (saturating at [`Time::MAX`]).
    #[must_use]
    pub const fn next(self) -> Time {
        Time(self.0.saturating_add(1))
    }
}

impl Span {
    /// The empty span.
    pub const ZERO: Span = Span(0);
    /// A single tick.
    pub const TICK: Span = Span(1);

    /// Creates a span from a raw tick count.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        Span(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Multiplies the span by a scalar, saturating on overflow.
    #[must_use]
    pub const fn saturating_mul(self, k: u64) -> Span {
        Span(self.0.saturating_mul(k))
    }
}

impl Add<Span> for Time {
    type Output = Time;
    fn add(self, rhs: Span) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Span> for Time {
    fn add_assign(&mut self, rhs: Span) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Span;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Time::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: Time) -> Span {
        debug_assert!(self >= rhs, "time subtraction underflow");
        Span(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Span> for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Span> for Span {
    fn add_assign(&mut self, rhs: Span) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Time(ticks)
    }
}

impl From<u64> for Span {
    fn from(ticks: u64) -> Self {
        Span(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_span_advances_time() {
        assert_eq!(
            Time::from_ticks(2) + Span::from_ticks(3),
            Time::from_ticks(5)
        );
    }

    #[test]
    fn sub_yields_span() {
        assert_eq!(
            Time::from_ticks(9) - Time::from_ticks(4),
            Span::from_ticks(5)
        );
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            Time::from_ticks(1).saturating_since(Time::from_ticks(9)),
            Span::ZERO
        );
    }

    #[test]
    fn next_is_strictly_later() {
        let t = Time::from_ticks(7);
        assert!(t.next() > t);
        assert_eq!(Time::MAX.next(), Time::MAX);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::from_ticks(1) < Time::from_ticks(2));
        assert!(Span::from_ticks(1) < Span::from_ticks(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_ticks(12).to_string(), "t12");
        assert_eq!(Span::from_ticks(3).to_string(), "3t");
    }

    #[test]
    fn overflow_saturates() {
        assert_eq!(Time::MAX + Span::TICK, Time::MAX);
        assert_eq!(
            Span::from_ticks(u64::MAX).saturating_mul(2),
            Span::from_ticks(u64::MAX)
        );
    }
}
