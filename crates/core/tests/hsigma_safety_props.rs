//! Property-based cross-validation of the `HΣ` safety decision procedure:
//! the per-identity counting argument must agree with brute-force subset
//! enumeration on every small universe.

use std::collections::BTreeSet;

use homonym_core::identity::{Identity, IdentityAssignment};
use homonym_core::multiset::Multiset;
use homonym_core::properties::{disjoint_realizations_exist, disjoint_realizations_exist_brute};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SafetyCase {
    assign: IdentityAssignment,
    s1: BTreeSet<usize>,
    s2: BTreeSet<usize>,
    m1: Multiset<Identity>,
    m2: Multiset<Identity>,
}

fn subset(n: usize) -> impl Strategy<Value = BTreeSet<usize>> {
    proptest::collection::btree_set(0..n, 0..=n)
}

fn case() -> impl Strategy<Value = SafetyCase> {
    (2usize..7).prop_flat_map(|n| {
        (1usize..=n).prop_flat_map(move |l| {
            (
                subset(n),
                subset(n),
                proptest::collection::vec(0..n, 0..=n),
                proptest::collection::vec(0..n, 0..=n),
            )
                .prop_map(move |(s1, s2, picks1, picks2)| {
                    let assign = IdentityAssignment::round_robin(n, l);
                    // Build quorum multisets from random process picks so
                    // they are *plausible* (drawn from real identities).
                    let m1: Multiset<Identity> =
                        picks1.into_iter().map(|p| assign.id_of(p)).collect();
                    let m2: Multiset<Identity> =
                        picks2.into_iter().map(|p| assign.id_of(p)).collect();
                    SafetyCase {
                        assign,
                        s1,
                        s2,
                        m1,
                        m2,
                    }
                })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// The O(#ids) counting decision equals the exponential enumeration.
    #[test]
    fn counting_matches_brute_force(c in case()) {
        let fast = disjoint_realizations_exist(&c.m1, &c.s1, &c.m2, &c.s2, &c.assign);
        let brute = disjoint_realizations_exist_brute(&c.m1, &c.s1, &c.m2, &c.s2, &c.assign);
        prop_assert_eq!(fast, brute, "{:?}", c);
    }

    /// Symmetry: swapping the two pairs cannot change the verdict.
    #[test]
    fn decision_is_symmetric(c in case()) {
        let ab = disjoint_realizations_exist(&c.m1, &c.s1, &c.m2, &c.s2, &c.assign);
        let ba = disjoint_realizations_exist(&c.m2, &c.s2, &c.m1, &c.s1, &c.assign);
        prop_assert_eq!(ab, ba);
    }

    /// A pair can never admit a disjoint realization against itself when
    /// its realization is forced to be the full participant set.
    #[test]
    fn full_participation_is_self_safe(n in 1usize..7, l in 1usize..7) {
        let l = l.min(n);
        let assign = IdentityAssignment::round_robin(n, l);
        let s: BTreeSet<usize> = (0..n).collect();
        let m = assign.multiset();
        prop_assert!(!disjoint_realizations_exist(&m, &s, &m, &s, &assign));
    }
}
