//! Property-based tests for the multiset algebra — the foundation every
//! detector output in this workspace is built on.
//!
//! Two layers of properties:
//!
//! * algebraic laws of the bag operations (commutativity, inclusion,
//!   inclusion-exclusion, ...), generated over a *small* universe so the
//!   inline representation is exercised;
//! * equivalence of the inline and spilled representations against a
//!   plain `BTreeMap<T, usize>` reference model, generated over a
//!   universe wide enough to cross the `INLINE_DISTINCT` spill boundary
//!   in both directions.

use std::collections::BTreeMap;

use homonym_core::multiset::{Multiset, INLINE_DISTINCT};
use proptest::prelude::*;

fn ms() -> impl Strategy<Value = Multiset<u8>> {
    proptest::collection::vec(0u8..12, 0..24).prop_map(|v| v.into_iter().collect())
}

/// The reference implementation: a counted map with no fast path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct RefBag(BTreeMap<u8, usize>);

impl RefBag {
    fn insert_n(&mut self, x: u8, n: usize) {
        if n > 0 {
            *self.0.entry(x).or_insert(0) += n;
        }
    }

    fn mult(&self, x: u8) -> usize {
        self.0.get(&x).copied().unwrap_or(0)
    }

    fn len(&self) -> usize {
        self.0.values().sum()
    }

    fn merged(&self, other: &RefBag, combine: impl Fn(usize, usize) -> usize) -> RefBag {
        let mut out = RefBag::default();
        for &x in self.0.keys().chain(other.0.keys()) {
            let c = combine(self.mult(x), other.mult(x));
            if c > 0 {
                out.0.insert(x, c);
            }
        }
        out
    }

    fn is_subset(&self, other: &RefBag) -> bool {
        self.0.iter().all(|(x, &c)| other.mult(*x) >= c)
    }
}

fn to_ref(m: &Multiset<u8>) -> RefBag {
    RefBag(m.counted().map(|(&x, c)| (x, c)).collect())
}

fn from_ref(r: &RefBag) -> Multiset<u8> {
    r.0.iter().map(|(&x, &c)| (x, c)).collect()
}

/// Operation scripts over a universe wide enough (0..40) that bags cross
/// the `INLINE_DISTINCT` boundary both ways (inserts spill, removals
/// shrink a spilled bag back under the threshold).
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, usize),
    Remove(u8),
    RemoveAll(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..40, 1usize..4).prop_map(|(x, n)| Op::Insert(x, n)),
            (0u8..40).prop_map(Op::Remove),
            (0u8..40).prop_map(Op::RemoveAll),
        ],
        0..120,
    )
}

fn wide() -> impl Strategy<Value = Multiset<u8>> {
    proptest::collection::vec(0u8..40, 0..64).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Mutation scripts drive the bag through spills and shrinks; every
    /// observable must match the reference model at every step.
    #[test]
    fn scripted_mutations_match_reference_model(script in ops()) {
        let mut bag: Multiset<u8> = Multiset::new();
        let mut reference = RefBag::default();
        for op in script {
            match op {
                Op::Insert(x, n) => {
                    bag.insert_n(x, n);
                    reference.insert_n(x, n);
                }
                Op::Remove(x) => {
                    let removed = bag.remove(&x);
                    prop_assert_eq!(removed, reference.mult(x) > 0);
                    if removed {
                        if reference.mult(x) == 1 {
                            reference.0.remove(&x);
                        } else {
                            *reference.0.get_mut(&x).expect("present") -= 1;
                        }
                    }
                }
                Op::RemoveAll(x) => {
                    let removed = bag.remove_all(&x);
                    prop_assert_eq!(removed, reference.mult(x));
                    reference.0.remove(&x);
                }
            }
            prop_assert_eq!(bag.len(), reference.len());
            prop_assert_eq!(bag.distinct_len(), reference.0.len());
            prop_assert_eq!(to_ref(&bag), reference.clone());
            prop_assert_eq!(bag.min_elem().copied(), reference.0.keys().next().copied());
            prop_assert_eq!(bag.max_elem().copied(), reference.0.keys().next_back().copied());
        }
        // A rebuilt bag (guaranteed minimal representation) must be
        // fully interchangeable with the mutated one, whatever internal
        // representation each ended up with.
        let rebuilt = from_ref(&reference);
        prop_assert_eq!(&bag, &rebuilt);
        prop_assert!(bag.cmp(&rebuilt).is_eq());
        prop_assert!(bag.is_subset(&rebuilt) && rebuilt.is_subset(&bag));
    }

    /// The full bag algebra agrees with the reference model across the
    /// spill boundary.
    #[test]
    fn algebra_matches_reference_model(a in wide(), b in wide()) {
        let (ra, rb) = (to_ref(&a), to_ref(&b));
        prop_assert_eq!(to_ref(&a.union(&b)), ra.merged(&rb, usize::max));
        prop_assert_eq!(to_ref(&a.intersection(&b)), ra.merged(&rb, usize::min));
        prop_assert_eq!(to_ref(&a.sum(&b)), ra.merged(&rb, |x, y| x + y));
        prop_assert_eq!(to_ref(&a.difference(&b)), ra.merged(&rb, usize::saturating_sub));
        prop_assert_eq!(a.is_subset(&b), ra.is_subset(&rb));
        prop_assert_eq!(a.is_superset(&b), rb.is_subset(&ra));
        prop_assert_eq!(
            a.is_disjoint(&b),
            ra.0.keys().all(|x| rb.mult(*x) == 0)
        );
    }

    /// Ordering and equality are content-based: rebuilding through the
    /// reference model (fresh minimal representation) never changes how
    /// two bags compare.
    #[test]
    fn comparisons_are_representation_independent(a in wide(), b in wide()) {
        let (a2, b2) = (from_ref(&to_ref(&a)), from_ref(&to_ref(&b)));
        prop_assert_eq!(a.cmp(&b), a2.cmp(&b2));
        prop_assert_eq!(a == b, a2 == b2);
        prop_assert_eq!(a.len(), a2.len());
    }

    /// Bags sitting exactly at the spill threshold behave identically to
    /// the model (the off-by-one zone of the inline capacity).
    #[test]
    fn spill_threshold_boundary(extra in 0usize..4, mult in 1usize..3) {
        let mut bag: Multiset<u8> = Multiset::new();
        let mut reference = RefBag::default();
        let distinct = INLINE_DISTINCT + extra;
        for x in 0..distinct as u8 {
            bag.insert_n(x, mult);
            reference.insert_n(x, mult);
        }
        prop_assert_eq!(bag.distinct_len(), distinct);
        prop_assert_eq!(bag.len(), distinct * mult);
        prop_assert_eq!(to_ref(&bag), reference);
    }
}

proptest! {
    #[test]
    fn len_is_sum_of_multiplicities(a in ms()) {
        let total: usize = a.counted().map(|(_, c)| c).sum();
        prop_assert_eq!(a.len(), total);
        prop_assert_eq!(a.iter().count(), total);
    }

    #[test]
    fn union_is_commutative_and_idempotent(a in ms(), b in ms()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn intersection_is_commutative_and_idempotent(a in ms(), b in ms()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.intersection(&a), a.clone());
    }

    #[test]
    fn sum_is_commutative_and_associative(a in ms(), b in ms(), c in ms()) {
        prop_assert_eq!(a.sum(&b), b.sum(&a));
        prop_assert_eq!(a.sum(&b).sum(&c), a.sum(&b.sum(&c)));
        prop_assert_eq!(a.sum(&b).len(), a.len() + b.len());
    }

    #[test]
    fn inclusion_exclusion(a in ms(), b in ms()) {
        // |a ∪ b| + |a ∩ b| = |a| + |b| for max/min multiset semantics.
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn difference_then_add_back_restores(a in ms(), b in ms()) {
        // (a − b) ⊎ (a ∩ b) = a
        prop_assert_eq!(a.difference(&b).sum(&a.intersection(&b)), a.clone());
    }

    #[test]
    fn subset_iff_intersection_is_self(a in ms(), b in ms()) {
        prop_assert_eq!(a.is_subset(&b), a.intersection(&b) == a);
        prop_assert!(a.intersection(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn subset_is_a_partial_order(a in ms(), b in ms(), c in ms()) {
        if a.is_subset(&b) && b.is_subset(&c) {
            prop_assert!(a.is_subset(&c));
        }
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
    }

    #[test]
    fn remove_inverts_insert(mut a in ms(), x in 0u8..12) {
        let before = a.clone();
        a.insert(x);
        prop_assert!(a.remove(&x));
        prop_assert_eq!(a, before);
    }

    #[test]
    fn disjoint_iff_empty_intersection(a in ms(), b in ms()) {
        prop_assert_eq!(a.is_disjoint(&b), a.intersection(&b).is_empty());
    }

    #[test]
    fn ordering_is_total_and_consistent_with_eq(a in ms(), b in ms()) {
        use core::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(a.clone(), b.clone()),
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
    }

    #[test]
    fn roundtrips_through_counted_pairs(a in ms()) {
        let rebuilt: Multiset<u8> = a.counted().map(|(x, c)| (*x, c)).collect();
        prop_assert_eq!(rebuilt, a.clone());
    }
}
