//! Property-based tests for the multiset algebra — the foundation every
//! detector output in this workspace is built on.

use homonym_core::multiset::Multiset;
use proptest::prelude::*;

fn ms() -> impl Strategy<Value = Multiset<u8>> {
    proptest::collection::vec(0u8..12, 0..24).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn len_is_sum_of_multiplicities(a in ms()) {
        let total: usize = a.counted().map(|(_, c)| c).sum();
        prop_assert_eq!(a.len(), total);
        prop_assert_eq!(a.iter().count(), total);
    }

    #[test]
    fn union_is_commutative_and_idempotent(a in ms(), b in ms()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn intersection_is_commutative_and_idempotent(a in ms(), b in ms()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.intersection(&a), a.clone());
    }

    #[test]
    fn sum_is_commutative_and_associative(a in ms(), b in ms(), c in ms()) {
        prop_assert_eq!(a.sum(&b), b.sum(&a));
        prop_assert_eq!(a.sum(&b).sum(&c), a.sum(&b.sum(&c)));
        prop_assert_eq!(a.sum(&b).len(), a.len() + b.len());
    }

    #[test]
    fn inclusion_exclusion(a in ms(), b in ms()) {
        // |a ∪ b| + |a ∩ b| = |a| + |b| for max/min multiset semantics.
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn difference_then_add_back_restores(a in ms(), b in ms()) {
        // (a − b) ⊎ (a ∩ b) = a
        prop_assert_eq!(a.difference(&b).sum(&a.intersection(&b)), a.clone());
    }

    #[test]
    fn subset_iff_intersection_is_self(a in ms(), b in ms()) {
        prop_assert_eq!(a.is_subset(&b), a.intersection(&b) == a);
        prop_assert!(a.intersection(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn subset_is_a_partial_order(a in ms(), b in ms(), c in ms()) {
        if a.is_subset(&b) && b.is_subset(&c) {
            prop_assert!(a.is_subset(&c));
        }
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
    }

    #[test]
    fn remove_inverts_insert(mut a in ms(), x in 0u8..12) {
        let before = a.clone();
        a.insert(x);
        prop_assert!(a.remove(&x));
        prop_assert_eq!(a, before);
    }

    #[test]
    fn disjoint_iff_empty_intersection(a in ms(), b in ms()) {
        prop_assert_eq!(a.is_disjoint(&b), a.intersection(&b).is_empty());
    }

    #[test]
    fn ordering_is_total_and_consistent_with_eq(a in ms(), b in ms()) {
        use core::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(a.clone(), b.clone()),
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
    }

    #[test]
    fn roundtrips_through_counted_pairs(a in ms()) {
        let rebuilt: Multiset<u8> = a.counted().map(|(x, c)| (*x, c)).collect();
        prop_assert_eq!(rebuilt, a.clone());
    }
}
