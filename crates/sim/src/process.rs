//! The algorithm-facing process abstraction.
//!
//! A [`Process`] is the program run by every process of the system. Per the
//! paper's model, homonymous processes execute the **same program**; the
//! engine therefore runs one `Process` implementation for the whole system,
//! constructed per process index by a factory. A process observes only:
//!
//! * its own identifier (`ctx.my_id()`),
//! * the payloads of messages delivered to it (never the sender or link),
//! * its own timers.
//!
//! It cannot read the global clock, the membership, or the failure pattern.

use core::fmt;

use homonym_core::identity::Identity;
use homonym_core::time::{Span, Time};
use homonym_obs::ObsKind;
use rand::rngs::StdRng;
use rand::Rng;

/// Payload constraints for protocol messages.
pub trait Message: Clone + fmt::Debug + Send + 'static {}
impl<T: Clone + fmt::Debug + Send + 'static> Message for T {}

/// An opaque timer tag chosen by the process when arming a timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerTag(pub u64);

impl fmt::Display for TimerTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// A program executed by (possibly homonymous) processes.
///
/// All callbacks receive an [`ActionSink`] used to broadcast, arm timers,
/// publish detector output snapshots, and decide.
pub trait Process: Send + 'static {
    /// Protocol message payload.
    type Msg: Message;
    /// Detector-output type recorded by the engine for property checking
    /// (use `()` for processes that are not detectors).
    type Output: Clone + fmt::Debug + Send + 'static;

    /// Called once when the process starts (time 0 for all processes).
    fn on_start(&mut self, ctx: &mut ActionSink<'_, Self::Msg, Self::Output>);

    /// Called when a broadcast message is delivered to this process.
    /// The sender and the link are unobservable, per the model.
    fn on_message(&mut self, msg: Self::Msg, ctx: &mut ActionSink<'_, Self::Msg, Self::Output>);

    /// Batched delivery: called once for a maximal run of messages that
    /// arrive at this process at the same instant with consecutive
    /// insertion sequences (the engine's batched hot path; see
    /// `SimConfig::legacy_hot_path` for the per-message baseline).
    /// Messages are pulled in delivery order through
    /// [`ActionSink::next_message`].
    ///
    /// The default implementation replays the messages one by one through
    /// [`Process::on_message`], which is **exactly** equivalent to the
    /// per-message dispatch path: the engine stamps the action stream at
    /// every pull, so effects are attributed (and applied) per message in
    /// the original order. Overriding implementations must preserve that
    /// equivalence — process each pulled message fully before pulling the
    /// next, and stop pulling once [`ActionSink::halted`] (the sink
    /// enforces the latter by returning `None` after a halt).
    fn on_messages(&mut self, ctx: &mut ActionSink<'_, Self::Msg, Self::Output>) {
        while let Some(msg) = ctx.next_message() {
            self.on_message(msg, ctx);
        }
    }

    /// Called when a timer armed through [`ActionSink::set_timer`] fires.
    fn on_timer(&mut self, timer: TimerTag, ctx: &mut ActionSink<'_, Self::Msg, Self::Output>);

    /// The **payload-mutation hook** of the Byzantine adversary (see
    /// [`ByzantineScript`](crate::adversary::ByzantineScript)): a
    /// plausible-but-different variant of `msg`, deterministically
    /// derived from `entropy` — what a corrupt homonym delivers to its
    /// victims in place of the honest copy.
    ///
    /// The default returns `None`, meaning the message type defines no
    /// corruption semantics; the engine **panics** if a Byzantine clause
    /// then matches one of this program's broadcasts (a configuration
    /// error — the attack is meaningless without mutation semantics).
    /// Implementations must be pure (same `(msg, entropy)` ⇒ same
    /// result, the replayability contract) and should perturb
    /// protocol-meaningful fields (estimates, identifiers, decision
    /// values) rather than produce garbage the receiver would reject
    /// structurally.
    fn mutate_payload(msg: &Self::Msg, entropy: u64) -> Option<Self::Msg>
    where
        Self: Sized,
    {
        let _ = (msg, entropy);
        None
    }
}

/// Engine-side state backing one batched same-`(time, dest)` delivery:
/// the pending messages plus, per consumed message, the cut point in the
/// action buffer (so the engine can attribute actions to the message that
/// produced them) and the message's class label for the trace.
#[derive(Debug)]
pub(crate) struct BatchFeed<M> {
    /// Pending messages in **reverse** delivery order, so consuming the
    /// next message is an O(1) pop from the back.
    msgs: Vec<M>,
    /// `(actions.len() at hand-out, class, round)` per consumed message.
    cuts: Vec<(usize, &'static str, Option<u64>)>,
    /// Classifier for trace labels; `None` skips classification (no
    /// trace is being recorded).
    classifier: Option<fn(&M) -> &'static str>,
    /// Round extractor for trace labels; `None` skips extraction.
    rounder: Option<fn(&M) -> Option<u64>>,
}

impl<M> BatchFeed<M> {
    pub(crate) fn new() -> Self {
        BatchFeed {
            msgs: Vec::new(),
            cuts: Vec::new(),
            classifier: None,
            rounder: None,
        }
    }

    /// Prepares the feed for one batch: `msgs` must already be in reverse
    /// delivery order. `classifier`/`rounder` are `Some` only when trace
    /// labels are needed.
    pub(crate) fn load(
        &mut self,
        classifier: Option<fn(&M) -> &'static str>,
        rounder: Option<fn(&M) -> Option<u64>>,
    ) -> &mut Vec<M> {
        debug_assert!(self.msgs.is_empty() && self.cuts.is_empty());
        self.classifier = classifier;
        self.rounder = rounder;
        &mut self.msgs
    }

    /// The per-consumed-message cut points recorded during the callback.
    pub(crate) fn cuts(&self) -> &[(usize, &'static str, Option<u64>)] {
        &self.cuts
    }

    /// Clears the feed for reuse; unconsumed messages (a mid-batch halt)
    /// are dropped, exactly as the per-message path would skip them.
    pub(crate) fn recycle(&mut self) {
        self.msgs.clear();
        self.cuts.clear();
        self.classifier = None;
        self.rounder = None;
    }
}

/// Effects a process can request during a callback.
///
/// Public so that alternative engines (e.g. the thread-based
/// `homonym-runtime`) can drain and apply them; algorithm code never
/// constructs these directly.
#[derive(Debug)]
pub enum Action<M, O> {
    /// Send `m` to every process, self included.
    Broadcast(M),
    /// Arm a one-shot timer.
    SetTimer(Span, TimerTag),
    /// Record a detector-output snapshot.
    Publish(O),
    /// Record a consensus decision.
    Decide(u64),
    /// Stop delivering callbacks to this process.
    Halt,
    /// Record a structured observability event (emitted only while a
    /// recorder is attached; see [`ActionSink::observe`]).
    Observe(ObsKind),
    /// Count one admission-window rejection into the engine's
    /// `copies_discarded` metric (emitted unconditionally; see
    /// [`ActionSink::note_discard`]).
    Discard,
}

/// The process's handle to the outside world during one callback.
///
/// The sink records requested effects; the engine applies them when the
/// callback returns (a crash scheduled mid-broadcast can then deliver the
/// message to an arbitrary subset, as the model prescribes).
pub struct ActionSink<'a, M, O> {
    my_id: Identity,
    now: Time,
    rng: &'a mut StdRng,
    actions: &'a mut Vec<Action<M, O>>,
    halted: bool,
    /// Whether an observability recorder is attached to the engine: the
    /// gate of [`ActionSink::observe`].
    obs_on: bool,
    /// Pending batched delivery, when the engine dispatched a message
    /// batch (see [`Process::on_messages`]).
    feed: Option<&'a mut BatchFeed<M>>,
}

impl<'a, M, O> ActionSink<'a, M, O> {
    /// Creates a sink collecting into `actions`. For engine implementors;
    /// algorithm code receives sinks from its engine.
    pub fn new(
        my_id: Identity,
        now: Time,
        rng: &'a mut StdRng,
        actions: &'a mut Vec<Action<M, O>>,
    ) -> Self {
        ActionSink {
            my_id,
            now,
            rng,
            actions,
            halted: false,
            obs_on: false,
            feed: None,
        }
    }

    /// Sets whether [`ActionSink::observe`] is live (builder style). The
    /// engines thread their recorder's presence through this; it must
    /// never change any other effect of the sink.
    #[must_use]
    pub fn with_observing(mut self, on: bool) -> Self {
        self.obs_on = on;
        self
    }

    /// Creates a sink for a batched delivery, feeding messages out of
    /// `feed` (engine-internal).
    pub(crate) fn with_feed(
        my_id: Identity,
        now: Time,
        rng: &'a mut StdRng,
        actions: &'a mut Vec<Action<M, O>>,
        feed: &'a mut BatchFeed<M>,
    ) -> Self {
        ActionSink {
            my_id,
            now,
            rng,
            actions,
            halted: false,
            obs_on: false,
            feed: Some(feed),
        }
    }

    /// Pulls the next message of the current delivery batch, or `None`
    /// when the batch is exhausted, this callback is not a batched
    /// delivery, or the process has already requested a halt (a halted
    /// process receives nothing more, matching the per-message path's
    /// skip of events addressed to a halted process).
    ///
    /// Each pull stamps the action stream, which is how the engine
    /// attributes actions — and orders trace events — per message even
    /// though the whole batch runs inside one callback.
    pub fn next_message(&mut self) -> Option<M> {
        if self.halted {
            return None;
        }
        let feed = self.feed.as_deref_mut()?;
        let msg = feed.msgs.pop()?;
        let class = feed.classifier.map_or("msg", |f| f(&msg));
        let round = feed.rounder.and_then(|f| f(&msg));
        feed.cuts.push((self.actions.len(), class, round));
        Some(msg)
    }

    /// The identifier `id(p)` of this process. Homonyms observe the same
    /// value; it is the **only** initial knowledge a process has.
    #[must_use]
    pub fn my_id(&self) -> Identity {
        self.my_id
    }

    /// The local virtual time at which this callback runs.
    ///
    /// Exposed for logging/adaptive timeouts relative to the process's own
    /// events; algorithms must not use it as a synchronized global clock
    /// (the engine offers no cross-process time agreement API).
    #[must_use]
    pub fn local_now(&self) -> Time {
        self.now
    }

    /// Sends `m` to **all** processes of the system, itself included
    /// (the paper's `broadcast` primitive).
    pub fn broadcast(&mut self, m: M) {
        self.actions.push(Action::Broadcast(m));
    }

    /// Arms a one-shot timer that fires after `delay` (at least one tick).
    pub fn set_timer(&mut self, delay: Span, tag: TimerTag) {
        self.actions.push(Action::SetTimer(delay, tag));
    }

    /// Publishes a detector-output snapshot for history recording.
    pub fn publish(&mut self, output: O) {
        self.actions.push(Action::Publish(output));
    }

    /// Records a consensus decision. The process keeps running (the
    /// Figure 8/9 `Task T2` keeps relaying `DECIDE`) unless it also calls
    /// [`ActionSink::halt`].
    pub fn decide(&mut self, value: u64) {
        self.actions.push(Action::Decide(value));
    }

    /// Stops the process: no further callbacks are delivered.
    pub fn halt(&mut self) {
        self.halted = true;
        self.actions.push(Action::Halt);
    }

    /// Whether this callback already requested a halt.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether an observability recorder is attached (the gate of
    /// [`ActionSink::observe`]); stacking relays propagate this to their
    /// sub-sinks.
    #[must_use]
    pub fn observing(&self) -> bool {
        self.obs_on
    }

    /// Records a structured observability event — **only** while the
    /// engine has a recorder attached. The closure is never evaluated
    /// otherwise, so instrumentation costs one predictable branch when
    /// off and dispatch stays byte-identical either way (the zero-cost
    /// contract pinned by the `obs_props` proptests).
    pub fn observe(&mut self, f: impl FnOnce() -> ObsKind) {
        if self.obs_on {
            self.actions.push(Action::Observe(f()));
        }
    }

    /// Counts one admission-window rejection into the engine's
    /// `copies_discarded` metric. Unlike [`ActionSink::observe`] this is
    /// **unconditional** — the metric counts identically with or without
    /// a recorder attached.
    pub fn note_discard(&mut self) {
        self.actions.push(Action::Discard);
    }

    /// Process-local deterministic randomness (seeded per process by the
    /// engine). Algorithms in this repository only use it where the paper
    /// allows non-determinism (e.g. random proposal tie-breaks in
    /// workloads), never for correctness.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut *self.rng
    }

    /// Access to the concrete RNG stream, for **stacking relays** that
    /// hand the same stream to a sub-sink built with [`ActionSink::new`]
    /// (see [`crate::stack::Stacked`] and the multi-height replicated
    /// log's height relay). Algorithm code should use
    /// [`ActionSink::rng`] instead.
    pub fn raw_rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

impl<M, O> fmt::Debug for ActionSink<'_, M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActionSink")
            .field("my_id", &self.my_id)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sink_records_actions_in_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut actions: Vec<Action<u32, ()>> = Vec::new();
        let mut sink = ActionSink::new(Identity::new(0), Time::ZERO, &mut rng, &mut actions);
        sink.broadcast(7);
        sink.set_timer(Span::from_ticks(3), TimerTag(1));
        sink.decide(9);
        assert!(!sink.halted());
        sink.halt();
        assert!(sink.halted());
        assert_eq!(actions.len(), 4);
        assert!(matches!(actions[0], Action::Broadcast(7)));
        assert!(matches!(actions[1], Action::SetTimer(d, TimerTag(1)) if d == Span::from_ticks(3)));
        assert!(matches!(actions[2], Action::Decide(9)));
        assert!(matches!(actions[3], Action::Halt));
    }

    #[test]
    fn observe_is_gated_but_note_discard_is_not() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut actions: Vec<Action<u32, ()>> = Vec::new();
        let mut off = ActionSink::new(Identity::new(0), Time::ZERO, &mut rng, &mut actions);
        assert!(!off.observing());
        off.observe(|| unreachable!("closure must not run without a recorder"));
        off.note_discard();
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], Action::Discard));

        let mut actions: Vec<Action<u32, ()>> = Vec::new();
        let mut on = ActionSink::new(Identity::new(0), Time::ZERO, &mut rng, &mut actions)
            .with_observing(true);
        assert!(on.observing());
        on.observe(|| ObsKind::LockReleased { round: 3 });
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            Action::Observe(ObsKind::LockReleased { round: 3 })
        ));
    }

    #[test]
    fn sink_exposes_identity_and_time() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut actions: Vec<Action<u32, ()>> = Vec::new();
        let sink = ActionSink::new(
            Identity::new(5),
            Time::from_ticks(9),
            &mut rng,
            &mut actions,
        );
        assert_eq!(sink.my_id(), Identity::new(5));
        assert_eq!(sink.local_now(), Time::from_ticks(9));
    }
}
