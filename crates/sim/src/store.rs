//! The durable checkpoint store: atomic, checksummed, versioned files.
//!
//! Every checkpoint artifact in the workspace — spilled prefix-tree
//! snapshots, sweep segments, sweep manifests — goes through this one
//! container format:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HSNP"
//! 4       4     format version (u32 LE) — the container layout itself
//! 8       4     schema version (u32 LE) — the payload's logical schema
//! 12      8     payload length (u64 LE)
//! 20      8     FNV-1a 64 checksum of the payload (u64 LE)
//! 28      n     payload (a `homonym_core::wire` encoding)
//! ```
//!
//! # Atomicity
//!
//! [`write_atomic`] stages the bytes in a sibling temp file, `fsync`s
//! it, renames it over the destination, and `fsync`s the directory. A
//! SIGKILL at any instant leaves either the old file, the new file, or
//! a stray temp file that readers never look at — never a torn
//! checkpoint.
//!
//! # Corruption is an absence, not an abort
//!
//! Every read path returns `Result<Option<_>>`-shaped outcomes through
//! [`StoreError`]: a missing file, a bad magic, a failed checksum and a
//! truncated payload are all *recoverable* conditions the caller
//! answers by re-executing the covered work from the nearest good
//! prefix. Only a schema/format version mismatch on a *manifest* is
//! surfaced to the operator (resuming under a different binary's
//! layout must fail loudly, not silently re-run).

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use homonym_core::wire::WireError;

/// Container layout version (bump on any header change).
pub const FORMAT_VERSION: u32 = 1;

/// The magic leading every checkpoint file.
pub const MAGIC: [u8; 4] = *b"HSNP";

/// Header bytes before the payload.
const HEADER_LEN: usize = 28;

/// Why a checkpoint file could not be used.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The file is shorter than its header claims (torn write on a
    /// non-atomic filesystem, or deliberate truncation).
    Truncated {
        /// Payload bytes the header promised.
        expected: usize,
        /// Payload bytes actually present.
        found: usize,
    },
    /// The payload hash does not match the header checksum (bit rot or
    /// tampering).
    ChecksumMismatch,
    /// The container layout version differs from this binary's.
    FormatVersion {
        /// Version found in the file.
        found: u32,
        /// Version this binary writes.
        expected: u32,
    },
    /// The payload schema version differs from what the caller expects.
    SchemaVersion {
        /// Version found in the file.
        found: u32,
        /// Version the caller expects.
        expected: u32,
    },
    /// The payload failed to decode despite a matching checksum — a
    /// writer bug or a hash collision; treated like corruption.
    Decode(WireError),
    /// A manifest decoded fine but fingerprints a different
    /// configuration — the checkpoint directory belongs to another
    /// sweep, and resuming from it would silently mix their outcomes.
    ConfigMismatch {
        /// Fingerprint recorded in the manifest.
        found: u64,
        /// Fingerprint of the configuration trying to resume.
        expected: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            StoreError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            StoreError::Truncated { expected, found } => write!(
                f,
                "checkpoint truncated: header promises {expected} payload bytes, {found} present"
            ),
            StoreError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            StoreError::FormatVersion { found, expected } => write!(
                f,
                "checkpoint container version {found} is not this binary's version {expected}; \
                 re-run without --resume (or clear the checkpoint directory) to start fresh"
            ),
            StoreError::SchemaVersion { found, expected } => write!(
                f,
                "checkpoint schema version {found} is not this binary's version {expected}; \
                 re-run without --resume (or clear the checkpoint directory) to start fresh"
            ),
            StoreError::Decode(e) => write!(f, "checkpoint payload failed to decode: {e}"),
            StoreError::ConfigMismatch { found, expected } => write!(
                f,
                "checkpoint directory belongs to a different sweep configuration \
                 (manifest fingerprint {found:#018x}, this run's {expected:#018x}); \
                 point the checkpoint at a fresh directory or clear this one"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// Whether the error means "this file's covered work should be
    /// re-executed" (corruption-shaped) rather than "the operator must
    /// intervene" (version-shaped or I/O-shaped).
    #[must_use]
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::BadMagic
                | StoreError::Truncated { .. }
                | StoreError::ChecksumMismatch
                | StoreError::Decode(_)
        )
    }
}

/// FNV-1a 64 over `bytes` — the checkpoint checksum and the config
/// fingerprint hash. Not cryptographic; it guards against bit rot and
/// torn writes, not adversaries with filesystem access.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frames `payload` in the container format under `schema`.
#[must_use]
pub fn encode_container(schema: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&schema.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Unframes a container, verifying magic, versions, length and
/// checksum, and returns the payload slice.
///
/// # Errors
///
/// Any [`StoreError`] the header or checksum rules reject.
pub fn decode_container(bytes: &[u8], schema: u32) -> Result<&[u8], StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN,
            found: bytes.len(),
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let format = word(4);
    if format != FORMAT_VERSION {
        return Err(StoreError::FormatVersion {
            found: format,
            expected: FORMAT_VERSION,
        });
    }
    let found_schema = word(8);
    if found_schema != schema {
        return Err(StoreError::SchemaVersion {
            found: found_schema,
            expected: schema,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let len = usize::try_from(len).map_err(|_| StoreError::Truncated {
        expected: usize::MAX,
        found: bytes.len() - HEADER_LEN,
    })?;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != len {
        return Err(StoreError::Truncated {
            expected: len,
            found: payload.len(),
        });
    }
    let sum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if fnv1a(payload) != sum {
        return Err(StoreError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Writes `payload` (framed under `schema`) to `path` atomically: temp
/// file in the same directory, `fsync`, rename, directory `fsync`.
///
/// # Errors
///
/// [`StoreError::Io`] on any filesystem failure.
pub fn write_atomic(path: &Path, schema: u32, payload: &[u8]) -> Result<(), StoreError> {
    let framed = encode_container(schema, payload);
    let dir = path
        .parent()
        .ok_or_else(|| StoreError::Io(std::io::Error::other("checkpoint path has no parent")))?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&framed)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself; without this a crash can resurrect
    // the old directory entry.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads and verifies a checkpoint file; `Ok(None)` when the file does
/// not exist (a checkpoint never written is not an error).
///
/// # Errors
///
/// Any verification failure from [`decode_container`], or
/// [`StoreError::Io`] on filesystem failures other than not-found.
pub fn read_verified(path: &Path, schema: u32) -> Result<Option<Vec<u8>>, StoreError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let payload = decode_container(&bytes, schema)?;
    Ok(Some(payload.to_vec()))
}

/// Counters the spill layer exposes (asserted by tests, reported by
/// benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpoolStats {
    /// Snapshots written to disk.
    pub spilled: u64,
    /// Snapshots read back from disk.
    pub reloaded: u64,
    /// Spilled snapshots lost to corruption (caller re-executed).
    pub corrupt: u64,
    /// Total bytes currently on disk.
    pub bytes_on_disk: u64,
}

/// A disk spill area for cold snapshots under a configurable memory
/// budget.
///
/// The spool itself is policy-free storage: callers (the prefix-sharing
/// sweeper) decide *which* snapshot is cold; the spool provides durable
/// put/take with corruption detection. Files live in the spool
/// directory as `spill-<id>.ck` and are deleted on take — a spilled
/// snapshot is read back at most once, exactly like its in-RAM
/// counterpart is consumed by the DFS pop.
pub struct SnapshotSpool {
    dir: PathBuf,
    budget_bytes: u64,
    next_id: u64,
    /// Observed spill activity.
    pub stats: SpoolStats,
}

/// A claim ticket for one spilled snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillHandle {
    id: u64,
    bytes: u64,
}

impl SpillHandle {
    /// Encoded size of the spilled snapshot.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Schema tag for spilled snapshot payloads (independent of the sweep
/// segment schema: a spool file is never read by a different binary).
pub const SPOOL_SCHEMA: u32 = 1;

impl SnapshotSpool {
    /// A spool rooted at `dir` (created if absent) keeping at most
    /// `budget_bytes` of snapshot state in RAM — the sweeper spills
    /// past that watermark.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>, budget_bytes: u64) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotSpool {
            dir,
            budget_bytes,
            next_id: 0,
            stats: SpoolStats::default(),
        })
    }

    /// The configured RAM budget.
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    fn path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("spill-{id:08}.ck"))
    }

    /// Spills encoded snapshot bytes to disk, returning the handle to
    /// reclaim them.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the atomic write fails.
    pub fn put(&mut self, encoded: &[u8]) -> Result<SpillHandle, StoreError> {
        let id = self.next_id;
        self.next_id += 1;
        write_atomic(&self.path(id), SPOOL_SCHEMA, encoded)?;
        self.stats.spilled += 1;
        self.stats.bytes_on_disk += encoded.len() as u64;
        Ok(SpillHandle {
            id,
            bytes: encoded.len() as u64,
        })
    }

    /// Takes a spilled snapshot back, deleting its file. `None` when
    /// the file is missing or fails verification — the caller
    /// re-executes from the nearest good prefix (the graceful half of
    /// the corruption contract).
    pub fn take(&mut self, handle: &SpillHandle) -> Option<Vec<u8>> {
        let path = self.path(handle.id);
        let out = match read_verified(&path, SPOOL_SCHEMA) {
            Ok(Some(bytes)) => {
                self.stats.reloaded += 1;
                Some(bytes)
            }
            Ok(None) | Err(_) => {
                self.stats.corrupt += 1;
                None
            }
        };
        let _ = fs::remove_file(&path);
        self.stats.bytes_on_disk = self.stats.bytes_on_disk.saturating_sub(handle.bytes);
        out
    }

    /// Deletes a spilled snapshot without reading it back — the DFS pop
    /// of a branch point that no later item can resume from.
    pub fn discard(&mut self, handle: &SpillHandle) {
        let _ = fs::remove_file(self.path(handle.id));
        self.stats.bytes_on_disk = self.stats.bytes_on_disk.saturating_sub(handle.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("homonym-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn container_roundtrips() {
        let payload = b"some snapshot bytes";
        let framed = encode_container(9, payload);
        assert_eq!(decode_container(&framed, 9).unwrap(), payload);
    }

    #[test]
    fn every_corruption_mode_is_detected() {
        let framed = encode_container(3, b"payload payload payload");
        // Bit flip anywhere — header or payload — must be rejected.
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_container(&bad, 3).is_err(),
                "bit flip at {i} went undetected"
            );
        }
        // Truncation at every boundary.
        for cut in 0..framed.len() {
            assert!(matches!(
                decode_container(&framed[..cut], 3),
                Err(StoreError::Truncated { .. } | StoreError::ChecksumMismatch)
            ));
        }
        // Stale schema.
        assert!(matches!(
            decode_container(&framed, 4),
            Err(StoreError::SchemaVersion {
                found: 3,
                expected: 4
            })
        ));
    }

    #[test]
    fn version_errors_are_operator_shaped_corruption_is_not() {
        let framed = encode_container(1, b"x");
        let schema_err = decode_container(&framed, 2).unwrap_err();
        assert!(!schema_err.is_corruption());
        let mut flipped = framed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(decode_container(&flipped, 1).unwrap_err().is_corruption());
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = tmpdir("atomic");
        let path = dir.join("snap.ck");
        write_atomic(&path, 7, b"hello").unwrap();
        assert_eq!(read_verified(&path, 7).unwrap().unwrap(), b"hello");
        // Overwrite goes through the same path.
        write_atomic(&path, 7, b"world").unwrap();
        assert_eq!(read_verified(&path, 7).unwrap().unwrap(), b"world");
        // No temp litter.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_none_not_error() {
        let dir = tmpdir("missing");
        assert!(read_verified(&dir.join("nope.ck"), 1).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spool_put_take_roundtrips_and_cleans_up() {
        let dir = tmpdir("spool");
        let mut spool = SnapshotSpool::new(&dir, 1 << 20).unwrap();
        let h1 = spool.put(b"cold snapshot one").unwrap();
        let h2 = spool.put(b"cold snapshot two").unwrap();
        assert_eq!(spool.stats.spilled, 2);
        assert_eq!(spool.take(&h2).unwrap(), b"cold snapshot two");
        assert_eq!(spool.take(&h1).unwrap(), b"cold snapshot one");
        assert_eq!(spool.stats.reloaded, 2);
        assert_eq!(spool.stats.bytes_on_disk, 0);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spool_entry_returns_none() {
        let dir = tmpdir("spool-corrupt");
        let mut spool = SnapshotSpool::new(&dir, 1 << 20).unwrap();
        let h = spool.put(b"doomed").unwrap();
        // Flip a payload bit on disk behind the spool's back.
        let path = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(spool.take(&h).is_none());
        assert_eq!(spool.stats.corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
