//! # homonym-sim
//!
//! Deterministic discrete-event simulator for **homonymous message-passing
//! systems** — the substrate on which this workspace reproduces the
//! algorithms of *"Failure Detectors in Homonymous Distributed Systems"*
//! (ICDCS 2012).
//!
//! The paper's three timing models are realized as:
//!
//! * `HAS[∅]` — [`NetworkModel::Asynchronous`] under the event-driven
//!   [`Engine`];
//! * `HPS[∅]` — [`NetworkModel::PartialSync`] (messages sent before an
//!   unknown GST may be lost or delayed; afterwards delivered within `δ`);
//! * `HSS[∅]` — the lock-step [`SyncEngine`].
//!
//! Processes implement [`Process`] (event-driven) or [`SyncProcess`]
//! (lock-step); the engines inject crashes from a
//! [`FailureSchedule`](homonym_core::FailureSchedule), including the
//! model's "arbitrary subset" semantics for a broadcast interrupted by a
//! crash. Runs are fully deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use homonym_core::prelude::*;
//! use homonym_sim::prelude::*;
//!
//! // One process that broadcasts a number and decides when it hears it.
//! struct Loopback;
//! impl Process for Loopback {
//!     type Msg = u64;
//!     type Output = ();
//!     fn on_start(&mut self, ctx: &mut ActionSink<'_, u64, ()>) {
//!         ctx.broadcast(42);
//!     }
//!     fn on_message(&mut self, msg: u64, ctx: &mut ActionSink<'_, u64, ()>) {
//!         ctx.decide(msg);
//!     }
//!     fn on_timer(&mut self, _t: TimerTag, _ctx: &mut ActionSink<'_, u64, ()>) {}
//! }
//!
//! let cfg = SimConfig::new(
//!     IdentityAssignment::unique(1),
//!     FailureSchedule::none(1),
//!     NetworkModel::reliable(Span::TICK),
//! );
//! let mut engine = Engine::new(cfg, |_, _| Loopback);
//! engine.run_until_all_correct_decided(Time::from_ticks(10));
//! assert_eq!(engine.decisions()[0].map(|(_, v)| v), Some(42));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod durable;
pub mod engine;
pub mod network;
pub mod process;
mod queue;
pub mod snapshot;
pub mod stack;
pub mod store;
pub mod sweep;
pub mod sync_engine;
pub mod trace;
pub mod workload;

pub use adversary::{
    ByzClause, ByzDirective, ByzEffect, ByzPlan, ByzantineScript, LinkClause, LinkEffect,
    LinkFaultScript, ProcSet,
};
pub use engine::{Engine, EngineArena, Metrics, SimConfig, StopReason};
pub use network::{LatencyDistribution, NetworkModel, PreGstBehavior};
pub use process::{ActionSink, Message, Process, TimerTag};
pub use snapshot::{EngineSnapshot, ForkProcess, ForkSyncProcess, SyncSnapshot};
pub use stack::{split_history, Either, Stacked};
pub use store::{
    decode_container, encode_container, fnv1a, read_verified, write_atomic, SnapshotSpool,
    SpillHandle, SpoolStats, StoreError, FORMAT_VERSION,
};
pub use sweep::{
    config_divergence, item_divergence, parallel_seed_sweep, parallel_seed_sweep_with, ForkStats,
    PrefixItem, PrefixSweeper, PrefixTree, RunGoal,
};
pub use sync_engine::{SyncConfig, SyncEngine, SyncMetrics, SyncProcess, SyncSink};
pub use trace::{Trace, TraceEvent};
pub use workload::{ArrivalModel, CommandQueue, KeySkew, WorkloadConfig};
// The observability vocabulary travels with the engines that record it.
pub use homonym_obs::{ObsEvent, ObsKind, Recorder};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::adversary::{
        ByzClause, ByzDirective, ByzEffect, ByzPlan, ByzantineScript, LinkClause, LinkEffect,
        LinkFaultScript, ProcSet,
    };
    pub use crate::engine::{Engine, EngineArena, Metrics, SimConfig, StopReason};
    pub use crate::network::{LatencyDistribution, NetworkModel, PreGstBehavior};
    pub use crate::process::{ActionSink, Message, Process, TimerTag};
    pub use crate::snapshot::{EngineSnapshot, ForkProcess, ForkSyncProcess, SyncSnapshot};
    pub use crate::stack::{split_history, Either, Stacked};
    pub use crate::sweep::{
        config_divergence, item_divergence, parallel_seed_sweep, parallel_seed_sweep_with,
        ForkStats, PrefixItem, PrefixSweeper, PrefixTree, RunGoal,
    };
    pub use crate::sync_engine::{SyncConfig, SyncEngine, SyncMetrics, SyncProcess, SyncSink};
    pub use crate::trace::{Trace, TraceEvent};
    pub use crate::workload::{ArrivalModel, CommandQueue, KeySkew, WorkloadConfig};
    pub use homonym_obs::{ObsEvent, ObsKind, Recorder};
}
