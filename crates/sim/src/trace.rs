//! Run traces: an ordered record of everything the engine did.
//!
//! Traces serve two purposes: debugging distributed runs (what was
//! delivered to whom, when), and *determinism auditing* — two runs of the
//! same configuration and seed must produce identical traces, which the
//! test suites assert across whole pipelines.
//!
//! Message payloads are not stored; events carry the class name produced
//! by the engine's classifier (or `"msg"` when none is installed), which
//! keeps traces cheap and `Eq`-comparable.

use core::fmt;

use homonym_core::time::Time;
use homonym_core::wire::{Loader, Persist, Saver, WireError};

use crate::process::TimerTag;

/// One engine-level event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A process took its start step.
    Started {
        /// Time of the step.
        at: Time,
        /// Process index.
        process: usize,
    },
    /// A broadcast was initiated.
    Broadcast {
        /// Time of the send.
        at: Time,
        /// Sending process index.
        process: usize,
        /// Message class (classifier output).
        class: &'static str,
        /// Originating protocol round (round-extractor output; `None`
        /// when no extractor is installed or the class carries no round).
        round: Option<u64>,
    },
    /// A message copy was delivered.
    Delivered {
        /// Delivery time.
        at: Time,
        /// Receiving process index.
        process: usize,
        /// Message class (classifier output).
        class: &'static str,
        /// Originating protocol round (round-extractor output; `None`
        /// when no extractor is installed or the class carries no round).
        round: Option<u64>,
    },
    /// A timer fired.
    TimerFired {
        /// Fire time.
        at: Time,
        /// Process index.
        process: usize,
        /// The tag the process armed.
        tag: TimerTag,
    },
    /// A process decided.
    Decided {
        /// Decision time.
        at: Time,
        /// Process index.
        process: usize,
        /// Decided value.
        value: u64,
    },
    /// A process halted itself.
    Halted {
        /// Halt time.
        at: Time,
        /// Process index.
        process: usize,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    #[must_use]
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Started { at, .. }
            | TraceEvent::Broadcast { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::TimerFired { at, .. }
            | TraceEvent::Decided { at, .. }
            | TraceEvent::Halted { at, .. } => *at,
        }
    }

    /// The process the event concerns.
    #[must_use]
    pub fn process(&self) -> usize {
        match self {
            TraceEvent::Started { process, .. }
            | TraceEvent::Broadcast { process, .. }
            | TraceEvent::Delivered { process, .. }
            | TraceEvent::TimerFired { process, .. }
            | TraceEvent::Decided { process, .. }
            | TraceEvent::Halted { process, .. } => *process,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Started { at, process } => write!(f, "{at} p{process} start"),
            TraceEvent::Broadcast {
                at,
                process,
                class,
                round,
            } => {
                write!(f, "{at} p{process} bcast {class}")?;
                match round {
                    Some(r) => write!(f, " r{r}"),
                    None => Ok(()),
                }
            }
            TraceEvent::Delivered {
                at,
                process,
                class,
                round,
            } => {
                write!(f, "{at} p{process} recv {class}")?;
                match round {
                    Some(r) => write!(f, " r{r}"),
                    None => Ok(()),
                }
            }
            TraceEvent::TimerFired { at, process, tag } => {
                write!(f, "{at} p{process} {tag}")
            }
            TraceEvent::Decided { at, process, value } => {
                write!(f, "{at} p{process} decide {value}")
            }
            TraceEvent::Halted { at, process } => write!(f, "{at} p{process} halt"),
        }
    }
}

/// A bounded event recording.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that keeps at most `capacity` events (older events
    /// are never evicted; once full, later events are counted but not
    /// stored, so prefixes stay comparable).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in engine order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events were not stored because the capacity was reached.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events concerning one process, in order.
    pub fn for_process(&self, p: usize) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.process() == p)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "... {} events dropped (capacity)", self.dropped)?;
        }
        Ok(())
    }
}

impl Persist for TraceEvent {
    fn save(&self, s: &mut Saver) {
        match self {
            TraceEvent::Started { at, process } => {
                s.u8(0);
                at.save(s);
                process.save(s);
            }
            TraceEvent::Broadcast {
                at,
                process,
                class,
                round,
            } => {
                s.u8(1);
                at.save(s);
                process.save(s);
                class.save(s);
                round.save(s);
            }
            TraceEvent::Delivered {
                at,
                process,
                class,
                round,
            } => {
                s.u8(2);
                at.save(s);
                process.save(s);
                class.save(s);
                round.save(s);
            }
            TraceEvent::TimerFired { at, process, tag } => {
                s.u8(3);
                at.save(s);
                process.save(s);
                tag.save(s);
            }
            TraceEvent::Decided { at, process, value } => {
                s.u8(4);
                at.save(s);
                process.save(s);
                value.save(s);
            }
            TraceEvent::Halted { at, process } => {
                s.u8(5);
                at.save(s);
                process.save(s);
            }
        }
    }

    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(match l.u8()? {
            0 => TraceEvent::Started {
                at: Persist::load(l)?,
                process: Persist::load(l)?,
            },
            1 => TraceEvent::Broadcast {
                at: Persist::load(l)?,
                process: Persist::load(l)?,
                class: Persist::load(l)?,
                round: Persist::load(l)?,
            },
            2 => TraceEvent::Delivered {
                at: Persist::load(l)?,
                process: Persist::load(l)?,
                class: Persist::load(l)?,
                round: Persist::load(l)?,
            },
            3 => TraceEvent::TimerFired {
                at: Persist::load(l)?,
                process: Persist::load(l)?,
                tag: Persist::load(l)?,
            },
            4 => TraceEvent::Decided {
                at: Persist::load(l)?,
                process: Persist::load(l)?,
                value: Persist::load(l)?,
            },
            5 => TraceEvent::Halted {
                at: Persist::load(l)?,
                process: Persist::load(l)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "TraceEvent",
                    tag,
                })
            }
        })
    }
}

homonym_core::persist_fields!(Trace {
    events,
    capacity,
    dropped
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_respected_and_counted() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(TraceEvent::Started {
                at: Time::from_ticks(i),
                process: 0,
            });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn accessors_cover_all_variants() {
        let evs = [
            TraceEvent::Started {
                at: Time::from_ticks(1),
                process: 2,
            },
            TraceEvent::Broadcast {
                at: Time::from_ticks(2),
                process: 3,
                class: "X",
                round: Some(1),
            },
            TraceEvent::Delivered {
                at: Time::from_ticks(3),
                process: 4,
                class: "X",
                round: None,
            },
            TraceEvent::TimerFired {
                at: Time::from_ticks(4),
                process: 5,
                tag: TimerTag(9),
            },
            TraceEvent::Decided {
                at: Time::from_ticks(5),
                process: 6,
                value: 7,
            },
            TraceEvent::Halted {
                at: Time::from_ticks(6),
                process: 7,
            },
        ];
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.at(), Time::from_ticks(i as u64 + 1));
            assert_eq!(e.process(), i + 2);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn for_process_filters() {
        let mut t = Trace::with_capacity(10);
        t.record(TraceEvent::Started {
            at: Time::ZERO,
            process: 0,
        });
        t.record(TraceEvent::Started {
            at: Time::ZERO,
            process: 1,
        });
        t.record(TraceEvent::Halted {
            at: Time::from_ticks(1),
            process: 0,
        });
        assert_eq!(t.for_process(0).count(), 2);
        assert_eq!(t.for_process(1).count(), 1);
    }
}
