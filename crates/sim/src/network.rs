//! Network timing models: the three synchrony assumptions of the paper.
//!
//! The network has a directed link from every process to every process
//! (including self-links); `broadcast(m)` puts one copy of `m` on each
//! link. A [`NetworkModel`] decides, per copy, the delivery latency — or
//! loss, which the model only permits **before GST** in the partially
//! synchronous case (`HPS`).
//!
//! * [`NetworkModel::Asynchronous`] — `HAS[∅]`: reliable links, arbitrary
//!   finite delays.
//! * [`NetworkModel::PartialSync`] — `HPS[∅]`: messages sent before the
//!   (unknown to processes) global stabilization time `GST` may be lost or
//!   arbitrarily delayed; messages sent at or after `GST` are delivered
//!   within `δ`.
//! * [`NetworkModel::Synchronous`] — `HSS[∅]`: known bound; every copy is
//!   delivered in exactly one tick, which together with lock-step rounds
//!   realizes the synchronous model.

use homonym_core::time::{Span, Time};
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::Rng;

/// Draws whether an event with probability `percent`/100 occurs: one
/// uniform draw over `0..100`, so `0` never hits and `100` always does;
/// larger values saturate to 100. This is the single clamped-boundary
/// rule shared by [`LatencyDistribution::SkewedTail`] stragglers,
/// [`PreGstBehavior::LossyDelay`] losses, and the adversary's
/// probabilistic clauses ([`crate::adversary::LinkEffect::Lose`]).
pub(crate) fn percent_roll(rng: &mut StdRng, percent: u8) -> bool {
    rng.gen_range(0u8..100) < percent.min(100)
}

/// Samples a delay uniformly in `[1, bound]` ticks. A zero bound clamps
/// to the one-tick minimum every delivery pays (a message never arrives
/// at its send instant). This is the single clamp shared by the post-GST
/// `δ` window and both pre-GST delay paths.
pub(crate) fn sample_delay(rng: &mut StdRng, bound: Span) -> Span {
    Span::from_ticks(rng.gen_range(1..=bound.ticks().max(1)))
}

/// A distribution of message latencies, sampled per message copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatencyDistribution {
    /// Every copy takes exactly this many ticks.
    Fixed(Span),
    /// Uniform in `[min, max]` ticks (inclusive).
    Uniform {
        /// Minimum latency.
        min: Span,
        /// Maximum latency.
        max: Span,
    },
    /// Mostly-fast with occasional stragglers: latency is `base` with
    /// probability `1 - slow_percent/100`, otherwise uniform in
    /// `[base, base + tail]`. Approximates heavy-tailed asynchrony while
    /// keeping every delay finite, as the model requires.
    SkewedTail {
        /// Common-case latency.
        base: Span,
        /// Extra delay range for stragglers.
        tail: Span,
        /// Percentage of straggler copies, clamped to `0..=100` when
        /// sampling: `0` never delays, `100` (or any larger value)
        /// delays every copy.
        slow_percent: u8,
    },
}

impl LatencyDistribution {
    /// Samples a latency; always at least one tick so a message never
    /// arrives at its send instant.
    pub fn sample(&self, rng: &mut StdRng) -> Span {
        let ticks = match self {
            LatencyDistribution::Fixed(d) => d.ticks(),
            LatencyDistribution::Uniform { min, max } => {
                let (lo, hi) = (min.ticks(), max.ticks().max(min.ticks()));
                rng.gen_range(lo..=hi)
            }
            LatencyDistribution::SkewedTail {
                base,
                tail,
                slow_percent,
            } => {
                if percent_roll(rng, *slow_percent) {
                    base.ticks() + rng.gen_range(0..=tail.ticks())
                } else {
                    base.ticks()
                }
            }
        };
        Span::from_ticks(ticks.max(1))
    }

    /// An upper bound on any sample, used by tests and experiment sizing.
    #[must_use]
    pub fn upper_bound(&self) -> Span {
        match self {
            LatencyDistribution::Fixed(d) => Span::from_ticks(d.ticks().max(1)),
            LatencyDistribution::Uniform { min, max } => {
                Span::from_ticks(max.ticks().max(min.ticks()).max(1))
            }
            LatencyDistribution::SkewedTail { base, tail, .. } => {
                Span::from_ticks((base.ticks() + tail.ticks()).max(1))
            }
        }
    }
}

/// What happens to a message copy sent before GST in `HPS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreGstBehavior {
    /// Lost with the given probability (percent), otherwise delayed
    /// uniformly up to `max_delay` ticks past GST.
    LossyDelay {
        /// Percentage (0..=100) of copies lost outright.
        loss_percent: u8,
        /// Maximum extra delay, measured from the send time.
        max_delay: Span,
    },
    /// Never lost, but delayed arbitrarily (up to `max_delay`).
    DelayOnly {
        /// Maximum extra delay, measured from the send time.
        max_delay: Span,
    },
}

/// The timing model of the run.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkModel {
    /// `HAS[∅]`: reliable asynchronous links.
    Asynchronous(LatencyDistribution),
    /// `HPS[∅]`: eventually timely links.
    PartialSync {
        /// Global stabilization time (unknown to processes).
        gst: Time,
        /// Post-GST delivery bound (unknown to processes).
        delta: Span,
        /// Fate of pre-GST copies.
        pre_gst: PreGstBehavior,
    },
    /// `HSS[∅]`: synchronous; copies are delivered in exactly one tick.
    Synchronous,
}

impl NetworkModel {
    /// A convenient fully reliable fixed-latency asynchronous network.
    #[must_use]
    pub fn reliable(latency: Span) -> Self {
        NetworkModel::Asynchronous(LatencyDistribution::Fixed(latency))
    }

    /// The fate of one message copy sent at `sent_at`: `Some(delivery
    /// time)` or `None` when the copy is lost (pre-GST only).
    pub fn route(&self, sent_at: Time, rng: &mut StdRng) -> Option<Time> {
        match self {
            NetworkModel::Asynchronous(dist) => Some(sent_at + dist.sample(rng)),
            NetworkModel::Synchronous => Some(sent_at + Span::TICK),
            NetworkModel::PartialSync {
                gst,
                delta,
                pre_gst,
            } => {
                if sent_at >= *gst {
                    // Timely: within delta, at least one tick.
                    Some(sent_at + sample_delay(rng, *delta))
                } else {
                    match pre_gst {
                        PreGstBehavior::LossyDelay {
                            loss_percent,
                            max_delay,
                        } => {
                            if percent_roll(rng, *loss_percent) {
                                None
                            } else {
                                Some(sent_at + sample_delay(rng, *max_delay))
                            }
                        }
                        PreGstBehavior::DelayOnly { max_delay } => {
                            Some(sent_at + sample_delay(rng, *max_delay))
                        }
                    }
                }
            }
        }
    }

    /// Routes all `copies` copies of one broadcast sent at `sent_at`,
    /// appending each copy's fate to `out` in destination order — the
    /// buffer-filling form of [`NetworkModel::route_each`], sharing its
    /// implementation (and therefore its stream contract: draw-for-draw
    /// identical to `copies` successive [`NetworkModel::route`] calls,
    /// asserted by `route_batch_matches_per_copy_route`).
    pub fn route_batch(
        &self,
        sent_at: Time,
        copies: usize,
        rng: &mut StdRng,
        out: &mut Vec<Option<Time>>,
    ) {
        out.reserve(copies);
        self.route_each(sent_at, copies, rng, |_, fate| out.push(fate));
    }

    /// Streaming form of [`NetworkModel::route_batch`]: routes `copies`
    /// copies with the same hoisted per-broadcast setup, but hands each
    /// copy's fate to `sink(dst, fate)` as it is drawn instead of filling
    /// a buffer — the engine's broadcast loop fuses routing, adversary
    /// consultation and queue insertion into one pass this way.
    ///
    /// Same stream contract as `route_batch`: draw-for-draw identical to
    /// `copies` successive [`NetworkModel::route`] calls.
    #[inline]
    pub fn route_each(
        &self,
        sent_at: Time,
        copies: usize,
        rng: &mut StdRng,
        mut sink: impl FnMut(usize, Option<Time>),
    ) {
        let delay_dist = |lo: u64, hi: u64| Uniform::new_inclusive(lo, hi.max(lo));
        match self {
            NetworkModel::Asynchronous(LatencyDistribution::Fixed(d)) => {
                let at = sent_at + Span::from_ticks(d.ticks().max(1));
                for dst in 0..copies {
                    sink(dst, Some(at));
                }
            }
            NetworkModel::Synchronous => {
                let at = sent_at + Span::TICK;
                for dst in 0..copies {
                    sink(dst, Some(at));
                }
            }
            NetworkModel::Asynchronous(LatencyDistribution::Uniform { min, max }) => {
                let dist = delay_dist(min.ticks(), max.ticks());
                for dst in 0..copies {
                    sink(
                        dst,
                        Some(sent_at + Span::from_ticks(dist.sample(rng).max(1))),
                    );
                }
            }
            NetworkModel::Asynchronous(LatencyDistribution::SkewedTail {
                base,
                tail,
                slow_percent,
            }) => {
                let roll = Uniform::new_inclusive(0, 99);
                let tail_dist = Uniform::new_inclusive(0, tail.ticks());
                let percent = u64::from((*slow_percent).min(100));
                for dst in 0..copies {
                    let ticks = if roll.sample(rng) < percent {
                        base.ticks() + tail_dist.sample(rng)
                    } else {
                        base.ticks()
                    };
                    sink(dst, Some(sent_at + Span::from_ticks(ticks.max(1))));
                }
            }
            NetworkModel::PartialSync {
                gst,
                delta,
                pre_gst,
            } => {
                if sent_at >= *gst {
                    let dist = delay_dist(1, delta.ticks());
                    for dst in 0..copies {
                        sink(dst, Some(sent_at + Span::from_ticks(dist.sample(rng))));
                    }
                } else {
                    match pre_gst {
                        PreGstBehavior::LossyDelay {
                            loss_percent,
                            max_delay,
                        } => {
                            let roll = Uniform::new_inclusive(0, 99);
                            let percent = u64::from((*loss_percent).min(100));
                            let dist = delay_dist(1, max_delay.ticks());
                            for dst in 0..copies {
                                let fate = if roll.sample(rng) < percent {
                                    None
                                } else {
                                    Some(sent_at + Span::from_ticks(dist.sample(rng)))
                                };
                                sink(dst, fate);
                            }
                        }
                        PreGstBehavior::DelayOnly { max_delay } => {
                            let dist = delay_dist(1, max_delay.ticks());
                            for dst in 0..copies {
                                sink(dst, Some(sent_at + Span::from_ticks(dist.sample(rng))));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Whether this model guarantees delivery of every copy.
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        !matches!(
            self,
            NetworkModel::PartialSync {
                pre_gst: PreGstBehavior::LossyDelay { .. },
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fixed_latency_is_fixed() {
        let m = NetworkModel::reliable(Span::from_ticks(3));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                m.route(Time::from_ticks(5), &mut r),
                Some(Time::from_ticks(8))
            );
        }
    }

    #[test]
    fn latency_is_never_zero() {
        let dist = LatencyDistribution::Fixed(Span::ZERO);
        let mut r = rng();
        assert_eq!(dist.sample(&mut r), Span::TICK);
        let m = NetworkModel::Synchronous;
        assert_eq!(m.route(Time::ZERO, &mut r), Some(Time::from_ticks(1)));
    }

    #[test]
    fn uniform_respects_bounds() {
        let dist = LatencyDistribution::Uniform {
            min: Span::from_ticks(2),
            max: Span::from_ticks(6),
        };
        let mut r = rng();
        for _ in 0..100 {
            let d = dist.sample(&mut r).ticks();
            assert!((2..=6).contains(&d));
        }
        assert_eq!(dist.upper_bound(), Span::from_ticks(6));
    }

    #[test]
    fn skewed_tail_stays_in_range() {
        let dist = LatencyDistribution::SkewedTail {
            base: Span::from_ticks(2),
            tail: Span::from_ticks(10),
            slow_percent: 30,
        };
        let mut r = rng();
        let mut seen_slow = false;
        for _ in 0..200 {
            let d = dist.sample(&mut r).ticks();
            assert!((2..=12).contains(&d));
            if d > 2 {
                seen_slow = true;
            }
        }
        assert!(seen_slow, "tail should trigger at 30%");
    }

    #[test]
    fn skewed_tail_percentage_boundaries() {
        let mut r = rng();
        let dist = |slow_percent| LatencyDistribution::SkewedTail {
            base: Span::from_ticks(2),
            tail: Span::from_ticks(10),
            slow_percent,
        };
        // 0%: never a straggler.
        let never = dist(0);
        assert!((0..200).all(|_| never.sample(&mut r) == Span::from_ticks(2)));
        // 100%: always a straggler draw (delay may still equal base when
        // the uniform tail lands on 0, so probe the RNG consumption
        // instead: two draws per sample means streams diverge from 0%).
        let always = dist(100);
        let mut seen_tail = false;
        for _ in 0..200 {
            let d = always.sample(&mut r).ticks();
            assert!((2..=12).contains(&d));
            if d > 2 {
                seen_tail = true;
            }
        }
        assert!(seen_tail, "100% straggler rate never drew from the tail");
        // Out-of-range percentages clamp to 100 instead of overshooting.
        let clamped = dist(250);
        for _ in 0..50 {
            assert!((2..=12).contains(&clamped.sample(&mut r).ticks()));
        }
    }

    /// Pins the shared clamp helpers at their boundaries: these two
    /// functions are the single implementation behind every percentage
    /// draw and bounded-delay sample in this module, so their edge
    /// behaviour is the edge behaviour of all three network models.
    #[test]
    fn clamp_helpers_pin_boundary_values() {
        let mut r = rng();
        // percent 0: never hits; percent 100: always hits; above 100
        // saturates to 100 instead of overshooting.
        for _ in 0..200 {
            assert!(!percent_roll(&mut r, 0));
            assert!(percent_roll(&mut r, 100));
            assert!(percent_roll(&mut r, 250));
        }
        // A zero (or one-tick) bound clamps to exactly one tick — the
        // "never arrives at the send instant" floor.
        for _ in 0..200 {
            assert_eq!(sample_delay(&mut r, Span::ZERO), Span::TICK);
            assert_eq!(sample_delay(&mut r, Span::TICK), Span::TICK);
            let d = sample_delay(&mut r, Span::from_ticks(5)).ticks();
            assert!((1..=5).contains(&d));
        }
    }

    /// The batched route must consume the RNG stream exactly as the
    /// per-copy route does, for every model shape, so switching the
    /// engine between the two paths cannot perturb a seeded run.
    #[test]
    fn route_batch_matches_per_copy_route() {
        let models = [
            NetworkModel::reliable(Span::from_ticks(3)),
            NetworkModel::Synchronous,
            NetworkModel::Asynchronous(LatencyDistribution::Uniform {
                min: Span::from_ticks(2),
                max: Span::from_ticks(9),
            }),
            NetworkModel::Asynchronous(LatencyDistribution::SkewedTail {
                base: Span::from_ticks(1),
                tail: Span::from_ticks(7),
                slow_percent: 35,
            }),
            NetworkModel::PartialSync {
                gst: Time::from_ticks(50),
                delta: Span::from_ticks(4),
                pre_gst: PreGstBehavior::LossyDelay {
                    loss_percent: 40,
                    max_delay: Span::from_ticks(20),
                },
            },
            NetworkModel::PartialSync {
                gst: Time::from_ticks(50),
                delta: Span::from_ticks(4),
                pre_gst: PreGstBehavior::DelayOnly {
                    max_delay: Span::from_ticks(20),
                },
            },
        ];
        for model in &models {
            for seed in 0..5u64 {
                // Pre- and post-GST send instants, interleaved sends: the
                // streams must stay aligned across successive broadcasts.
                let mut a = StdRng::seed_from_u64(seed);
                let mut b = StdRng::seed_from_u64(seed);
                let mut batched = Vec::new();
                for &sent in &[0u64, 49, 50, 51, 200] {
                    let sent = Time::from_ticks(sent);
                    batched.clear();
                    model.route_batch(sent, 16, &mut a, &mut batched);
                    let per_copy: Vec<Option<Time>> =
                        (0..16).map(|_| model.route(sent, &mut b)).collect();
                    assert_eq!(batched, per_copy, "diverged on {model:?} seed {seed}");
                }
                // And the engines' states must agree afterwards.
                assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
            }
        }
    }

    #[test]
    fn partial_sync_is_timely_after_gst() {
        let m = NetworkModel::PartialSync {
            gst: Time::from_ticks(100),
            delta: Span::from_ticks(4),
            pre_gst: PreGstBehavior::LossyDelay {
                loss_percent: 100,
                max_delay: Span::from_ticks(50),
            },
        };
        let mut r = rng();
        // Before GST with 100% loss: always dropped.
        assert_eq!(m.route(Time::from_ticks(99), &mut r), None);
        // After GST: delivered within delta.
        for _ in 0..50 {
            let t = m.route(Time::from_ticks(100), &mut r).expect("timely");
            assert!(t > Time::from_ticks(100) && t <= Time::from_ticks(104));
        }
    }

    #[test]
    fn pre_gst_delay_only_never_loses() {
        let m = NetworkModel::PartialSync {
            gst: Time::from_ticks(10),
            delta: Span::TICK,
            pre_gst: PreGstBehavior::DelayOnly {
                max_delay: Span::from_ticks(30),
            },
        };
        let mut r = rng();
        for _ in 0..100 {
            assert!(m.route(Time::ZERO, &mut r).is_some());
        }
        assert!(m.is_reliable());
    }

    #[test]
    fn lossy_pre_gst_is_unreliable() {
        let m = NetworkModel::PartialSync {
            gst: Time::from_ticks(10),
            delta: Span::TICK,
            pre_gst: PreGstBehavior::LossyDelay {
                loss_percent: 50,
                max_delay: Span::from_ticks(5),
            },
        };
        assert!(!m.is_reliable());
    }
}
