//! Multi-seed sweep plumbing shared by the experiment harness and the
//! chaos falsification harness.

use rayon::prelude::*;

/// Runs `run(seed)` for seeds `0..seeds` across all cores, preserving
/// result order. Each run must be independent (the engines are: a run is
/// a pure function of its config and seed).
pub fn parallel_seed_sweep<R: Send>(seeds: usize, run: impl Fn(u64) -> R + Sync) -> Vec<R> {
    (0..seeds as u64).into_par_iter().map(run).collect()
}

/// Like [`parallel_seed_sweep`], but threads a per-worker **context**
/// through each worker's contiguous block of seeds: `init()` runs once
/// per worker thread, and `run(&mut ctx, seed)` reuses that context for
/// every seed the worker owns.
///
/// This is the sweep-arena hook: the context typically holds recycled
/// engine allocations ([`EngineArena`](crate::engine::EngineArena)) so a
/// thousand-seed sweep pays engine construction costs once per core
/// instead of once per seed. The context must not change run *results* —
/// a run stays a pure function of its config and seed (the arena-reuse
/// tests assert exactly that).
pub fn parallel_seed_sweep_with<C, R: Send>(
    seeds: usize,
    init: impl Fn() -> C + Sync,
    run: impl Fn(&mut C, u64) -> R + Sync,
) -> Vec<R> {
    (0..seeds as u64).into_par_iter().map_init(init, run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_seed_order() {
        let out = parallel_seed_sweep(100, |seed| seed * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn with_context_preserves_seed_order_and_reuses_contexts() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let contexts = AtomicUsize::new(0);
        let out = parallel_seed_sweep_with(
            200,
            || {
                contexts.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new()
            },
            |scratch, seed| {
                // A context that leaks state across seeds would corrupt
                // the result; a correct run clears it first (the arena
                // discipline).
                scratch.clear();
                scratch.extend(0..=seed % 7);
                scratch.iter().sum::<u64>() + seed * 10
            },
        );
        assert_eq!(out.len(), 200);
        for (i, v) in out.iter().enumerate() {
            let seed = i as u64;
            assert_eq!(*v, (0..=seed % 7).sum::<u64>() + seed * 10);
        }
        // One context per worker, not per seed.
        assert!(contexts.load(Ordering::Relaxed) <= rayon::current_num_threads());
    }
}
