//! Multi-seed sweep plumbing shared by the experiment harness and the
//! chaos falsification harness — **the single implementation module**;
//! `homonym_chaos::sweep` and the bench harness re-export from here
//! rather than growing drifting copies.
//!
//! Two executors live here:
//!
//! * the **flat** executors [`parallel_seed_sweep`] /
//!   [`parallel_seed_sweep_with`]: every run re-executes its full
//!   history from tick 0 (cost `O(scenarios × run length)`);
//! * the **prefix-sharing** executor ([`PrefixTree`] planning +
//!   [`PrefixSweeper`] execution): sweep families built from a common
//!   base — same seed and topology, faults injected at different times,
//!   GST placements, heal times — share long identical prefixes *by
//!   construction*, so the executor runs each shared prefix **once**,
//!   snapshots the engine at the branch point
//!   ([`Engine::snapshot`](crate::engine::Engine::snapshot)) and
//!   restores per child ([`Engine::resume_in`](crate::engine::Engine::resume_in)),
//!   turning sweep cost into `O(tree size)`.
//!
//! Sharing is **computed, never guessed**: [`config_divergence`] derives,
//! from two [`SimConfig`]s alone, the first tick at which their runs
//! could possibly differ (seeds and RNG salts, crash schedules, GST
//! placements, adversary clause windows — each contributes a sound
//! bound). Two runs of agreeing configurations are byte-identical up to
//! that tick, so restoring one's snapshot under the other's
//! configuration is exact, and the differential tests assert exactly
//! that: identical per-scenario verdicts, histories, decisions and event
//! counts between the forked and flat executors. The worst case —
//! no shared prefix (divergence 0) — degrades gracefully to the flat
//! executor's behaviour, one fresh run per item.

use std::ops::Range;

use homonym_core::failure::FailureSchedule;
use homonym_core::identity::Identity;
use homonym_core::time::Time;
use rayon::prelude::*;

use homonym_core::wire::{self, Persist, WireError};

use crate::adversary::{ByzClause, ByzantineScript, LinkClause, LinkEffect, LinkFaultScript};
use crate::engine::{Engine, EngineArena, SimConfig, StopReason};
use crate::network::NetworkModel;
use crate::snapshot::{EngineSnapshot, ForkProcess};
use crate::store::{SnapshotSpool, SpoolStats};

/// Runs `run(seed)` for seeds `0..seeds` across all cores, preserving
/// result order. Each run must be independent (the engines are: a run is
/// a pure function of its config and seed).
pub fn parallel_seed_sweep<R: Send>(seeds: usize, run: impl Fn(u64) -> R + Sync) -> Vec<R> {
    (0..seeds as u64).into_par_iter().map(run).collect()
}

/// Like [`parallel_seed_sweep`], but threads a per-worker **context**
/// through each worker's contiguous block of seeds: `init()` runs once
/// per worker thread, and `run(&mut ctx, seed)` reuses that context for
/// every seed the worker owns.
///
/// This is the sweep-arena hook: the context typically holds recycled
/// engine allocations ([`EngineArena`]) so a
/// thousand-seed sweep pays engine construction costs once per core
/// instead of once per seed. The context must not change run *results* —
/// a run stays a pure function of its config and seed (the arena-reuse
/// tests assert exactly that).
pub fn parallel_seed_sweep_with<C, R: Send>(
    seeds: usize,
    init: impl Fn() -> C + Sync,
    run: impl Fn(&mut C, u64) -> R + Sync,
) -> Vec<R> {
    (0..seeds as u64).into_par_iter().map_init(init, run)
}

// ---------------------------------------------------------------------------
// Divergence-time planning
// ---------------------------------------------------------------------------

/// The first tick at which runs of `a` and `b` could differ — runs of
/// the two configurations are **byte-identical on every event strictly
/// before** the returned instant. [`Time::MAX`] means the
/// configurations can never diverge (they are behaviourally identical);
/// [`Time::ZERO`] means no prefix is shared.
///
/// The bound is sound, not tight: each ingredient contributes its
/// earliest possible observable difference —
///
/// * different seeds, topologies, hot paths or event valves: zero;
/// * crash schedules: one tick before the earliest differing crash (the
///   dying sender's partial-broadcast mask draws interleave there);
/// * `HPS` networks differing in GST or `δ`: the earlier GST (pre-GST
///   routing is identical; treatment differs from the instant one side
///   considers itself stabilized);
/// * adversary scripts: the earliest activation among differing clauses,
///   refined to the earlier *deactivation* for clauses identical except
///   their window end; differing RNG salts forfeit sharing as soon as
///   either script contains a probabilistic clause (their draw streams
///   are decorrelated from the start).
#[must_use]
pub fn config_divergence(a: &SimConfig, b: &SimConfig) -> Time {
    // Exhaustive destructuring: a field added to `SimConfig` fails to
    // compile here until someone decides how it bounds divergence —
    // silently ignoring a new behavioural knob would make the planner
    // unsound, not just loose.
    let SimConfig {
        assign,
        sched,
        network,
        seed,
        partial_broadcast_on_crash,
        max_events,
        legacy_hot_path,
        adversary,
        byzantine,
    } = a;
    if *assign != b.assign
        || *seed != b.seed
        || *partial_broadcast_on_crash != b.partial_broadcast_on_crash
        || *max_events != b.max_events
        || *legacy_hot_path != b.legacy_hot_path
    {
        return Time::ZERO;
    }
    let d = network_divergence(network, &b.network);
    let d = d.min(sched_divergence(sched, &b.sched));
    let d = d.min(script_divergence(
        adversary.as_deref(),
        b.adversary.as_deref(),
    ));
    d.min(byz_script_divergence(
        byzantine.as_deref(),
        b.byzantine.as_deref(),
    ))
}

fn network_divergence(a: &NetworkModel, b: &NetworkModel) -> Time {
    if a == b {
        return Time::MAX;
    }
    match (a, b) {
        (
            NetworkModel::PartialSync {
                gst: ga,
                pre_gst: pa,
                ..
            },
            NetworkModel::PartialSync {
                gst: gb,
                pre_gst: pb,
                ..
            },
        ) if pa == pb => {
            // Identical pre-GST behaviour: every copy sent before the
            // earlier GST is routed identically (a `δ` difference only
            // shows post-GST, which the same bound covers).
            *ga.min(gb)
        }
        _ => Time::ZERO,
    }
}

fn sched_divergence(a: &FailureSchedule, b: &FailureSchedule) -> Time {
    let mut d = Time::MAX;
    for p in 0..a.n() {
        let (ca, cb) = (a.crash_time(p), b.crash_time(p));
        if ca == cb {
            continue;
        }
        let first = match (ca, cb) {
            (Some(x), Some(y)) => x.min(y),
            (Some(x), None) | (None, Some(x)) => x,
            (None, None) => unreachable!("covered by ca == cb"),
        };
        d = d.min(Time::from_ticks(first.ticks().saturating_sub(1)));
    }
    d
}

/// Earliest activation of any clause that draws from the adversary RNG.
fn first_draw(clauses: &[LinkClause]) -> Option<Time> {
    clauses
        .iter()
        .filter(|c| matches!(c.effect, LinkEffect::Lose(_)))
        .map(|c| c.from)
        .min()
}

fn clause_pair_divergence(x: &LinkClause, y: &LinkClause) -> Time {
    if x == y {
        return Time::MAX;
    }
    // Same window start, links and effect: only the deactivation instant
    // differs, so copies sent before the earlier end are treated
    // identically — the refinement that lets fault-duration families
    // share their pre-fault *and* in-fault prefix up to the first heal.
    if x.from == y.from && x.src == y.src && x.dst == y.dst && x.effect == y.effect {
        return x.until.min(y.until);
    }
    x.from.min(y.from)
}

fn script_divergence(a: Option<&LinkFaultScript>, b: Option<&LinkFaultScript>) -> Time {
    let ca = a.map_or(&[][..], LinkFaultScript::clauses);
    let cb = b.map_or(&[][..], LinkFaultScript::clauses);
    if ca.is_empty() && cb.is_empty() {
        return Time::MAX;
    }
    // Different salts decorrelate the adversary streams from their very
    // first draw; with any probabilistic clause in play nothing is
    // shareable.
    let (sa, sb) = (
        a.map_or(0, LinkFaultScript::salt),
        b.map_or(0, LinkFaultScript::salt),
    );
    if sa != sb && (first_draw(ca).is_some() || first_draw(cb).is_some()) {
        return Time::ZERO;
    }
    let mut d = Time::MAX;
    for i in 0..ca.len().max(cb.len()) {
        match (ca.get(i), cb.get(i)) {
            (Some(x), Some(y)) => d = d.min(clause_pair_divergence(x, y)),
            (Some(x), None) | (None, Some(x)) => d = d.min(x.from),
            (None, None) => unreachable!("loop bounded by max length"),
        }
    }
    d
}

fn byz_clause_pair_divergence(x: &ByzClause, y: &ByzClause) -> Time {
    if x == y {
        return Time::MAX;
    }
    // Same activation, senders and effect: only the deactivation instant
    // differs, so broadcasts before the earlier end are treated
    // identically — the refinement that lets attack-duration variants
    // share their whole pre-attack *and* in-attack prefix.
    if x.from == y.from && x.src == y.src && x.effect == y.effect {
        return x.until.min(y.until);
    }
    x.from.min(y.from)
}

/// The Byzantine counterpart of [`script_divergence`]. Replay caches
/// are recorded from tick 0 for replay-listed senders; recording is
/// unobservable until a replay clause activates, so two scripts that
/// **agree on which senders are replay-listed** share soundly up to
/// their earliest differing clause — but scripts whose replay-listed
/// sender sets differ fill the cache differently from the very first
/// broadcast, so one's snapshot carries cache state the other's flat
/// run would not have, and sharing is forfeited entirely.
fn byz_script_divergence(a: Option<&ByzantineScript>, b: Option<&ByzantineScript>) -> Time {
    let ca = a.map_or(&[][..], ByzantineScript::clauses);
    let cb = b.map_or(&[][..], ByzantineScript::clauses);
    if ca.is_empty() && cb.is_empty() {
        return Time::MAX;
    }
    // Different salts decorrelate the Byzantine streams from their very
    // first draw; with any entropy-drawing clause (equivocation or
    // corruption) in play, nothing is shareable.
    let (sa, sb) = (
        a.map_or(0, ByzantineScript::salt),
        b.map_or(0, ByzantineScript::salt),
    );
    if sa != sb
        && (a.is_some_and(ByzantineScript::draws_entropy)
            || b.is_some_and(ByzantineScript::draws_entropy))
    {
        return Time::ZERO;
    }
    // Differing replay-listed sender sets: cache contents diverge from
    // tick 0 (see above).
    if a.map_or(Vec::new(), ByzantineScript::replay_source_mask)
        != b.map_or(Vec::new(), ByzantineScript::replay_source_mask)
    {
        return Time::ZERO;
    }
    let mut d = Time::MAX;
    for i in 0..ca.len().max(cb.len()) {
        match (ca.get(i), cb.get(i)) {
            (Some(x), Some(y)) => d = d.min(byz_clause_pair_divergence(x, y)),
            (Some(x), None) | (None, Some(x)) => d = d.min(x.from),
            (None, None) => unreachable!("loop bounded by max length"),
        }
    }
    d
}

// ---------------------------------------------------------------------------
// The prefix-sharing executor
// ---------------------------------------------------------------------------

/// How far one sweep item's run goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunGoal {
    /// Run to the deadline (detector-style observation windows).
    Until(Time),
    /// Run until every correct process decided, at most to the deadline
    /// (consensus-style runs).
    UntilAllCorrectDecided(Time),
}

impl RunGoal {
    /// The goal's deadline.
    #[must_use]
    pub fn deadline(self) -> Time {
        match self {
            RunGoal::Until(t) | RunGoal::UntilAllCorrectDecided(t) => t,
        }
    }

    /// Drives `engine` toward this goal, but no further than `cap` (the
    /// branch-point deadline of a shared prefix).
    fn run<P: ForkProcess>(self, engine: &mut Engine<P>, cap: Time) -> StopReason {
        match self {
            RunGoal::Until(t) => engine.run_until(t.min(cap)),
            RunGoal::UntilAllCorrectDecided(t) => engine.run_until_all_correct_decided(t.min(cap)),
        }
    }
}

/// One unit of a prefix-sharing sweep: the fully installed configuration
/// plus how far to run it and an arbitrary caller payload (the scenario,
/// its clean instant, report coordinates, …).
#[derive(Debug, Clone)]
pub struct PrefixItem<C> {
    /// The installed run configuration.
    pub config: SimConfig,
    /// How far this item's run goes.
    pub goal: RunGoal,
    /// Caller payload, untouched by the executor.
    pub tag: C,
}

/// The first tick at which runs of two sweep items could differ — the
/// [`config_divergence`] of their configurations, tightened by the run
/// goals: items with different goal kinds share nothing, and
/// decided-gated items share nothing unless their correct sets agree
/// (the stop condition reads the correct set from tick 0, so a fresh run
/// of one could stop where the other keeps going).
#[must_use]
pub fn item_divergence<C>(a: &PrefixItem<C>, b: &PrefixItem<C>) -> Time {
    match (a.goal, b.goal) {
        (RunGoal::Until(_), RunGoal::Until(_)) => {}
        (RunGoal::UntilAllCorrectDecided(_), RunGoal::UntilAllCorrectDecided(_)) => {
            let (sa, sb) = (&a.config.sched, &b.config.sched);
            if (0..sa.n()).any(|p| sa.is_correct(p) != sb.is_correct(p)) {
                return Time::ZERO;
            }
        }
        _ => return Time::ZERO,
    }
    config_divergence(&a.config, &b.config)
}

/// Execution counters of a prefix-sharing sweep, for reporting
/// tree-vs-flat cost (see `examples/scenario_atlas.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkStats {
    /// Items executed (leaves of the tree — equals the flat run count).
    pub runs: u64,
    /// Items that started from a restored snapshot instead of tick 0.
    pub forked: u64,
    /// Snapshots taken at branch points.
    pub snapshots: u64,
    /// Ticks of shared prefix **not** re-executed, summed over all
    /// forked items — the flat executor would have replayed these.
    pub shared_ticks: u64,
}

/// A branch-point snapshot on the sweeper's DFS stack.
struct StackSnap<P: ForkProcess> {
    /// Items diverging at or after this tick may restore from here.
    covers_to: u64,
    /// The tick the snapshotted run actually reached — the run's clock
    /// when it stopped at the branch cap, its own deadline, its goal
    /// condition or quiescence, whichever came first. Children with an
    /// earlier deadline must not restore from it, and restoring saves
    /// exactly this many ticks of re-execution.
    processed_to: u64,
    store: SnapStore<P>,
}

/// Where a branch-point snapshot currently lives.
// The size gap between variants is the point: `Disk` exists precisely
// because `Ram` is big. Boxing `Ram` would add a heap hop to the common
// (spilling-disabled) path to shrink an enum that lives in one `Vec`.
#[allow(clippy::large_enum_variant)]
enum SnapStore<P: ForkProcess> {
    /// Resident in RAM. `bytes` is the snapshot's encoded size — the
    /// budget accounting unit — when spilling is enabled, zero
    /// otherwise (never measured, never spilled).
    Ram { snap: EngineSnapshot<P>, bytes: u64 },
    /// Spilled to the spool; reloaded (and verified) on first use.
    Disk(crate::store::SpillHandle),
}

/// The monomorphized snapshot codec captured when spilling is enabled.
///
/// `PrefixSweeper` itself never requires `EngineSnapshot<P>: Persist` —
/// the bound exists only on [`PrefixSweeper::enable_spill`], which
/// captures these two instantiated fn pointers. Stacks without a wire
/// codec keep using the sweeper exactly as before, all in RAM.
struct SpillCodec<P: ForkProcess> {
    enc: fn(&EngineSnapshot<P>) -> Vec<u8>,
    dec: fn(&[u8]) -> Result<EngineSnapshot<P>, WireError>,
}

/// Spill state: the codec, the disk spool and the RAM-residency account.
struct Spill<P: ForkProcess> {
    codec: SpillCodec<P>,
    spool: SnapshotSpool,
    /// Encoded bytes of all RAM-resident stack snapshots.
    ram_bytes: u64,
}

/// The worker-local prefix-sharing executor: a DFS over a family's
/// implicit prefix tree, carrying a stack of branch-point snapshots and
/// one recycled [`EngineArena`]. Feed it families through
/// [`PrefixSweeper::run_family`]; for whole-batch planning plus
/// parallelism over independent families use [`PrefixTree`].
///
/// Snapshots and engines circulate through the sweeper's pools:
/// snapshots are refilled in place
/// ([`Engine::snapshot_into`](crate::engine::Engine::snapshot_into)) and
/// every engine is rebuilt inside the recycled arena, so steady-state
/// forking performs no queue/history (re)allocation.
pub struct PrefixSweeper<P: ForkProcess> {
    arena: EngineArena<P>,
    stack: Vec<StackSnap<P>>,
    spare: Vec<EngineSnapshot<P>>,
    /// Disk spill of cold branch points, when enabled.
    spill: Option<Spill<P>>,
    /// Counters accumulated across every family this sweeper ran.
    pub stats: ForkStats,
}

impl<P: ForkProcess> PrefixSweeper<P> {
    /// A sweeper with cold pools.
    #[must_use]
    pub fn new() -> Self {
        PrefixSweeper {
            arena: EngineArena::new(),
            stack: Vec::new(),
            spare: Vec::new(),
            spill: None,
            stats: ForkStats::default(),
        }
    }

    /// Enables the disk spill: branch-point snapshots beyond the
    /// spool's RAM budget move to disk, coldest (shallowest) first, and
    /// are reloaded — checksum-verified — when the DFS returns to them.
    /// A spilled snapshot that fails verification is *dropped*, not
    /// fatal: the walk falls back to the nearest shallower resident
    /// prefix (or a fresh run) and re-executes the difference.
    ///
    /// Only stacks with a wire codec can spill, hence the bound; the
    /// sweeper without this call never touches disk.
    pub fn enable_spill(&mut self, spool: SnapshotSpool)
    where
        EngineSnapshot<P>: Persist,
    {
        fn enc<P: ForkProcess>(snap: &EngineSnapshot<P>) -> Vec<u8>
        where
            EngineSnapshot<P>: Persist,
        {
            wire::to_bytes(snap)
        }
        fn dec<P: ForkProcess>(bytes: &[u8]) -> Result<EngineSnapshot<P>, WireError>
        where
            EngineSnapshot<P>: Persist,
        {
            wire::from_bytes(bytes)
        }
        self.spill = Some(Spill {
            codec: SpillCodec {
                enc: enc::<P>,
                dec: dec::<P>,
            },
            spool,
            ram_bytes: 0,
        });
    }

    /// Spill activity so far, when spilling is enabled.
    #[must_use]
    pub fn spool_stats(&self) -> Option<SpoolStats> {
        self.spill.as_ref().map(|s| s.spool.stats)
    }

    /// Recycles a popped branch point: RAM snapshots return to the
    /// spare pool, spilled ones are deleted unread.
    fn recycle(&mut self, s: StackSnap<P>) {
        match s.store {
            SnapStore::Ram { snap, bytes } => {
                if let Some(spill) = &mut self.spill {
                    spill.ram_bytes -= bytes;
                }
                self.spare.push(snap);
            }
            SnapStore::Disk(handle) => {
                let spill = self.spill.as_mut().expect("disk entries imply spill");
                spill.spool.discard(&handle);
            }
        }
    }

    /// Ensures the top branch point (the resume seed of the next item)
    /// is RAM-resident. A spilled top that fails verification on
    /// reload is dropped and the next shallower entry tried — the
    /// graceful-degradation half of the corruption contract: the walk
    /// re-executes from the nearest good prefix instead of aborting.
    fn materialize_top(&mut self) {
        loop {
            match self.stack.last() {
                None
                | Some(StackSnap {
                    store: SnapStore::Ram { .. },
                    ..
                }) => return,
                Some(StackSnap {
                    store: SnapStore::Disk(_),
                    ..
                }) => {
                    let StackSnap {
                        covers_to,
                        processed_to,
                        store,
                    } = self.stack.pop().expect("guarded");
                    let SnapStore::Disk(handle) = store else {
                        unreachable!("matched above");
                    };
                    let spill = self.spill.as_mut().expect("disk entries imply spill");
                    let decoded = spill.spool.take(&handle).and_then(|bytes| {
                        let out = (spill.codec.dec)(&bytes).ok();
                        if out.is_none() {
                            // Verified container, undecodable payload:
                            // count it with the checksum failures.
                            spill.spool.stats.corrupt += 1;
                        }
                        out
                    });
                    if let Some(snap) = decoded {
                        spill.ram_bytes += handle.bytes();
                        self.stack.push(StackSnap {
                            covers_to,
                            processed_to,
                            store: SnapStore::Ram {
                                snap,
                                bytes: handle.bytes(),
                            },
                        });
                        return;
                    }
                    // Corrupt: fall through to the next shallower entry.
                }
            }
        }
    }

    /// Spills coldest-first until RAM-resident snapshots fit the
    /// budget again. The top entry always stays resident — it seeds
    /// the very next item.
    fn enforce_budget(&mut self) {
        let Some(spill) = &mut self.spill else { return };
        let budget = spill.spool.budget_bytes();
        let mut i = 0;
        while spill.ram_bytes > budget && i + 1 < self.stack.len() {
            if let SnapStore::Ram { snap, bytes } = &self.stack[i].store {
                let encoded = (spill.codec.enc)(snap);
                match spill.spool.put(&encoded) {
                    Ok(handle) => {
                        spill.ram_bytes -= *bytes;
                        self.stack[i].store = SnapStore::Disk(handle);
                    }
                    // A failed spill write (disk full, permissions) is
                    // not worth killing the sweep over: the snapshot
                    // just stays resident, over budget.
                    Err(_) => break,
                }
            }
            i += 1;
        }
    }

    /// Executes one family of items in order, sharing prefixes between
    /// consecutive items per [`item_divergence`], and returns each
    /// item's extracted result in input order.
    ///
    /// `factory(item, p, id)` builds process `p` for a fresh run of
    /// `items[item]`; within a family it must construct identical
    /// processes for items that share a prefix (guaranteed when the
    /// construction depends only on prefix-invariant inputs — proposals,
    /// topology — which is what makes a family a family). `extract` is
    /// called once per item on its finished engine.
    ///
    /// Sharing structure: consecutive divergences induce a tree (item
    /// `i+1` may reuse any snapshot taken at or before its divergence
    /// from item `i`, because agreement-up-to-`t` composes through the
    /// chain), and the sweeper walks that tree depth-first — exactly one
    /// engine live at a time, snapshots only on the current root-to-leaf
    /// path. Order families so that similar items are adjacent; a
    /// divergence of zero simply falls back to a fresh flat run.
    pub fn run_family<C, R>(
        &mut self,
        items: &[PrefixItem<C>],
        factory: impl Fn(usize, usize, Identity) -> P,
        mut extract: impl FnMut(&mut Engine<P>, usize) -> R,
    ) -> Vec<R> {
        // Branch points never carry over between families.
        while let Some(s) = self.stack.pop() {
            self.recycle(s);
        }
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                let d = item_divergence(&items[i - 1], item).ticks();
                while self.stack.last().is_some_and(|s| s.covers_to > d) {
                    let s = self.stack.pop().expect("guarded");
                    self.recycle(s);
                }
            }
            // A snapshot that ran past this item's own deadline cannot
            // seed it (the fresh run would have stopped earlier).
            let deadline = item.goal.deadline().ticks();
            while self.stack.last().is_some_and(|s| s.processed_to > deadline) {
                let s = self.stack.pop().expect("guarded");
                self.recycle(s);
            }
            // Reload the resume seed if it was spilled (dropping it if
            // its file went bad — the next shallower entry covers).
            self.materialize_top();
            let mut engine = match self.stack.last() {
                Some(top) => {
                    let SnapStore::Ram { snap, .. } = &top.store else {
                        unreachable!("materialize_top leaves a RAM top");
                    };
                    self.stats.forked += 1;
                    self.stats.shared_ticks += top.processed_to;
                    Engine::resume_in(item.config.clone(), snap, std::mem::take(&mut self.arena))
                }
                None => Engine::new_in(
                    item.config.clone(),
                    |p, id| factory(i, p, id),
                    std::mem::take(&mut self.arena),
                ),
            };
            // Snapshot at the next item's branch point, if it lies
            // deeper than everything already on the stack.
            if let Some(next) = items.get(i + 1) {
                let d = item_divergence(item, next).ticks();
                let covered = self.stack.last().map_or(0, |s| s.covers_to);
                if d > covered {
                    let cap = d.saturating_sub(1).min(deadline);
                    item.goal.run(&mut engine, Time::from_ticks(cap));
                    let snap = match self.spare.pop() {
                        Some(mut s) => {
                            engine.snapshot_into(&mut s);
                            s
                        }
                        None => engine.snapshot(),
                    };
                    self.stats.snapshots += 1;
                    // Under a spill budget the snapshot's encoded size
                    // is the accounting unit; without one it is never
                    // measured (bytes = 0 spills nothing).
                    let bytes = match &self.spill {
                        Some(spill) => (spill.codec.enc)(&snap).len() as u64,
                        None => 0,
                    };
                    if let Some(spill) = &mut self.spill {
                        spill.ram_bytes += bytes;
                    }
                    self.stack.push(StackSnap {
                        covers_to: d,
                        // The clock the run actually reached, not the
                        // cap: a decided-gated prefix can stop well
                        // before it, and both the deadline pop-guard
                        // and the shared-ticks accounting must see the
                        // real stopping point.
                        processed_to: engine.now().ticks().min(cap),
                        store: SnapStore::Ram { snap, bytes },
                    });
                    self.enforce_budget();
                }
            }
            item.goal.run(&mut engine, Time::MAX);
            self.stats.runs += 1;
            out.push(extract(&mut engine, i));
            self.arena = engine.into_arena();
        }
        out
    }
}

impl<P: ForkProcess> Default for PrefixSweeper<P> {
    fn default() -> Self {
        PrefixSweeper::new()
    }
}

/// A planned prefix-sharing sweep over a batch of items: divergence
/// times are computed up front, the batch is split into independent
/// subtrees (at zero-divergence boundaries), and execution fans the
/// subtrees out across cores — each on a worker-local [`PrefixSweeper`]
/// with its own [`EngineArena`], the same per-worker discipline as
/// [`parallel_seed_sweep_with`].
pub struct PrefixTree<C> {
    items: Vec<PrefixItem<C>>,
    /// `div[i]` = divergence tick between items `i − 1` and `i`
    /// (`div[0] = 0`).
    div: Vec<u64>,
}

impl<C: Sync> PrefixTree<C> {
    /// Plans a batch: computes every consecutive divergence. Items are
    /// executed in the given order — keep families contiguous (the
    /// generators emit them that way).
    #[must_use]
    pub fn plan(items: Vec<PrefixItem<C>>) -> Self {
        let div = std::iter::once(0)
            .chain(
                items
                    .windows(2)
                    .map(|w| item_divergence(&w[0], &w[1]).ticks()),
            )
            .collect();
        PrefixTree { items, div }
    }

    /// The planned items, in execution order.
    #[must_use]
    pub fn items(&self) -> &[PrefixItem<C>] {
        &self.items
    }

    /// Number of planned items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Consecutive divergence ticks (`[0]` is always zero).
    #[must_use]
    pub fn divergences(&self) -> &[u64] {
        &self.div
    }

    /// The planner's sharing estimate: ticks of shared prefix across
    /// consecutive items (capped at each item's deadline). Zero means
    /// the tree degenerates to the flat executor.
    #[must_use]
    pub fn planned_shared_ticks(&self) -> u64 {
        self.items
            .iter()
            .zip(&self.div)
            .map(|(item, &d)| d.saturating_sub(1).min(item.goal.deadline().ticks()))
            .sum()
    }

    /// The independent subtrees: maximal runs of consecutive items with
    /// nonzero divergence between neighbours.
    #[must_use]
    pub fn groups(&self) -> Vec<Range<usize>> {
        let mut groups = Vec::new();
        let mut start = 0;
        for i in 1..self.items.len() {
            if self.div[i] == 0 {
                groups.push(start..i);
                start = i;
            }
        }
        if start < self.items.len() {
            groups.push(start..self.items.len());
        }
        groups
    }

    /// Executes the plan: independent subtrees in parallel, each DFS'd
    /// on a worker-local [`PrefixSweeper`]. Results come back in item
    /// order, alongside the accumulated [`ForkStats`].
    pub fn execute<P, R>(
        &self,
        factory: impl Fn(&PrefixItem<C>, usize, Identity) -> P + Sync,
        extract: impl Fn(&mut Engine<P>, &PrefixItem<C>) -> R + Sync,
    ) -> (Vec<R>, ForkStats)
    where
        P: ForkProcess,
        R: Send,
    {
        let groups = self.groups();
        let per_group: Vec<(Vec<R>, ForkStats)> = groups.into_par_iter().map_init(
            PrefixSweeper::new,
            |sweeper: &mut PrefixSweeper<P>, range: Range<usize>| {
                let slice = &self.items[range.clone()];
                let before = sweeper.stats;
                let results = sweeper.run_family(
                    slice,
                    |i, p, id| factory(&slice[i], p, id),
                    |engine, i| extract(engine, &slice[i]),
                );
                let after = sweeper.stats;
                let delta = ForkStats {
                    runs: after.runs - before.runs,
                    forked: after.forked - before.forked,
                    snapshots: after.snapshots - before.snapshots,
                    shared_ticks: after.shared_ticks - before.shared_ticks,
                };
                (results, delta)
            },
        );
        let mut out = Vec::with_capacity(self.items.len());
        let mut stats = ForkStats::default();
        for (results, delta) in per_group {
            out.extend(results);
            stats.runs += delta.runs;
            stats.forked += delta.forked;
            stats.snapshots += delta.snapshots;
            stats.shared_ticks += delta.shared_ticks;
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::ProcSet;
    use crate::network::PreGstBehavior;
    use homonym_core::identity::IdentityAssignment;
    use homonym_core::time::Span;

    #[test]
    fn preserves_seed_order() {
        let out = parallel_seed_sweep(100, |seed| seed * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn with_context_preserves_seed_order_and_reuses_contexts() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let contexts = AtomicUsize::new(0);
        let out = parallel_seed_sweep_with(
            200,
            || {
                contexts.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new()
            },
            |scratch, seed| {
                // A context that leaks state across seeds would corrupt
                // the result; a correct run clears it first (the arena
                // discipline).
                scratch.clear();
                scratch.extend(0..=seed % 7);
                scratch.iter().sum::<u64>() + seed * 10
            },
        );
        assert_eq!(out.len(), 200);
        for (i, v) in out.iter().enumerate() {
            let seed = i as u64;
            assert_eq!(*v, (0..=seed % 7).sum::<u64>() + seed * 10);
        }
        // One context per worker, not per seed.
        assert!(contexts.load(Ordering::Relaxed) <= rayon::current_num_threads());
    }

    fn base_config(seed: u64) -> SimConfig {
        SimConfig::new(
            IdentityAssignment::round_robin(4, 2),
            FailureSchedule::none(4),
            NetworkModel::PartialSync {
                gst: Time::from_ticks(100),
                delta: Span::from_ticks(3),
                pre_gst: PreGstBehavior::DelayOnly {
                    max_delay: Span::from_ticks(10),
                },
            },
        )
        .with_seed(seed)
    }

    fn defer_clause(from: u64, until: u64) -> LinkClause {
        LinkClause {
            from: Time::from_ticks(from),
            until: Time::from_ticks(until),
            src: ProcSet::from_indices(4, [0, 1]),
            dst: ProcSet::from_indices(4, [2, 3]),
            effect: LinkEffect::DeferUntil(Time::from_ticks(until)),
        }
    }

    #[test]
    fn identical_configs_never_diverge() {
        assert_eq!(
            config_divergence(&base_config(3), &base_config(3)),
            Time::MAX
        );
    }

    #[test]
    fn seed_difference_forfeits_sharing() {
        assert_eq!(
            config_divergence(&base_config(3), &base_config(4)),
            Time::ZERO
        );
    }

    #[test]
    fn gst_difference_diverges_at_the_earlier_gst() {
        let a = base_config(1);
        let mut b = base_config(1);
        b.network = NetworkModel::PartialSync {
            gst: Time::from_ticks(60),
            delta: Span::from_ticks(3),
            pre_gst: PreGstBehavior::DelayOnly {
                max_delay: Span::from_ticks(10),
            },
        };
        assert_eq!(config_divergence(&a, &b), Time::from_ticks(60));
    }

    #[test]
    fn crash_difference_diverges_one_tick_before_the_earlier_crash() {
        let a = base_config(1);
        let mut b = base_config(1);
        b.sched = FailureSchedule::none(4).with_crash(2, Time::from_ticks(40));
        assert_eq!(config_divergence(&a, &b), Time::from_ticks(39));
    }

    #[test]
    fn heal_variants_diverge_at_the_earlier_heal_for_drop_clauses() {
        // Identical clause except the window end: shared until the
        // earlier deactivation.
        let mut x = defer_clause(20, 50);
        let mut y = defer_clause(20, 70);
        x.effect = LinkEffect::Drop;
        y.effect = LinkEffect::Drop;
        assert_eq!(clause_pair_divergence(&x, &y), Time::from_ticks(50));
        // DeferUntil embeds the heal instant in the effect, so the
        // queued copies differ from the activation onward.
        assert_eq!(
            clause_pair_divergence(&defer_clause(20, 50), &defer_clause(20, 70)),
            Time::from_ticks(20)
        );
    }

    #[test]
    fn salted_probabilistic_scripts_do_not_share() {
        let mk = |salt: u64| {
            LinkFaultScript::new(salt).with_clause(LinkClause {
                from: Time::from_ticks(30),
                until: Time::from_ticks(60),
                src: ProcSet::all(4),
                dst: ProcSet::all(4),
                effect: LinkEffect::Lose(10),
            })
        };
        assert_eq!(script_divergence(Some(&mk(1)), Some(&mk(2))), Time::ZERO);
        assert_eq!(script_divergence(Some(&mk(1)), Some(&mk(1))), Time::MAX);
    }

    #[test]
    fn differing_replay_sources_forfeit_sharing() {
        use crate::adversary::{ByzClause, ByzEffect, ByzantineScript};
        let replay = |src: usize, from: u64| {
            ByzantineScript::new(0).with_clause(ByzClause {
                from: Time::from_ticks(from),
                until: Time::MAX,
                src: ProcSet::from_indices(4, [src]),
                effect: ByzEffect::Replay {
                    victims: ProcSet::all(4),
                },
            })
        };
        // Same replay-listed sender, later window: shared to the earlier
        // activation (the engines' caches agree up to there).
        assert_eq!(
            byz_script_divergence(Some(&replay(1, 30)), Some(&replay(1, 50))),
            Time::from_ticks(30)
        );
        // Different replay-listed senders: the caches diverge from the
        // first broadcast — no sharing, regardless of window placement.
        assert_eq!(
            byz_script_divergence(Some(&replay(1, 30)), Some(&replay(2, 30))),
            Time::ZERO
        );
        // A replay script against no script at all: same forfeit.
        assert_eq!(
            byz_script_divergence(Some(&replay(1, 30)), None),
            Time::ZERO
        );
        // Non-replay scripts keep the clause-window refinement.
        let equiv = |from: u64, until: u64| {
            ByzantineScript::new(0).with_clause(ByzClause {
                from: Time::from_ticks(from),
                until: Time::from_ticks(until),
                src: ProcSet::from_indices(4, [1]),
                effect: ByzEffect::Equivocate {
                    victims: ProcSet::all(4),
                },
            })
        };
        assert_eq!(
            byz_script_divergence(Some(&equiv(20, 50)), Some(&equiv(20, 70))),
            Time::from_ticks(50)
        );
    }

    #[test]
    fn groups_split_at_zero_divergence() {
        let item = |seed: u64| PrefixItem {
            config: base_config(seed),
            goal: RunGoal::Until(Time::from_ticks(500)),
            tag: (),
        };
        // Two families: seeds {1, 1} then {2, 2}.
        let tree = PrefixTree::plan(vec![item(1), item(1), item(2), item(2)]);
        assert_eq!(tree.groups(), vec![0..2, 2..4]);
        assert_eq!(tree.divergences()[2], 0);
    }

    /// Persistable chatter for the spill tests: broadcasts a counter on
    /// a repeating timer and publishes the running sum it hears, so
    /// engine state keeps evolving for the whole run window.
    #[derive(Debug, Clone, Copy)]
    struct Pulse {
        me: u64,
        heard: u64,
    }

    impl crate::process::Process for Pulse {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self, ctx: &mut crate::process::ActionSink<'_, u64, u64>) {
            ctx.broadcast(self.me);
            ctx.set_timer(
                homonym_core::time::Span::from_ticks(7),
                crate::process::TimerTag(0),
            );
        }
        fn on_message(&mut self, m: u64, ctx: &mut crate::process::ActionSink<'_, u64, u64>) {
            self.heard = self.heard.wrapping_add(m);
            ctx.publish(self.heard);
        }
        fn on_timer(
            &mut self,
            _t: crate::process::TimerTag,
            ctx: &mut crate::process::ActionSink<'_, u64, u64>,
        ) {
            ctx.broadcast(self.heard | 1);
            ctx.set_timer(
                homonym_core::time::Span::from_ticks(7),
                crate::process::TimerTag(0),
            );
        }
    }

    impl ForkProcess for Pulse {
        fn fork_in(&self, _space: &mut homonym_core::fork::ForkSpace) -> Self {
            *self
        }
    }

    homonym_core::persist_fields!(Pulse { me, heard });

    /// A sweep item diverging from its siblings at `crash_at - 1`.
    fn pulse_item(crash_at: u64) -> PrefixItem<()> {
        let mut config = base_config(1);
        config.sched = FailureSchedule::none(4).with_crash(3, Time::from_ticks(crash_at));
        PrefixItem {
            config,
            goal: RunGoal::Until(Time::from_ticks(200)),
            tag: (),
        }
    }

    /// Crash times chosen so the DFS stacks three branch points (39, 79,
    /// 119), then pops back to the shallowest — under a zero budget that
    /// spills two snapshots and reloads one from disk.
    fn pulse_family() -> Vec<PrefixItem<()>> {
        vec![
            pulse_item(40),
            pulse_item(80),
            pulse_item(120),
            pulse_item(160),
            pulse_item(41),
        ]
    }

    fn pulse_factory(_item: usize, p: usize, _id: Identity) -> Pulse {
        Pulse {
            me: p as u64 + 1,
            heard: 0,
        }
    }

    fn unique_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hsnp-sweep-{}-{}", tag, std::process::id()))
    }

    #[test]
    fn spilled_sweep_matches_resident_sweep() {
        let extract = |e: &mut Engine<Pulse>, _i: usize| {
            (e.now(), e.metrics().clone(), e.histories().to_vec())
        };
        let items = pulse_family();

        let mut plain = PrefixSweeper::new();
        let baseline = plain.run_family(&items, pulse_factory, extract);
        assert!(plain.stats.forked >= 2, "family must share prefixes");

        let dir = unique_dir("spill-eq");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spilling = PrefixSweeper::new();
        spilling.enable_spill(SnapshotSpool::new(&dir, 0).expect("spool dir"));
        let spilled = spilling.run_family(&items, pulse_factory, extract);

        assert_eq!(spilled, baseline, "spilling must be invisible to results");
        assert_eq!(spilling.stats, plain.stats, "…and to the fork accounting");
        let stats = spilling.spool_stats().expect("spill enabled");
        assert!(stats.spilled >= 2, "zero budget must spill: {stats:?}");
        assert!(stats.reloaded >= 1, "the pop-back must reload: {stats:?}");
        assert_eq!(stats.corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Corrupting a spilled snapshot on disk must not abort the walk:
    /// `materialize_top` drops the bad entry (counting it) and falls
    /// back to the next shallower resident prefix.
    #[test]
    fn corrupt_spilled_snapshot_falls_back_to_shallower_prefix() {
        let dir = unique_dir("spill-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sweeper: PrefixSweeper<Pulse> = PrefixSweeper::new();
        sweeper.enable_spill(SnapshotSpool::new(&dir, 0).expect("spool dir"));

        let mut engine = Engine::new_in(
            pulse_item(40).config,
            |p, id| pulse_factory(0, p, id),
            EngineArena::new(),
        );
        engine.run_until(Time::from_ticks(10));
        let shallow = engine.snapshot();
        engine.run_until(Time::from_ticks(50));
        let deep = engine.snapshot();

        sweeper.stack.push(StackSnap {
            covers_to: 11,
            processed_to: 10,
            store: SnapStore::Ram {
                snap: shallow,
                bytes: 0,
            },
        });
        let spill = sweeper.spill.as_mut().expect("enabled");
        let handle = spill
            .spool
            .put(&(spill.codec.enc)(&deep))
            .expect("spill write");
        // Flip one payload byte of the single spool file on disk.
        let file = std::fs::read_dir(&dir)
            .expect("spool dir")
            .map(|e| e.expect("entry").path())
            .find(|p| p.extension().is_some_and(|x| x == "ck"))
            .expect("a spilled file");
        let mut bytes = std::fs::read(&file).expect("read spill");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&file, &bytes).expect("corrupt spill");
        sweeper.stack.push(StackSnap {
            covers_to: 51,
            processed_to: 50,
            store: SnapStore::Disk(handle),
        });

        sweeper.materialize_top();
        assert_eq!(sweeper.stack.len(), 1, "corrupt entry must be dropped");
        assert!(
            matches!(
                sweeper.stack.last(),
                Some(StackSnap {
                    store: SnapStore::Ram { .. },
                    ..
                })
            ),
            "the shallower RAM prefix takes over"
        );
        let stats = sweeper.spool_stats().expect("enabled");
        assert_eq!(stats.corrupt, 1);

        // With nothing shallower left, the fallback is a fresh run: an
        // all-corrupt stack drains to empty instead of panicking.
        let spill = sweeper.spill.as_mut().expect("enabled");
        let handle = spill
            .spool
            .put(&[0xAB; 64]) // valid container, undecodable payload
            .expect("spill write");
        sweeper.stack.clear();
        sweeper.stack.push(StackSnap {
            covers_to: 99,
            processed_to: 98,
            store: SnapStore::Disk(handle),
        });
        sweeper.materialize_top();
        assert!(sweeper.stack.is_empty(), "no prefix left means fresh run");
        let stats = sweeper.spool_stats().expect("enabled");
        assert_eq!(stats.corrupt, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
