//! Multi-seed sweep plumbing shared by the experiment harness and the
//! chaos falsification harness.

use rayon::prelude::*;

/// Runs `run(seed)` for seeds `0..seeds` across all cores, preserving
/// result order. Each run must be independent (the engines are: a run is
/// a pure function of its config and seed).
pub fn parallel_seed_sweep<R: Send>(seeds: usize, run: impl Fn(u64) -> R + Sync) -> Vec<R> {
    (0..seeds as u64).into_par_iter().map(run).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_seed_order() {
        let out = parallel_seed_sweep(100, |seed| seed * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }
}
