//! Snapshot/fork support: capture the complete deterministic state of a
//! running engine and restore it later — the substrate of the
//! prefix-sharing sweep executor (see [`crate::sweep`]).
//!
//! # Contract
//!
//! A snapshot captures **everything** a run's future depends on: the
//! calendar queue's contents (including a partially consumed tick batch),
//! every process's algorithm state and private RNG stream, the network
//! and adversary RNG streams, the insertion-sequence counter, metrics,
//! histories, decisions and the trace cursor. Restoring it into an
//! engine with the same configuration therefore produces the
//! **byte-identical `(time, seq)` event sequence** an uninterrupted run
//! would from that point — the property `tests/snapshot_restore_props.rs`
//! asserts across engines, network models and random fault scripts,
//! including forks of forks.
//!
//! The prefix-sharing executor additionally restores snapshots under a
//! *different* configuration that provably agrees with the snapshotted
//! one on everything consumed so far (see
//! [`config_divergence`](crate::sweep::config_divergence)); crash tables
//! and decision counters are recomputed from the adopting engine's own
//! configuration on restore to keep that sound.
//!
//! # Why forking is not `Clone`
//!
//! Process state may contain [`SharedCell`](homonym_core::query::SharedCell)
//! handles wiring a detector half to a consensus half *within one
//! simulated process* (see [`crate::stack::Stacked`]). Cells clone by
//! aliasing, so a plain clone of the process would leave the copy
//! writing into the original's cell. [`ForkProcess`] threads a
//! [`ForkSpace`] through the process's state instead: each shared
//! allocation is duplicated exactly once per fork and every aliasing
//! handle is re-seated onto the duplicate, while immutable payloads
//! (precomputed oracle tables, frozen topology) stay `Arc`-shared —
//! snapshots are cheap because only mutable state is copied.
//!
//! # Allocation discipline
//!
//! Snapshots participate in the sweep arenas:
//! [`Engine::snapshot_into`](crate::engine::Engine::snapshot_into)
//! refills an existing [`EngineSnapshot`] through `clone_from`, reusing
//! its bucket ring, history rows and batch buffers, and
//! [`Engine::resume_in`](crate::engine::Engine::resume_in) rebuilds an
//! engine from a snapshot inside recycled
//! [`EngineArena`](crate::engine::EngineArena) allocations —
//! a branch-heavy sweep forks thousands of times through one warm set of
//! buffers instead of touching the global allocator per fork.

use std::collections::BTreeMap;

use homonym_core::fork::ForkSpace;
use homonym_core::properties::History;
use homonym_core::time::Time;
use rand::rngs::StdRng;

use homonym_obs::Recorder;

use crate::engine::Metrics;
use crate::process::Process;
use crate::sync_engine::{SyncMetrics, SyncProcess};
use crate::trace::Trace;

/// A process whose state can be forked into an independent copy with
/// byte-identical future behaviour (see the module docs).
///
/// Implementations must duplicate all mutable state, re-seat internal
/// [`SharedCell`](homonym_core::query::SharedCell) wiring through the
/// [`ForkSpace`], and may `Arc`-share immutable payloads. The engine's
/// snapshot methods are available exactly for processes implementing
/// this trait.
pub trait ForkProcess: Process {
    /// Forks this process inside `space`.
    fn fork_in(&self, space: &mut ForkSpace) -> Self;
}

/// The lock-step counterpart of [`ForkProcess`], for
/// [`SyncEngine`](crate::sync_engine::SyncEngine) snapshots.
pub trait ForkSyncProcess: SyncProcess {
    /// Forks this process inside `space`.
    fn fork_in(&self, space: &mut ForkSpace) -> Self;
}

/// Captured state of an event-driven [`Engine`](crate::engine::Engine);
/// see the module docs for the restore contract. Obtain one from
/// [`Engine::snapshot`](crate::engine::Engine::snapshot), refresh it with
/// [`Engine::snapshot_into`](crate::engine::Engine::snapshot_into), and
/// restore it with [`Engine::restore_from`](crate::engine::Engine::restore_from)
/// or [`Engine::resume_in`](crate::engine::Engine::resume_in).
pub struct EngineSnapshot<P: Process> {
    pub(crate) procs: Vec<crate::engine::ProcSlot<P>>,
    /// Which processes have *halted themselves* (as opposed to being
    /// crashed by the schedule): restore rebuilds the liveness-horizon
    /// table from the adopting engine's own failure schedule plus these
    /// flags, so a snapshot can be adopted by a configuration whose
    /// post-divergence crash times differ.
    pub(crate) halted: Vec<bool>,
    pub(crate) queue: crate::queue::CalendarQueue<crate::engine::Event<P::Msg>>,
    pub(crate) seq: u64,
    pub(crate) now: Time,
    pub(crate) net_rng: StdRng,
    pub(crate) adv_rng: StdRng,
    /// The Byzantine stream and the one-deep replay cache round-trip
    /// with the snapshot, so a restored run's attack draws — and the
    /// stale payload an active replay clause substitutes — continue
    /// byte-identically.
    pub(crate) byz_rng: StdRng,
    pub(crate) byz_replay: Vec<Option<P::Msg>>,
    pub(crate) metrics: Metrics,
    pub(crate) histories: Vec<History<P::Output>>,
    pub(crate) decisions: Vec<Option<(Time, u64)>>,
    pub(crate) trace: Option<Trace>,
    /// The observability recorder round-trips with the snapshot so a
    /// restored run's structured event log continues where it left off.
    pub(crate) recorder: Option<Recorder>,
    pub(crate) tick_batch: Vec<(u64, Option<crate::engine::Event<P::Msg>>)>,
    pub(crate) tick_pos: usize,
}

impl<P: Process> EngineSnapshot<P> {
    /// The virtual time at which the snapshot was taken.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Callbacks dispatched up to the snapshot instant.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.metrics.events
    }

    /// Number of processes in the snapshotted system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.procs.len()
    }
}

/// Captured state of a lock-step [`SyncEngine`](crate::sync_engine::SyncEngine).
///
/// The restore contract mirrors [`EngineSnapshot`]'s: restoring into an
/// engine with the same configuration reproduces the uninterrupted run's
/// behaviour step for step (histories, metrics, decisions, shuffle
/// order).
pub struct SyncSnapshot<P: SyncProcess> {
    pub(crate) procs: Vec<P>,
    pub(crate) halted: Vec<bool>,
    pub(crate) step: u64,
    pub(crate) rng: StdRng,
    pub(crate) adv_rng: StdRng,
    pub(crate) byz_rng: StdRng,
    pub(crate) byz_replay: Vec<Option<P::Msg>>,
    pub(crate) deferred: BTreeMap<u64, Vec<(usize, P::Msg)>>,
    pub(crate) metrics: SyncMetrics,
    pub(crate) histories: Vec<History<P::Output>>,
    pub(crate) decisions: Vec<Option<(Time, u64)>>,
    /// The observability recorder round-trips with the snapshot, as in
    /// the event-driven engine's snapshot.
    pub(crate) recorder: Option<Recorder>,
}

impl<P: SyncProcess> SyncSnapshot<P> {
    /// The step at which the snapshot was taken (the next one to run).
    #[must_use]
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Number of processes in the snapshotted system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.procs.len()
    }
}
