//! The engine's event queue: a tick-bucketed calendar queue with a
//! binary-heap overflow.
//!
//! Dispatch order is the deterministic `(time, insertion sequence)` order
//! the engine has always used; the calendar queue reproduces it
//! byte-for-byte (a property the equivalence tests and
//! `tests/trace_determinism.rs` assert) while turning the dominant
//! push/pop pattern — deliveries a small bounded latency ahead of `now` —
//! into O(1) array operations instead of `BTreeMap` node traffic.
//!
//! Two dequeue shapes are offered: the per-event
//! [`CalendarQueue::pop_at_or_before`] (the pre-batching hot path, kept
//! for the `SimConfig::legacy_hot_path` baseline), and the batched
//! [`CalendarQueue::take_tick`], which hands over **every** event of the
//! earliest tick in one bucket-storage swap so the engine pays the window-advance,
//! overflow-migration and occupancy-scan costs once per tick instead of
//! once per event. Both dequeue in exactly the same `(time, seq)` order;
//! the queue tests prove them equivalent against a `BTreeMap` reference
//! model.
//!
//! # Design
//!
//! * A ring of [`WHEEL_TICKS`] buckets indexed by `tick % WHEEL_TICKS`
//!   covers the sliding window `[window, window + WHEEL_TICKS)`. Network
//!   latencies and timer delays are small bounded spans, so almost every
//!   event lands here. Each bucket is a `Vec` kept in insertion-sequence
//!   order (a binary search protects the rare out-of-order migration).
//! * An occupancy bitmap (one bit per bucket) finds the next nonempty
//!   tick with word-level scans instead of walking empty buckets.
//! * Events beyond the window go to a `BinaryHeap` keyed by
//!   `(time, seq)` and migrate into the ring when the window reaches
//!   them, so cross-structure ordering can never interleave wrongly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use homonym_core::time::Time;

/// Ring capacity in ticks. Power of two so the bucket index is a mask.
const WHEEL_TICKS: u64 = 1024;
/// Words of the occupancy bitmap.
const WHEEL_WORDS: usize = (WHEEL_TICKS / 64) as usize;

/// An event too far in the future for the ring.
#[derive(Clone)]
struct FarEvent<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for FarEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<E> Eq for FarEvent<E> {}
impl<E> PartialOrd for FarEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for FarEvent<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A ring bucket: `(seq, event)` entries sorted by `seq`, popped from
/// `head` so dequeuing is O(1) without shifting. Popped slots hold
/// `None`; the bucket is cleared once fully drained.
struct Bucket<E> {
    head: usize,
    items: Vec<(u64, Option<E>)>,
}

impl<E: Clone> Clone for Bucket<E> {
    fn clone(&self) -> Self {
        Bucket {
            head: self.head,
            items: self.items.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.head = source.head;
        self.items.clone_from(&source.items);
    }
}

impl<E> Bucket<E> {
    const fn new() -> Self {
        Bucket {
            head: 0,
            items: Vec::new(),
        }
    }

    fn is_drained(&self) -> bool {
        self.head >= self.items.len()
    }
}

/// Calendar queue dispatching in exact `(time, seq)` order.
pub(crate) struct CalendarQueue<E> {
    buckets: Vec<Bucket<E>>,
    occupied: [u64; WHEEL_WORDS],
    /// Events currently stored in the ring.
    ring_len: usize,
    /// Lowest tick the ring can currently hold; advances monotonically.
    window: u64,
    /// Memoized next-event tick, so the engine's peek-then-pop pattern
    /// scans the occupancy bitmap once per event instead of twice.
    next_tick: Option<u64>,
    overflow: BinaryHeap<Reverse<FarEvent<E>>>,
}

/// Snapshot support: the queue clones bucket by bucket, preserving its
/// exact internal state (window position, partially drained buckets,
/// overflow heap), so a restored engine replays the identical `(time,
/// seq)` dequeue sequence. `clone_from` reuses the destination's bucket
/// allocations — the snapshot/restore hot path of the prefix-sharing
/// sweep executor goes through it so repeated snapshots recycle one set
/// of buffers instead of reallocating 1024 buckets per fork.
impl<E: Clone> Clone for CalendarQueue<E> {
    fn clone(&self) -> Self {
        CalendarQueue {
            buckets: self.buckets.clone(),
            occupied: self.occupied,
            ring_len: self.ring_len,
            window: self.window,
            next_tick: self.next_tick,
            overflow: self.overflow.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        for (dst, src) in self.buckets.iter_mut().zip(&source.buckets) {
            dst.clone_from(src);
        }
        self.occupied = source.occupied;
        self.ring_len = source.ring_len;
        self.window = source.window;
        self.next_tick = source.next_tick;
        self.overflow.clone_from(&source.overflow);
    }
}

impl<E> CalendarQueue<E> {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            buckets: (0..WHEEL_TICKS).map(|_| Bucket::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            ring_len: 0,
            window: 0,
            next_tick: None,
            overflow: BinaryHeap::new(),
        }
    }

    /// Whether no events remain (used by the queue tests; the engines
    /// detect quiescence through `peek_time`).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.ring_len == 0 && self.overflow.is_empty()
    }

    pub(crate) fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    fn set_occupied(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1 << (idx % 64);
    }

    fn clear_occupied(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1 << (idx % 64));
    }

    /// Inserts an event; `at` must be `>= window` (the engine only
    /// schedules at or after the current time, which the window trails).
    #[inline]
    pub(crate) fn push(&mut self, at: Time, seq: u64, event: E) {
        let at = at.ticks();
        debug_assert!(at >= self.window, "event scheduled before the window");
        if at - self.window < WHEEL_TICKS {
            let idx = (at % WHEEL_TICKS) as usize;
            let bucket = &mut self.buckets[idx];
            // In-order fast path: sequences are handed out monotonically,
            // so appends keep the bucket sorted by seq.
            match bucket.items.last() {
                Some(&(last_seq, _)) if last_seq > seq => {
                    let pos = bucket
                        .items
                        .partition_point(|(s, _)| *s < seq)
                        .max(bucket.head);
                    bucket.items.insert(pos, (seq, Some(event)));
                }
                _ => bucket.items.push((seq, Some(event))),
            }
            self.set_occupied(idx);
            self.ring_len += 1;
            if self.next_tick.is_some_and(|next| at < next) {
                self.next_tick = Some(at);
            }
        } else {
            // Overflow events sit at or beyond `window + WHEEL_TICKS`,
            // which a memoized ring tick never exceeds, so the memo
            // stays valid.
            self.overflow.push(Reverse(FarEvent { at, seq, event }));
        }
    }

    /// Append-only insert for callers that push in globally increasing
    /// `seq` order (the engine always does: sequences are handed out
    /// monotonically and a bucket never holds two ticks at once, so the
    /// out-of-order guard in [`CalendarQueue::push`] can never fire).
    /// Skips the tail-sequence load and compare on the hottest store of
    /// the simulator; the batched engine path uses this, the legacy path
    /// keeps the guarded [`CalendarQueue::push`] shape.
    #[inline]
    pub(crate) fn push_in_order(&mut self, at: Time, seq: u64, event: E) {
        let at = at.ticks();
        debug_assert!(at >= self.window, "event scheduled before the window");
        if at - self.window < WHEEL_TICKS {
            let idx = (at % WHEEL_TICKS) as usize;
            let bucket = &mut self.buckets[idx];
            debug_assert!(
                bucket.items.last().is_none_or(|&(last, _)| last < seq),
                "push_in_order caller violated seq monotonicity"
            );
            bucket.items.push((seq, Some(event)));
            self.set_occupied(idx);
            self.ring_len += 1;
            if self.next_tick.is_some_and(|next| at < next) {
                self.next_tick = Some(at);
            }
        } else {
            self.overflow.push(Reverse(FarEvent { at, seq, event }));
        }
    }

    /// Moves overflow events that now fit the window into the ring.
    fn migrate_overflow(&mut self) {
        while let Some(Reverse(far)) = self.overflow.peek() {
            if far.at - self.window >= WHEEL_TICKS {
                break;
            }
            let Reverse(far) = self.overflow.pop().expect("peeked");
            // Ring pushes bypass `push` to avoid re-checking the window.
            let idx = (far.at % WHEEL_TICKS) as usize;
            let bucket = &mut self.buckets[idx];
            let pos = bucket
                .items
                .partition_point(|(s, _)| *s < far.seq)
                .max(bucket.head);
            bucket.items.insert(pos, (far.seq, Some(far.event)));
            self.set_occupied(idx);
            self.ring_len += 1;
        }
    }

    /// The tick of the earliest ring event, scanning the occupancy
    /// bitmap from `window` forward (with wraparound).
    fn earliest_ring_tick(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        let start = (self.window % WHEEL_TICKS) as usize;
        let mut best: Option<u64> = None;
        for step in 0..=WHEEL_WORDS {
            // Scan words starting at `start`'s word; the first and last
            // word need partial masks to respect the window rotation.
            let word_idx = (start / 64 + step) % WHEEL_WORDS;
            let mut word = self.occupied[word_idx];
            if step == 0 {
                word &= !0u64 << (start % 64);
            } else if step == WHEEL_WORDS {
                word &= !(!0u64 << (start % 64));
            }
            if word != 0 {
                let bit = word_idx * 64 + word.trailing_zeros() as usize;
                let offset = (bit as u64 + WHEEL_TICKS - start as u64) % WHEEL_TICKS;
                best = Some(self.window + offset);
                break;
            }
        }
        best
    }

    /// Time of the next event without removing it.
    #[inline]
    pub(crate) fn peek_time(&mut self) -> Option<Time> {
        if let Some(next) = self.next_tick {
            return Some(Time::from_ticks(next));
        }
        if self.ring_len == 0 {
            // Jump the window straight to the overflow's earliest event.
            let far_at = self.overflow.peek().map(|Reverse(f)| f.at)?;
            self.window = far_at;
        }
        self.migrate_overflow();
        self.next_tick = self.earliest_ring_tick();
        self.next_tick.map(Time::from_ticks)
    }

    /// Removes and returns the earliest event as `(time, seq, event)`.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(Time, u64, E)> {
        let at = self.peek_time()?.ticks();
        if self.window < at {
            self.window = at;
            // Advancing the window may have pulled more overflow events
            // into range at this same tick.
            self.migrate_overflow();
        }
        let idx = (at % WHEEL_TICKS) as usize;
        let bucket = &mut self.buckets[idx];
        debug_assert!(!bucket.is_drained(), "occupancy bit without items");
        let head = bucket.head;
        bucket.head += 1;
        let slot = &mut bucket.items[head];
        let seq = slot.0;
        let event = slot.1.take().expect("slot popped twice");
        if bucket.is_drained() {
            bucket.items.clear();
            bucket.head = 0;
            self.clear_occupied(idx);
            self.next_tick = None;
        }
        self.ring_len -= 1;
        Some((Time::from_ticks(at), seq, event))
    }

    /// Pops the earliest event only when it is at or before `deadline` —
    /// the per-event run-loop pattern, fused so the queue resolves its
    /// memoized next tick once per event. This is the
    /// `SimConfig::legacy_hot_path` dequeue shape.
    #[inline]
    pub(crate) fn pop_at_or_before(&mut self, deadline: Time) -> Option<(Time, u64, E)> {
        if self.peek_time()? > deadline {
            return None;
        }
        self.pop()
    }

    /// Takes **every** event of the earliest tick at or before `deadline`
    /// by swapping the tick's bucket storage into `out` (entries in
    /// `(seq)` order; popped slots are `None`), and returns that tick's
    /// time; `None` when the queue is empty or the earliest event lies
    /// beyond the deadline (`out` is untouched then).
    ///
    /// `out` must arrive empty: it becomes the bucket's replacement
    /// storage, so the caller hands its (cleared) buffer back on the next
    /// call and bucket capacities circulate between the queue and the
    /// caller without reallocation.
    ///
    /// This is the batched dequeue: window advance, overflow migration
    /// and the occupancy-bitmap scan happen once per *tick*, the handoff
    /// is an O(1) pointer swap, and each event is moved exactly once (by
    /// the caller, out of the swapped buffer). No event can be scheduled
    /// *at* the tick being drained (the engine only schedules strictly
    /// after `now`), so the drain can never miss a same-tick straggler.
    ///
    /// Returns the index of the first live slot (`> 0` only if per-event
    /// pops already consumed a prefix of the tick) along with the time.
    pub(crate) fn take_tick(
        &mut self,
        deadline: Time,
        out: &mut Vec<(u64, Option<E>)>,
    ) -> Option<(Time, usize)> {
        debug_assert!(out.is_empty());
        let at = self.peek_time()?;
        if at > deadline {
            return None;
        }
        let at = at.ticks();
        if self.window < at {
            self.window = at;
            // Advancing the window may pull more overflow events into
            // range at this same tick.
            self.migrate_overflow();
        }
        let idx = (at % WHEEL_TICKS) as usize;
        let bucket = &mut self.buckets[idx];
        debug_assert!(!bucket.is_drained(), "occupancy bit without items");
        let live = bucket.items.len() - bucket.head;
        std::mem::swap(&mut bucket.items, out);
        let head = bucket.head;
        bucket.head = 0;
        self.clear_occupied(idx);
        self.next_tick = None;
        self.ring_len -= live;
        Some((Time::from_ticks(at), head))
    }

    /// Every queued event as `(tick, seq, event)` in dispatch order —
    /// the queue's representation-independent content, for the durable
    /// snapshot codec. Window position, bucket layout and the
    /// ring/overflow split are reconstruction details: only the
    /// `(time, seq)` dispatch order is observable (the invariant the
    /// reference-model tests pin), and
    /// [`CalendarQueue::from_persist_entries`] reproduces it exactly by
    /// replaying the entries through [`CalendarQueue::push`].
    pub(crate) fn persist_entries(&self) -> Vec<(u64, u64, &E)> {
        let mut out: Vec<(u64, u64, &E)> = Vec::with_capacity(self.len());
        let base = self.window % WHEEL_TICKS;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            // A live bucket holds exactly one tick of the current
            // window: the tick ≡ idx (mod WHEEL_TICKS) in
            // [window, window + WHEEL_TICKS).
            let tick = self.window + (idx as u64 + WHEEL_TICKS - base) % WHEEL_TICKS;
            for (seq, slot) in &bucket.items[bucket.head..] {
                let event = slot.as_ref().expect("live slot past head");
                out.push((tick, *seq, event));
            }
        }
        for Reverse(far) in &self.overflow {
            out.push((far.at, far.seq, &far.event));
        }
        out.sort_by_key(|&(at, seq, _)| (at, seq));
        out
    }

    /// Rebuilds a queue from [`CalendarQueue::persist_entries`] output
    /// (entries must be in `(tick, seq)` order).
    pub(crate) fn from_persist_entries(entries: impl IntoIterator<Item = (u64, u64, E)>) -> Self {
        let mut q = CalendarQueue::new();
        for (at, seq, event) in entries {
            q.push(Time::from_ticks(at), seq, event);
        }
        q
    }

    /// Returns the queue to its freshly-constructed state while keeping
    /// every bucket's allocation, so a sweep can reuse one queue across
    /// runs (see `EngineArena`).
    pub(crate) fn reset(&mut self) {
        for bucket in &mut self.buckets {
            bucket.items.clear();
            bucket.head = 0;
        }
        self.occupied = [0; WHEEL_WORDS];
        self.ring_len = 0;
        self.window = 0;
        self.next_tick = None;
        self.overflow.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(Time::from_ticks(5), 2, "b");
        q.push(Time::from_ticks(5), 1, "a");
        q.push(Time::from_ticks(3), 3, "c");
        assert_eq!(q.peek_time(), Some(Time::from_ticks(3)));
        assert_eq!(q.pop(), Some((Time::from_ticks(3), 3, "c")));
        assert_eq!(q.pop(), Some((Time::from_ticks(5), 1, "a")));
        assert_eq!(q.pop(), Some((Time::from_ticks(5), 2, "b")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_events_merge_in_order() {
        let mut q = CalendarQueue::new();
        // Far event first (small seq), near event later (large seq).
        q.push(Time::from_ticks(WHEEL_TICKS * 3), 1, "far");
        q.push(Time::from_ticks(2), 2, "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Time::from_ticks(2), 2, "near")));
        assert_eq!(q.pop(), Some((Time::from_ticks(WHEEL_TICKS * 3), 1, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn same_tick_across_ring_and_overflow_respects_seq() {
        let mut q = CalendarQueue::new();
        let t = WHEEL_TICKS + 7;
        // Goes to overflow (beyond the initial window)...
        q.push(Time::from_ticks(t), 1, "overflowed");
        // ...advance the window by draining an early event...
        q.push(Time::from_ticks(WHEEL_TICKS - 1), 2, "early");
        assert_eq!(q.pop().unwrap().2, "early");
        // ...now the same tick is in the window: ring insert, larger seq.
        q.push(Time::from_ticks(t), 3, "ringed");
        assert_eq!(q.pop(), Some((Time::from_ticks(t), 1, "overflowed")));
        assert_eq!(q.pop(), Some((Time::from_ticks(t), 3, "ringed")));
    }

    #[test]
    fn window_jumps_over_long_gaps() {
        let mut q = CalendarQueue::new();
        q.push(Time::from_ticks(10), 1, 'x');
        assert_eq!(q.pop(), Some((Time::from_ticks(10), 1, 'x')));
        q.push(Time::from_ticks(500_000), 2, 'y');
        assert_eq!(q.peek_time(), Some(Time::from_ticks(500_000)));
        assert_eq!(q.pop(), Some((Time::from_ticks(500_000), 2, 'y')));
    }

    #[test]
    fn wraparound_keeps_ordering() {
        let mut q = CalendarQueue::new();
        let mut seq = 0;
        // Drive the window through several full wheel revolutions.
        let mut expected = Vec::new();
        for round in 0..5u64 {
            for offset in [1u64, 13, 700, 1023] {
                let t = round * WHEEL_TICKS + offset;
                q.push(Time::from_ticks(t), seq, (t, seq));
                expected.push((t, seq));
                seq += 1;
            }
            // Drain this round before scheduling the next (mirrors the
            // engine, whose pushes never precede `now`).
            while q
                .peek_time()
                .is_some_and(|t| t.ticks() <= (round + 1) * WHEEL_TICKS)
            {
                let (t, s, payload) = q.pop().unwrap();
                assert_eq!(payload, (t.ticks(), s));
            }
        }
        while let Some((t, s, payload)) = q.pop() {
            assert_eq!(payload, (t.ticks(), s));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drop_with_partially_drained_bucket_is_sound() {
        let mut q = CalendarQueue::new();
        q.push(Time::from_ticks(1), 0, String::from("a"));
        q.push(Time::from_ticks(1), 1, String::from("b"));
        q.push(Time::from_ticks(9), 2, String::from("c"));
        assert_eq!(q.pop().unwrap().2, "a");
        drop(q); // must not double-drop "a"
    }

    #[test]
    fn reference_model_and_calendar_agree_on_random_workloads() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::BTreeMap;

        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cal = CalendarQueue::new();
            let mut reference: BTreeMap<(Time, u64), u64> = BTreeMap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut ops = 0;
            while ops < 2_000 {
                ops += 1;
                // Mixed pushes near and far, interleaved with pops.
                if rng.gen_bool(0.6) || cal.is_empty() {
                    let horizon: u64 = if rng.gen_bool(0.9) {
                        rng.gen_range(0..64)
                    } else {
                        rng.gen_range(0..WHEEL_TICKS * 4)
                    };
                    let at = Time::from_ticks(now + horizon);
                    cal.push(at, seq, seq);
                    reference.insert((at, seq), seq);
                    seq += 1;
                } else {
                    assert_eq!(
                        cal.peek_time(),
                        reference.first_key_value().map(|(&(t, _), _)| t)
                    );
                    let a = cal.pop();
                    let b = reference.pop_first().map(|((t, s), e)| (t, s, e));
                    assert_eq!(a, b, "diverged at op {ops} of seed {seed}");
                    if let Some((t, _, _)) = a {
                        now = t.ticks();
                    }
                }
            }
            while !reference.is_empty() {
                assert_eq!(
                    cal.pop(),
                    reference.pop_first().map(|((t, s), e)| (t, s, e))
                );
            }
            assert!(cal.is_empty());
        }
    }

    /// The batched tick drain must hand back exactly what repeated
    /// per-event pops would, in the same order, across random workloads
    /// that exercise the ring, the overflow heap and window jumps.
    #[test]
    fn pop_tick_into_matches_per_event_pops() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
            let mut batched = CalendarQueue::new();
            let mut single = CalendarQueue::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut buf: Vec<(u64, Option<u64>)> = Vec::new();
            for _ in 0..400 {
                // Respect the engine contract (never schedule before the
                // window): peeking may jump the window to the overflow
                // head, so follow it before pushing relative to `now`.
                if let Some(t) = batched.peek_time() {
                    assert_eq!(single.peek_time(), Some(t));
                    now = now.max(t.ticks());
                }
                // A burst of pushes at assorted horizons...
                for _ in 0..rng.gen_range(1..8u32) {
                    let horizon: u64 = if rng.gen_bool(0.85) {
                        rng.gen_range(1..32)
                    } else {
                        rng.gen_range(1..WHEEL_TICKS * 3)
                    };
                    let at = Time::from_ticks(now + horizon);
                    batched.push(at, seq, seq);
                    single.push(at, seq, seq);
                    seq += 1;
                }
                // ...then drain one tick both ways and compare.
                let deadline = Time::from_ticks(now + rng.gen_range(0..64));
                buf.clear();
                let tick = batched.take_tick(deadline, &mut buf);
                match tick {
                    None => {
                        assert!(single.pop_at_or_before(deadline).is_none());
                    }
                    Some((t, head)) => {
                        assert_eq!(head, 0, "no per-event pops interleaved");
                        for (s, e) in buf.drain(..).map(|(s, e)| (s, e.expect("live slot"))) {
                            assert_eq!(single.pop_at_or_before(deadline), Some((t, s, e)));
                        }
                        // The single-pop side must agree the tick is done.
                        assert_ne!(
                            single.peek_time(),
                            Some(t),
                            "batched drain missed a same-tick event (seed {seed})"
                        );
                        now = t.ticks();
                    }
                }
                assert_eq!(batched.len(), single.len());
            }
        }
    }

    #[test]
    fn reset_recycles_to_empty_state() {
        let mut q = CalendarQueue::new();
        q.push(Time::from_ticks(3), 0, "a");
        q.push(Time::from_ticks(WHEEL_TICKS * 5), 1, "far");
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("a"));
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        // Usable from scratch after the reset.
        q.push(Time::from_ticks(2), 7, "b");
        assert_eq!(q.pop(), Some((Time::from_ticks(2), 7, "b")));
    }
}
