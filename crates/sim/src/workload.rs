//! Client-workload generation for the multi-height replicated log.
//!
//! A replicated state machine is only a *service* when something issues
//! commands against it. This module generates deterministic per-process
//! command streams — open- or closed-loop arrivals, skewed key
//! popularity, read/write mixes — that the `ReplicatedLog` process (in
//! `homonym-consensus`) proposes height by height. Everything is a pure
//! function of [`WorkloadConfig`] (including its seed), so a workload-
//! driven run stays replayable from its configuration alone, exactly
//! like every other run in this workspace.
//!
//! # Command encoding
//!
//! Consensus in this workspace decides `u64` values, so one command is
//! packed into one `u64`:
//!
//! ```text
//! bits 63..56   proposer process index (workloads cap n at 256)
//! bits 55..32   sequence number within the proposer's stream (1-based)
//! bits 31..24   opcode (0 = read, 1 = write)
//! bits 23..12   key
//! bits 11..0    value argument (writes only)
//! ```
//!
//! The all-zero word is the reserved **no-op**: what a process proposes
//! when its open-loop client has nothing outstanding yet (sequence
//! numbers start at 1, so no real command encodes to 0).

use homonym_core::time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The reserved no-op command: proposed when a client has no arrived
/// command to submit, committed and applied like any entry but counted
/// by nobody's completion statistics.
pub const NOOP: u64 = 0;

/// How clients issue commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalModel {
    /// **Open loop**: command `i` arrives at a pre-drawn instant
    /// regardless of how the service is keeping up (arrival gaps are
    /// uniform in `1..=2 * mean_gap_ticks - 1`, so the mean gap is
    /// `mean_gap_ticks`). Backlogs form when commit throughput falls
    /// behind the arrival rate.
    Open {
        /// Mean ticks between consecutive arrivals at one process.
        mean_gap_ticks: u64,
    },
    /// **Closed loop**: each process keeps exactly one command in
    /// flight — the next command becomes available the instant the
    /// previous one commits. Throughput is then bounded by consensus
    /// latency, never by arrival timing.
    Closed,
}

/// Key-popularity skew, float-free so every platform draws the same
/// stream: a uniform draw `r` is raised to a small integer power, which
/// piles probability mass onto low-numbered keys (the integer stand-in
/// for a Zipf-like distribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySkew {
    /// Every key equally likely.
    Uniform,
    /// Quadratic pile-up on low keys (`key ∝ r²`).
    Squared,
    /// Cubic pile-up on low keys (`key ∝ r³`).
    Cubed,
}

impl KeySkew {
    /// The workload's report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KeySkew::Uniform => "uniform",
            KeySkew::Squared => "squared",
            KeySkew::Cubed => "cubed",
        }
    }

    /// Maps a uniform draw in `0..RESOLUTION` to a key in `0..keys`.
    fn key_of(self, draw: u64, keys: u16) -> u16 {
        const RES: u128 = 1 << 20;
        let r = u128::from(draw) % RES;
        let skewed = match self {
            KeySkew::Uniform => r,
            KeySkew::Squared => r * r / RES,
            KeySkew::Cubed => r * r * r / (RES * RES),
        };
        u16::try_from(u128::from(keys) * skewed / RES).unwrap_or(keys.saturating_sub(1))
    }
}

/// Parameters of one generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Commands per process (streams are finite so runs terminate; a
    /// drained client proposes [`NOOP`]).
    pub commands_per_proc: usize,
    /// Open- vs closed-loop issuing.
    pub arrival: ArrivalModel,
    /// Key-space size (keys are drawn in `0..keys`).
    pub keys: u16,
    /// Key-popularity skew.
    pub skew: KeySkew,
    /// Percentage of commands that are writes (`0..=100`).
    pub write_percent: u8,
    /// Seed of the workload's own RNG stream (decorrelated from the
    /// engine seed — the same client behaviour can be replayed against
    /// different network schedules).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    /// A moderate default: 64 closed-loop commands per process over 256
    /// keys, squared skew, half writes.
    fn default() -> Self {
        WorkloadConfig {
            commands_per_proc: 64,
            arrival: ArrivalModel::Closed,
            keys: 256,
            skew: KeySkew::Squared,
            write_percent: 50,
            seed: 1,
        }
    }
}

impl WorkloadConfig {
    /// Builds the per-process command queues for an `n`-process system.
    ///
    /// # Panics
    ///
    /// Panics if `n > 256` (the encoding's proposer field), `keys == 0`,
    /// or `write_percent > 100`.
    #[must_use]
    pub fn queues(&self, n: usize) -> Vec<CommandQueue> {
        assert!(n <= 256, "command encoding caps n at 256, got {n}");
        assert!(self.keys > 0, "key space must be nonempty");
        assert!(
            self.write_percent <= 100,
            "write_percent is a percentage, got {}",
            self.write_percent
        );
        (0..n).map(|p| CommandQueue::generate(self, p)).collect()
    }
}

/// Packs one command. `seq` is 1-based; see the module docs.
fn encode(proc_idx: usize, seq: u32, write: bool, key: u16, val: u16) -> u64 {
    debug_assert!(seq > 0 && seq < (1 << 24));
    (proc_idx as u64) << 56
        | u64::from(seq) << 32
        | u64::from(write) << 24
        | u64::from(key & 0x0fff) << 12
        | u64::from(val & 0x0fff)
}

/// The proposer index of an encoded command ([`NOOP`] decodes to 0 —
/// check [`is_noop`] first).
#[must_use]
pub fn proposer_of(cmd: u64) -> usize {
    (cmd >> 56) as usize
}

/// The 1-based sequence number of an encoded command.
#[must_use]
pub fn seq_of(cmd: u64) -> u32 {
    ((cmd >> 32) & 0x00ff_ffff) as u32
}

/// Whether an encoded command is a write.
#[must_use]
pub fn is_write(cmd: u64) -> bool {
    (cmd >> 24) & 0xff == 1
}

/// The key an encoded command touches.
#[must_use]
pub fn key_of(cmd: u64) -> u16 {
    ((cmd >> 12) & 0x0fff) as u16
}

/// Whether an encoded value is the reserved no-op.
#[must_use]
pub fn is_noop(cmd: u64) -> bool {
    cmd == NOOP
}

/// One process's generated command stream plus its issuing cursor — the
/// client state a `ReplicatedLog` process carries across heights.
///
/// All mutable state is plain data: cloning is forking (no shared
/// cells), which keeps the log process trivially snapshot/fork-safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandQueue {
    proc_idx: usize,
    /// Encoded commands, in issue order.
    cmds: Vec<u64>,
    /// Arrival instants (ticks), parallel to `cmds`; for closed-loop
    /// workloads every entry is 0 (the next command "arrives" the
    /// moment its predecessor commits).
    arrivals: Vec<u64>,
    /// Index of the first not-yet-committed own command.
    done: usize,
}

impl CommandQueue {
    fn generate(cfg: &WorkloadConfig, proc_idx: usize) -> Self {
        // Per-process stream decorrelation mirrors the scenario
        // generators' pattern: one seed, salted per consumer.
        let salt = (proc_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ salt);
        let mut cmds = Vec::with_capacity(cfg.commands_per_proc);
        let mut arrivals = Vec::with_capacity(cfg.commands_per_proc);
        let mut clock = 0u64;
        for i in 0..cfg.commands_per_proc {
            let seq = u32::try_from(i + 1).expect("command streams fit in 24 bits");
            let write = rng.gen_range(0..100u8) < cfg.write_percent;
            let key = cfg.skew.key_of(rng.gen::<u64>(), cfg.keys);
            let val = (rng.gen::<u32>() & 0x0fff) as u16;
            cmds.push(encode(proc_idx, seq, write, key, val));
            match cfg.arrival {
                ArrivalModel::Open { mean_gap_ticks } => {
                    let gap = mean_gap_ticks.max(1);
                    clock += rng.gen_range(1..=2 * gap - 1);
                    arrivals.push(clock);
                }
                ArrivalModel::Closed => arrivals.push(0),
            }
        }
        CommandQueue {
            proc_idx,
            cmds,
            arrivals,
            done: 0,
        }
    }

    /// The command this client wants decided next: its oldest
    /// uncommitted command that has arrived by `now`, or [`NOOP`] when
    /// nothing is outstanding (stream drained, or open-loop client
    /// still waiting for the next arrival).
    #[must_use]
    pub fn proposal(&self, now: Time) -> u64 {
        match self.cmds.get(self.done) {
            Some(&cmd) if self.arrivals[self.done] <= now.ticks() => cmd,
            _ => NOOP,
        }
    }

    /// Notifies the client of a committed log entry. Its own in-flight
    /// command is retired when (and only when) that exact command
    /// commits; other proposers' commits are not this client's business.
    pub fn on_commit(&mut self, value: u64) {
        if !is_noop(value)
            && proposer_of(value) == self.proc_idx
            && self.cmds.get(self.done) == Some(&value)
        {
            self.done += 1;
        }
    }

    /// Commands of this client retired by a commit so far.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.done
    }

    /// Total commands in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// Whether the stream was generated empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }

    /// The generating process index baked into every command.
    #[must_use]
    pub fn proc_idx(&self) -> usize {
        self.proc_idx
    }
}

homonym_core::persist_fields!(CommandQueue {
    proc_idx,
    cmds,
    arrivals,
    done
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_decorrelated() {
        let cfg = WorkloadConfig::default();
        let a = cfg.queues(4);
        let b = cfg.queues(4);
        assert_eq!(a, b);
        assert_ne!(a[0].cmds, a[1].cmds, "per-process streams decorrelate");
        let other = WorkloadConfig { seed: 2, ..cfg };
        assert_ne!(other.queues(4)[0].cmds, a[0].cmds);
    }

    #[test]
    fn encoding_round_trips() {
        let cmd = encode(7, 42, true, 0x3ab, 0x5c);
        assert_eq!(proposer_of(cmd), 7);
        assert_eq!(seq_of(cmd), 42);
        assert!(is_write(cmd));
        assert_eq!(key_of(cmd), 0x3ab);
        assert!(!is_noop(cmd));
        assert!(is_noop(NOOP));
    }

    #[test]
    fn closed_loop_always_has_the_next_command_ready() {
        let cfg = WorkloadConfig {
            commands_per_proc: 3,
            arrival: ArrivalModel::Closed,
            ..WorkloadConfig::default()
        };
        let mut q = cfg.queues(2).remove(1);
        let first = q.proposal(Time::ZERO);
        assert!(!is_noop(first));
        assert_eq!(seq_of(first), 1);
        // A foreign commit retires nothing.
        q.on_commit(encode(0, 1, false, 1, 0));
        assert_eq!(q.proposal(Time::ZERO), first);
        // Our own commit advances the cursor.
        q.on_commit(first);
        assert_eq!(q.completed(), 1);
        assert_eq!(seq_of(q.proposal(Time::ZERO)), 2);
        // Draining the stream leaves NOOP.
        let second = q.proposal(Time::ZERO);
        q.on_commit(second);
        let third = q.proposal(Time::ZERO);
        q.on_commit(third);
        assert!(is_noop(q.proposal(Time::ZERO)));
        assert_eq!(q.completed(), 3);
    }

    #[test]
    fn open_loop_withholds_unarrived_commands() {
        let cfg = WorkloadConfig {
            commands_per_proc: 4,
            arrival: ArrivalModel::Open { mean_gap_ticks: 50 },
            ..WorkloadConfig::default()
        };
        let q = cfg.queues(1).remove(0);
        assert!(is_noop(q.proposal(Time::ZERO)), "nothing arrives at t0");
        let last = *q.arrivals.last().expect("nonempty");
        let ready = q.proposal(Time::from_ticks(last));
        assert!(!is_noop(ready));
        assert_eq!(seq_of(ready), 1, "arrivals issue in order");
        // Arrival instants strictly increase.
        assert!(q.arrivals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn skew_piles_keys_low() {
        let draw_mean = |skew: KeySkew| {
            let cfg = WorkloadConfig {
                commands_per_proc: 2_000,
                skew,
                write_percent: 100,
                ..WorkloadConfig::default()
            };
            let q = cfg.queues(1).remove(0);
            q.cmds.iter().map(|&c| u64::from(key_of(c))).sum::<u64>() / q.cmds.len() as u64
        };
        let uniform = draw_mean(KeySkew::Uniform);
        let squared = draw_mean(KeySkew::Squared);
        let cubed = draw_mean(KeySkew::Cubed);
        assert!(squared < uniform, "squared {squared} < uniform {uniform}");
        assert!(cubed < squared, "cubed {cubed} < squared {squared}");
    }

    #[test]
    fn persist_round_trips() {
        use homonym_core::wire::{Loader, Persist, Saver};
        let cfg = WorkloadConfig::default();
        let mut q = cfg.queues(2).remove(1);
        q.on_commit(q.proposal(Time::ZERO));
        let mut s = Saver::new();
        q.save(&mut s);
        let bytes = s.finish();
        let got = CommandQueue::load(&mut Loader::new(&bytes)).expect("round-trips");
        assert_eq!(got, q);
    }
}
