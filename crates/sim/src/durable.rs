//! Durable (on-disk) codecs for engine snapshots.
//!
//! [`EngineSnapshot`] and [`SyncSnapshot`] already carry everything a
//! run's future depends on (see [`crate::snapshot`]); this module makes
//! them [`Persist`], so the in-memory restore→continue contract extends
//! across a process boundary: encode, write (through
//! [`crate::store`]'s atomic container), kill the process, read, decode,
//! restore — the continued run replays the byte-identical `(time, seq)`
//! event sequence an uninterrupted run would.
//!
//! # What is state and what is representation
//!
//! The codec persists *observable* state only:
//!
//! * the calendar queue round-trips as its `(tick, seq, event)` content
//!   in dispatch order — window position and ring/overflow split are
//!   rebuilt (only dispatch order is observable, a property the queue's
//!   reference-model tests pin);
//! * RNG streams round-trip as their exact xoshiro256** state words, so
//!   every post-restore draw continues the stream mid-sequence;
//! * recycled scratch buffers (tick batches already drained, arena
//!   spares) are **not** state and decode empty.
//!
//! `Arc`-shared broadcast payloads decode into per-copy allocations:
//! sharing is a cost optimization, not observable state.

use homonym_core::wire::{Loader, Persist, Saver, WireError};
use rand::rngs::StdRng;

use crate::engine::{Event, Metrics, ProcSlot};
use crate::process::{Process, TimerTag};
use crate::queue::CalendarQueue;
use crate::snapshot::{EngineSnapshot, SyncSnapshot};
use crate::sync_engine::{SyncMetrics, SyncProcess};

impl Persist for TimerTag {
    fn save(&self, s: &mut Saver) {
        s.u64(self.0);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(TimerTag(l.u64()?))
    }
}

/// RNGs persist as their exact stream position (the four xoshiro256**
/// state words), not their seed: a restored generator continues
/// mid-stream. (`StdRng` is a foreign type, so this is a helper pair
/// rather than a `Persist` impl.)
fn save_rng(rng: &StdRng, s: &mut Saver) {
    rng.state().save(s);
}

fn load_rng(l: &mut Loader<'_>) -> Result<StdRng, WireError> {
    Ok(StdRng::from_state(<[u64; 4]>::load(l)?))
}

impl<M: Persist> Persist for Event<M> {
    fn save(&self, s: &mut Saver) {
        match self {
            Event::Start { dst } => {
                s.u8(0);
                dst.save(s);
            }
            Event::Deliver { dst, msg } => {
                s.u8(1);
                dst.save(s);
                msg.save(s);
            }
            Event::DeliverShared { dst, msg } => {
                s.u8(2);
                dst.save(s);
                msg.save(s);
            }
            Event::Timer { dst, tag } => {
                s.u8(3);
                dst.save(s);
                tag.save(s);
            }
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(match l.u8()? {
            0 => Event::Start {
                dst: Persist::load(l)?,
            },
            1 => Event::Deliver {
                dst: Persist::load(l)?,
                msg: Persist::load(l)?,
            },
            2 => Event::DeliverShared {
                dst: Persist::load(l)?,
                msg: Persist::load(l)?,
            },
            3 => Event::Timer {
                dst: Persist::load(l)?,
                tag: Persist::load(l)?,
            },
            tag => return Err(WireError::BadTag { what: "Event", tag }),
        })
    }
}

impl<P: Process + Persist> Persist for ProcSlot<P> {
    fn save(&self, s: &mut Saver) {
        self.proc.save(s);
        save_rng(&self.rng, s);
        self.id.save(s);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(ProcSlot {
            proc: P::load(l)?,
            rng: load_rng(l)?,
            id: Persist::load(l)?,
        })
    }
}

homonym_core::persist_fields!(Metrics {
    broadcasts,
    copies_sent,
    copies_delivered,
    copies_lost,
    copies_blocked,
    copies_forged,
    copies_suppressed,
    copies_discarded,
    timers_fired,
    events,
    by_class
});

homonym_core::persist_fields!(SyncMetrics {
    broadcasts,
    copies_delivered,
    copies_blocked,
    copies_forged,
    copies_suppressed,
    copies_discarded,
    steps
});

impl<E: Persist> Persist for CalendarQueue<E> {
    fn save(&self, s: &mut Saver) {
        let entries = self.persist_entries();
        s.len(entries.len());
        for (at, seq, event) in entries {
            s.u64(at);
            s.u64(seq);
            event.save(s);
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        let n = l.len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let at = l.u64()?;
            let seq = l.u64()?;
            entries.push((at, seq, E::load(l)?));
        }
        Ok(CalendarQueue::from_persist_entries(entries))
    }
}

/// The event-driven engine's full durable state. Field order is the
/// wire layout; any change to it (or to a field's own encoding) is a
/// schema break the checkpoint container's schema version must reflect.
impl<P> Persist for EngineSnapshot<P>
where
    P: Process + Persist,
    P::Msg: Persist,
    P::Output: Persist,
{
    fn save(&self, s: &mut Saver) {
        self.procs.save(s);
        self.halted.save(s);
        self.queue.save(s);
        self.seq.save(s);
        self.now.save(s);
        save_rng(&self.net_rng, s);
        save_rng(&self.adv_rng, s);
        save_rng(&self.byz_rng, s);
        self.byz_replay.save(s);
        self.metrics.save(s);
        self.histories.save(s);
        self.decisions.save(s);
        self.trace.save(s);
        self.recorder.save(s);
        // The partially consumed tick batch: live events plus the
        // already-dispatched prefix as `None` slots, with the cursor.
        self.tick_batch.save(s);
        self.tick_pos.save(s);
    }

    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(EngineSnapshot {
            procs: Persist::load(l)?,
            halted: Persist::load(l)?,
            queue: Persist::load(l)?,
            seq: Persist::load(l)?,
            now: Persist::load(l)?,
            net_rng: load_rng(l)?,
            adv_rng: load_rng(l)?,
            byz_rng: load_rng(l)?,
            byz_replay: Persist::load(l)?,
            metrics: Persist::load(l)?,
            histories: Persist::load(l)?,
            decisions: Persist::load(l)?,
            trace: Persist::load(l)?,
            recorder: Persist::load(l)?,
            tick_batch: Persist::load(l)?,
            tick_pos: Persist::load(l)?,
        })
    }
}

/// The lock-step engine's full durable state; same contract as the
/// event-driven impl above.
impl<P> Persist for SyncSnapshot<P>
where
    P: SyncProcess + Persist,
    P::Msg: Persist,
    P::Output: Persist,
{
    fn save(&self, s: &mut Saver) {
        self.procs.save(s);
        self.halted.save(s);
        self.step.save(s);
        save_rng(&self.rng, s);
        save_rng(&self.adv_rng, s);
        save_rng(&self.byz_rng, s);
        self.byz_replay.save(s);
        self.deferred.save(s);
        self.metrics.save(s);
        self.histories.save(s);
        self.decisions.save(s);
        self.recorder.save(s);
    }

    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(SyncSnapshot {
            procs: Persist::load(l)?,
            halted: Persist::load(l)?,
            step: Persist::load(l)?,
            rng: load_rng(l)?,
            adv_rng: load_rng(l)?,
            byz_rng: load_rng(l)?,
            byz_replay: Persist::load(l)?,
            deferred: Persist::load(l)?,
            metrics: Persist::load(l)?,
            histories: Persist::load(l)?,
            decisions: Persist::load(l)?,
            recorder: Persist::load(l)?,
        })
    }
}
