//! Link-level adversary consulted by both engines at copy-routing time.
//!
//! A [`LinkFaultScript`] is the **lowered, engine-facing** form of an
//! adversarial scenario: a list of [`LinkClause`]s, each active during a
//! half-open time window and matching a set of (source, destination)
//! process pairs, that decide the fate of individual message copies
//! *after* the [`NetworkModel`](crate::network::NetworkModel) has routed
//! them. The declarative layer that composes partitions, overlays and
//! churn into these clauses lives in the `homonym-chaos` crate; keeping
//! only the lowered form here leaves `homonym-sim` dependency-free and
//! the hot path branch-predictable.
//!
//! # Determinism contract
//!
//! The adversary preserves the engine's two standing guarantees:
//!
//! * **`(time, seq)` dispatch order** — clauses never reorder copies;
//!   they only drop a copy or move its delivery time forward, and the
//!   rewritten copy re-enters the queue with its original insertion
//!   sequence, so ties still break by send order.
//! * **Legacy hot-path trace equality** — the script is evaluated in
//!   [`Engine::do_broadcast`](crate::engine::Engine) code shared by the
//!   calendar-queue and `legacy_hot_path` configurations, and it draws
//!   from a dedicated RNG stream (seeded from the run seed and the
//!   script's [`salt`](LinkFaultScript::salt)), so installing a script
//!   perturbs neither the network nor the per-process streams. A run
//!   with no script is byte-identical to a run of an engine that never
//!   had the hook.
//!
//! Clauses are evaluated **in order** and compose: deferrals and delays
//! accumulate, and a drop is terminal. Whether a clause applies is judged
//! at **send time** (the model routes each copy when it is broadcast), so
//! a window `[from, until)` affects copies *sent* inside it.

use homonym_core::time::{Span, Time};
use rand::rngs::StdRng;

use crate::network::percent_roll;

/// A set of process indices, stored as a bitmap (`n` is small and known
/// when the script is lowered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSet {
    words: Vec<u64>,
}

impl ProcSet {
    /// The empty set over a system of `n` processes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        ProcSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// The full set `{0, …, n-1}`.
    #[must_use]
    pub fn all(n: usize) -> Self {
        let mut s = ProcSet::empty(n);
        for p in 0..n {
            s.insert(p);
        }
        s
    }

    /// Builds a set from process indices (all must be `< n`).
    ///
    /// # Panics
    ///
    /// Panics if some index is `>= n`.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(n: usize, procs: I) -> Self {
        let mut s = ProcSet::empty(n);
        for p in procs {
            assert!(p < n, "process {p} out of range for n={n}");
            s.insert(p);
        }
        s
    }

    fn insert(&mut self, p: usize) {
        self.words[p / 64] |= 1 << (p % 64);
    }

    /// Whether `p` is in the set (indices beyond the universe are not).
    #[must_use]
    pub fn contains(&self, p: usize) -> bool {
        self.words
            .get(p / 64)
            .is_some_and(|w| w & (1 << (p % 64)) != 0)
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// What an active clause does to a matching copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEffect {
    /// The copy is lost.
    Drop,
    /// The copy is held and delivered no earlier than the given instant
    /// (a partition healing at that time releasing its queued traffic).
    /// Copies already routed later than it are unaffected.
    DeferUntil(Time),
    /// The copy is delayed by a fixed extra span.
    Delay(Span),
    /// The copy is lost with the given probability (percent, saturating
    /// at 100), drawn from the adversary's own RNG stream.
    Lose(u8),
}

/// One fault clause: an effect applied to copies sent during
/// `[from, until)` from a process in `src` to a process in `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkClause {
    /// First instant (inclusive) at which the clause is active.
    pub from: Time,
    /// First instant at which the clause is no longer active (use
    /// [`Time::MAX`] for a clause that never deactivates).
    pub until: Time,
    /// Matching senders.
    pub src: ProcSet,
    /// Matching receivers.
    pub dst: ProcSet,
    /// Effect on matching copies.
    pub effect: LinkEffect,
}

impl LinkClause {
    fn matches(&self, sent_at: Time, src: usize, dst: usize) -> bool {
        self.from <= sent_at
            && sent_at < self.until
            && self.src.contains(src)
            && self.dst.contains(dst)
    }
}

/// An ordered list of [`LinkClause`]s plus the salt that decorrelates the
/// adversary RNG stream from the engine streams.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFaultScript {
    clauses: Vec<LinkClause>,
    salt: u64,
}

impl LinkFaultScript {
    /// An empty script with the given RNG salt (mixed into the run seed
    /// for the adversary's dedicated stream, so two scripts with
    /// different salts draw decorrelated loss masks).
    #[must_use]
    pub fn new(salt: u64) -> Self {
        LinkFaultScript {
            clauses: Vec::new(),
            salt,
        }
    }

    /// Appends a clause (builder style). Clause order is evaluation
    /// order.
    #[must_use]
    pub fn with_clause(mut self, clause: LinkClause) -> Self {
        self.clauses.push(clause);
        self
    }

    /// Appends a clause.
    pub fn push_clause(&mut self, clause: LinkClause) {
        self.clauses.push(clause);
    }

    /// The clauses, in evaluation order.
    #[must_use]
    pub fn clauses(&self) -> &[LinkClause] {
        &self.clauses
    }

    /// The RNG salt.
    #[must_use]
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Whether the script has no clauses at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The first instant from which no clause is active anymore, or
    /// `None` when some clause never deactivates. An empty script is
    /// quiescent from [`Time::ZERO`].
    #[must_use]
    pub fn quiescent_after(&self) -> Option<Time> {
        let mut end = Time::ZERO;
        for c in &self.clauses {
            if c.until == Time::MAX {
                return None;
            }
            end = end.max(c.until);
        }
        Some(end)
    }

    /// The fate of one copy sent at `sent_at` from `src` to `dst` that
    /// the network already routed to arrive at `base`: the (possibly
    /// deferred) delivery time, or `None` when a clause drops the copy.
    ///
    /// Only [`LinkEffect::Lose`] draws from `rng`, and only for copies
    /// that match its clause and are still live — the draw sequence is a
    /// deterministic function of the run seed and the broadcast order.
    pub fn fate(
        &self,
        sent_at: Time,
        src: usize,
        dst: usize,
        base: Time,
        rng: &mut StdRng,
    ) -> Option<Time> {
        let mut at = base;
        for clause in &self.clauses {
            if !clause.matches(sent_at, src, dst) {
                continue;
            }
            match clause.effect {
                LinkEffect::Drop => return None,
                LinkEffect::DeferUntil(t) => at = at.max(t),
                LinkEffect::Delay(d) => at += d,
                LinkEffect::Lose(percent) => {
                    if percent_roll(rng, percent) {
                        return None;
                    }
                }
            }
        }
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn clause(
        from: u64,
        until: u64,
        src: &[usize],
        dst: &[usize],
        effect: LinkEffect,
    ) -> LinkClause {
        LinkClause {
            from: Time::from_ticks(from),
            until: Time::from_ticks(until),
            src: ProcSet::from_indices(8, src.iter().copied()),
            dst: ProcSet::from_indices(8, dst.iter().copied()),
            effect,
        }
    }

    #[test]
    fn proc_set_membership_and_size() {
        let s = ProcSet::from_indices(100, [0, 63, 64, 99]);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1) && !s.contains(100) && !s.contains(640));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(ProcSet::empty(3).is_empty());
        assert_eq!(ProcSet::all(70).len(), 70);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn proc_set_rejects_out_of_range() {
        let _ = ProcSet::from_indices(4, [4]);
    }

    #[test]
    fn empty_script_is_transparent_and_quiescent() {
        let s = LinkFaultScript::new(0);
        assert!(s.is_empty());
        assert_eq!(s.quiescent_after(), Some(Time::ZERO));
        assert_eq!(
            s.fate(Time::from_ticks(3), 0, 1, Time::from_ticks(5), &mut rng()),
            Some(Time::from_ticks(5))
        );
    }

    #[test]
    fn window_is_half_open_on_send_time() {
        let s = LinkFaultScript::new(0).with_clause(clause(10, 20, &[0], &[1], LinkEffect::Drop));
        let mut r = rng();
        let base = Time::from_ticks(100);
        assert!(s.fate(Time::from_ticks(9), 0, 1, base, &mut r).is_some());
        assert!(s.fate(Time::from_ticks(10), 0, 1, base, &mut r).is_none());
        assert!(s.fate(Time::from_ticks(19), 0, 1, base, &mut r).is_none());
        assert!(s.fate(Time::from_ticks(20), 0, 1, base, &mut r).is_some());
        // Non-matching link or direction: unaffected.
        assert!(s.fate(Time::from_ticks(15), 1, 0, base, &mut r).is_some());
        assert!(s.fate(Time::from_ticks(15), 0, 2, base, &mut r).is_some());
    }

    #[test]
    fn defer_takes_max_of_base_and_heal() {
        let s = LinkFaultScript::new(0).with_clause(clause(
            0,
            50,
            &[0],
            &[1],
            LinkEffect::DeferUntil(Time::from_ticks(50)),
        ));
        let mut r = rng();
        // Base before heal: pushed to heal.
        assert_eq!(
            s.fate(Time::from_ticks(5), 0, 1, Time::from_ticks(7), &mut r),
            Some(Time::from_ticks(50))
        );
        // Base after heal: untouched.
        assert_eq!(
            s.fate(Time::from_ticks(5), 0, 1, Time::from_ticks(60), &mut r),
            Some(Time::from_ticks(60))
        );
    }

    #[test]
    fn clauses_compose_in_order() {
        let s = LinkFaultScript::new(0)
            .with_clause(clause(
                0,
                100,
                &[0],
                &[1],
                LinkEffect::DeferUntil(Time::from_ticks(40)),
            ))
            .with_clause(clause(
                0,
                100,
                &[0],
                &[1],
                LinkEffect::Delay(Span::from_ticks(3)),
            ));
        let mut r = rng();
        assert_eq!(
            s.fate(Time::from_ticks(1), 0, 1, Time::from_ticks(2), &mut r),
            Some(Time::from_ticks(43))
        );
    }

    #[test]
    fn lose_percent_boundaries() {
        let never =
            LinkFaultScript::new(0).with_clause(clause(0, 100, &[0], &[1], LinkEffect::Lose(0)));
        let always =
            LinkFaultScript::new(0).with_clause(clause(0, 100, &[0], &[1], LinkEffect::Lose(100)));
        let mut r = rng();
        for _ in 0..100 {
            assert!(never
                .fate(Time::ZERO, 0, 1, Time::from_ticks(1), &mut r)
                .is_some());
            assert!(always
                .fate(Time::ZERO, 0, 1, Time::from_ticks(1), &mut r)
                .is_none());
        }
    }

    #[test]
    fn quiescence_tracks_latest_window() {
        let s = LinkFaultScript::new(0)
            .with_clause(clause(0, 10, &[0], &[1], LinkEffect::Drop))
            .with_clause(clause(5, 30, &[1], &[0], LinkEffect::Delay(Span::TICK)));
        assert_eq!(s.quiescent_after(), Some(Time::from_ticks(30)));
        let open = s.with_clause(LinkClause {
            from: Time::ZERO,
            until: Time::MAX,
            src: ProcSet::all(2),
            dst: ProcSet::all(2),
            effect: LinkEffect::Lose(1),
        });
        assert_eq!(open.quiescent_after(), None);
    }
}
