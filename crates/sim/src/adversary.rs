//! Link-level and Byzantine adversaries consulted by both engines at
//! copy-routing time.
//!
//! A [`LinkFaultScript`] is the **lowered, engine-facing** form of an
//! adversarial scenario: a list of [`LinkClause`]s, each active during a
//! half-open time window and matching a set of (source, destination)
//! process pairs, that decide the fate of individual message copies
//! *after* the [`NetworkModel`](crate::network::NetworkModel) has routed
//! them. A [`ByzantineScript`] is its **payload-mutation** sibling: a
//! list of [`ByzClause`]s turning selected *senders* corrupt during a
//! window — equivocating to chosen victims, corrupting payloads,
//! replaying stale broadcasts, or selectively suppressing copies. The
//! declarative layer that composes partitions, overlays, churn and
//! Byzantine attacks into these clauses lives in the `homonym-chaos`
//! crate; keeping only the lowered forms here leaves `homonym-sim`
//! dependency-free and the hot path branch-predictable.
//!
//! # Determinism contract
//!
//! Both adversaries preserve the engine's two standing guarantees:
//!
//! * **`(time, seq)` dispatch order** — clauses never reorder copies;
//!   they only drop a copy, move its delivery time forward, or rewrite
//!   its payload in place, and the rewritten copy re-enters the queue
//!   with its original insertion sequence, so ties still break by send
//!   order.
//! * **Legacy hot-path trace equality** — the scripts are evaluated in
//!   [`Engine::do_broadcast`](crate::engine::Engine) code shared by the
//!   calendar-queue and `legacy_hot_path` configurations, and each draws
//!   from a dedicated RNG stream (seeded from the run seed and the
//!   script's [`salt`](LinkFaultScript::salt)), so installing a script
//!   perturbs neither the network nor the per-process streams. A run
//!   with no script — or an empty / never-activating one — is
//!   byte-identical to a run of an engine that never had the hook.
//!
//! [`LinkClause`]s are evaluated **in order** and compose: deferrals and
//! delays accumulate, and a drop is terminal. [`ByzClause`]s do not
//! compose — the **first** active clause matching a broadcast's sender
//! decides the whole broadcast's attack (one corrupt process runs one
//! attack at a time). Whether a clause applies is judged at **send
//! time** (the model routes each copy when it is broadcast), so a window
//! `[from, until)` affects copies *sent* inside it.

use homonym_core::time::{Span, Time};
use rand::rngs::StdRng;
use rand::Rng;

use crate::network::percent_roll;

/// A set of process indices, stored as a bitmap (`n` is small and known
/// when the script is lowered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSet {
    words: Vec<u64>,
}

impl ProcSet {
    /// The empty set over a system of `n` processes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        ProcSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// The full set `{0, …, n-1}`.
    #[must_use]
    pub fn all(n: usize) -> Self {
        let mut s = ProcSet::empty(n);
        for p in 0..n {
            s.insert(p);
        }
        s
    }

    /// Builds a set from process indices (all must be `< n`).
    ///
    /// # Panics
    ///
    /// Panics if some index is `>= n`.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(n: usize, procs: I) -> Self {
        let mut s = ProcSet::empty(n);
        for p in procs {
            assert!(p < n, "process {p} out of range for n={n}");
            s.insert(p);
        }
        s
    }

    fn insert(&mut self, p: usize) {
        self.words[p / 64] |= 1 << (p % 64);
    }

    /// Whether `p` is in the set (indices beyond the universe are not).
    #[must_use]
    pub fn contains(&self, p: usize) -> bool {
        self.words
            .get(p / 64)
            .is_some_and(|w| w & (1 << (p % 64)) != 0)
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// What an active clause does to a matching copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEffect {
    /// The copy is lost.
    Drop,
    /// The copy is held and delivered no earlier than the given instant
    /// (a partition healing at that time releasing its queued traffic).
    /// Copies already routed later than it are unaffected.
    DeferUntil(Time),
    /// The copy is delayed by a fixed extra span.
    Delay(Span),
    /// The copy is lost with the given probability (percent, saturating
    /// at 100), drawn from the adversary's own RNG stream.
    Lose(u8),
}

/// One fault clause: an effect applied to copies sent during
/// `[from, until)` from a process in `src` to a process in `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkClause {
    /// First instant (inclusive) at which the clause is active.
    pub from: Time,
    /// First instant at which the clause is no longer active (use
    /// [`Time::MAX`] for a clause that never deactivates).
    pub until: Time,
    /// Matching senders.
    pub src: ProcSet,
    /// Matching receivers.
    pub dst: ProcSet,
    /// Effect on matching copies.
    pub effect: LinkEffect,
}

impl LinkClause {
    fn matches(&self, sent_at: Time, src: usize, dst: usize) -> bool {
        self.from <= sent_at
            && sent_at < self.until
            && self.src.contains(src)
            && self.dst.contains(dst)
    }
}

/// An ordered list of [`LinkClause`]s plus the salt that decorrelates the
/// adversary RNG stream from the engine streams.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFaultScript {
    clauses: Vec<LinkClause>,
    salt: u64,
}

impl LinkFaultScript {
    /// An empty script with the given RNG salt (mixed into the run seed
    /// for the adversary's dedicated stream, so two scripts with
    /// different salts draw decorrelated loss masks).
    #[must_use]
    pub fn new(salt: u64) -> Self {
        LinkFaultScript {
            clauses: Vec::new(),
            salt,
        }
    }

    /// Appends a clause (builder style). Clause order is evaluation
    /// order.
    #[must_use]
    pub fn with_clause(mut self, clause: LinkClause) -> Self {
        self.clauses.push(clause);
        self
    }

    /// Appends a clause.
    pub fn push_clause(&mut self, clause: LinkClause) {
        self.clauses.push(clause);
    }

    /// The clauses, in evaluation order.
    #[must_use]
    pub fn clauses(&self) -> &[LinkClause] {
        &self.clauses
    }

    /// The RNG salt.
    #[must_use]
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Whether the script has no clauses at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The first instant from which no clause is active anymore, or
    /// `None` when some clause never deactivates. An empty script is
    /// quiescent from [`Time::ZERO`].
    #[must_use]
    pub fn quiescent_after(&self) -> Option<Time> {
        let mut end = Time::ZERO;
        for c in &self.clauses {
            if c.until == Time::MAX {
                return None;
            }
            end = end.max(c.until);
        }
        Some(end)
    }

    /// The fate of one copy sent at `sent_at` from `src` to `dst` that
    /// the network already routed to arrive at `base`: the (possibly
    /// deferred) delivery time, or `None` when a clause drops the copy.
    ///
    /// Only [`LinkEffect::Lose`] draws from `rng`, and only for copies
    /// that match its clause and are still live — the draw sequence is a
    /// deterministic function of the run seed and the broadcast order.
    pub fn fate(
        &self,
        sent_at: Time,
        src: usize,
        dst: usize,
        base: Time,
        rng: &mut StdRng,
    ) -> Option<Time> {
        let mut at = base;
        for clause in &self.clauses {
            if !clause.matches(sent_at, src, dst) {
                continue;
            }
            match clause.effect {
                LinkEffect::Drop => return None,
                LinkEffect::DeferUntil(t) => at = at.max(t),
                LinkEffect::Delay(d) => at += d,
                LinkEffect::Lose(percent) => {
                    if percent_roll(rng, percent) {
                        return None;
                    }
                }
            }
        }
        Some(at)
    }
}

/// SplitMix64-style finalizer used to derive per-copy corruption entropy
/// from a per-broadcast draw — one RNG draw per attacked broadcast, not
/// one per copy, keeps the Byzantine stream's draw count independent of
/// the victim set (and therefore shareable by the divergence planner).
#[must_use]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The attack a corrupt sender mounts while a [`ByzClause`] is active.
///
/// Every variant names a **victim set**: destinations whose copies are
/// perturbed. Destinations outside it receive the sender's honest copy —
/// which is exactly what makes equivocation nasty under homonymy: the
/// corrupt process stays indistinguishable from its honest homonyms to
/// everyone outside the victim set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByzEffect {
    /// Victims receive one consistent *alternative* payload per broadcast
    /// (a fresh deterministic variant drawn from the Byzantine stream),
    /// everyone else the original — the classic equivocation attack.
    Equivocate {
        /// Destinations receiving the alternative payload.
        victims: ProcSet,
    },
    /// Each victim copy is independently corrupted (per-copy entropy
    /// derived from the broadcast's draw via [`mix64`]).
    CorruptPayload {
        /// Destinations receiving corrupted copies.
        victims: ProcSet,
    },
    /// Victim copies are replaced by the sender's **previous** broadcast
    /// payload (the engine keeps a one-deep replay cache per corrupt
    /// sender). Before the sender has broadcast anything, the replayed
    /// copy degenerates to the original.
    Replay {
        /// Destinations receiving stale payloads.
        victims: ProcSet,
    },
    /// Victim copies are silently suppressed — the corrupt sender
    /// "forgets" part of its broadcast.
    SelectiveSend {
        /// Destinations whose copies are suppressed.
        victims: ProcSet,
    },
}

impl ByzEffect {
    /// The effect's victim set.
    #[must_use]
    pub fn victims(&self) -> &ProcSet {
        match self {
            ByzEffect::Equivocate { victims }
            | ByzEffect::CorruptPayload { victims }
            | ByzEffect::Replay { victims }
            | ByzEffect::SelectiveSend { victims } => victims,
        }
    }

    /// Whether planning a broadcast under this effect consumes one draw
    /// from the Byzantine RNG stream (payload-mutating effects do; replay
    /// and suppression are draw-free).
    #[must_use]
    fn draws_entropy(&self) -> bool {
        matches!(
            self,
            ByzEffect::Equivocate { .. } | ByzEffect::CorruptPayload { .. }
        )
    }
}

/// One Byzantine clause: processes in `src` run `effect` on every
/// broadcast they perform during `[from, until)` (use [`Time::MAX`] for a
/// permanently corrupt process, the BFT-model faulty process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByzClause {
    /// First instant (inclusive) at which the clause is active.
    pub from: Time,
    /// First instant at which the clause is no longer active.
    pub until: Time,
    /// The corrupt senders.
    pub src: ProcSet,
    /// The attack they mount.
    pub effect: ByzEffect,
}

impl ByzClause {
    fn matches(&self, sent_at: Time, src: usize) -> bool {
        self.from <= sent_at && sent_at < self.until && self.src.contains(src)
    }
}

/// The resolved attack plan for one broadcast: which clause fired and the
/// broadcast's entropy draw (zero for draw-free effects). Obtain one from
/// [`ByzantineScript::plan`] and query per-copy directives through
/// [`ByzantineScript::directive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByzPlan {
    clause: usize,
    tweak: u64,
}

/// What happens to one routed copy under an active [`ByzPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzDirective {
    /// The copy passes through untouched (destination outside the victim
    /// set, or no plan at all).
    Original,
    /// Deliver the broadcast's consistent alternative payload, derived
    /// from the carried entropy (same value for every victim of one
    /// broadcast).
    Equivocate(u64),
    /// Deliver an independently corrupted payload derived from the
    /// carried per-copy entropy.
    Corrupt(u64),
    /// Deliver the sender's previously cached broadcast payload.
    Replay,
    /// Suppress the copy.
    Suppress,
}

/// An ordered list of [`ByzClause`]s plus the salt decorrelating the
/// Byzantine RNG stream from every other engine stream.
///
/// The script is consulted **once per broadcast** ([`ByzantineScript::plan`],
/// which draws at most one `u64` from the dedicated stream) and then
/// **per routed copy** ([`ByzantineScript::directive`], draw-free), right
/// next to the [`LinkFaultScript`] routing-fate consultation. An empty
/// script — or one whose clauses never match — performs no draws and no
/// payload work, which is what keeps `(time, seq)` dispatch order and
/// `legacy_hot_path` trace equality byte-identical to an engine without
/// the hook.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ByzantineScript {
    clauses: Vec<ByzClause>,
    salt: u64,
}

impl ByzantineScript {
    /// An empty script with the given RNG salt (mixed into the run seed
    /// for the Byzantine stream's dedicated seed).
    #[must_use]
    pub fn new(salt: u64) -> Self {
        ByzantineScript {
            clauses: Vec::new(),
            salt,
        }
    }

    /// Appends a clause (builder style). Clause order is evaluation
    /// order; the first active match wins.
    #[must_use]
    pub fn with_clause(mut self, clause: ByzClause) -> Self {
        self.clauses.push(clause);
        self
    }

    /// Appends a clause.
    pub fn push_clause(&mut self, clause: ByzClause) {
        self.clauses.push(clause);
    }

    /// The clauses, in evaluation order.
    #[must_use]
    pub fn clauses(&self) -> &[ByzClause] {
        &self.clauses
    }

    /// The RNG salt.
    #[must_use]
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Whether the script has no clauses at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The first instant from which no clause is active anymore, or
    /// `None` when some clause never deactivates (a permanently corrupt
    /// process). An empty script is quiescent from [`Time::ZERO`].
    #[must_use]
    pub fn quiescent_after(&self) -> Option<Time> {
        let mut end = Time::ZERO;
        for c in &self.clauses {
            if c.until == Time::MAX {
                return None;
            }
            end = end.max(c.until);
        }
        Some(end)
    }

    /// Whether any clause can draw from the Byzantine RNG stream.
    #[must_use]
    pub fn draws_entropy(&self) -> bool {
        self.clauses.iter().any(|c| c.effect.draws_entropy())
    }

    /// Whether some [`ByzEffect::Replay`] clause names `src` as corrupt
    /// (time-independent — the basis of [`ByzantineScript::replay_source_mask`]).
    #[must_use]
    pub fn records_replay(&self, src: usize) -> bool {
        self.clauses
            .iter()
            .any(|c| matches!(c.effect, ByzEffect::Replay { .. }) && c.src.contains(src))
    }

    /// Whether a broadcast by `src` at `sent_at` must be recorded in the
    /// engine's replay cache: some replay clause names `src` and has not
    /// yet permanently deactivated. Recording starts at tick 0 (so the
    /// first in-window broadcast can replay the last pre-window one) and
    /// continues between windows, but stops after the last window closes
    /// — the cache can never be read again, and cloning every further
    /// payload would be pure hot-path waste.
    #[must_use]
    pub fn records_replay_at(&self, sent_at: Time, src: usize) -> bool {
        self.clauses.iter().any(|c| {
            matches!(c.effect, ByzEffect::Replay { .. }) && c.src.contains(src) && sent_at < c.until
        })
    }

    /// The union bitmap of every replay clause's corrupt-sender set —
    /// exactly the senders [`ByzantineScript::records_replay`] answers
    /// `true` for, with trailing zero words trimmed so masks built over
    /// different universe sizes compare structurally. The divergence
    /// planner forfeits sharing between scripts whose masks differ:
    /// their engines fill the replay cache differently *from tick 0*,
    /// so their prefixes are not interchangeable.
    #[must_use]
    pub fn replay_source_mask(&self) -> Vec<u64> {
        let mut mask: Vec<u64> = Vec::new();
        for c in &self.clauses {
            if matches!(c.effect, ByzEffect::Replay { .. }) {
                if mask.len() < c.src.words.len() {
                    mask.resize(c.src.words.len(), 0);
                }
                for (m, w) in mask.iter_mut().zip(&c.src.words) {
                    *m |= w;
                }
            }
        }
        while mask.last() == Some(&0) {
            mask.pop();
        }
        mask
    }

    /// Plans one broadcast performed by `src` at `sent_at`: the first
    /// active clause naming `src` as corrupt, with one entropy draw from
    /// `rng` iff the effect mutates payloads. `None` (the common case)
    /// means the broadcast is honest and costs nothing.
    pub fn plan(&self, sent_at: Time, src: usize, rng: &mut StdRng) -> Option<ByzPlan> {
        let (i, clause) = self
            .clauses
            .iter()
            .enumerate()
            .find(|(_, c)| c.matches(sent_at, src))?;
        let tweak = if clause.effect.draws_entropy() {
            rng.gen::<u64>()
        } else {
            0
        };
        Some(ByzPlan { clause: i, tweak })
    }

    /// The directive for the copy routed to `dst` under `plan`
    /// (draw-free; per-copy corruption entropy is derived from the plan's
    /// broadcast draw via [`mix64`]).
    #[must_use]
    pub fn directive(&self, plan: &ByzPlan, dst: usize) -> ByzDirective {
        let clause = &self.clauses[plan.clause];
        if !clause.effect.victims().contains(dst) {
            return ByzDirective::Original;
        }
        match clause.effect {
            ByzEffect::Equivocate { .. } => ByzDirective::Equivocate(plan.tweak),
            ByzEffect::CorruptPayload { .. } => {
                ByzDirective::Corrupt(mix64(plan.tweak, dst as u64))
            }
            ByzEffect::Replay { .. } => ByzDirective::Replay,
            ByzEffect::SelectiveSend { .. } => ByzDirective::Suppress,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn clause(
        from: u64,
        until: u64,
        src: &[usize],
        dst: &[usize],
        effect: LinkEffect,
    ) -> LinkClause {
        LinkClause {
            from: Time::from_ticks(from),
            until: Time::from_ticks(until),
            src: ProcSet::from_indices(8, src.iter().copied()),
            dst: ProcSet::from_indices(8, dst.iter().copied()),
            effect,
        }
    }

    #[test]
    fn proc_set_membership_and_size() {
        let s = ProcSet::from_indices(100, [0, 63, 64, 99]);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1) && !s.contains(100) && !s.contains(640));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(ProcSet::empty(3).is_empty());
        assert_eq!(ProcSet::all(70).len(), 70);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn proc_set_rejects_out_of_range() {
        let _ = ProcSet::from_indices(4, [4]);
    }

    #[test]
    fn empty_script_is_transparent_and_quiescent() {
        let s = LinkFaultScript::new(0);
        assert!(s.is_empty());
        assert_eq!(s.quiescent_after(), Some(Time::ZERO));
        assert_eq!(
            s.fate(Time::from_ticks(3), 0, 1, Time::from_ticks(5), &mut rng()),
            Some(Time::from_ticks(5))
        );
    }

    #[test]
    fn window_is_half_open_on_send_time() {
        let s = LinkFaultScript::new(0).with_clause(clause(10, 20, &[0], &[1], LinkEffect::Drop));
        let mut r = rng();
        let base = Time::from_ticks(100);
        assert!(s.fate(Time::from_ticks(9), 0, 1, base, &mut r).is_some());
        assert!(s.fate(Time::from_ticks(10), 0, 1, base, &mut r).is_none());
        assert!(s.fate(Time::from_ticks(19), 0, 1, base, &mut r).is_none());
        assert!(s.fate(Time::from_ticks(20), 0, 1, base, &mut r).is_some());
        // Non-matching link or direction: unaffected.
        assert!(s.fate(Time::from_ticks(15), 1, 0, base, &mut r).is_some());
        assert!(s.fate(Time::from_ticks(15), 0, 2, base, &mut r).is_some());
    }

    #[test]
    fn defer_takes_max_of_base_and_heal() {
        let s = LinkFaultScript::new(0).with_clause(clause(
            0,
            50,
            &[0],
            &[1],
            LinkEffect::DeferUntil(Time::from_ticks(50)),
        ));
        let mut r = rng();
        // Base before heal: pushed to heal.
        assert_eq!(
            s.fate(Time::from_ticks(5), 0, 1, Time::from_ticks(7), &mut r),
            Some(Time::from_ticks(50))
        );
        // Base after heal: untouched.
        assert_eq!(
            s.fate(Time::from_ticks(5), 0, 1, Time::from_ticks(60), &mut r),
            Some(Time::from_ticks(60))
        );
    }

    #[test]
    fn clauses_compose_in_order() {
        let s = LinkFaultScript::new(0)
            .with_clause(clause(
                0,
                100,
                &[0],
                &[1],
                LinkEffect::DeferUntil(Time::from_ticks(40)),
            ))
            .with_clause(clause(
                0,
                100,
                &[0],
                &[1],
                LinkEffect::Delay(Span::from_ticks(3)),
            ));
        let mut r = rng();
        assert_eq!(
            s.fate(Time::from_ticks(1), 0, 1, Time::from_ticks(2), &mut r),
            Some(Time::from_ticks(43))
        );
    }

    #[test]
    fn lose_percent_boundaries() {
        let never =
            LinkFaultScript::new(0).with_clause(clause(0, 100, &[0], &[1], LinkEffect::Lose(0)));
        let always =
            LinkFaultScript::new(0).with_clause(clause(0, 100, &[0], &[1], LinkEffect::Lose(100)));
        let mut r = rng();
        for _ in 0..100 {
            assert!(never
                .fate(Time::ZERO, 0, 1, Time::from_ticks(1), &mut r)
                .is_some());
            assert!(always
                .fate(Time::ZERO, 0, 1, Time::from_ticks(1), &mut r)
                .is_none());
        }
    }

    fn byz_clause(from: u64, until: u64, src: &[usize], effect: ByzEffect) -> ByzClause {
        ByzClause {
            from: Time::from_ticks(from),
            until: Time::from_ticks(until),
            src: ProcSet::from_indices(8, src.iter().copied()),
            effect,
        }
    }

    #[test]
    fn byzantine_plan_matches_first_active_clause_only() {
        let victims = |p: &[usize]| ProcSet::from_indices(8, p.iter().copied());
        let s = ByzantineScript::new(1)
            .with_clause(byz_clause(
                10,
                20,
                &[0],
                ByzEffect::SelectiveSend {
                    victims: victims(&[1, 2]),
                },
            ))
            .with_clause(byz_clause(
                0,
                100,
                &[0],
                ByzEffect::Equivocate {
                    victims: victims(&[3]),
                },
            ));
        let mut r = rng();
        // Outside every window / wrong sender: no plan, no draw.
        assert!(s.plan(Time::from_ticks(200), 0, &mut r).is_none());
        assert!(s.plan(Time::from_ticks(15), 1, &mut r).is_none());
        // In both windows: the first clause wins (draw-free suppression).
        let p = s.plan(Time::from_ticks(15), 0, &mut r).expect("active");
        assert_eq!(s.directive(&p, 1), ByzDirective::Suppress);
        assert_eq!(s.directive(&p, 3), ByzDirective::Original);
        // After the first window: the equivocation clause (one draw).
        let p = s.plan(Time::from_ticks(50), 0, &mut r).expect("active");
        assert!(matches!(s.directive(&p, 3), ByzDirective::Equivocate(_)));
        assert_eq!(s.directive(&p, 1), ByzDirective::Original);
    }

    #[test]
    fn byzantine_corruption_entropy_is_per_copy_but_draws_once() {
        let s = ByzantineScript::new(0).with_clause(byz_clause(
            0,
            10,
            &[0],
            ByzEffect::CorruptPayload {
                victims: ProcSet::all(8),
            },
        ));
        let mut a = rng();
        let mut b = rng();
        let p1 = s.plan(Time::ZERO, 0, &mut a).expect("active");
        let p2 = s.plan(Time::ZERO, 0, &mut b).expect("active");
        assert_eq!(p1, p2, "same stream, same draw");
        let (ByzDirective::Corrupt(e1), ByzDirective::Corrupt(e2)) =
            (s.directive(&p1, 1), s.directive(&p1, 2))
        else {
            panic!("victims must be corrupted");
        };
        assert_ne!(e1, e2, "per-copy entropy must differ across victims");
        // The plan drew exactly once: both streams stay aligned.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn byzantine_quiescence_and_bookkeeping() {
        let victims = ProcSet::from_indices(8, [1]);
        let s = ByzantineScript::new(3)
            .with_clause(byz_clause(
                5,
                30,
                &[2],
                ByzEffect::Replay {
                    victims: victims.clone(),
                },
            ))
            .with_clause(byz_clause(
                0,
                12,
                &[4],
                ByzEffect::SelectiveSend { victims },
            ));
        assert_eq!(s.quiescent_after(), Some(Time::from_ticks(30)));
        assert!(!s.draws_entropy(), "replay and suppression are draw-free");
        assert!(s.records_replay(2));
        assert!(!s.records_replay(4));
        let open = s.clone().with_clause(ByzClause {
            from: Time::ZERO,
            until: Time::MAX,
            src: ProcSet::from_indices(8, [0]),
            effect: ByzEffect::Equivocate {
                victims: ProcSet::all(8),
            },
        });
        assert_eq!(open.quiescent_after(), None);
        assert!(open.draws_entropy());
        assert!(ByzantineScript::new(9).is_empty());
        assert_eq!(ByzantineScript::new(9).quiescent_after(), Some(Time::ZERO));
    }

    #[test]
    fn quiescence_tracks_latest_window() {
        let s = LinkFaultScript::new(0)
            .with_clause(clause(0, 10, &[0], &[1], LinkEffect::Drop))
            .with_clause(clause(5, 30, &[1], &[0], LinkEffect::Delay(Span::TICK)));
        assert_eq!(s.quiescent_after(), Some(Time::from_ticks(30)));
        let open = s.with_clause(LinkClause {
            from: Time::ZERO,
            until: Time::MAX,
            src: ProcSet::all(2),
            dst: ProcSet::all(2),
            effect: LinkEffect::Lose(1),
        });
        assert_eq!(open.quiescent_after(), None);
    }
}
