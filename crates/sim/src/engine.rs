//! Deterministic discrete-event engine for `HAS`/`HPS` runs.
//!
//! The engine owns `n` processes built from a factory (all running the same
//! program, per the model), a [`NetworkModel`], and a [`FailureSchedule`].
//! It delivers three kinds of callbacks — start, message, timer — in a
//! deterministic order (time, then insertion sequence) and records
//! everything the property checkers and experiments need: per-process
//! output histories, decisions, and message metrics.
//!
//! ## Hot paths
//!
//! The engine runs in one of two configurations, which dispatch the
//! **byte-identical** `(time, seq)` event sequence for a given config and
//! seed (asserted by `tests/trace_determinism.rs` and the batched-path
//! proptests):
//!
//! * the **batched** path (default): the queue drains a whole tick per
//!   call (see `queue.rs`), maximal same-`(time, dest)` runs of message
//!   deliveries are handed to the process through the slice-based
//!   [`Process::on_messages`] API (one slot lookup, one crash check and
//!   one action-sink per run), and broadcasts sample all per-copy
//!   latencies through [`NetworkModel::route_each`] (the model match,
//!   GST comparison and sampler setup hoisted out of the copy loop);
//! * the **legacy** path ([`SimConfig::legacy_hot_path`]): the per-event
//!   pop / per-copy sampling shape this engine had before the batching
//!   overhaul, kept as the benchmark baseline and as the differential
//!   oracle the determinism tests compare against.
//!
//! ## Crash semantics
//!
//! A process with crash time `ct` takes no step at or after `ct`. Following
//! the model ("if a process crashes while broadcasting a message, the
//! message is received by an arbitrary subset of processes"), a broadcast
//! performed at the process's **final step** (`now == ct - 1`) delivers
//! each copy independently with probability ½ when
//! [`SimConfig::partial_broadcast_on_crash`] is set. Final-step broadcasts
//! interleave the mask draws with the routing draws per copy, so both hot
//! paths take the per-copy sampling route there.

use std::collections::BTreeMap;
use std::sync::Arc;

use homonym_core::failure::FailureSchedule;
use homonym_core::fork::ForkSpace;
use homonym_core::identity::IdentityAssignment;
use homonym_core::properties::{ConsensusOutcome, History};
use homonym_core::time::{Span, Time};
use homonym_obs::{ObsKind, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adversary::{ByzDirective, ByzPlan, ByzantineScript, LinkFaultScript};
use crate::network::NetworkModel;
use crate::process::{Action, ActionSink, BatchFeed, Process, TimerTag};
use crate::queue::CalendarQueue;
use crate::snapshot::{EngineSnapshot, ForkProcess};
use crate::trace::{Trace, TraceEvent};

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The next event lies beyond the requested deadline.
    Deadline,
    /// No events remain (all processes idle, no timers pending).
    Quiescent,
    /// The caller-supplied condition became true.
    ConditionMet,
    /// The configured event-count safety valve tripped.
    EventLimit,
}

/// Message and event counters for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of `broadcast` invocations.
    pub broadcasts: u64,
    /// Point-to-point copies placed on links (`broadcasts × n`, minus
    /// copies dropped by a crashing sender).
    pub copies_sent: u64,
    /// Copies actually delivered to an alive, non-halted process.
    pub copies_delivered: u64,
    /// Copies lost by the network (pre-GST in `HPS`).
    pub copies_lost: u64,
    /// Copies dropped by an installed [`LinkFaultScript`] (partitions,
    /// adversarial loss). Zero when no adversary is installed.
    pub copies_blocked: u64,
    /// Copies whose payload an installed [`ByzantineScript`] rewrote
    /// (equivocation, corruption, replay). Zero without a script.
    pub copies_forged: u64,
    /// Copies an installed [`ByzantineScript`] suppressed (selective
    /// sending). Zero without a script.
    pub copies_suppressed: u64,
    /// Copies a process's admission window (e.g. a consensus
    /// `WindowLedger`) detected as over-cap and discarded, reported
    /// through [`ActionSink::note_discard`]. Zero when the running
    /// processes report no admission policy.
    pub copies_discarded: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// Total callbacks dispatched.
    pub events: u64,
    /// `broadcast` invocations per message class, counted **whenever a
    /// classifier is installed** via [`Engine::set_classifier`] — with or
    /// without a trace attached (the classifier alone enables this
    /// aggregate; the same labels also annotate [`TraceEvent`]s when a
    /// trace *is* recording). Empty when no classifier is installed.
    pub by_class: BTreeMap<&'static str, u64>,
}

/// Static configuration of a simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Identity of each process.
    pub assign: IdentityAssignment,
    /// Ground-truth crash pattern.
    pub sched: FailureSchedule,
    /// Timing model.
    pub network: NetworkModel,
    /// Seed for all engine randomness (network sampling, per-process RNGs,
    /// crash-broadcast masks). Same config + same seed ⇒ identical run.
    pub seed: u64,
    /// Deliver a random subset of the copies of a broadcast performed at
    /// the sender's final step before crashing.
    pub partial_broadcast_on_crash: bool,
    /// Safety valve: maximum callbacks before the run stops with
    /// [`StopReason::EventLimit`].
    pub max_events: u64,
    /// Run on the pre-batching hot path: per-event queue pops, one
    /// network-model match and RNG route per copy, one callback + action
    /// sink per delivered message. Dispatch order and RNG streams are
    /// identical to the batched default — this switch exists so the
    /// throughput benchmark can measure the batching speedup and the
    /// determinism tests can assert trace equality between the two
    /// implementations.
    pub legacy_hot_path: bool,
    /// Adversarial link faults consulted per copy after the network
    /// routes it (see [`crate::adversary`]). `None` leaves every RNG
    /// stream and the dispatch order byte-identical to an engine without
    /// the hook; the same script yields the same run on both hot paths.
    pub adversary: Option<Arc<LinkFaultScript>>,
    /// Byzantine payload-mutation script consulted per broadcast (one
    /// plan, at most one RNG draw from its dedicated stream) and per
    /// routed copy, right next to the link-fault hook. `None` — or an
    /// empty/never-matching script — leaves every stream and the
    /// dispatch order byte-identical to an engine without the hook.
    /// Mutation semantics come from [`Process::mutate_payload`].
    pub byzantine: Option<Arc<ByzantineScript>>,
}

impl SimConfig {
    /// A configuration with the given topology and model, seed 0, partial
    /// crash broadcasts enabled, and a 50M-event valve.
    ///
    /// # Panics
    ///
    /// Panics if the assignment and schedule disagree on `n`.
    #[must_use]
    pub fn new(assign: IdentityAssignment, sched: FailureSchedule, network: NetworkModel) -> Self {
        assert_eq!(assign.n(), sched.n(), "assignment/schedule size mismatch");
        SimConfig {
            assign,
            sched,
            network,
            seed: 0,
            partial_broadcast_on_crash: true,
            max_events: 50_000_000,
            legacy_hot_path: false,
            adversary: None,
            byzantine: None,
        }
    }

    /// Sets the seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the pre-batching hot path (builder style); see
    /// [`SimConfig::legacy_hot_path`].
    #[must_use]
    pub fn with_legacy_hot_path(mut self, legacy: bool) -> Self {
        self.legacy_hot_path = legacy;
        self
    }

    /// Installs an adversarial link-fault script (builder style); see
    /// [`SimConfig::adversary`].
    #[must_use]
    pub fn with_adversary(mut self, script: LinkFaultScript) -> Self {
        self.adversary = Some(Arc::new(script));
        self
    }

    /// Installs a Byzantine payload-mutation script (builder style); see
    /// [`SimConfig::byzantine`].
    #[must_use]
    pub fn with_byzantine(mut self, script: ByzantineScript) -> Self {
        self.byzantine = Some(Arc::new(script));
        self
    }
}

/// Cloning (snapshot support) keeps `DeliverShared` copies `Arc`-shared:
/// a snapshotted broadcast costs one refcount bump per queued copy,
/// never a deep payload copy.
#[derive(Clone)]
pub(crate) enum Event<M> {
    Start {
        dst: usize,
    },
    /// Delivery of a payload stored inline: taken for payloads that own
    /// no heap state and fit a cache line (see [`plain_payload`]), which
    /// are cheaper to copy per destination than to share.
    Deliver {
        dst: usize,
        msg: M,
    },
    /// Delivery of an [`Arc`]-shared payload: every copy of a broadcast
    /// shares one heap allocation; the clone needed to hand the process
    /// an owned message happens at dispatch (and the last copy is
    /// unwrapped, not cloned), so copies routed to crashed or halted
    /// processes never pay for a deep clone.
    DeliverShared {
        dst: usize,
        msg: Arc<M>,
    },
    Timer {
        dst: usize,
        tag: TimerTag,
    },
}

impl<M> Event<M> {
    /// The destination of a *message* event (`None` for start/timer).
    fn message_dst(&self) -> Option<usize> {
        match self {
            Event::Deliver { dst, .. } | Event::DeliverShared { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Takes the message payload out of a delivery event.
    fn into_msg(self) -> M
    where
        M: Clone,
    {
        match self {
            Event::Deliver { msg, .. } => msg,
            Event::DeliverShared { msg, .. } => {
                // Last copy standing is moved out; earlier copies clone.
                Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone())
            }
            _ => unreachable!("into_msg on a non-message event"),
        }
    }
}

/// Whether the event at `pos` of the current tick is a message delivery
/// to `dst` (the same-destination run continuation test of the batched
/// run loop).
#[inline]
fn run_continues<M>(batch: &[(u64, Option<Event<M>>)], pos: usize, dst: usize) -> bool {
    batch
        .get(pos)
        .and_then(|(_, e)| e.as_ref())
        .is_some_and(|e| e.message_dst() == Some(dst))
}

/// Whether `M` is delivered by inline copy rather than `Arc` sharing:
/// true for payloads that own no heap state (nothing to drop) and are at
/// most a cache line wide. Resolves to a compile-time constant per
/// message type.
fn plain_payload<M>() -> bool {
    !std::mem::needs_drop::<M>() && std::mem::size_of::<M>() <= 64
}

/// The resolved Byzantine context of one broadcast: the script, the
/// matched plan, and the cached payload a replay directive substitutes.
/// Built once per attacked broadcast in `do_broadcast`, consumed per
/// routed copy.
struct ByzCtx<M> {
    script: Arc<ByzantineScript>,
    plan: ByzPlan,
    replayed: Option<M>,
}

/// The Byzantine directive for one routed copy ([`ByzDirective::Original`]
/// when no plan matched this broadcast — the zero-cost common case).
#[inline]
fn byz_directive<M>(ctx: &Option<ByzCtx<M>>, dst: usize) -> ByzDirective {
    ctx.as_ref()
        .map_or(ByzDirective::Original, |c| c.script.directive(&c.plan, dst))
}

/// Applies the process's payload-mutation hook, failing loudly when the
/// program under attack defines no corruption semantics.
fn forge<P: Process>(original: &P::Msg, entropy: u64) -> P::Msg {
    P::mutate_payload(original, entropy).unwrap_or_else(|| {
        panic!(
            "a Byzantine clause matched a broadcast of {}, but its process does \
             not override Process::mutate_payload; implement the hook for the \
             program under attack",
            std::any::type_name::<P::Msg>()
        )
    })
}

pub(crate) struct ProcSlot<P: Process> {
    pub(crate) proc: P,
    pub(crate) rng: StdRng,
    /// Cached `id(p)` — avoids an assignment-table chase per callback.
    pub(crate) id: homonym_core::Identity,
}

/// Recycled engine allocations, so a multi-seed sweep can run thousands
/// of seeds through one warm set of buffers instead of building a fresh
/// world per seed: the calendar queue's bucket ring, the history and
/// decision tables, the tick batch, and every scratch buffer survive
/// from run to run with their capacities intact.
///
/// Obtain one from [`Engine::into_arena`] after a run and hand it to
/// [`Engine::new_in`] for the next; see
/// [`parallel_seed_sweep_with`](crate::sweep::parallel_seed_sweep_with)
/// for the per-worker plumbing.
pub struct EngineArena<P: Process> {
    queue: CalendarQueue<Event<P::Msg>>,
    procs: Vec<ProcSlot<P>>,
    dead_from: Vec<u64>,
    histories: Vec<History<P::Output>>,
    decisions: Vec<Option<(Time, u64)>>,
    tick_batch: Vec<(u64, Option<Event<P::Msg>>)>,
    scratch_actions: Vec<Action<P::Msg, P::Output>>,
    scratch_cuts: Vec<(usize, &'static str, Option<u64>)>,
    feed: BatchFeed<P::Msg>,
    byz_replay: Vec<Option<P::Msg>>,
}

impl<P: Process> EngineArena<P> {
    /// An empty arena (all buffers start cold).
    #[must_use]
    pub fn new() -> Self {
        EngineArena {
            queue: CalendarQueue::new(),
            procs: Vec::new(),
            dead_from: Vec::new(),
            histories: Vec::new(),
            decisions: Vec::new(),
            tick_batch: Vec::new(),
            scratch_actions: Vec::new(),
            scratch_cuts: Vec::new(),
            feed: BatchFeed::new(),
            byz_replay: Vec::new(),
        }
    }
}

impl<P: Process> Default for EngineArena<P> {
    fn default() -> Self {
        EngineArena::new()
    }
}

/// Fn-pointer round extractor installed with
/// [`Engine::set_round_extractor`]: maps a protocol message to its
/// originating round, or `None` for round-less traffic.
pub type RoundExtractor<M> = fn(&M) -> Option<u64>;

/// The discrete-event engine. See the module docs for semantics.
pub struct Engine<P: Process> {
    config: SimConfig,
    procs: Vec<ProcSlot<P>>,
    /// Dense per-process liveness horizon: the first tick at which the
    /// process takes no more steps — its cached crash time, `0` once it
    /// halts, `u64::MAX` otherwise. One table, one load, one compare for
    /// the per-event and per-copy liveness checks, kept out of the
    /// (large) process slots so it stays cache-resident.
    dead_from: Vec<u64>,
    queue: CalendarQueue<Event<P::Msg>>,
    seq: u64,
    now: Time,
    net_rng: StdRng,
    /// Dedicated stream for adversary draws so installing a script does
    /// not perturb the network or per-process streams.
    adv_rng: StdRng,
    /// Dedicated stream for Byzantine draws (one per attacked broadcast),
    /// decorrelated from every other stream for the same reason.
    byz_rng: StdRng,
    /// One-deep replay cache per process: the last payload each
    /// [`ByzEffect::Replay`](crate::adversary::ByzEffect)-listed sender
    /// broadcast, substituted into victim copies while a replay clause is
    /// active. Only recorded for senders a replay clause names.
    byz_replay: Vec<Option<P::Msg>>,
    metrics: Metrics,
    histories: Vec<History<P::Output>>,
    decisions: Vec<Option<(Time, u64)>>,
    classifier: Option<fn(&P::Msg) -> &'static str>,
    /// Round extractor annotating trace events with the originating
    /// protocol round (see [`Engine::set_round_extractor`]).
    rounder: Option<RoundExtractor<P::Msg>>,
    trace: Option<Trace>,
    /// Structured observability recorder (see [`Engine::enable_recorder`]);
    /// `None` keeps every `observe` hook a dead branch.
    recorder: Option<Recorder>,
    /// Reused per-callback action buffer: one allocation per engine, not
    /// one per dispatched event.
    scratch_actions: Vec<Action<P::Msg, P::Output>>,
    /// Reused copy of a batch's action cut points (see `flush_batch`).
    scratch_cuts: Vec<(usize, &'static str, Option<u64>)>,
    /// The current tick's events (batched path only): the earliest
    /// bucket's storage, swapped out of the queue wholesale and consumed
    /// front-to-back through `tick_pos`. Cleared, it becomes the
    /// replacement storage for the next tick, so bucket capacities
    /// circulate instead of reallocating.
    tick_batch: Vec<(u64, Option<Event<P::Msg>>)>,
    /// Index of the next unconsumed `tick_batch` slot.
    tick_pos: usize,
    /// Reused message-batch feed handed to [`Process::on_messages`].
    feed: BatchFeed<P::Msg>,
    /// Correct processes that have not decided yet, kept incrementally so
    /// `all_correct_decided` — polled after every event by the consensus
    /// run loops — is O(1) instead of an allocation plus an O(n) scan.
    undecided_correct: usize,
}

impl<P: Process> Engine<P> {
    /// Builds an engine, constructing process `p` via `factory(p, id(p))`.
    ///
    /// The factory receives the process **index** purely as a
    /// formalization-level hook (to wire proposals or ground-truth oracles);
    /// algorithm state must only depend on the identifier.
    pub fn new(config: SimConfig, factory: impl FnMut(usize, homonym_core::Identity) -> P) -> Self {
        Engine::new_in(config, factory, EngineArena::new())
    }

    /// Builds an engine inside recycled allocations (see [`EngineArena`]).
    /// Behaviour is identical to [`Engine::new`]; only the allocation
    /// traffic differs.
    pub fn new_in(
        config: SimConfig,
        mut factory: impl FnMut(usize, homonym_core::Identity) -> P,
        arena: EngineArena<P>,
    ) -> Self {
        let EngineArena {
            mut queue,
            mut procs,
            mut dead_from,
            mut histories,
            mut decisions,
            mut tick_batch,
            scratch_actions,
            scratch_cuts,
            feed,
            mut byz_replay,
        } = arena;
        let n = config.assign.n();
        procs.clear();
        procs.reserve(n);
        for p in 0..n {
            procs.push(ProcSlot {
                proc: factory(p, config.assign.id_of(p)),
                // Decorrelate per-process streams from the engine stream.
                rng: StdRng::seed_from_u64(
                    config.seed ^ (0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(p as u64 + 1)),
                ),
                id: config.assign.id_of(p),
            });
        }
        dead_from.clear();
        dead_from
            .extend((0..n).map(|p| config.sched.crash_time(p).map_or(u64::MAX, |c| c.ticks())));
        let net_rng = StdRng::seed_from_u64(config.seed);
        let adv_salt = config.adversary.as_ref().map_or(0, |s| s.salt());
        let adv_rng = StdRng::seed_from_u64(config.seed ^ adv_salt ^ 0xD1B5_4A32_D192_ED03_u64);
        let byz_salt = config.byzantine.as_ref().map_or(0, |s| s.salt());
        let byz_rng = StdRng::seed_from_u64(config.seed ^ byz_salt ^ 0xA076_1D64_78BD_642F_u64);
        byz_replay.clear();
        byz_replay.resize_with(n, || None);
        queue.reset();
        for p in 0..n {
            queue.push(Time::ZERO, p as u64, Event::Start { dst: p });
        }
        // Recycle history/decision rows, keeping their capacities.
        for h in &mut histories {
            h.clear();
        }
        histories.resize_with(n, Vec::new);
        decisions.clear();
        decisions.resize(n, None);
        tick_batch.clear();
        Engine {
            seq: n as u64,
            now: Time::ZERO,
            dead_from,
            net_rng,
            adv_rng,
            byz_rng,
            byz_replay,
            metrics: Metrics::default(),
            histories,
            decisions,
            classifier: None,
            rounder: None,
            trace: None,
            recorder: None,
            scratch_actions,
            scratch_cuts,
            tick_batch,
            tick_pos: 0,
            feed,
            undecided_correct: config.sched.num_correct(),
            config,
            procs,
            queue,
        }
    }

    /// Tears the engine down into its reusable allocations, for the next
    /// [`Engine::new_in`] of a sweep. Process state is dropped; buffers
    /// keep their capacity.
    #[must_use]
    pub fn into_arena(mut self) -> EngineArena<P> {
        self.procs.clear();
        self.queue.reset();
        self.tick_batch.clear();
        self.scratch_actions.clear();
        self.scratch_cuts.clear();
        self.feed.recycle();
        self.byz_replay.clear();
        EngineArena {
            queue: self.queue,
            procs: self.procs,
            dead_from: self.dead_from,
            histories: self.histories,
            decisions: self.decisions,
            tick_batch: self.tick_batch,
            scratch_actions: self.scratch_actions,
            scratch_cuts: self.scratch_cuts,
            feed: self.feed,
            byz_replay: self.byz_replay,
        }
    }

    /// Installs a message classifier used to populate
    /// [`Metrics::by_class`] (e.g. tagging `POLLING` vs `P_REPLY`) and to
    /// label trace events.
    pub fn set_classifier(&mut self, f: fn(&P::Msg) -> &'static str) {
        self.classifier = Some(f);
    }

    /// Installs a round extractor used to annotate
    /// [`TraceEvent::Broadcast`]/[`TraceEvent::Delivered`] with the
    /// originating protocol round. Only consulted while a trace is
    /// recording, so the extra call stays off the untraced hot path.
    pub fn set_round_extractor(&mut self, f: RoundExtractor<P::Msg>) {
        self.rounder = Some(f);
    }

    /// Starts recording a [`Trace`] keeping at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::with_capacity(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Attaches a structured-observability [`Recorder`] keeping at most
    /// `capacity` events. While attached, process-level `observe` hooks
    /// (certificates, locks, detector epochs, …) and engine-level events
    /// (decisions, attack firings, blocked copies) are recorded; absent,
    /// every hook is a dead branch and dispatch is byte-identical to an
    /// uninstrumented run (asserted by `tests/obs_props.rs`).
    pub fn enable_recorder(&mut self, capacity: usize) {
        self.recorder = Some(Recorder::new(capacity));
    }

    /// The attached recorder, if observability was enabled.
    #[must_use]
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// Detaches and returns the recorder (e.g. to feed
    /// [`homonym_obs::RunStats`] after a run).
    #[must_use]
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.recorder.take()
    }

    fn class_of(&self, msg: &P::Msg) -> &'static str {
        self.classifier.map_or("msg", |f| f(msg))
    }

    fn round_of(&self, msg: &P::Msg) -> Option<u64> {
        self.rounder.and_then(|f| f(msg))
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.config.assign.n()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The run's metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of events currently waiting (queued plus the undispatched
    /// remainder of the current tick batch; diagnostics and load
    /// instrumentation, not part of the model).
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len() + (self.tick_batch.len() - self.tick_pos)
    }

    /// Recorded output histories, indexed by process.
    #[must_use]
    pub fn histories(&self) -> &[History<P::Output>] {
        &self.histories
    }

    /// Recorded decisions, indexed by process.
    #[must_use]
    pub fn decisions(&self) -> &[Option<(Time, u64)>] {
        &self.decisions
    }

    /// Read access to a process's state (for tests and experiments).
    #[must_use]
    pub fn process(&self, p: usize) -> &P {
        &self.procs[p].proc
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Whether every correct process has decided (O(1): maintained
    /// incrementally as decisions are recorded).
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.undecided_correct == 0
    }

    /// Packages decisions into a [`ConsensusOutcome`] for checking.
    #[must_use]
    pub fn outcome(&self, proposals: Vec<u64>) -> ConsensusOutcome {
        ConsensusOutcome {
            proposals,
            decisions: self.decisions.clone(),
        }
    }

    /// Runs until the deadline (inclusive) or quiescence.
    pub fn run_until(&mut self, deadline: Time) -> StopReason {
        self.run_with(deadline, |_| false)
    }

    /// Runs until every correct process has decided, the deadline passes,
    /// or the system goes quiescent.
    pub fn run_until_all_correct_decided(&mut self, deadline: Time) -> StopReason {
        self.run_with(deadline, Engine::all_correct_decided)
    }

    /// Runs until `cond(self)` holds, the deadline passes, or the system
    /// goes quiescent.
    ///
    /// The condition is evaluated after every dispatched callback on the
    /// legacy path and after every dispatched *batch* on the batched path
    /// (a batch spans one same-`(time, dest)` run). The two paths can
    /// only be told apart by a condition that becomes true mid-batch
    /// while the receiving process keeps consuming — the in-tree
    /// consumers all halt when they decide, which ends the batch at the
    /// same message either way.
    pub fn run_with(&mut self, deadline: Time, mut cond: impl FnMut(&Self) -> bool) -> StopReason {
        if cond(self) {
            return StopReason::ConditionMet;
        }
        if self.config.legacy_hot_path {
            self.run_with_legacy(deadline, cond)
        } else {
            self.run_with_batched(deadline, cond)
        }
    }

    /// The pre-batching run loop: one queue pop, one callback, one
    /// condition check per event.
    fn run_with_legacy(
        &mut self,
        deadline: Time,
        mut cond: impl FnMut(&Self) -> bool,
    ) -> StopReason {
        loop {
            if self.metrics.events >= self.config.max_events {
                // Quiescence and the deadline take precedence over the
                // valve, matching the pre-fusion check order.
                match self.queue.peek_time() {
                    None => {
                        self.now = self.now.max(deadline);
                        return StopReason::Quiescent;
                    }
                    Some(t) if t > deadline => {
                        self.now = deadline;
                        return StopReason::Deadline;
                    }
                    Some(_) => return StopReason::EventLimit,
                }
            }
            let Some((t, _, ev)) = self.queue.pop_at_or_before(deadline) else {
                if self.queue.peek_time().is_some() {
                    // Deadline: the next event lies beyond the window.
                    self.now = deadline;
                    return StopReason::Deadline;
                }
                // Quiescent: clock jumps to the deadline so final history
                // timestamps reflect the full observation window.
                self.now = self.now.max(deadline);
                return StopReason::Quiescent;
            };
            self.now = t;
            self.dispatch(ev);
            if cond(self) {
                return StopReason::ConditionMet;
            }
        }
    }

    /// The batched run loop: the queue is drained a tick at a time, and
    /// maximal same-destination runs of deliveries dispatch as one batch.
    fn run_with_batched(
        &mut self,
        deadline: Time,
        mut cond: impl FnMut(&Self) -> bool,
    ) -> StopReason {
        // A caller may shrink the deadline below a tick buffered by a
        // previous call; within one call `now` is constant per tick, so
        // this needs checking only here and at refills. Guard on
        // *unconsumed* events — a fully consumed batch keeps its storage
        // until the next refill and must not mask quiescence.
        if self.tick_pos < self.tick_batch.len() && self.now > deadline {
            return StopReason::Deadline;
        }
        loop {
            if self.tick_pos >= self.tick_batch.len() {
                // Refill: all per-tick queue work happens here, once, and
                // the bucket handoff is an O(1) storage swap.
                self.tick_batch.clear();
                if self.metrics.events >= self.config.max_events {
                    match self.queue.peek_time() {
                        None => {
                            self.now = self.now.max(deadline);
                            return StopReason::Quiescent;
                        }
                        Some(t) if t > deadline => {
                            self.now = deadline;
                            return StopReason::Deadline;
                        }
                        Some(_) => return StopReason::EventLimit,
                    }
                }
                let Some((t, head)) = self.queue.take_tick(deadline, &mut self.tick_batch) else {
                    if self.queue.peek_time().is_some() {
                        self.now = deadline;
                        return StopReason::Deadline;
                    }
                    self.now = self.now.max(deadline);
                    return StopReason::Quiescent;
                };
                self.tick_pos = head;
                self.now = t;
            } else if self.metrics.events >= self.config.max_events {
                // Buffered events are at `now <= deadline`: valve trips.
                return StopReason::EventLimit;
            }
            let ev = self.tick_batch[self.tick_pos]
                .1
                .take()
                .expect("slot consumed twice");
            self.tick_pos += 1;
            // A maximal same-destination run of deliveries dispatches as
            // one batch, capped so the event valve can still trip between
            // messages exactly where the per-event path would stop.
            // Singleton runs (the common case in broadcast meshes, where
            // a tick interleaves destinations) skip the batch plumbing
            // entirely and dispatch like any other event.
            match ev.message_dst() {
                Some(dst) if run_continues(&self.tick_batch, self.tick_pos, dst) => {
                    let headroom = (self.config.max_events - self.metrics.events).max(1);
                    if headroom > 1 {
                        let tracing = self.trace.is_some();
                        let msgs = self.feed.load(
                            if tracing {
                                Some(self.classifier.unwrap_or(|_| "msg"))
                            } else {
                                None
                            },
                            if tracing { self.rounder } else { None },
                        );
                        msgs.push(ev.into_msg());
                        while (msgs.len() as u64) < headroom
                            && run_continues(&self.tick_batch, self.tick_pos, dst)
                        {
                            let next = self.tick_batch[self.tick_pos]
                                .1
                                .take()
                                .expect("slot consumed twice");
                            self.tick_pos += 1;
                            msgs.push(next.into_msg());
                        }
                        // The feed pops from the back: reverse into
                        // delivery order.
                        msgs.reverse();
                        self.dispatch_message_batch(dst);
                    } else {
                        self.dispatch_message_single(dst, ev.into_msg());
                    }
                }
                Some(dst) => self.dispatch_message_single(dst, ev.into_msg()),
                None => self.dispatch(ev),
            }
            if cond(self) {
                return StopReason::ConditionMet;
            }
        }
    }

    /// Dispatches one message whose destination the run loop already
    /// extracted — the singleton-run fast path (no batch feed, no event
    /// re-match), with a zero-action short-circuit: most deliveries in
    /// polling-style protocols buffer or discard without acting, so the
    /// action-buffer take/drain/restore cycle is skipped entirely unless
    /// the callback actually recorded something.
    fn dispatch_message_single(&mut self, dst: usize, msg: P::Msg) {
        if self.skips_step(dst) {
            return;
        }
        self.metrics.events += 1;
        self.metrics.copies_delivered += 1;
        if self.trace.is_some() {
            let class = self.class_of(&msg);
            let round = self.round_of(&msg);
            if let Some(trace) = self.trace.as_mut() {
                trace.record(TraceEvent::Delivered {
                    at: self.now,
                    process: dst,
                    class,
                    round,
                });
            }
        }
        debug_assert!(self.scratch_actions.is_empty());
        let observing = self.recorder.is_some();
        {
            // `procs` and `scratch_actions` are disjoint fields, so the
            // callback can write straight into the engine's buffer.
            let slot = &mut self.procs[dst];
            let mut sink =
                ActionSink::new(slot.id, self.now, &mut slot.rng, &mut self.scratch_actions)
                    .with_observing(observing);
            slot.proc.on_message(msg, &mut sink);
        }
        if !self.scratch_actions.is_empty() {
            let mut actions = std::mem::take(&mut self.scratch_actions);
            for action in actions.drain(..) {
                self.apply_one(dst, action);
            }
            actions.clear();
            self.scratch_actions = actions;
        }
    }

    /// Whether `dst` takes no step at the current instant.
    #[inline]
    fn skips_step(&self, dst: usize) -> bool {
        self.now.ticks() >= self.dead_from[dst]
    }

    /// Dispatches one loaded message batch to `dst` through
    /// [`Process::on_messages`], then replays the recorded action stream
    /// message by message so traces, metrics and side effects are
    /// byte-identical to per-message dispatch.
    fn dispatch_message_batch(&mut self, dst: usize) {
        if self.skips_step(dst) {
            self.feed.recycle();
            return;
        }
        let mut actions = std::mem::take(&mut self.scratch_actions);
        debug_assert!(actions.is_empty());
        let observing = self.recorder.is_some();
        {
            let slot = &mut self.procs[dst];
            let mut sink = ActionSink::with_feed(
                slot.id,
                self.now,
                &mut slot.rng,
                &mut actions,
                &mut self.feed,
            )
            .with_observing(observing);
            slot.proc.on_messages(&mut sink);
        }
        self.flush_batch(dst, &mut actions);
        actions.clear();
        self.scratch_actions = actions;
    }

    /// Replays a batch: for every consumed message, the `Delivered` trace
    /// event, the metrics, then that message's actions — the exact order
    /// the per-message path produces.
    fn flush_batch(&mut self, dst: usize, actions: &mut Vec<Action<P::Msg, P::Output>>) {
        let mut cuts = std::mem::take(&mut self.scratch_cuts);
        cuts.extend_from_slice(self.feed.cuts());
        self.feed.recycle();
        let total = actions.len();
        let mut drained = actions.drain(..);
        // Actions recorded before the first pull (a custom `on_messages`
        // acting before consuming — a contract violation, but one whose
        // effects must not be silently dropped) apply ahead of any
        // delivery; when nothing was pulled at all, that is every action.
        let first = cuts.first().map_or(total, |&(f, _, _)| f);
        debug_assert_eq!(first, 0, "on_messages acted before pulling a message");
        for action in drained.by_ref().take(first) {
            self.apply_one(dst, action);
        }
        for i in 0..cuts.len() {
            let (start, class, round) = cuts[i];
            self.metrics.events += 1;
            self.metrics.copies_delivered += 1;
            if let Some(trace) = self.trace.as_mut() {
                trace.record(TraceEvent::Delivered {
                    at: self.now,
                    process: dst,
                    class,
                    round,
                });
            }
            let end = cuts.get(i + 1).map_or(total, |&(e, _, _)| e);
            for action in drained.by_ref().take(end - start) {
                self.apply_one(dst, action);
            }
        }
        drop(drained);
        cuts.clear();
        self.scratch_cuts = cuts;
    }

    /// Dispatches one event (start, timer, or a single message on the
    /// legacy path).
    fn dispatch(&mut self, ev: Event<P::Msg>) {
        let dst = match &ev {
            Event::Start { dst }
            | Event::Deliver { dst, .. }
            | Event::DeliverShared { dst, .. }
            | Event::Timer { dst, .. } => *dst,
        };
        if self.skips_step(dst) {
            return;
        }
        self.metrics.events += 1;
        if self.trace.is_some() {
            let tev = match &ev {
                Event::Start { .. } => TraceEvent::Started {
                    at: self.now,
                    process: dst,
                },
                Event::Deliver { msg, .. } => TraceEvent::Delivered {
                    at: self.now,
                    process: dst,
                    class: self.class_of(msg),
                    round: self.round_of(msg),
                },
                Event::DeliverShared { msg, .. } => TraceEvent::Delivered {
                    at: self.now,
                    process: dst,
                    class: self.class_of(msg),
                    round: self.round_of(msg),
                },
                Event::Timer { tag, .. } => TraceEvent::TimerFired {
                    at: self.now,
                    process: dst,
                    tag: *tag,
                },
            };
            if let Some(trace) = self.trace.as_mut() {
                trace.record(tev);
            }
        }
        let mut actions = std::mem::take(&mut self.scratch_actions);
        debug_assert!(actions.is_empty());
        let observing = self.recorder.is_some();
        {
            let slot = &mut self.procs[dst];
            let mut sink = ActionSink::new(slot.id, self.now, &mut slot.rng, &mut actions)
                .with_observing(observing);
            match ev {
                Event::Start { .. } => slot.proc.on_start(&mut sink),
                Event::Deliver { .. } | Event::DeliverShared { .. } => {
                    self.metrics.copies_delivered += 1;
                    slot.proc.on_message(ev.into_msg(), &mut sink);
                }
                Event::Timer { tag, .. } => {
                    self.metrics.timers_fired += 1;
                    slot.proc.on_timer(tag, &mut sink);
                }
            }
        }
        for action in actions.drain(..) {
            self.apply_one(dst, action);
        }
        self.scratch_actions = actions;
    }

    fn apply_one(&mut self, src: usize, action: Action<P::Msg, P::Output>) {
        match action {
            Action::Broadcast(msg) => self.do_broadcast(src, msg),
            Action::SetTimer(delay, tag) => {
                let at = self.now + Span::from_ticks(delay.ticks().max(1));
                self.push(at, Event::Timer { dst: src, tag });
            }
            Action::Publish(output) => {
                self.histories[src].push((self.now, output));
            }
            Action::Decide(v) => {
                if self.decisions[src].is_none() {
                    self.decisions[src] = Some((self.now, v));
                    if self.config.sched.is_correct(src) {
                        self.undecided_correct -= 1;
                    }
                    if let Some(trace) = self.trace.as_mut() {
                        trace.record(TraceEvent::Decided {
                            at: self.now,
                            process: src,
                            value: v,
                        });
                    }
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.record(self.now, src, ObsKind::Decided { value: v });
                    }
                }
            }
            Action::Halt => {
                self.dead_from[src] = 0;
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(TraceEvent::Halted {
                        at: self.now,
                        process: src,
                    });
                }
            }
            Action::Observe(kind) => {
                if let Some(rec) = self.recorder.as_mut() {
                    rec.record(self.now, src, kind);
                }
            }
            Action::Discard => self.metrics.copies_discarded += 1,
        }
    }

    fn do_broadcast(&mut self, src: usize, msg: P::Msg) {
        self.metrics.broadcasts += 1;
        if let Some(f) = self.classifier {
            *self.metrics.by_class.entry(f(&msg)).or_insert(0) += 1;
        }
        if self.trace.is_some() {
            let class = self.class_of(&msg);
            let round = self.round_of(&msg);
            if let Some(trace) = self.trace.as_mut() {
                trace.record(TraceEvent::Broadcast {
                    at: self.now,
                    process: src,
                    class,
                    round,
                });
            }
        }
        // Byzantine consultation: one plan — and at most one draw from
        // the dedicated stream — per broadcast, resolved before routing
        // so both hot paths and both payload representations see the
        // same attack. The replay cache updates on every broadcast of a
        // replay-listed sender until its last window closes (`replace`
        // hands back the previous payload, which is what an active
        // replay clause substitutes), so the first in-window broadcast
        // replays the last honest one.
        let byz = match &self.config.byzantine {
            Some(s) if !s.is_empty() => {
                let script = Arc::clone(s);
                let plan = script.plan(self.now, src, &mut self.byz_rng);
                let replayed = if script.records_replay_at(self.now, src) {
                    self.byz_replay[src].replace(msg.clone())
                } else {
                    None
                };
                plan.map(|plan| ByzCtx {
                    script,
                    plan,
                    replayed,
                })
            }
            _ => None,
        };
        // A broadcast at the sender's final step reaches an arbitrary
        // subset of the processes; its mask draws interleave with the
        // routing draws per copy, so it must take the per-copy path on
        // both configurations to keep the network stream identical.
        let dying = self.config.partial_broadcast_on_crash
            && self.dead_from[src] == self.now.next().ticks();
        if self.config.legacy_hot_path || dying {
            self.broadcast_per_copy(src, msg, dying, byz);
        } else {
            self.broadcast_batched(src, msg, byz);
        }
    }

    /// The pre-batching broadcast: one network-model match and route per
    /// copy, interleaved with the dying-sender mask draws.
    fn broadcast_per_copy(
        &mut self,
        src: usize,
        msg: P::Msg,
        dying: bool,
        byz: Option<ByzCtx<P::Msg>>,
    ) {
        if plain_payload::<P::Msg>() {
            for dst in 0..self.n() {
                if dying && self.net_rng.gen_bool(0.5) {
                    continue;
                }
                self.metrics.copies_sent += 1;
                if let Some(at) = self.route_copy(src, dst) {
                    match byz_directive(&byz, dst) {
                        ByzDirective::Original => {
                            let msg = msg.clone();
                            self.push(at, Event::Deliver { dst, msg });
                        }
                        d => self.push_byz_copy(dst, at, d, &msg, &byz, false),
                    }
                }
            }
        } else {
            // Zero-copy: every queued copy shares one heap payload, so a
            // broadcast costs one allocation instead of one deep clone
            // per destination.
            let shared = Arc::new(msg);
            for dst in 0..self.n() {
                if dying && self.net_rng.gen_bool(0.5) {
                    continue;
                }
                self.metrics.copies_sent += 1;
                if let Some(at) = self.route_copy(src, dst) {
                    match byz_directive(&byz, dst) {
                        ByzDirective::Original => {
                            let msg = Arc::clone(&shared);
                            self.push(at, Event::DeliverShared { dst, msg });
                        }
                        d => self.push_byz_copy(dst, at, d, &*shared, &byz, false),
                    }
                }
            }
        }
    }

    /// The batched broadcast: all `n` copies' fates stream out of
    /// [`NetworkModel::route_each`] (identical draws in identical order;
    /// the per-copy model match, GST compare and sampler setup are
    /// hoisted per broadcast) straight into adversary consultation and
    /// queue insertion — one fused pass, no intermediate fate buffer.
    fn broadcast_batched(&mut self, src: usize, msg: P::Msg, byz: Option<ByzCtx<P::Msg>>) {
        let n = self.n();
        let now = self.now;
        // The network stream is drawn inside the fused closure while the
        // engine is mutably borrowed, so the RNG steps out for the loop
        // (a 32-byte swap per broadcast).
        let network = self.config.network.clone();
        let mut rng = std::mem::replace(&mut self.net_rng, StdRng::seed_from_u64(0));
        self.metrics.copies_sent += n as u64;
        if plain_payload::<P::Msg>() {
            network.route_each(now, n, &mut rng, |dst, fate| match fate {
                None => self.metrics.copies_lost += 1,
                Some(base) => {
                    if let Some(at) = self.adversary_fate(src, dst, base) {
                        match byz_directive(&byz, dst) {
                            ByzDirective::Original => {
                                if self.deliverable(dst, at) {
                                    let msg = msg.clone();
                                    self.queue.push_in_order(
                                        at,
                                        self.seq,
                                        Event::Deliver { dst, msg },
                                    );
                                    self.seq += 1;
                                }
                            }
                            d => self.push_byz_copy(dst, at, d, &msg, &byz, true),
                        }
                    }
                }
            });
        } else {
            let shared = Arc::new(msg);
            network.route_each(now, n, &mut rng, |dst, fate| match fate {
                None => self.metrics.copies_lost += 1,
                Some(base) => {
                    if let Some(at) = self.adversary_fate(src, dst, base) {
                        match byz_directive(&byz, dst) {
                            ByzDirective::Original => {
                                if self.deliverable(dst, at) {
                                    let msg = Arc::clone(&shared);
                                    self.queue.push_in_order(
                                        at,
                                        self.seq,
                                        Event::DeliverShared { dst, msg },
                                    );
                                    self.seq += 1;
                                }
                            }
                            d => self.push_byz_copy(dst, at, d, &*shared, &byz, true),
                        }
                    }
                }
            });
        }
        self.net_rng = rng;
    }

    /// Applies a non-[`ByzDirective::Original`] directive to one routed
    /// copy. Forging and suppression are **accounted at routing time**
    /// on both hot paths (they are the corrupt sender's act, not a
    /// delivery property), while queue insertion follows the caller's
    /// dead-destination policy (`elide_dead`: the batched broadcast
    /// elides copies to dead destinations, the per-copy paths queue
    /// them — exactly the policies applied to honest copies). Forged
    /// payloads always enqueue as owned [`Event::Deliver`] copies: they
    /// are distinct values, so there is nothing to `Arc`-share.
    fn push_byz_copy(
        &mut self,
        dst: usize,
        at: Time,
        directive: ByzDirective,
        original: &P::Msg,
        byz: &Option<ByzCtx<P::Msg>>,
        elide_dead: bool,
    ) {
        let forged = match directive {
            ByzDirective::Original => unreachable!("callers handle pass-through copies inline"),
            ByzDirective::Suppress => {
                self.metrics.copies_suppressed += 1;
                self.record_attack("suppress", dst);
                return;
            }
            ByzDirective::Equivocate(entropy) => {
                self.metrics.copies_forged += 1;
                self.record_attack("equivocate", dst);
                Some(forge::<P>(original, entropy))
            }
            ByzDirective::Corrupt(entropy) => {
                self.metrics.copies_forged += 1;
                self.record_attack("corrupt", dst);
                Some(forge::<P>(original, entropy))
            }
            ByzDirective::Replay => {
                match byz.as_ref().and_then(|c| c.replayed.as_ref()) {
                    Some(old) => {
                        self.metrics.copies_forged += 1;
                        self.record_attack("replay", dst);
                        Some(old.clone())
                    }
                    // Nothing broadcast before the clause activated: the
                    // replayed copy degenerates to the honest one.
                    None => None,
                }
            }
        };
        let msg = forged.unwrap_or_else(|| original.clone());
        if !elide_dead || self.deliverable(dst, at) {
            self.push(at, Event::Deliver { dst, msg });
        }
    }

    /// The fate of one copy: the network routes it, then the adversary
    /// (when installed) may defer, delay or drop it. Shared by both
    /// payload branches of the per-copy broadcast and therefore by both
    /// hot paths, which is what keeps the legacy-vs-batched trace
    /// equality intact under any script.
    fn route_copy(&mut self, src: usize, dst: usize) -> Option<Time> {
        let base = match self.config.network.route(self.now, &mut self.net_rng) {
            Some(at) => at,
            None => {
                self.metrics.copies_lost += 1;
                return None;
            }
        };
        self.adversary_fate(src, dst, base)
    }

    /// The adversary's verdict on an already-routed copy (transparent
    /// when no script is installed).
    fn adversary_fate(&mut self, src: usize, dst: usize, base: Time) -> Option<Time> {
        let Some(script) = &self.config.adversary else {
            return Some(base);
        };
        match script.fate(self.now, src, dst, base, &mut self.adv_rng) {
            Some(at) => Some(at),
            None => {
                self.metrics.copies_blocked += 1;
                if let Some(rec) = self.recorder.as_mut() {
                    rec.record(
                        self.now,
                        dst,
                        ObsKind::CopyBlocked {
                            from: u32::try_from(src).unwrap_or(u32::MAX),
                        },
                    );
                }
                None
            }
        }
    }

    /// Records a Byzantine attack firing against `victim` (no-op when no
    /// recorder is attached).
    fn record_attack(&mut self, kind: &'static str, victim: usize) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(
                self.now,
                victim,
                ObsKind::AttackFired {
                    kind,
                    victim: u32::try_from(victim).unwrap_or(u32::MAX),
                },
            );
        }
    }

    fn push(&mut self, at: Time, ev: Event<P::Msg>) {
        // Engine pushes are always seq-monotone; the batched path takes
        // the append-only insert, the legacy path keeps the PR 1 shape
        // (guarded insert).
        if self.config.legacy_hot_path {
            self.queue.push(at, self.seq, ev);
        } else {
            self.queue.push_in_order(at, self.seq, ev);
        }
        self.seq += 1;
    }

    /// Whether `p` has halted itself (as opposed to being crashed by the
    /// schedule): `Halt` zeroes the liveness horizon, which a crash at
    /// `t0` also does — but a process crashed at `t0` never takes the
    /// step a `Halt` would need, so the two cases are separable against
    /// the schedule.
    fn halted_flag(&self, p: usize) -> bool {
        self.dead_from[p] == 0
            && self
                .config
                .sched
                .crash_time(p)
                .is_none_or(|c| c.ticks() > 0)
    }

    /// Rebuilds the liveness-horizon table from this engine's own
    /// schedule plus a snapshot's halt flags, and recounts the undecided
    /// correct processes from the restored decisions — the two pieces of
    /// restored state that must follow the *adopting* configuration (its
    /// post-divergence crash times may differ from the snapshotted
    /// run's; see [`crate::sweep::config_divergence`]).
    fn rebuild_schedule_state(&mut self, halted: &[bool]) {
        let n = self.config.assign.n();
        self.dead_from.clear();
        self.dead_from.extend((0..n).map(|p| {
            if halted[p] {
                0
            } else {
                self.config
                    .sched
                    .crash_time(p)
                    .map_or(u64::MAX, |c| c.ticks())
            }
        }));
        self.undecided_correct = (0..n)
            .filter(|&p| self.config.sched.is_correct(p) && self.decisions[p].is_none())
            .count();
    }

    /// Whether a copy arriving at `at` could ever be observed by `dst`:
    /// false once `dst` is halted (permanent) or its crash time is at or
    /// before the delivery instant. The batched broadcast elides queuing
    /// such copies — dispatch would skip them without a trace event, a
    /// metric or a callback, so eliding them changes nothing observable
    /// (the per-event legacy path queues them, as PR 1 did).
    #[inline]
    fn deliverable(&self, dst: usize, at: Time) -> bool {
        at.ticks() < self.dead_from[dst]
    }
}

impl<P: ForkProcess> Engine<P> {
    /// Captures the engine's complete deterministic state — queue
    /// contents (including a partially consumed tick batch), process
    /// states and RNG streams, network/adversary streams, metrics,
    /// histories, decisions and the trace — as an independent
    /// [`EngineSnapshot`]. Restoring it (into this engine or a fresh one
    /// with an agreeing configuration) reproduces the byte-identical
    /// `(time, seq)` event sequence an uninterrupted run would produce
    /// from this instant; see [`crate::snapshot`] for the contract.
    ///
    /// Must be called between run calls, never from inside a callback.
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot<P> {
        debug_assert!(self.scratch_actions.is_empty() && self.scratch_cuts.is_empty());
        let mut space = ForkSpace::new();
        EngineSnapshot {
            procs: self
                .procs
                .iter()
                .map(|s| ProcSlot {
                    proc: s.proc.fork_in(&mut space),
                    rng: s.rng.clone(),
                    id: s.id,
                })
                .collect(),
            halted: (0..self.n()).map(|p| self.halted_flag(p)).collect(),
            queue: self.queue.clone(),
            seq: self.seq,
            now: self.now,
            net_rng: self.net_rng.clone(),
            adv_rng: self.adv_rng.clone(),
            byz_rng: self.byz_rng.clone(),
            byz_replay: self.byz_replay.clone(),
            metrics: self.metrics.clone(),
            histories: self.histories.clone(),
            decisions: self.decisions.clone(),
            trace: self.trace.clone(),
            recorder: self.recorder.clone(),
            tick_batch: self.tick_batch.clone(),
            tick_pos: self.tick_pos,
        }
    }

    /// Like [`Engine::snapshot`], but refills an existing snapshot
    /// through `clone_from`, reusing its bucket ring, history rows and
    /// batch buffers — the arena path of the prefix-sharing executor,
    /// which snapshots at every branch point and would otherwise pay a
    /// full queue allocation per fork.
    pub fn snapshot_into(&self, snap: &mut EngineSnapshot<P>) {
        debug_assert!(self.scratch_actions.is_empty() && self.scratch_cuts.is_empty());
        let mut space = ForkSpace::new();
        snap.procs.clear();
        snap.procs.extend(self.procs.iter().map(|s| ProcSlot {
            proc: s.proc.fork_in(&mut space),
            rng: s.rng.clone(),
            id: s.id,
        }));
        snap.halted.clear();
        snap.halted
            .extend((0..self.n()).map(|p| self.halted_flag(p)));
        snap.queue.clone_from(&self.queue);
        snap.seq = self.seq;
        snap.now = self.now;
        snap.net_rng = self.net_rng.clone();
        snap.adv_rng = self.adv_rng.clone();
        snap.byz_rng = self.byz_rng.clone();
        snap.byz_replay.clone_from(&self.byz_replay);
        snap.metrics.clone_from(&self.metrics);
        snap.histories.clone_from(&self.histories);
        snap.decisions.clone_from(&self.decisions);
        snap.trace.clone_from(&self.trace);
        snap.recorder.clone_from(&self.recorder);
        snap.tick_batch.clone_from(&self.tick_batch);
        snap.tick_pos = self.tick_pos;
    }

    /// Restores this engine to the snapshotted state, keeping its own
    /// configuration and classifier. With the same configuration the
    /// continuation is byte-identical to the uninterrupted run; the
    /// prefix-sharing executor also restores under configurations that
    /// agree with the snapshotted one on everything consumed so far
    /// (crash horizons and decision counters are rebuilt from this
    /// engine's own schedule).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's system size differs from this engine's.
    pub fn restore_from(&mut self, snap: &EngineSnapshot<P>) {
        assert_eq!(self.n(), snap.procs.len(), "snapshot size mismatch");
        let mut space = ForkSpace::new();
        self.procs.clear();
        self.procs.extend(snap.procs.iter().map(|s| ProcSlot {
            proc: s.proc.fork_in(&mut space),
            rng: s.rng.clone(),
            id: s.id,
        }));
        self.queue.clone_from(&snap.queue);
        self.seq = snap.seq;
        self.now = snap.now;
        self.net_rng = snap.net_rng.clone();
        self.adv_rng = snap.adv_rng.clone();
        self.byz_rng = snap.byz_rng.clone();
        self.byz_replay.clone_from(&snap.byz_replay);
        self.metrics.clone_from(&snap.metrics);
        self.histories.clone_from(&snap.histories);
        self.decisions.clone_from(&snap.decisions);
        self.trace.clone_from(&snap.trace);
        self.recorder.clone_from(&snap.recorder);
        self.tick_batch.clone_from(&snap.tick_batch);
        self.tick_pos = snap.tick_pos;
        self.scratch_actions.clear();
        self.scratch_cuts.clear();
        self.feed.recycle();
        self.rebuild_schedule_state(&snap.halted);
    }

    /// Builds an engine for `config` directly from a snapshot, inside
    /// recycled arena allocations — the restore-per-child step of the
    /// prefix-sharing executor. No process factory runs: the processes
    /// are forked out of the snapshot. `config` must agree with the
    /// snapshotted run's configuration on everything consumed up to the
    /// snapshot instant (the planner's divergence computation guarantees
    /// this; same-config resumption trivially qualifies).
    ///
    /// # Panics
    ///
    /// Panics if `config` disagrees with the snapshot on system size.
    #[must_use]
    pub fn resume_in(config: SimConfig, snap: &EngineSnapshot<P>, arena: EngineArena<P>) -> Self {
        let EngineArena {
            mut queue,
            mut procs,
            dead_from,
            mut histories,
            mut decisions,
            mut tick_batch,
            mut scratch_actions,
            mut scratch_cuts,
            mut feed,
            mut byz_replay,
        } = arena;
        assert_eq!(
            config.assign.n(),
            snap.procs.len(),
            "snapshot size mismatch"
        );
        procs.clear();
        queue.reset();
        // Recycle history rows before `clone_from` so capacities carry
        // over even when the row count changed between runs.
        for h in &mut histories {
            h.clear();
        }
        tick_batch.clear();
        scratch_actions.clear();
        scratch_cuts.clear();
        feed.recycle();
        decisions.clear();
        byz_replay.clear();
        let mut engine = Engine {
            seq: 0,
            now: Time::ZERO,
            dead_from,
            net_rng: StdRng::seed_from_u64(0),
            adv_rng: StdRng::seed_from_u64(0),
            byz_rng: StdRng::seed_from_u64(0),
            byz_replay,
            metrics: Metrics::default(),
            histories,
            decisions,
            classifier: None,
            rounder: None,
            trace: None,
            recorder: None,
            scratch_actions,
            scratch_cuts,
            tick_batch,
            tick_pos: 0,
            feed,
            undecided_correct: 0,
            config,
            procs,
            queue,
        };
        engine.restore_from(snap);
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::Identity;

    /// Echo process: broadcasts a counter at start, re-broadcasts any value
    /// below a cap, and publishes everything it hears.
    struct Echo {
        cap: u64,
    }

    #[derive(Clone, Debug)]
    struct Ping(u64);

    impl Process for Echo {
        type Msg = Ping;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut ActionSink<'_, Ping, u64>) {
            ctx.broadcast(Ping(0));
        }

        fn on_message(&mut self, msg: Ping, ctx: &mut ActionSink<'_, Ping, u64>) {
            ctx.publish(msg.0);
            if msg.0 + 1 < self.cap {
                ctx.broadcast(Ping(msg.0 + 1));
            }
        }

        fn on_timer(&mut self, _t: TimerTag, _ctx: &mut ActionSink<'_, Ping, u64>) {}
    }

    impl ForkProcess for Echo {
        fn fork_in(&self, _space: &mut ForkSpace) -> Self {
            Echo { cap: self.cap }
        }
    }

    fn small_config(n: usize) -> SimConfig {
        SimConfig::new(
            IdentityAssignment::unique(n),
            FailureSchedule::none(n),
            NetworkModel::reliable(Span::from_ticks(1)),
        )
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let mut e = Engine::new(small_config(3), |_, _| Echo { cap: 1 });
        let reason = e.run_until(Time::from_ticks(100));
        assert_eq!(reason, StopReason::Quiescent);
        // 3 broadcasts of Ping(0), each delivered to 3 processes.
        assert_eq!(e.metrics().broadcasts, 3);
        assert_eq!(e.metrics().copies_delivered, 9);
        for p in 0..3 {
            assert_eq!(e.histories()[p].len(), 3);
        }
    }

    #[test]
    fn crashed_process_stops_receiving_and_sending() {
        let mut cfg = small_config(3);
        cfg.sched = FailureSchedule::none(3).with_crash(2, Time::ZERO);
        cfg.partial_broadcast_on_crash = false;
        let mut e = Engine::new(cfg, |_, _| Echo { cap: 1 });
        e.run_until(Time::from_ticks(100));
        // p2 never starts: only 2 broadcasts, delivered to the 2 alive.
        assert_eq!(e.metrics().broadcasts, 2);
        assert_eq!(e.metrics().copies_delivered, 4);
        assert!(e.histories()[2].is_empty());
    }

    #[test]
    fn final_step_broadcast_reaches_a_strict_subset_sometimes() {
        // Sender p0 crashes at t1, so its start-broadcast at t0 is its
        // final step. Over many seeds, some copies must be dropped and
        // some delivered.
        let mut dropped_somewhere = false;
        let mut delivered_somewhere = false;
        for seed in 0..20 {
            let mut cfg = small_config(4);
            cfg.sched = FailureSchedule::none(4).with_crash(0, Time::from_ticks(1));
            cfg.seed = seed;
            let mut e = Engine::new(cfg, |_, _| Echo { cap: 1 });
            e.run_until(Time::from_ticks(50));
            // p0's broadcast put between 0 and 4 copies on the wire.
            let copies_from_p0 = e.metrics().copies_sent - 3 * 4;
            if copies_from_p0 < 4 {
                dropped_somewhere = true;
            }
            if copies_from_p0 > 0 {
                delivered_somewhere = true;
            }
        }
        assert!(dropped_somewhere, "partial broadcast never dropped a copy");
        assert!(
            delivered_somewhere,
            "partial broadcast never delivered a copy"
        );
    }

    #[test]
    fn same_seed_same_run() {
        let run = |seed: u64| {
            let mut cfg = small_config(4);
            cfg.network =
                NetworkModel::Asynchronous(crate::network::LatencyDistribution::Uniform {
                    min: Span::from_ticks(1),
                    max: Span::from_ticks(9),
                });
            cfg.seed = seed;
            let mut e = Engine::new(cfg, |_, _| Echo { cap: 4 });
            e.run_until(Time::from_ticks(500));
            (e.metrics().clone(), e.histories().to_vec())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1, "different seeds should reorder");
    }

    #[test]
    fn batched_and_legacy_paths_agree_end_to_end() {
        let run = |seed: u64, legacy: bool| {
            let mut cfg = small_config(5);
            cfg.network =
                NetworkModel::Asynchronous(crate::network::LatencyDistribution::Uniform {
                    min: Span::from_ticks(1),
                    max: Span::from_ticks(6),
                });
            cfg.sched = FailureSchedule::none(5).with_crash(1, Time::from_ticks(7));
            cfg.seed = seed;
            cfg.legacy_hot_path = legacy;
            let mut e = Engine::new(cfg, |_, _| Echo { cap: 6 });
            e.enable_trace(1_000_000);
            e.run_until(Time::from_ticks(400));
            (
                e.metrics().clone(),
                e.histories().to_vec(),
                e.trace().expect("enabled").clone(),
            )
        };
        for seed in 0..6 {
            assert_eq!(run(seed, false), run(seed, true), "seed {seed} diverged");
        }
    }

    #[test]
    fn arena_reuse_reproduces_fresh_runs() {
        let run_fresh = |seed: u64| {
            let mut e = Engine::new(small_config(4).with_seed(seed), |_, _| Echo { cap: 5 });
            e.run_until(Time::from_ticks(300));
            (e.metrics().clone(), e.histories().to_vec())
        };
        let mut arena = EngineArena::new();
        for seed in 0..8 {
            let mut e = Engine::new_in(
                small_config(4).with_seed(seed),
                |_, _| Echo { cap: 5 },
                arena,
            );
            e.run_until(Time::from_ticks(300));
            let got = (e.metrics().clone(), e.histories().to_vec());
            assert_eq!(got, run_fresh(seed), "arena run diverged for seed {seed}");
            arena = e.into_arena();
        }
    }

    #[test]
    fn snapshot_restore_continues_byte_identically() {
        let mk = |legacy: bool| {
            let mut cfg = small_config(5);
            cfg.network =
                NetworkModel::Asynchronous(crate::network::LatencyDistribution::Uniform {
                    min: Span::from_ticks(1),
                    max: Span::from_ticks(7),
                });
            cfg.sched = FailureSchedule::none(5).with_crash(3, Time::from_ticks(60));
            cfg.seed = 11;
            cfg.legacy_hot_path = legacy;
            let mut e = Engine::new(cfg, |_, _| Echo { cap: 9 });
            e.enable_trace(1_000_000);
            e
        };
        let state = |e: &Engine<Echo>| {
            (
                e.metrics().clone(),
                e.histories().to_vec(),
                e.trace().expect("enabled").clone(),
            )
        };
        for legacy in [false, true] {
            let mut baseline = mk(legacy);
            baseline.run_until(Time::from_ticks(400));
            let expected = state(&baseline);

            // Snapshot mid-run, keep running, then rewind and re-run.
            let mut e = mk(legacy);
            e.run_until(Time::from_ticks(150));
            let snap = e.snapshot();
            e.run_until(Time::from_ticks(400));
            assert_eq!(
                state(&e),
                expected,
                "pre-restore run diverged (legacy={legacy})"
            );
            e.restore_from(&snap);
            e.run_until(Time::from_ticks(400));
            assert_eq!(
                state(&e),
                expected,
                "restored run diverged (legacy={legacy})"
            );

            // Resume into a fresh arena-backed engine.
            let mut resumed =
                Engine::resume_in(mk(legacy).config().clone(), &snap, EngineArena::new());
            resumed.run_until(Time::from_ticks(400));
            assert_eq!(
                state(&resumed),
                expected,
                "resumed run diverged (legacy={legacy})"
            );
        }
    }

    #[test]
    fn snapshot_into_reuses_and_matches_fresh_snapshots() {
        let mut e = Engine::new(small_config(4), |_, _| Echo { cap: 6 });
        e.run_until(Time::from_ticks(2));
        let mut recycled = e.snapshot();
        e.run_until(Time::from_ticks(4));
        e.snapshot_into(&mut recycled);
        let fresh = e.snapshot();
        // Both snapshots must drive an identical continuation.
        let run_out = |snap: &EngineSnapshot<Echo>| {
            let mut r = Engine::resume_in(e.config().clone(), snap, EngineArena::new());
            r.run_until(Time::from_ticks(200));
            (r.metrics().clone(), r.histories().to_vec())
        };
        assert_eq!(run_out(&recycled), run_out(&fresh));
    }

    #[test]
    fn deadline_stops_before_late_events() {
        struct Clock;
        impl Process for Clock {
            type Msg = ();
            type Output = u64;
            fn on_start(&mut self, ctx: &mut ActionSink<'_, (), u64>) {
                ctx.set_timer(Span::from_ticks(10), TimerTag(0));
            }
            fn on_message(&mut self, _m: (), _ctx: &mut ActionSink<'_, (), u64>) {}
            fn on_timer(&mut self, _t: TimerTag, ctx: &mut ActionSink<'_, (), u64>) {
                ctx.publish(1);
                ctx.set_timer(Span::from_ticks(10), TimerTag(0));
            }
        }
        let mut e = Engine::new(small_config(1), |_, _| Clock);
        let reason = e.run_until(Time::from_ticks(35));
        assert_eq!(reason, StopReason::Deadline);
        assert_eq!(e.histories()[0].len(), 3); // t10, t20, t30
        assert_eq!(e.now(), Time::from_ticks(35));
    }

    #[test]
    fn decide_records_first_value_only() {
        struct Decider;
        impl Process for Decider {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut ActionSink<'_, (), ()>) {
                ctx.decide(1);
                ctx.decide(2);
            }
            fn on_message(&mut self, _m: (), _ctx: &mut ActionSink<'_, (), ()>) {}
            fn on_timer(&mut self, _t: TimerTag, _ctx: &mut ActionSink<'_, (), ()>) {}
        }
        let mut e = Engine::new(small_config(2), |_, _| Decider);
        let reason = e.run_until_all_correct_decided(Time::from_ticks(10));
        assert_eq!(reason, StopReason::ConditionMet);
        assert_eq!(e.decisions()[0], Some((Time::ZERO, 1)));
        assert!(e.all_correct_decided());
    }

    #[test]
    fn halted_process_gets_no_more_callbacks() {
        struct OneShot {
            heard: u64,
        }
        impl Process for OneShot {
            type Msg = u64;
            type Output = u64;
            fn on_start(&mut self, ctx: &mut ActionSink<'_, u64, u64>) {
                ctx.broadcast(1);
                ctx.broadcast(2);
            }
            fn on_message(&mut self, m: u64, ctx: &mut ActionSink<'_, u64, u64>) {
                self.heard += 1;
                ctx.publish(m);
                ctx.halt();
            }
            fn on_timer(&mut self, _t: TimerTag, _ctx: &mut ActionSink<'_, u64, u64>) {}
        }
        // n = 1 with two broadcasts at t0: both copies arrive at t1 as one
        // same-(time, dest) batch, so this also pins the mid-batch halt
        // semantics (the second message is dropped unseen on both paths).
        for legacy in [false, true] {
            let mut cfg = small_config(1);
            cfg.legacy_hot_path = legacy;
            let mut e = Engine::new(cfg, |_, _| OneShot { heard: 0 });
            e.run_until(Time::from_ticks(100));
            assert_eq!(e.process(0).heard, 1, "legacy={legacy}");
            assert_eq!(e.metrics().copies_delivered, 1, "legacy={legacy}");
        }
    }

    #[test]
    fn event_limit_trips() {
        struct Storm;
        impl Process for Storm {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut ActionSink<'_, (), ()>) {
                ctx.broadcast(());
            }
            fn on_message(&mut self, _m: (), ctx: &mut ActionSink<'_, (), ()>) {
                ctx.broadcast(());
            }
            fn on_timer(&mut self, _t: TimerTag, _ctx: &mut ActionSink<'_, (), ()>) {}
        }
        for legacy in [false, true] {
            let mut cfg = small_config(2);
            cfg.max_events = 100;
            cfg.legacy_hot_path = legacy;
            let mut e = Engine::new(cfg, |_, _| Storm);
            assert_eq!(e.run_until(Time::MAX), StopReason::EventLimit);
            assert_eq!(e.metrics().events, 100, "legacy={legacy}");
        }
    }

    #[test]
    fn classifier_counts_by_class() {
        let mut e = Engine::new(small_config(2), |_, _| Echo { cap: 2 });
        e.set_classifier(|m| if m.0 == 0 { "first" } else { "rest" });
        e.run_until(Time::from_ticks(100));
        assert_eq!(e.metrics().by_class["first"], 2);
        assert_eq!(e.metrics().by_class["rest"], 4);
    }

    #[test]
    fn factory_receives_index_and_identity() {
        let mut seen = Vec::new();
        let _ = Engine::new(small_config(3), |p, id| {
            seen.push((p, id));
            Echo { cap: 0 }
        });
        assert_eq!(
            seen,
            vec![
                (0, Identity::new(0)),
                (1, Identity::new(1)),
                (2, Identity::new(2))
            ]
        );
    }
}
