//! Deterministic discrete-event engine for `HAS`/`HPS` runs.
//!
//! The engine owns `n` processes built from a factory (all running the same
//! program, per the model), a [`NetworkModel`], and a [`FailureSchedule`].
//! It delivers three kinds of callbacks — start, message, timer — in a
//! deterministic order (time, then insertion sequence) and records
//! everything the property checkers and experiments need: per-process
//! output histories, decisions, and message metrics.
//!
//! ## Crash semantics
//!
//! A process with crash time `ct` takes no step at or after `ct`. Following
//! the model ("if a process crashes while broadcasting a message, the
//! message is received by an arbitrary subset of processes"), a broadcast
//! performed at the process's **final step** (`now == ct - 1`) delivers
//! each copy independently with probability ½ when
//! [`SimConfig::partial_broadcast_on_crash`] is set.

use std::collections::BTreeMap;
use std::sync::Arc;

use homonym_core::failure::FailureSchedule;
use homonym_core::identity::IdentityAssignment;
use homonym_core::properties::{ConsensusOutcome, History};
use homonym_core::time::{Span, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adversary::LinkFaultScript;
use crate::network::NetworkModel;
use crate::process::{Action, ActionSink, Process, TimerTag};
use crate::queue::EventQueue;
use crate::trace::{Trace, TraceEvent};

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The next event lies beyond the requested deadline.
    Deadline,
    /// No events remain (all processes idle, no timers pending).
    Quiescent,
    /// The caller-supplied condition became true.
    ConditionMet,
    /// The configured event-count safety valve tripped.
    EventLimit,
}

/// Message and event counters for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of `broadcast` invocations.
    pub broadcasts: u64,
    /// Point-to-point copies placed on links (`broadcasts × n`, minus
    /// copies dropped by a crashing sender).
    pub copies_sent: u64,
    /// Copies actually delivered to an alive, non-halted process.
    pub copies_delivered: u64,
    /// Copies lost by the network (pre-GST in `HPS`).
    pub copies_lost: u64,
    /// Copies dropped by an installed [`LinkFaultScript`] (partitions,
    /// adversarial loss). Zero when no adversary is installed.
    pub copies_blocked: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// Total callbacks dispatched.
    pub events: u64,
    /// Broadcasts by message class, when a classifier is installed.
    pub by_class: BTreeMap<&'static str, u64>,
}

/// Static configuration of a simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Identity of each process.
    pub assign: IdentityAssignment,
    /// Ground-truth crash pattern.
    pub sched: FailureSchedule,
    /// Timing model.
    pub network: NetworkModel,
    /// Seed for all engine randomness (network sampling, per-process RNGs,
    /// crash-broadcast masks). Same config + same seed ⇒ identical run.
    pub seed: u64,
    /// Deliver a random subset of the copies of a broadcast performed at
    /// the sender's final step before crashing.
    pub partial_broadcast_on_crash: bool,
    /// Safety valve: maximum callbacks before the run stops with
    /// [`StopReason::EventLimit`].
    pub max_events: u64,
    /// Run on the pre-optimization hot path (`BTreeMap` event queue and
    /// one deep payload clone per broadcast destination) instead of the
    /// calendar queue + shared-payload path. Dispatch order and RNG
    /// streams are identical either way — this switch exists so the
    /// throughput benchmark can measure the speedup and the determinism
    /// tests can assert trace equality between the two implementations.
    pub legacy_hot_path: bool,
    /// Adversarial link faults consulted per copy after the network
    /// routes it (see [`crate::adversary`]). `None` leaves every RNG
    /// stream and the dispatch order byte-identical to an engine without
    /// the hook; the same script yields the same run on both hot paths.
    pub adversary: Option<Arc<LinkFaultScript>>,
}

impl SimConfig {
    /// A configuration with the given topology and model, seed 0, partial
    /// crash broadcasts enabled, and a 50M-event valve.
    ///
    /// # Panics
    ///
    /// Panics if the assignment and schedule disagree on `n`.
    #[must_use]
    pub fn new(assign: IdentityAssignment, sched: FailureSchedule, network: NetworkModel) -> Self {
        assert_eq!(assign.n(), sched.n(), "assignment/schedule size mismatch");
        SimConfig {
            assign,
            sched,
            network,
            seed: 0,
            partial_broadcast_on_crash: true,
            max_events: 50_000_000,
            legacy_hot_path: false,
            adversary: None,
        }
    }

    /// Sets the seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the pre-optimization hot path (builder style); see
    /// [`SimConfig::legacy_hot_path`].
    #[must_use]
    pub fn with_legacy_hot_path(mut self, legacy: bool) -> Self {
        self.legacy_hot_path = legacy;
        self
    }

    /// Installs an adversarial link-fault script (builder style); see
    /// [`SimConfig::adversary`].
    #[must_use]
    pub fn with_adversary(mut self, script: LinkFaultScript) -> Self {
        self.adversary = Some(Arc::new(script));
        self
    }
}

enum Event<M> {
    Start {
        dst: usize,
    },
    /// Legacy-path delivery: the payload was deep-cloned per destination
    /// at broadcast time and is stored inline, exactly as the
    /// pre-optimization engine did.
    Deliver {
        dst: usize,
        msg: M,
    },
    /// Current-path delivery: every copy of a broadcast shares one
    /// [`Arc`]'d payload; the clone needed to hand the process an owned
    /// message happens at dispatch (and the last copy is unwrapped, not
    /// cloned), so copies routed to crashed or halted processes never
    /// pay for a deep clone.
    DeliverShared {
        dst: usize,
        msg: Arc<M>,
    },
    Timer {
        dst: usize,
        tag: TimerTag,
    },
}

/// Whether `M` is delivered by inline copy rather than `Arc` sharing:
/// true for payloads that own no heap state (nothing to drop) and are at
/// most a cache line wide. Resolves to a compile-time constant per
/// message type.
fn plain_payload<M>() -> bool {
    !std::mem::needs_drop::<M>() && std::mem::size_of::<M>() <= 64
}

struct ProcSlot<P: Process> {
    proc: P,
    rng: StdRng,
    halted: bool,
    /// Cached `id(p)` — avoids an assignment-table chase per callback.
    id: homonym_core::Identity,
    /// Cached crash time — avoids a schedule-table chase per callback.
    crash_at: Option<Time>,
}

/// The discrete-event engine. See the module docs for semantics.
pub struct Engine<P: Process> {
    config: SimConfig,
    procs: Vec<ProcSlot<P>>,
    queue: EventQueue<Event<P::Msg>>,
    seq: u64,
    now: Time,
    net_rng: StdRng,
    /// Dedicated stream for adversary draws so installing a script does
    /// not perturb the network or per-process streams.
    adv_rng: StdRng,
    metrics: Metrics,
    histories: Vec<History<P::Output>>,
    decisions: Vec<Option<(Time, u64)>>,
    classifier: Option<fn(&P::Msg) -> &'static str>,
    trace: Option<Trace>,
    /// Reused per-callback action buffer: one allocation per engine, not
    /// one per dispatched event.
    scratch_actions: Vec<Action<P::Msg, P::Output>>,
    /// Correct processes that have not decided yet, kept incrementally so
    /// `all_correct_decided` — polled after every event by the consensus
    /// run loops — is O(1) instead of an allocation plus an O(n) scan.
    undecided_correct: usize,
}

impl<P: Process> Engine<P> {
    /// Builds an engine, constructing process `p` via `factory(p, id(p))`.
    ///
    /// The factory receives the process **index** purely as a
    /// formalization-level hook (to wire proposals or ground-truth oracles);
    /// algorithm state must only depend on the identifier.
    pub fn new(
        config: SimConfig,
        mut factory: impl FnMut(usize, homonym_core::Identity) -> P,
    ) -> Self {
        let n = config.assign.n();
        let mut procs = Vec::with_capacity(n);
        for p in 0..n {
            procs.push(ProcSlot {
                proc: factory(p, config.assign.id_of(p)),
                // Decorrelate per-process streams from the engine stream.
                rng: StdRng::seed_from_u64(
                    config.seed ^ (0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(p as u64 + 1)),
                ),
                halted: false,
                id: config.assign.id_of(p),
                crash_at: config.sched.crash_time(p),
            });
        }
        let net_rng = StdRng::seed_from_u64(config.seed);
        let adv_salt = config.adversary.as_ref().map_or(0, |s| s.salt());
        let adv_rng = StdRng::seed_from_u64(config.seed ^ adv_salt ^ 0xD1B5_4A32_D192_ED03_u64);
        let mut queue = EventQueue::new(config.legacy_hot_path);
        for p in 0..n {
            queue.push(Time::ZERO, p as u64, Event::Start { dst: p });
        }
        Engine {
            seq: n as u64,
            now: Time::ZERO,
            net_rng,
            adv_rng,
            metrics: Metrics::default(),
            histories: vec![Vec::new(); n],
            decisions: vec![None; n],
            classifier: None,
            trace: None,
            scratch_actions: Vec::new(),
            undecided_correct: config.sched.num_correct(),
            config,
            procs,
            queue,
        }
    }

    /// Installs a message classifier used to populate
    /// [`Metrics::by_class`] (e.g. tagging `POLLING` vs `P_REPLY`) and to
    /// label trace events.
    pub fn set_classifier(&mut self, f: fn(&P::Msg) -> &'static str) {
        self.classifier = Some(f);
    }

    /// Starts recording a [`Trace`] keeping at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::with_capacity(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn class_of(&self, msg: &P::Msg) -> &'static str {
        self.classifier.map_or("msg", |f| f(msg))
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.config.assign.n()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The run's metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of events currently waiting in the queue (diagnostics and
    /// load instrumentation; not part of the model).
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Recorded output histories, indexed by process.
    #[must_use]
    pub fn histories(&self) -> &[History<P::Output>] {
        &self.histories
    }

    /// Recorded decisions, indexed by process.
    #[must_use]
    pub fn decisions(&self) -> &[Option<(Time, u64)>] {
        &self.decisions
    }

    /// Read access to a process's state (for tests and experiments).
    #[must_use]
    pub fn process(&self, p: usize) -> &P {
        &self.procs[p].proc
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Whether every correct process has decided (O(1): maintained
    /// incrementally as decisions are recorded).
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.undecided_correct == 0
    }

    /// Packages decisions into a [`ConsensusOutcome`] for checking.
    #[must_use]
    pub fn outcome(&self, proposals: Vec<u64>) -> ConsensusOutcome {
        ConsensusOutcome {
            proposals,
            decisions: self.decisions.clone(),
        }
    }

    /// Runs until the deadline (inclusive) or quiescence.
    pub fn run_until(&mut self, deadline: Time) -> StopReason {
        self.run_with(deadline, |_| false)
    }

    /// Runs until every correct process has decided, the deadline passes,
    /// or the system goes quiescent.
    pub fn run_until_all_correct_decided(&mut self, deadline: Time) -> StopReason {
        self.run_with(deadline, Engine::all_correct_decided)
    }

    /// Runs until `cond(self)` holds (checked after every callback), the
    /// deadline passes, or the system goes quiescent.
    pub fn run_with(&mut self, deadline: Time, mut cond: impl FnMut(&Self) -> bool) -> StopReason {
        if cond(self) {
            return StopReason::ConditionMet;
        }
        loop {
            if self.metrics.events >= self.config.max_events {
                // Quiescence and the deadline take precedence over the
                // valve, matching the pre-fusion check order.
                match self.queue.peek_time() {
                    None => {
                        self.now = self.now.max(deadline);
                        return StopReason::Quiescent;
                    }
                    Some(t) if t > deadline => {
                        self.now = deadline;
                        return StopReason::Deadline;
                    }
                    Some(_) => return StopReason::EventLimit,
                }
            }
            let Some((t, _, ev)) = self.queue.pop_at_or_before(deadline) else {
                if self.queue.peek_time().is_some() {
                    // Deadline: the next event lies beyond the window.
                    self.now = deadline;
                    return StopReason::Deadline;
                }
                // Quiescent: clock jumps to the deadline so final history
                // timestamps reflect the full observation window.
                self.now = self.now.max(deadline);
                return StopReason::Quiescent;
            };
            self.now = t;
            self.dispatch(ev);
            if cond(self) {
                return StopReason::ConditionMet;
            }
        }
    }

    fn dispatch(&mut self, ev: Event<P::Msg>) {
        let dst = match &ev {
            Event::Start { dst }
            | Event::Deliver { dst, .. }
            | Event::DeliverShared { dst, .. }
            | Event::Timer { dst, .. } => *dst,
        };
        let slot = &self.procs[dst];
        // The legacy baseline consults the schedule table per event, as
        // the pre-optimization engine did; the current path uses the
        // crash time cached in the process slot.
        let crashed = if self.config.legacy_hot_path {
            !self.config.sched.is_alive(dst, self.now)
        } else {
            slot.crash_at.is_some_and(|c| self.now >= c)
        };
        if slot.halted || crashed {
            return;
        }
        self.metrics.events += 1;
        if self.trace.is_some() {
            let tev = match &ev {
                Event::Start { .. } => TraceEvent::Started {
                    at: self.now,
                    process: dst,
                },
                Event::Deliver { msg, .. } => TraceEvent::Delivered {
                    at: self.now,
                    process: dst,
                    class: self.class_of(msg),
                },
                Event::DeliverShared { msg, .. } => TraceEvent::Delivered {
                    at: self.now,
                    process: dst,
                    class: self.class_of(msg),
                },
                Event::Timer { tag, .. } => TraceEvent::TimerFired {
                    at: self.now,
                    process: dst,
                    tag: *tag,
                },
            };
            if let Some(trace) = self.trace.as_mut() {
                trace.record(tev);
            }
        }
        // The legacy baseline allocates a fresh action buffer per
        // callback, as the pre-optimization engine did; the current path
        // reuses one buffer for the whole run.
        let mut actions = if self.config.legacy_hot_path {
            Vec::new()
        } else {
            std::mem::take(&mut self.scratch_actions)
        };
        debug_assert!(actions.is_empty());
        {
            let slot = &mut self.procs[dst];
            let mut sink = ActionSink::new(slot.id, self.now, &mut slot.rng, &mut actions);
            match ev {
                Event::Start { .. } => slot.proc.on_start(&mut sink),
                Event::Deliver { msg, .. } => {
                    self.metrics.copies_delivered += 1;
                    slot.proc.on_message(msg, &mut sink);
                }
                Event::DeliverShared { msg, .. } => {
                    self.metrics.copies_delivered += 1;
                    // Last copy standing is moved out; earlier copies clone.
                    let msg = Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone());
                    slot.proc.on_message(msg, &mut sink);
                }
                Event::Timer { tag, .. } => {
                    self.metrics.timers_fired += 1;
                    slot.proc.on_timer(tag, &mut sink);
                }
            }
        }
        self.apply(dst, &mut actions);
        if !self.config.legacy_hot_path {
            actions.clear();
            self.scratch_actions = actions;
        }
    }

    fn apply(&mut self, src: usize, actions: &mut Vec<Action<P::Msg, P::Output>>) {
        for action in actions.drain(..) {
            match action {
                Action::Broadcast(msg) => self.do_broadcast(src, msg),
                Action::SetTimer(delay, tag) => {
                    let at = self.now + Span::from_ticks(delay.ticks().max(1));
                    self.push(at, Event::Timer { dst: src, tag });
                }
                Action::Publish(output) => {
                    self.histories[src].push((self.now, output));
                }
                Action::Decide(v) => {
                    if self.decisions[src].is_none() {
                        self.decisions[src] = Some((self.now, v));
                        if self.config.sched.is_correct(src) {
                            self.undecided_correct -= 1;
                        }
                        if let Some(trace) = self.trace.as_mut() {
                            trace.record(TraceEvent::Decided {
                                at: self.now,
                                process: src,
                                value: v,
                            });
                        }
                    }
                }
                Action::Halt => {
                    self.procs[src].halted = true;
                    if let Some(trace) = self.trace.as_mut() {
                        trace.record(TraceEvent::Halted {
                            at: self.now,
                            process: src,
                        });
                    }
                }
            }
        }
    }

    fn do_broadcast(&mut self, src: usize, msg: P::Msg) {
        self.metrics.broadcasts += 1;
        if let Some(f) = self.classifier {
            *self.metrics.by_class.entry(f(&msg)).or_insert(0) += 1;
        }
        if self.trace.is_some() {
            let class = self.class_of(&msg);
            if let Some(trace) = self.trace.as_mut() {
                trace.record(TraceEvent::Broadcast {
                    at: self.now,
                    process: src,
                    class,
                });
            }
        }
        // A broadcast at the sender's final step reaches an arbitrary
        // subset of the processes.
        let dying = self.config.partial_broadcast_on_crash
            && self.procs[src].crash_at == Some(self.now.next());
        if self.config.legacy_hot_path || plain_payload::<P::Msg>() {
            // One owned payload per queued copy. On the legacy baseline
            // this is the pre-optimization deep clone per destination; on
            // the current path it is taken only for payloads with no
            // owned heap state (scalar-only enums and structs), which
            // are cheaper to copy inline than to share: an Arc costs an
            // allocation plus two atomic ops per copy, a plain <=64-byte
            // memcpy costs neither.
            for dst in 0..self.n() {
                if dying && self.net_rng.gen_bool(0.5) {
                    continue;
                }
                self.metrics.copies_sent += 1;
                if let Some(at) = self.route_copy(src, dst) {
                    let msg = msg.clone();
                    self.push(at, Event::Deliver { dst, msg });
                }
            }
        } else {
            // Zero-copy: every queued copy shares one heap payload, so a
            // broadcast costs one allocation instead of one deep clone
            // per destination.
            let shared = Arc::new(msg);
            for dst in 0..self.n() {
                if dying && self.net_rng.gen_bool(0.5) {
                    continue;
                }
                self.metrics.copies_sent += 1;
                if let Some(at) = self.route_copy(src, dst) {
                    let msg = Arc::clone(&shared);
                    self.push(at, Event::DeliverShared { dst, msg });
                }
            }
        }
    }

    /// The fate of one copy: the network routes it, then the adversary
    /// (when installed) may defer, delay or drop it. Shared by both
    /// payload branches of [`Engine::do_broadcast`] and therefore by both
    /// hot paths, which is what keeps the legacy-vs-calendar trace
    /// equality intact under any script.
    fn route_copy(&mut self, src: usize, dst: usize) -> Option<Time> {
        let base = match self.config.network.route(self.now, &mut self.net_rng) {
            Some(at) => at,
            None => {
                self.metrics.copies_lost += 1;
                return None;
            }
        };
        let Some(script) = &self.config.adversary else {
            return Some(base);
        };
        match script.fate(self.now, src, dst, base, &mut self.adv_rng) {
            Some(at) => Some(at),
            None => {
                self.metrics.copies_blocked += 1;
                None
            }
        }
    }

    fn push(&mut self, at: Time, ev: Event<P::Msg>) {
        self.queue.push(at, self.seq, ev);
        self.seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::Identity;

    /// Echo process: broadcasts a counter at start, re-broadcasts any value
    /// below a cap, and publishes everything it hears.
    struct Echo {
        cap: u64,
    }

    #[derive(Clone, Debug)]
    struct Ping(u64);

    impl Process for Echo {
        type Msg = Ping;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut ActionSink<'_, Ping, u64>) {
            ctx.broadcast(Ping(0));
        }

        fn on_message(&mut self, msg: Ping, ctx: &mut ActionSink<'_, Ping, u64>) {
            ctx.publish(msg.0);
            if msg.0 + 1 < self.cap {
                ctx.broadcast(Ping(msg.0 + 1));
            }
        }

        fn on_timer(&mut self, _t: TimerTag, _ctx: &mut ActionSink<'_, Ping, u64>) {}
    }

    fn small_config(n: usize) -> SimConfig {
        SimConfig::new(
            IdentityAssignment::unique(n),
            FailureSchedule::none(n),
            NetworkModel::reliable(Span::from_ticks(1)),
        )
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let mut e = Engine::new(small_config(3), |_, _| Echo { cap: 1 });
        let reason = e.run_until(Time::from_ticks(100));
        assert_eq!(reason, StopReason::Quiescent);
        // 3 broadcasts of Ping(0), each delivered to 3 processes.
        assert_eq!(e.metrics().broadcasts, 3);
        assert_eq!(e.metrics().copies_delivered, 9);
        for p in 0..3 {
            assert_eq!(e.histories()[p].len(), 3);
        }
    }

    #[test]
    fn crashed_process_stops_receiving_and_sending() {
        let mut cfg = small_config(3);
        cfg.sched = FailureSchedule::none(3).with_crash(2, Time::ZERO);
        cfg.partial_broadcast_on_crash = false;
        let mut e = Engine::new(cfg, |_, _| Echo { cap: 1 });
        e.run_until(Time::from_ticks(100));
        // p2 never starts: only 2 broadcasts, delivered to the 2 alive.
        assert_eq!(e.metrics().broadcasts, 2);
        assert_eq!(e.metrics().copies_delivered, 4);
        assert!(e.histories()[2].is_empty());
    }

    #[test]
    fn final_step_broadcast_reaches_a_strict_subset_sometimes() {
        // Sender p0 crashes at t1, so its start-broadcast at t0 is its
        // final step. Over many seeds, some copies must be dropped and
        // some delivered.
        let mut dropped_somewhere = false;
        let mut delivered_somewhere = false;
        for seed in 0..20 {
            let mut cfg = small_config(4);
            cfg.sched = FailureSchedule::none(4).with_crash(0, Time::from_ticks(1));
            cfg.seed = seed;
            let mut e = Engine::new(cfg, |_, _| Echo { cap: 1 });
            e.run_until(Time::from_ticks(50));
            // p0's broadcast put between 0 and 4 copies on the wire.
            let copies_from_p0 = e.metrics().copies_sent - 3 * 4;
            if copies_from_p0 < 4 {
                dropped_somewhere = true;
            }
            if copies_from_p0 > 0 {
                delivered_somewhere = true;
            }
        }
        assert!(dropped_somewhere, "partial broadcast never dropped a copy");
        assert!(
            delivered_somewhere,
            "partial broadcast never delivered a copy"
        );
    }

    #[test]
    fn same_seed_same_run() {
        let run = |seed: u64| {
            let mut cfg = small_config(4);
            cfg.network =
                NetworkModel::Asynchronous(crate::network::LatencyDistribution::Uniform {
                    min: Span::from_ticks(1),
                    max: Span::from_ticks(9),
                });
            cfg.seed = seed;
            let mut e = Engine::new(cfg, |_, _| Echo { cap: 4 });
            e.run_until(Time::from_ticks(500));
            (e.metrics().clone(), e.histories().to_vec())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1, "different seeds should reorder");
    }

    #[test]
    fn deadline_stops_before_late_events() {
        struct Clock;
        impl Process for Clock {
            type Msg = ();
            type Output = u64;
            fn on_start(&mut self, ctx: &mut ActionSink<'_, (), u64>) {
                ctx.set_timer(Span::from_ticks(10), TimerTag(0));
            }
            fn on_message(&mut self, _m: (), _ctx: &mut ActionSink<'_, (), u64>) {}
            fn on_timer(&mut self, _t: TimerTag, ctx: &mut ActionSink<'_, (), u64>) {
                ctx.publish(1);
                ctx.set_timer(Span::from_ticks(10), TimerTag(0));
            }
        }
        let mut e = Engine::new(small_config(1), |_, _| Clock);
        let reason = e.run_until(Time::from_ticks(35));
        assert_eq!(reason, StopReason::Deadline);
        assert_eq!(e.histories()[0].len(), 3); // t10, t20, t30
        assert_eq!(e.now(), Time::from_ticks(35));
    }

    #[test]
    fn decide_records_first_value_only() {
        struct Decider;
        impl Process for Decider {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut ActionSink<'_, (), ()>) {
                ctx.decide(1);
                ctx.decide(2);
            }
            fn on_message(&mut self, _m: (), _ctx: &mut ActionSink<'_, (), ()>) {}
            fn on_timer(&mut self, _t: TimerTag, _ctx: &mut ActionSink<'_, (), ()>) {}
        }
        let mut e = Engine::new(small_config(2), |_, _| Decider);
        let reason = e.run_until_all_correct_decided(Time::from_ticks(10));
        assert_eq!(reason, StopReason::ConditionMet);
        assert_eq!(e.decisions()[0], Some((Time::ZERO, 1)));
        assert!(e.all_correct_decided());
    }

    #[test]
    fn halted_process_gets_no_more_callbacks() {
        struct OneShot {
            heard: u64,
        }
        impl Process for OneShot {
            type Msg = u64;
            type Output = u64;
            fn on_start(&mut self, ctx: &mut ActionSink<'_, u64, u64>) {
                ctx.broadcast(1);
                ctx.broadcast(2);
            }
            fn on_message(&mut self, m: u64, ctx: &mut ActionSink<'_, u64, u64>) {
                self.heard += 1;
                ctx.publish(m);
                ctx.halt();
            }
            fn on_timer(&mut self, _t: TimerTag, _ctx: &mut ActionSink<'_, u64, u64>) {}
        }
        let mut e = Engine::new(small_config(1), |_, _| OneShot { heard: 0 });
        e.run_until(Time::from_ticks(100));
        assert_eq!(e.process(0).heard, 1);
    }

    #[test]
    fn event_limit_trips() {
        struct Storm;
        impl Process for Storm {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut ActionSink<'_, (), ()>) {
                ctx.broadcast(());
            }
            fn on_message(&mut self, _m: (), ctx: &mut ActionSink<'_, (), ()>) {
                ctx.broadcast(());
            }
            fn on_timer(&mut self, _t: TimerTag, _ctx: &mut ActionSink<'_, (), ()>) {}
        }
        let mut cfg = small_config(2);
        cfg.max_events = 100;
        let mut e = Engine::new(cfg, |_, _| Storm);
        assert_eq!(e.run_until(Time::MAX), StopReason::EventLimit);
    }

    #[test]
    fn classifier_counts_by_class() {
        let mut e = Engine::new(small_config(2), |_, _| Echo { cap: 2 });
        e.set_classifier(|m| if m.0 == 0 { "first" } else { "rest" });
        e.run_until(Time::from_ticks(100));
        assert_eq!(e.metrics().by_class["first"], 2);
        assert_eq!(e.metrics().by_class["rest"], 4);
    }

    #[test]
    fn factory_receives_index_and_identity() {
        let mut seen = Vec::new();
        let _ = Engine::new(small_config(3), |p, id| {
            seen.push((p, id));
            Echo { cap: 0 }
        });
        assert_eq!(
            seen,
            vec![
                (0, Identity::new(0)),
                (1, Identity::new(1)),
                (2, Identity::new(2))
            ]
        );
    }
}
