//! Composition of two programs inside one simulated process.
//!
//! The paper's consensus algorithms run *on top of* a failure detector: the
//! detector is a separate distributed algorithm whose local variables the
//! consensus layer reads at will. [`Stacked`] realizes exactly that: one
//! simulated process runs a detector half `A` and a consumer half `B`,
//! multiplexing their messages over the shared broadcast primitive and
//! recording both halves' published outputs. The detector half exposes its
//! variables to the consumer half through a
//! [`SharedCell`](homonym_core::query::SharedCell) wired at construction.

use core::fmt;

use homonym_core::fork::ForkSpace;
use homonym_core::time::Span;
use homonym_core::wire::{Loader, Persist, Saver, WireError};

use crate::process::{Action, ActionSink, Process, TimerTag};
use crate::snapshot::ForkProcess;

/// A tagged union of the two halves' messages (or outputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Either<L, R> {
    /// Belongs to the detector half `A`.
    L(L),
    /// Belongs to the consumer half `B`.
    R(R),
}

impl<L: fmt::Display, R: fmt::Display> fmt::Display for Either<L, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Either::L(l) => write!(f, "L:{l}"),
            Either::R(r) => write!(f, "R:{r}"),
        }
    }
}

/// Two programs sharing one process: `A` (typically a detector
/// implementation) and `B` (typically consensus).
///
/// Timer tags are remapped (`A` on even tags, `B` on odd) so the halves can
/// use their tag spaces independently.
pub struct Stacked<A: Process, B: Process> {
    a: A,
    b: B,
}

/// The action sink a [`Stacked`] process receives from its engine.
type StackSink<'a, A, B> = ActionSink<
    'a,
    Either<<A as Process>::Msg, <B as Process>::Msg>,
    Either<<A as Process>::Output, <B as Process>::Output>,
>;

impl<A: Process, B: Process> Stacked<A, B> {
    /// Stacks `a` under `b`.
    pub fn new(a: A, b: B) -> Self {
        Stacked { a, b }
    }

    /// The detector half.
    pub fn lower(&self) -> &A {
        &self.a
    }

    /// The consumer half.
    pub fn upper(&self) -> &B {
        &self.b
    }

    fn relay<M0, O0>(
        ctx: &mut StackSink<'_, A, B>,
        run: impl FnOnce(&mut ActionSink<'_, M0, O0>),
        mut lift_msg: impl FnMut(M0) -> Either<A::Msg, B::Msg>,
        mut lift_out: impl FnMut(O0) -> Either<A::Output, B::Output>,
        mut lift_tag: impl FnMut(TimerTag) -> TimerTag,
    ) {
        let mut actions: Vec<Action<M0, O0>> = Vec::new();
        {
            // The sub-sink inherits the outer sink's observing flag, so a
            // stacked half's `observe` hooks stay dead branches exactly
            // when the engine has no recorder attached.
            let observing = ctx.observing();
            let mut sub =
                ActionSink::new(ctx.my_id(), ctx.local_now(), ctx.raw_rng(), &mut actions)
                    .with_observing(observing);
            run(&mut sub);
        }
        for action in actions {
            match action {
                Action::Broadcast(m) => ctx.broadcast(lift_msg(m)),
                Action::SetTimer(d, tag) => ctx.set_timer(d, lift_tag(tag)),
                Action::Publish(o) => ctx.publish(lift_out(o)),
                Action::Decide(v) => ctx.decide(v),
                Action::Halt => ctx.halt(),
                Action::Observe(k) => ctx.observe(|| k),
                Action::Discard => ctx.note_discard(),
            }
        }
    }

    fn run_a(
        &mut self,
        ctx: &mut StackSink<'_, A, B>,
        f: impl FnOnce(&mut A, &mut ActionSink<'_, A::Msg, A::Output>),
    ) {
        let a = &mut self.a;
        Self::relay(
            ctx,
            |sub| f(a, sub),
            Either::L,
            Either::L,
            |tag| TimerTag(tag.0 * 2),
        );
    }

    fn run_b(
        &mut self,
        ctx: &mut StackSink<'_, A, B>,
        f: impl FnOnce(&mut B, &mut ActionSink<'_, B::Msg, B::Output>),
    ) {
        let b = &mut self.b;
        Self::relay(
            ctx,
            |sub| f(b, sub),
            Either::R,
            Either::R,
            |tag| TimerTag(tag.0 * 2 + 1),
        );
    }
}

impl<A: Process, B: Process> Process for Stacked<A, B> {
    type Msg = Either<A::Msg, B::Msg>;
    type Output = Either<A::Output, B::Output>;

    /// A corrupt stacked process forges whichever half's message it is
    /// broadcasting: the mutation is delegated to that half's hook, so a
    /// Byzantine Figure 8 node equivocates detector traffic *and*
    /// consensus traffic. A half without mutation semantics propagates
    /// its `None` (and the engine's loud failure) unchanged.
    fn mutate_payload(msg: &Self::Msg, entropy: u64) -> Option<Self::Msg> {
        match msg {
            Either::L(m) => A::mutate_payload(m, entropy).map(Either::L),
            Either::R(m) => B::mutate_payload(m, entropy).map(Either::R),
        }
    }

    fn on_start(&mut self, ctx: &mut ActionSink<'_, Self::Msg, Self::Output>) {
        self.run_a(ctx, |a, sub| a.on_start(sub));
        self.run_b(ctx, |b, sub| b.on_start(sub));
    }

    fn on_message(&mut self, msg: Self::Msg, ctx: &mut ActionSink<'_, Self::Msg, Self::Output>) {
        match msg {
            Either::L(m) => self.run_a(ctx, |a, sub| a.on_message(m, sub)),
            Either::R(m) => self.run_b(ctx, |b, sub| b.on_message(m, sub)),
        }
    }

    fn on_timer(&mut self, timer: TimerTag, ctx: &mut ActionSink<'_, Self::Msg, Self::Output>) {
        if timer.0.is_multiple_of(2) {
            let tag = TimerTag(timer.0 / 2);
            self.run_a(ctx, |a, sub| a.on_timer(tag, sub));
        } else {
            let tag = TimerTag(timer.0 / 2);
            self.run_b(ctx, |b, sub| b.on_timer(tag, sub));
        }
    }
}

/// Forking a stack forks both halves inside **one** [`ForkSpace`]: a
/// [`SharedCell`](homonym_core::query::SharedCell) wiring the detector
/// half to the consumer half is duplicated exactly once, and both forked
/// halves come out re-seated onto the duplicate — the forked stack keeps
/// its internal wiring but shares no mutable state with the original.
impl<A: ForkProcess, B: ForkProcess> ForkProcess for Stacked<A, B> {
    fn fork_in(&self, space: &mut ForkSpace) -> Self {
        Stacked {
            a: self.a.fork_in(space),
            b: self.b.fork_in(space),
        }
    }
}

/// Splits the recorded history of a [`Stacked`] run back into the two
/// halves' histories.
#[must_use]
pub fn split_history<OA: Clone, OB: Clone>(
    hist: &homonym_core::properties::History<Either<OA, OB>>,
) -> (
    homonym_core::properties::History<OA>,
    homonym_core::properties::History<OB>,
) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (t, o) in hist {
        match o {
            Either::L(a) => left.push((*t, a.clone())),
            Either::R(b) => right.push((*t, b.clone())),
        }
    }
    (left, right)
}

/// A trivial process that does nothing; useful as a placeholder half.
#[derive(Debug, Default, Clone, Copy)]
pub struct Idle;

impl Process for Idle {
    type Msg = ();
    type Output = ();
    fn on_start(&mut self, _ctx: &mut ActionSink<'_, (), ()>) {}
    fn on_message(&mut self, _msg: (), _ctx: &mut ActionSink<'_, (), ()>) {}
    fn on_timer(&mut self, _timer: TimerTag, _ctx: &mut ActionSink<'_, (), ()>) {}
}

impl ForkProcess for Idle {
    fn fork_in(&self, _space: &mut ForkSpace) -> Self {
        Idle
    }
}

/// A process that repeatedly re-arms a tick timer; handy in tests that need
/// periodic activity from one half.
#[derive(Debug, Clone, Copy)]
pub struct Ticker {
    period: Span,
    ticks: u64,
}

impl Ticker {
    /// A ticker with the given period.
    #[must_use]
    pub fn new(period: Span) -> Self {
        Ticker { period, ticks: 0 }
    }

    /// Number of ticks so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

impl ForkProcess for Ticker {
    fn fork_in(&self, _space: &mut ForkSpace) -> Self {
        *self
    }
}

impl Process for Ticker {
    type Msg = ();
    type Output = u64;

    fn on_start(&mut self, ctx: &mut ActionSink<'_, (), u64>) {
        ctx.set_timer(self.period, TimerTag(0));
    }

    fn on_message(&mut self, _msg: (), _ctx: &mut ActionSink<'_, (), u64>) {}

    fn on_timer(&mut self, _timer: TimerTag, ctx: &mut ActionSink<'_, (), u64>) {
        self.ticks += 1;
        ctx.publish(self.ticks);
        ctx.set_timer(self.period, TimerTag(0));
    }
}

impl<L: Persist, R: Persist> Persist for Either<L, R> {
    fn save(&self, s: &mut Saver) {
        match self {
            Either::L(v) => {
                s.u8(0);
                v.save(s);
            }
            Either::R(v) => {
                s.u8(1);
                v.save(s);
            }
        }
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        match l.u8()? {
            0 => Ok(Either::L(L::load(l)?)),
            1 => Ok(Either::R(R::load(l)?)),
            tag => Err(WireError::BadTag {
                what: "Either",
                tag,
            }),
        }
    }
}

/// Both halves encode through **one** saver, so a
/// [`SharedCell`](homonym_core::query::SharedCell) wiring the detector
/// half to the consumer half round-trips as one rebuilt cell with both
/// decoded halves re-seated onto it — the codec counterpart of
/// [`Stacked`]'s `fork_in`.
impl<A, B> Persist for Stacked<A, B>
where
    A: Process + Persist,
    B: Process + Persist,
{
    fn save(&self, s: &mut Saver) {
        self.a.save(s);
        self.b.save(s);
    }
    fn load(l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(Stacked {
            a: A::load(l)?,
            b: B::load(l)?,
        })
    }
}

impl Persist for Idle {
    fn save(&self, _s: &mut Saver) {}
    fn load(_l: &mut Loader<'_>) -> Result<Self, WireError> {
        Ok(Idle)
    }
}

homonym_core::persist_fields!(Ticker { period, ticks });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimConfig};
    use crate::network::NetworkModel;
    use homonym_core::{FailureSchedule, IdentityAssignment, Time};

    /// Broadcasts a greeting at start and counts what it hears.
    #[derive(Debug)]
    struct Chatter {
        word: &'static str,
        heard: u64,
    }

    impl Process for Chatter {
        type Msg = &'static str;
        type Output = &'static str;

        fn on_start(&mut self, ctx: &mut ActionSink<'_, &'static str, &'static str>) {
            ctx.broadcast(self.word);
        }

        fn on_message(
            &mut self,
            msg: &'static str,
            ctx: &mut ActionSink<'_, &'static str, &'static str>,
        ) {
            self.heard += 1;
            ctx.publish(msg);
        }

        fn on_timer(
            &mut self,
            _t: TimerTag,
            _ctx: &mut ActionSink<'_, &'static str, &'static str>,
        ) {
        }
    }

    #[test]
    fn both_halves_run_and_messages_do_not_cross() {
        let cfg = SimConfig::new(
            IdentityAssignment::unique(2),
            FailureSchedule::none(2),
            NetworkModel::reliable(Span::TICK),
        );
        let mut e = Engine::new(cfg, |_, _| {
            Stacked::new(
                Chatter {
                    word: "lower",
                    heard: 0,
                },
                Chatter {
                    word: "upper",
                    heard: 0,
                },
            )
        });
        e.run_until(Time::from_ticks(50));
        for p in 0..2 {
            // Each half hears exactly its own protocol: 2 copies each.
            assert_eq!(e.process(p).lower().heard, 2);
            assert_eq!(e.process(p).upper().heard, 2);
            let (lo, hi) = split_history(&e.histories()[p]);
            assert!(lo.iter().all(|(_, w)| *w == "lower"));
            assert!(hi.iter().all(|(_, w)| *w == "upper"));
        }
    }

    #[test]
    fn timer_tags_are_demultiplexed() {
        let cfg = SimConfig::new(
            IdentityAssignment::unique(1),
            FailureSchedule::none(1),
            NetworkModel::reliable(Span::TICK),
        );
        let mut e = Engine::new(cfg, |_, _| {
            Stacked::new(
                Ticker::new(Span::from_ticks(2)),
                Ticker::new(Span::from_ticks(3)),
            )
        });
        e.run_until(Time::from_ticks(12));
        // Lower ticks at 2,4,6,8,10,12; upper at 3,6,9,12.
        assert_eq!(e.process(0).lower().ticks(), 6);
        assert_eq!(e.process(0).upper().ticks(), 4);
    }

    #[test]
    fn idle_half_is_inert() {
        let cfg = SimConfig::new(
            IdentityAssignment::unique(1),
            FailureSchedule::none(1),
            NetworkModel::reliable(Span::TICK),
        );
        let mut e = Engine::new(cfg, |_, _| Stacked::new(Idle, Ticker::new(Span::TICK)));
        e.run_until(Time::from_ticks(5));
        assert_eq!(e.process(0).upper().ticks(), 5);
    }
}
