//! Lock-step executor for the synchronous model `HSS[∅]`.
//!
//! In a synchronous step every alive process first broadcasts, then
//! receives **all** messages sent in that same step, then computes
//! (Figure 7's "wait for the messages sent in this synchronous step").
//! A process whose crash time equals the step number attempts its
//! broadcast — each copy is independently delivered or dropped — and then
//! stops; it neither receives nor computes in that step.
//!
//! The split into [`SyncProcess::send`] (before delivery) and
//! [`SyncProcess::receive`] (after delivery) makes this two-phase structure
//! explicit, instead of hiding it in a blocking `wait`. Both phases speak
//! buffers the engine owns and recycles: `send` appends into a reused
//! outbox and `receive` drains a reused inbox, so a steady-state step
//! allocates nothing. [`SyncConfig::legacy_hot_path`] switches back to
//! the pre-batching shape (fresh buffers every step) — behaviour is
//! byte-identical either way, which the batched-path proptests assert.

use core::fmt;
use std::collections::BTreeMap;
use std::sync::Arc;

use homonym_core::failure::FailureSchedule;
use homonym_core::identity::{Identity, IdentityAssignment};
use homonym_core::properties::{ConsensusOutcome, History};
use homonym_core::time::Time;
use homonym_obs::{ObsKind, Recorder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use homonym_core::fork::ForkSpace;

use crate::adversary::{ByzDirective, ByzantineScript, LinkFaultScript};
use crate::process::Message;
use crate::snapshot::{ForkSyncProcess, SyncSnapshot};

/// A program executed in lock-step synchronous rounds.
pub trait SyncProcess: Send + 'static {
    /// Protocol message payload.
    type Msg: Message;
    /// Detector-output type recorded per step.
    type Output: Clone + fmt::Debug + Send + 'static;

    /// Appends the messages to broadcast at the start of step `step` into
    /// `out` (may append none). `out` arrives empty; the engine owns and
    /// recycles the buffer.
    fn send(&mut self, step: u64, out: &mut Vec<Self::Msg>);

    /// Delivery of every message sent in step `step` by alive (or dying)
    /// processes, in an arbitrary (seeded) order that hides the senders.
    /// The process should consume `received` (typically by draining it);
    /// the engine clears and recycles the buffer afterwards either way.
    fn receive(
        &mut self,
        step: u64,
        received: &mut Vec<Self::Msg>,
        sink: &mut SyncSink<Self::Output>,
    );

    /// The lock-step counterpart of
    /// [`Process::mutate_payload`](crate::process::Process::mutate_payload):
    /// a plausible-but-different variant of `msg` derived from `entropy`,
    /// delivered to victims by a corrupt sender. `None` (the default)
    /// makes an active Byzantine clause panic — the attack is meaningless
    /// without mutation semantics.
    fn mutate_payload(msg: &Self::Msg, entropy: u64) -> Option<Self::Msg>
    where
        Self: Sized,
    {
        let _ = (msg, entropy);
        None
    }
}

/// Effects available in the receive phase of a synchronous step.
#[derive(Debug)]
pub struct SyncSink<O> {
    outputs: Vec<O>,
    decision: Option<u64>,
    halt: bool,
    /// Structured events staged this step (drained into the engine's
    /// recorder); only filled while `obs_on`.
    obs: Vec<ObsKind>,
    obs_on: bool,
    /// Admission-window discards reported this step — counted
    /// **unconditionally** (independent of `obs_on`) so metrics are
    /// identical with and without a recorder.
    discards: u64,
}

impl<O> SyncSink<O> {
    fn new() -> Self {
        SyncSink {
            outputs: Vec::new(),
            decision: None,
            halt: false,
            obs: Vec::new(),
            obs_on: false,
            discards: 0,
        }
    }

    /// Clears the sink for reuse, keeping the output buffer's capacity.
    fn reset(&mut self) {
        self.outputs.clear();
        self.decision = None;
        self.halt = false;
        self.obs.clear();
        self.obs_on = false;
        self.discards = 0;
    }

    /// Publishes a detector-output snapshot for this step.
    pub fn publish(&mut self, output: O) {
        self.outputs.push(output);
    }

    /// Records a consensus decision.
    pub fn decide(&mut self, value: u64) {
        if self.decision.is_none() {
            self.decision = Some(value);
        }
    }

    /// Stops the process after this step.
    pub fn halt(&mut self) {
        self.halt = true;
    }

    /// Whether a recorder is attached to the running engine. Exposed so
    /// processes can skip *computing* expensive event payloads; the
    /// cheaper route is [`SyncSink::observe`], whose closure is never
    /// evaluated while observability is off.
    #[must_use]
    pub fn observing(&self) -> bool {
        self.obs_on
    }

    /// Stages a structured event for the engine's recorder. The closure
    /// runs only while a recorder is attached, making the hook free in
    /// uninstrumented runs.
    pub fn observe(&mut self, f: impl FnOnce() -> ObsKind) {
        if self.obs_on {
            self.obs.push(f());
        }
    }

    /// Reports one admission-window discard. Always counted (into
    /// [`SyncMetrics::copies_discarded`]), recorder or not.
    pub fn note_discard(&mut self) {
        self.discards += 1;
    }
}

/// Configuration of a synchronous run.
#[derive(Debug, Clone)]
pub struct SyncConfig {
    /// Identity of each process.
    pub assign: IdentityAssignment,
    /// Ground-truth crash pattern; crash times are **step numbers**.
    pub sched: FailureSchedule,
    /// Seed for delivery shuffling and crash-broadcast masks.
    pub seed: u64,
    /// Deliver a random subset of a dying process's final-step broadcast.
    pub partial_broadcast_on_crash: bool,
    /// Run with the pre-batching per-step buffer discipline (fresh inbox
    /// and sink allocations every step) instead of the recycled-buffer
    /// default. Byte-identical behaviour; exists so the batched-path
    /// tests can differentially check the buffer recycling.
    pub legacy_hot_path: bool,
    /// Adversarial link faults (see [`crate::adversary`]). Times in the
    /// script are **step numbers**. A copy a clause defers is held and
    /// injected into its destination's inbox at the deferred step, in
    /// the order the copies were queued (then shuffled with that step's
    /// fresh deliveries, as every synchronous delivery is). `None`
    /// leaves the engine byte-identical to one without the hook.
    pub adversary: Option<Arc<LinkFaultScript>>,
    /// Byzantine payload-mutation script (times are **step numbers**),
    /// consulted once per broadcast and per copy exactly like the
    /// event engine's hook; see [`SimConfig::byzantine`](crate::engine::SimConfig::byzantine).
    /// `None` — or an empty/never-matching script — leaves the engine
    /// byte-identical to one without the hook.
    pub byzantine: Option<Arc<ByzantineScript>>,
}

impl SyncConfig {
    /// A configuration with seed 0 and partial crash broadcasts on.
    ///
    /// # Panics
    ///
    /// Panics if the assignment and schedule disagree on `n`.
    #[must_use]
    pub fn new(assign: IdentityAssignment, sched: FailureSchedule) -> Self {
        assert_eq!(assign.n(), sched.n(), "assignment/schedule size mismatch");
        SyncConfig {
            assign,
            sched,
            seed: 0,
            partial_broadcast_on_crash: true,
            legacy_hot_path: false,
            adversary: None,
            byzantine: None,
        }
    }

    /// Sets the seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the pre-batching buffer discipline (builder style); see
    /// [`SyncConfig::legacy_hot_path`].
    #[must_use]
    pub fn with_legacy_hot_path(mut self, legacy: bool) -> Self {
        self.legacy_hot_path = legacy;
        self
    }

    /// Installs an adversarial link-fault script (builder style); see
    /// [`SyncConfig::adversary`].
    #[must_use]
    pub fn with_adversary(mut self, script: LinkFaultScript) -> Self {
        self.adversary = Some(Arc::new(script));
        self
    }

    /// Installs a Byzantine payload-mutation script (builder style); see
    /// [`SyncConfig::byzantine`].
    #[must_use]
    pub fn with_byzantine(mut self, script: ByzantineScript) -> Self {
        self.byzantine = Some(Arc::new(script));
        self
    }
}

/// Per-step message counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncMetrics {
    /// Broadcast invocations across the run.
    pub broadcasts: u64,
    /// Copies delivered to a process that computes in the receiving
    /// step. Copies addressed to crashed or halted processes are not
    /// counted (nor materialized): they could never be observed, and the
    /// send phase skips cloning for them.
    pub copies_delivered: u64,
    /// Copies dropped by an installed [`LinkFaultScript`]. Zero when no
    /// adversary is installed.
    pub copies_blocked: u64,
    /// Copies whose payload an installed [`ByzantineScript`] rewrote.
    pub copies_forged: u64,
    /// Copies an installed [`ByzantineScript`] suppressed.
    pub copies_suppressed: u64,
    /// Copies a process's admission window detected as over-cap and
    /// discarded, reported through [`SyncSink::note_discard`].
    pub copies_discarded: u64,
    /// Steps executed.
    pub steps: u64,
}

/// Applies the process's payload-mutation hook, failing loudly when the
/// program under attack defines no corruption semantics.
fn forge_sync<P: SyncProcess>(original: &P::Msg, entropy: u64) -> P::Msg {
    P::mutate_payload(original, entropy).unwrap_or_else(|| {
        panic!(
            "a Byzantine clause matched a broadcast of {}, but its process does \
             not override SyncProcess::mutate_payload",
            std::any::type_name::<P::Msg>()
        )
    })
}

/// The lock-step engine.
pub struct SyncEngine<P: SyncProcess> {
    config: SyncConfig,
    procs: Vec<P>,
    halted: Vec<bool>,
    step: u64,
    rng: StdRng,
    /// Dedicated stream for adversary draws so installing a script does
    /// not perturb the shuffle/crash-mask stream.
    adv_rng: StdRng,
    /// Dedicated stream for Byzantine draws (one per attacked broadcast).
    byz_rng: StdRng,
    /// One-deep replay cache per replay-listed sender (see
    /// [`ByzantineScript::records_replay`]).
    byz_replay: Vec<Option<P::Msg>>,
    /// Copies a clause deferred, keyed by delivery step, in queue order.
    deferred: BTreeMap<u64, Vec<(usize, P::Msg)>>,
    metrics: SyncMetrics,
    histories: Vec<History<P::Output>>,
    decisions: Vec<Option<(Time, u64)>>,
    /// Structured observability recorder (see
    /// [`SyncEngine::enable_recorder`]); `None` keeps every `observe`
    /// hook a dead branch.
    recorder: Option<Recorder>,
    /// Recycled per-destination inboxes (batched path).
    inboxes: Vec<Vec<P::Msg>>,
    /// Recycled send-phase outbox (batched path).
    outbox: Vec<P::Msg>,
    /// Recycled receive-phase sink (batched path).
    sink: SyncSink<P::Output>,
    /// Recycled recipient list.
    recipients: Vec<usize>,
}

impl<P: SyncProcess> SyncEngine<P> {
    /// Builds the engine, constructing process `p` via `factory(p, id(p))`.
    pub fn new(config: SyncConfig, mut factory: impl FnMut(usize, Identity) -> P) -> Self {
        let n = config.assign.n();
        let procs = (0..n).map(|p| factory(p, config.assign.id_of(p))).collect();
        let adv_salt = config.adversary.as_ref().map_or(0, |s| s.salt());
        let byz_salt = config.byzantine.as_ref().map_or(0, |s| s.salt());
        SyncEngine {
            rng: StdRng::seed_from_u64(config.seed),
            adv_rng: StdRng::seed_from_u64(config.seed ^ adv_salt ^ 0xD1B5_4A32_D192_ED03_u64),
            byz_rng: StdRng::seed_from_u64(config.seed ^ byz_salt ^ 0xA076_1D64_78BD_642F_u64),
            byz_replay: vec![None; n],
            deferred: BTreeMap::new(),
            procs,
            halted: vec![false; n],
            step: 0,
            metrics: SyncMetrics::default(),
            histories: vec![Vec::new(); n],
            decisions: vec![None; n],
            recorder: None,
            inboxes: Vec::new(),
            outbox: Vec::new(),
            sink: SyncSink::new(),
            recipients: Vec::new(),
            config,
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.config.assign.n()
    }

    /// The next step to execute (also the number executed so far).
    #[must_use]
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// Message counters.
    #[must_use]
    pub fn metrics(&self) -> &SyncMetrics {
        &self.metrics
    }

    /// Recorded output histories (timestamps are step numbers).
    #[must_use]
    pub fn histories(&self) -> &[History<P::Output>] {
        &self.histories
    }

    /// Recorded decisions (timestamps are step numbers).
    #[must_use]
    pub fn decisions(&self) -> &[Option<(Time, u64)>] {
        &self.decisions
    }

    /// Read access to a process (for tests and experiments).
    #[must_use]
    pub fn process(&self, p: usize) -> &P {
        &self.procs[p]
    }

    /// Attaches a structured-observability [`Recorder`] keeping at most
    /// `capacity` events; see
    /// [`Engine::enable_recorder`](crate::engine::Engine::enable_recorder)
    /// for the zero-cost contract (identical here).
    pub fn enable_recorder(&mut self, capacity: usize) {
        self.recorder = Some(Recorder::new(capacity));
    }

    /// The attached recorder, if observability was enabled.
    #[must_use]
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// Detaches and returns the recorder.
    #[must_use]
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.recorder.take()
    }

    /// Packages decisions into a [`ConsensusOutcome`].
    #[must_use]
    pub fn outcome(&self, proposals: Vec<u64>) -> ConsensusOutcome {
        ConsensusOutcome {
            proposals,
            decisions: self.decisions.clone(),
        }
    }

    /// Whether every correct process has decided.
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.config
            .sched
            .correct_set()
            .into_iter()
            .all(|p| self.decisions[p].is_some())
    }

    /// Executes `k` synchronous steps.
    pub fn run_steps(&mut self, k: u64) {
        for _ in 0..k {
            self.step_once();
        }
    }

    /// Executes steps until `cond(self)` holds or `max_steps` elapse;
    /// returns whether the condition was met.
    pub fn run_until(&mut self, max_steps: u64, mut cond: impl FnMut(&Self) -> bool) -> bool {
        for _ in 0..max_steps {
            if cond(self) {
                return true;
            }
            self.step_once();
        }
        cond(self)
    }

    /// Executes one synchronous step: send phase, delivery, receive phase.
    pub fn step_once(&mut self) {
        let s = self.step;
        let now = Time::from_ticks(s);
        let n = self.n();
        let legacy = self.config.legacy_hot_path;

        // The step's inboxes: fresh buffers on the legacy path (the
        // pre-batching shape), the engine's recycled buffers otherwise.
        let mut inboxes: Vec<Vec<P::Msg>> = if legacy {
            vec![Vec::new(); n]
        } else {
            let mut b = std::mem::take(&mut self.inboxes);
            debug_assert!(b.iter().all(Vec::is_empty));
            b.resize_with(n, Vec::new);
            b
        };

        // Copies a clause deferred to this step (a healed partition
        // releasing its queued traffic) are injected first, in the order
        // they were queued; they join the step's fresh deliveries in the
        // seeded shuffle like any other synchronous delivery.
        if let Some(batch) = self.deferred.remove(&s) {
            for (dst, m) in batch {
                if self.halted[dst] || !self.config.sched.is_alive(dst, now) {
                    continue;
                }
                self.metrics.copies_delivered += 1;
                inboxes[dst].push(m);
            }
        }
        let script = self.config.adversary.clone();
        let byz_script = self.config.byzantine.clone().filter(|s| !s.is_empty());

        // Send phase: alive processes send fully; a process crashing at
        // exactly this step gets a partial final broadcast.
        //
        // Copies are placed only into inboxes that will actually compute
        // this step, and the last recipient receives the original message
        // instead of a clone — one deep clone fewer per broadcast, and
        // none at all for copies that would land on crashed or halted
        // processes. The crash-mask RNG draws stay one-per-destination so
        // seeded runs are unchanged.
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut recipients = std::mem::take(&mut self.recipients);
        for p in 0..n {
            if self.halted[p] {
                continue;
            }
            let crash = self.config.sched.crash_time(p);
            let alive = self.config.sched.is_alive(p, now);
            let dying = crash == Some(now);
            if !alive && !dying {
                continue;
            }
            outbox.clear();
            self.procs[p].send(s, &mut outbox);
            for m in outbox.drain(..) {
                self.metrics.broadcasts += 1;
                // Byzantine plan + replay-cache update, one per broadcast
                // (mirrors the event engine's `do_broadcast`: the cache
                // records every broadcast of a replay-listed sender, and
                // `replace` hands back the previous payload an active
                // replay clause substitutes).
                let plan = byz_script
                    .as_ref()
                    .and_then(|b| b.plan(now, p, &mut self.byz_rng));
                let replayed = if byz_script
                    .as_ref()
                    .is_some_and(|b| b.records_replay_at(now, p))
                {
                    self.byz_replay[p].replace(m.clone())
                } else {
                    None
                };
                recipients.clear();
                for dst in 0..n {
                    if dying && self.config.partial_broadcast_on_crash && self.rng.gen_bool(0.5) {
                        continue;
                    }
                    if self.halted[dst] || !self.config.sched.is_alive(dst, now) {
                        continue;
                    }
                    recipients.push(dst);
                }
                if script.is_some() || plan.is_some() {
                    // Adversary path: each copy's fate individually — the
                    // link script first (a deferred copy is held for the
                    // step the clause names; times in the scripts are
                    // step numbers and the base delivery step is the
                    // sending step itself), then the Byzantine directive
                    // rewrites or suppresses the surviving copy.
                    for &dst in &recipients {
                        let fate = match &script {
                            Some(s) => s.fate(now, p, dst, now, &mut self.adv_rng),
                            None => Some(now),
                        };
                        let Some(at) = fate else {
                            self.metrics.copies_blocked += 1;
                            if let Some(rec) = self.recorder.as_mut() {
                                rec.record(
                                    now,
                                    dst,
                                    ObsKind::CopyBlocked {
                                        from: u32::try_from(p).unwrap_or(u32::MAX),
                                    },
                                );
                            }
                            continue;
                        };
                        let payload = match (&byz_script, &plan) {
                            (Some(b), Some(plan)) => match b.directive(plan, dst) {
                                ByzDirective::Original => m.clone(),
                                ByzDirective::Suppress => {
                                    self.metrics.copies_suppressed += 1;
                                    self.record_attack(now, "suppress", dst);
                                    continue;
                                }
                                ByzDirective::Equivocate(e) => {
                                    self.metrics.copies_forged += 1;
                                    self.record_attack(now, "equivocate", dst);
                                    forge_sync::<P>(&m, e)
                                }
                                ByzDirective::Corrupt(e) => {
                                    self.metrics.copies_forged += 1;
                                    self.record_attack(now, "corrupt", dst);
                                    forge_sync::<P>(&m, e)
                                }
                                ByzDirective::Replay => match &replayed {
                                    Some(old) => {
                                        self.metrics.copies_forged += 1;
                                        self.record_attack(now, "replay", dst);
                                        old.clone()
                                    }
                                    None => m.clone(),
                                },
                            },
                            _ => m.clone(),
                        };
                        if at <= now {
                            self.metrics.copies_delivered += 1;
                            inboxes[dst].push(payload);
                        } else {
                            self.deferred
                                .entry(at.ticks())
                                .or_default()
                                .push((dst, payload));
                        }
                    }
                } else if let Some((&last, rest)) = recipients.split_last() {
                    self.metrics.copies_delivered += recipients.len() as u64;
                    for &dst in rest {
                        inboxes[dst].push(m.clone());
                    }
                    inboxes[last].push(m);
                }
            }
        }
        self.outbox = outbox;
        self.recipients = recipients;

        // Receive phase: only processes alive at this step compute.
        let observing = self.recorder.is_some();
        #[allow(clippy::needless_range_loop)] // p indexes several parallel structures
        for p in 0..n {
            if self.halted[p] || !self.config.sched.is_alive(p, now) {
                inboxes[p].clear();
                continue;
            }
            inboxes[p].shuffle(&mut self.rng);
            // Legacy path: a fresh sink per process, as before batching.
            let mut fresh_sink;
            let sink = if legacy {
                fresh_sink = SyncSink::new();
                fresh_sink.obs_on = observing;
                &mut fresh_sink
            } else {
                self.sink.reset();
                self.sink.obs_on = observing;
                &mut self.sink
            };
            self.procs[p].receive(s, &mut inboxes[p], sink);
            inboxes[p].clear();
            // Discards count unconditionally; staged events drain into
            // the recorder only when one is attached.
            self.metrics.copies_discarded += sink.discards;
            sink.discards = 0;
            if let Some(rec) = self.recorder.as_mut() {
                for k in sink.obs.drain(..) {
                    rec.record(now, p, k);
                }
            } else {
                sink.obs.clear();
            }
            for o in sink.outputs.drain(..) {
                self.histories[p].push((now, o));
            }
            if let Some(v) = sink.decision {
                if self.decisions[p].is_none() {
                    self.decisions[p] = Some((now, v));
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.record(now, p, ObsKind::Decided { value: v });
                    }
                }
            }
            if sink.halt {
                self.halted[p] = true;
            }
        }
        if !legacy {
            self.inboxes = inboxes;
        }

        self.metrics.steps += 1;
        self.step += 1;
    }

    /// Records a Byzantine attack firing against `victim` (no-op when no
    /// recorder is attached).
    fn record_attack(&mut self, now: Time, kind: &'static str, victim: usize) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(
                now,
                victim,
                ObsKind::AttackFired {
                    kind,
                    victim: u32::try_from(victim).unwrap_or(u32::MAX),
                },
            );
        }
    }
}

impl<P: ForkSyncProcess> SyncEngine<P> {
    /// Captures the engine's complete deterministic state between steps
    /// — process states, halt flags, the shuffle and adversary RNG
    /// streams, deferred (partition-held) copies, metrics, histories and
    /// decisions. Restoring it reproduces the uninterrupted run step for
    /// step; see [`crate::snapshot`] for the contract.
    #[must_use]
    pub fn snapshot(&self) -> SyncSnapshot<P> {
        let mut space = ForkSpace::new();
        SyncSnapshot {
            procs: self.procs.iter().map(|p| p.fork_in(&mut space)).collect(),
            halted: self.halted.clone(),
            step: self.step,
            rng: self.rng.clone(),
            adv_rng: self.adv_rng.clone(),
            byz_rng: self.byz_rng.clone(),
            byz_replay: self.byz_replay.clone(),
            deferred: self.deferred.clone(),
            metrics: self.metrics.clone(),
            histories: self.histories.clone(),
            decisions: self.decisions.clone(),
            recorder: self.recorder.clone(),
        }
    }

    /// Restores this engine to the snapshotted state, keeping its own
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's system size differs from this engine's.
    pub fn restore_from(&mut self, snap: &SyncSnapshot<P>) {
        assert_eq!(self.n(), snap.procs.len(), "snapshot size mismatch");
        let mut space = ForkSpace::new();
        self.procs.clear();
        self.procs
            .extend(snap.procs.iter().map(|p| p.fork_in(&mut space)));
        self.halted.clone_from(&snap.halted);
        self.step = snap.step;
        self.rng = snap.rng.clone();
        self.adv_rng = snap.adv_rng.clone();
        self.byz_rng = snap.byz_rng.clone();
        self.byz_replay.clone_from(&snap.byz_replay);
        self.deferred.clone_from(&snap.deferred);
        self.metrics.clone_from(&snap.metrics);
        self.histories.clone_from(&snap.histories);
        self.decisions.clone_from(&snap.decisions);
        self.recorder.clone_from(&snap.recorder);
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        self.outbox.clear();
        self.sink.reset();
        self.recipients.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts how many IDENT-style messages arrive each step.
    struct Counter {
        seen_per_step: Vec<usize>,
    }

    impl SyncProcess for Counter {
        type Msg = Identity;
        type Output = usize;

        fn send(&mut self, _step: u64, out: &mut Vec<Identity>) {
            out.push(Identity::new(0));
        }

        fn receive(
            &mut self,
            _step: u64,
            received: &mut Vec<Identity>,
            sink: &mut SyncSink<usize>,
        ) {
            self.seen_per_step.push(received.len());
            sink.publish(received.len());
        }
    }

    fn counter_engine(sched: FailureSchedule) -> SyncEngine<Counter> {
        let n = sched.n();
        let mut cfg = SyncConfig::new(IdentityAssignment::anonymous(n), sched);
        cfg.partial_broadcast_on_crash = false;
        SyncEngine::new(cfg, |_, _| Counter {
            seen_per_step: Vec::new(),
        })
    }

    #[test]
    fn every_alive_process_hears_everyone_each_step() {
        let mut e = counter_engine(FailureSchedule::none(4));
        e.run_steps(3);
        for p in 0..4 {
            assert_eq!(e.process(p).seen_per_step, vec![4, 4, 4]);
        }
        assert_eq!(e.metrics().steps, 3);
    }

    #[test]
    fn crashed_process_drops_out_cleanly() {
        // p1 crashes at step 1: step 0 full, step 1 it still *sends*
        // (dying, full copies since partial is off) but does not receive.
        let mut e = counter_engine(FailureSchedule::none(3).with_crash(1, Time::from_ticks(1)));
        e.run_steps(3);
        assert_eq!(e.process(0).seen_per_step, vec![3, 3, 2]);
        assert_eq!(e.process(1).seen_per_step, vec![3]);
        assert_eq!(e.histories()[1].len(), 1);
    }

    #[test]
    fn dying_broadcast_is_partial_with_mask_enabled() {
        let mut saw_partial = false;
        for seed in 0..30 {
            let sched = FailureSchedule::none(3).with_crash(0, Time::ZERO);
            let cfg = SyncConfig::new(IdentityAssignment::anonymous(3), sched).with_seed(seed);
            let mut e = SyncEngine::new(cfg, |_, _| Counter {
                seen_per_step: Vec::new(),
            });
            e.run_steps(1);
            // Receivers p1, p2 heard from themselves + each other + maybe p0.
            for p in 1..3 {
                let got = e.process(p).seen_per_step[0];
                assert!((2..=3).contains(&got));
                if got == 2 {
                    saw_partial = true;
                }
            }
        }
        assert!(saw_partial, "partial final broadcast never dropped a copy");
    }

    #[test]
    fn decide_and_halt_work() {
        struct Once;
        impl SyncProcess for Once {
            type Msg = ();
            type Output = ();
            fn send(&mut self, _s: u64, _out: &mut Vec<()>) {}
            fn receive(&mut self, s: u64, _r: &mut Vec<()>, sink: &mut SyncSink<()>) {
                assert_eq!(s, 0, "no callbacks after halt");
                sink.decide(42);
                sink.halt();
            }
        }
        let cfg = SyncConfig::new(IdentityAssignment::unique(2), FailureSchedule::none(2));
        let mut e = SyncEngine::new(cfg, |_, _| Once);
        e.run_steps(3);
        assert!(e.all_correct_decided());
        assert_eq!(e.decisions()[1], Some((Time::ZERO, 42)));
    }

    #[test]
    fn run_until_stops_on_condition() {
        let mut e = counter_engine(FailureSchedule::none(2));
        let met = e.run_until(100, |e| e.current_step() == 5);
        assert!(met);
        assert_eq!(e.current_step(), 5);
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let sched = FailureSchedule::none(4).with_crash(2, Time::from_ticks(1));
            let cfg = SyncConfig::new(IdentityAssignment::anonymous(4), sched).with_seed(seed);
            let mut e = SyncEngine::new(cfg, |_, _| Counter {
                seen_per_step: Vec::new(),
            });
            e.run_steps(4);
            e.histories().to_vec()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn recycled_buffers_match_legacy_buffers() {
        let run = |legacy: bool| {
            let sched = FailureSchedule::none(5)
                .with_crash(1, Time::from_ticks(2))
                .with_crash(3, Time::from_ticks(5));
            let cfg = SyncConfig::new(IdentityAssignment::round_robin(5, 2), sched)
                .with_seed(11)
                .with_legacy_hot_path(legacy);
            let mut e = SyncEngine::new(cfg, |_, _| Counter {
                seen_per_step: Vec::new(),
            });
            e.run_steps(8);
            (e.histories().to_vec(), e.metrics().clone())
        };
        assert_eq!(run(false), run(true));
    }
}
