//! Property-based tests of the network timing models: every route
//! decision must respect its model's contract.

use homonym_core::time::{Span, Time};
use homonym_sim::network::{LatencyDistribution, NetworkModel, PreGstBehavior};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Asynchronous latencies stay within the distribution's bounds and
    /// are never zero.
    #[test]
    fn async_latency_in_bounds(
        min in 0u64..10,
        spread in 0u64..10,
        sent in 0u64..1_000,
        seed in any::<u64>(),
    ) {
        let dist = LatencyDistribution::Uniform {
            min: Span::from_ticks(min),
            max: Span::from_ticks(min + spread),
        };
        let model = NetworkModel::Asynchronous(dist.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let at = model
                .route(Time::from_ticks(sent), &mut rng)
                .expect("asynchronous links are reliable");
            let d = at - Time::from_ticks(sent);
            prop_assert!(d >= Span::TICK);
            prop_assert!(d <= dist.upper_bound());
        }
    }

    /// After GST, partially synchronous copies are always delivered and
    /// within δ; before GST, delays stay within the configured bound when
    /// delivered at all.
    #[test]
    fn partial_sync_contract(
        gst in 0u64..200,
        delta in 1u64..20,
        loss in 0u8..=100,
        max_delay in 1u64..60,
        sent in 0u64..400,
        seed in any::<u64>(),
    ) {
        let model = NetworkModel::PartialSync {
            gst: Time::from_ticks(gst),
            delta: Span::from_ticks(delta),
            pre_gst: PreGstBehavior::LossyDelay {
                loss_percent: loss,
                max_delay: Span::from_ticks(max_delay),
            },
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let routed = model.route(Time::from_ticks(sent), &mut rng);
            if sent >= gst {
                let at = routed.expect("post-GST copies are never lost");
                let d = at - Time::from_ticks(sent);
                prop_assert!(d >= Span::TICK && d <= Span::from_ticks(delta.max(1)));
            } else if let Some(at) = routed {
                let d = at - Time::from_ticks(sent);
                prop_assert!(d >= Span::TICK && d <= Span::from_ticks(max_delay.max(1)));
            }
        }
    }

    /// The skewed-tail distribution respects `base..=base+tail`.
    #[test]
    fn skewed_tail_in_bounds(
        base in 1u64..10,
        tail in 0u64..30,
        slow in 0u8..=100,
        seed in any::<u64>(),
    ) {
        let dist = LatencyDistribution::SkewedTail {
            base: Span::from_ticks(base),
            tail: Span::from_ticks(tail),
            slow_percent: slow,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let d = dist.sample(&mut rng);
            prop_assert!(d.ticks() >= base.max(1));
            prop_assert!(d <= dist.upper_bound());
        }
    }

    /// Synchronous copies always take exactly one tick.
    #[test]
    fn synchronous_is_one_tick(sent in 0u64..1_000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let at = NetworkModel::Synchronous
            .route(Time::from_ticks(sent), &mut rng)
            .expect("synchronous links are reliable");
        prop_assert_eq!(at, Time::from_ticks(sent + 1));
    }
}
