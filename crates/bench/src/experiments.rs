//! Experiment runners shared by the Criterion benches and the table
//! generator binaries.
//!
//! Each `figN_*` function reproduces the behavioural content of the
//! corresponding figure of the paper on a parameterized workload and
//! returns a structured result row; the property checkers run inside, so
//! every data point is also a correctness assertion.

use homonym_consensus::{
    classify_fig8, classify_fig9, AOmegaPolicy, AnonFloodingConsensus, HOmegaPolicy,
    MajorityConsensus, OmegaPolicy, PFloodingConsensus, QuorumConsensus, UncoordinatedHOmegaPolicy,
};
use homonym_core::prelude::*;
use homonym_detectors::ap_estimator::ApEstimatorProcess;
use homonym_detectors::e_list::EListProcess;
use homonym_detectors::evt_hp::{classify_evt_hp, split_snapshots, EvtHpProcess};
use homonym_detectors::h_sigma_step::HSigmaStepProcess;
use homonym_detectors::oracle::{OracleWorld, PreStability};
use homonym_reductions::{
    APToEvtHP, APToHSigmaProcess, ASigmaToHSigma, EvtHPToHOmega, HSigmaToSigmaProcess,
    SigmaToHSigmaProcess,
};
use homonym_sim::prelude::*;
// The shared scaffolding of every multi-seed sweep now lives in
// `homonym_sim::sweep` (the chaos falsification harness builds on it
// too); re-exported here so existing callers keep working.
pub use homonym_sim::sweep::parallel_seed_sweep;

/// A uniformly jittered reliable asynchronous network.
#[must_use]
pub fn async_net(min: u64, max: u64) -> NetworkModel {
    NetworkModel::Asynchronous(LatencyDistribution::Uniform {
        min: Span::from_ticks(min),
        max: Span::from_ticks(max),
    })
}

/// A partially synchronous network with lossy pre-GST behaviour (used for
/// detector-only experiments).
#[must_use]
pub fn hps_lossy(gst: u64, delta: u64) -> NetworkModel {
    NetworkModel::PartialSync {
        gst: Time::from_ticks(gst),
        delta: Span::from_ticks(delta),
        pre_gst: PreGstBehavior::LossyDelay {
            loss_percent: 40,
            max_delay: Span::from_ticks(3 * delta.max(10)),
        },
    }
}

/// A partially synchronous network whose pre-GST messages are delayed but
/// never lost (required when consensus runs on top: `HAS` assumes
/// reliable links).
#[must_use]
pub fn hps_delay_only(gst: u64, delta: u64) -> NetworkModel {
    NetworkModel::PartialSync {
        gst: Time::from_ticks(gst),
        delta: Span::from_ticks(delta),
        pre_gst: PreGstBehavior::DelayOnly {
            max_delay: Span::from_ticks(gst.max(10)),
        },
    }
}

/// Spreads `crashes` crash times evenly before `by`.
#[must_use]
pub fn staggered_crashes(n: usize, crashes: usize, by: u64) -> FailureSchedule {
    let mut sched = FailureSchedule::none(n);
    for k in 0..crashes.min(n.saturating_sub(1)) {
        let t = by * (k as u64 + 1) / (crashes as u64 + 1);
        sched.set_crash(n - 1 - k, Time::from_ticks(t.max(1)));
    }
    sched
}

// ---------------------------------------------------------------------------
// Figures 1, 2 — Σ → HΣ
// ---------------------------------------------------------------------------

/// Result row for the Σ → HΣ transformations.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SigmaToHSigmaResult {
    /// Number of processes.
    pub n: usize,
    /// Whether the membership was known initially (Figure 1 vs Figure 2).
    pub membership_known: bool,
    /// Latest time the HΣ liveness predicate locked in at a correct process.
    pub liveness_by: u64,
    /// Distinct labels observed across the run.
    pub labels: usize,
    /// `IDENT` broadcasts (0 for Figure 1 — it must not communicate).
    pub broadcasts: u64,
}

/// Runs Figure 1 (`membership_known = true`) or Figure 2 over `n`
/// unique-identifier processes with `crashes` staggered crashes.
///
/// # Panics
///
/// Panics if the produced output violates the `HΣ` class properties.
#[must_use]
pub fn fig12_sigma_to_hsigma(
    n: usize,
    crashes: usize,
    membership_known: bool,
    seed: u64,
) -> SigmaToHSigmaResult {
    let assign = IdentityAssignment::unique(n);
    let sched = staggered_crashes(n, crashes, 30);
    let w = OracleWorld::new(sched.clone(), assign.clone(), Time::ZERO);
    let cfg = SimConfig::new(assign.clone(), sched.clone(), async_net(1, 4)).with_seed(seed);
    let membership = assign.multiset().to_set();
    let world = w.clone();
    let mut engine = Engine::new(cfg, move |_, _| {
        let sigma = world.sigma(Span::from_ticks(8));
        if membership_known {
            SigmaToHSigmaProcess::with_known_membership(
                sigma,
                membership.clone(),
                Span::from_ticks(3),
            )
        } else {
            SigmaToHSigmaProcess::learning_membership(sigma, Span::from_ticks(3))
        }
    });
    engine.run_until(Time::from_ticks(150));
    let rep = check_h_sigma(engine.histories(), &sched, &assign).expect("HΣ class valid");
    SigmaToHSigmaResult {
        n,
        membership_known,
        liveness_by: rep
            .liveness_from
            .iter()
            .flatten()
            .map(|t| t.ticks())
            .max()
            .unwrap_or(0),
        labels: rep.labels_observed,
        broadcasts: engine.metrics().broadcasts,
    }
}

// ---------------------------------------------------------------------------
// Figure 3 — class E
// ---------------------------------------------------------------------------

/// Result row for the class-`E` implementation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EListResult {
    /// Number of processes.
    pub n: usize,
    /// Number of crashes injected.
    pub crashes: usize,
    /// Time from which the correct identifiers held the prefix forever.
    pub stabilization: u64,
    /// `ALIVE` broadcasts over the run.
    pub broadcasts: u64,
}

/// Runs Figure 3 over `n` processes with `crashes` staggered crashes.
///
/// # Panics
///
/// Panics if the output violates Definition 1.
#[must_use]
pub fn fig3_e_list(n: usize, crashes: usize, seed: u64) -> EListResult {
    let assign = IdentityAssignment::unique(n);
    let sched = staggered_crashes(n, crashes, 60);
    let cfg = SimConfig::new(assign.clone(), sched.clone(), async_net(1, 5)).with_seed(seed);
    let mut engine = Engine::new(cfg, |_, _| EListProcess::new(Span::from_ticks(2)));
    engine.run_until(Time::from_ticks(300));
    let rep = check_e_list(engine.histories(), &sched, &assign).expect("class E valid");
    EListResult {
        n,
        crashes,
        stabilization: rep.stabilization.ticks(),
        broadcasts: engine.metrics().broadcasts,
    }
}

// ---------------------------------------------------------------------------
// Figure 4 — HΣ → Σ
// ---------------------------------------------------------------------------

/// Result row for the HΣ → Σ transformation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct HSigmaToSigmaResult {
    /// Number of processes.
    pub n: usize,
    /// Number of crashes injected.
    pub crashes: usize,
    /// Latest time `trusted ⊆ I(Correct)` locked in at a correct process.
    pub liveness_by: u64,
    /// `LABELS` broadcasts over the run.
    pub broadcasts: u64,
}

/// Runs Figure 4 (with oracle `HΣ` and class-`E` inputs) over `n`
/// unique-identifier processes.
///
/// # Panics
///
/// Panics if the output violates the `Σ` class properties.
#[must_use]
pub fn fig4_hsigma_to_sigma(n: usize, crashes: usize, seed: u64) -> HSigmaToSigmaResult {
    let assign = IdentityAssignment::unique(n);
    let sched = staggered_crashes(n, crashes, 40);
    let w = OracleWorld::new(sched.clone(), assign.clone(), Time::from_ticks(50));
    let cfg = SimConfig::new(assign.clone(), sched.clone(), async_net(1, 4)).with_seed(seed);
    let world = w.clone();
    let mut engine = Engine::new(cfg, move |p, _| {
        HSigmaToSigmaProcess::new(
            world.h_sigma_for(p, PreStability::Truthful),
            world.e_list_for(p, PreStability::Chaotic),
            Span::from_ticks(3),
        )
    });
    engine.run_until(Time::from_ticks(250));
    let rep = check_sigma(engine.histories(), &sched, &assign).expect("Σ class valid");
    HSigmaToSigmaResult {
        n,
        crashes,
        liveness_by: rep
            .liveness_from
            .iter()
            .flatten()
            .map(|t| t.ticks())
            .max()
            .unwrap_or(0),
        broadcasts: engine.metrics().broadcasts,
    }
}

// ---------------------------------------------------------------------------
// Figure 5 — the relation diagram
// ---------------------------------------------------------------------------

/// One validated arrow of the Figure 5 diagram.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RelationArrow {
    /// Source and target classes, e.g. `"AP → ◇HP"`.
    pub arrow: &'static str,
    /// Where the reduction is stated in the paper.
    pub stated_in: &'static str,
    /// Whether the produced output passed the target class's checkers.
    pub valid: bool,
    /// A short metric string (labels, convergence time, ...).
    pub note: String,
}

/// Validates every arrow of Figure 5 on a common anonymous/unique-id
/// workload; returns one row per arrow.
#[must_use]
pub fn fig5_relations(seed: u64) -> Vec<RelationArrow> {
    let mut rows = Vec::new();

    // Anonymous world shared by the AP/AΣ arrows.
    let an_sched = FailureSchedule::none(5)
        .with_crash(0, Time::from_ticks(8))
        .with_crash(3, Time::from_ticks(16));
    let an_assign = IdentityAssignment::anonymous(5);
    let aw = OracleWorld::new(an_sched.clone(), an_assign.clone(), Time::from_ticks(24));

    let sample = |f: &dyn Fn(usize, Time) -> EvtHPOutput| -> Vec<History<EvtHPOutput>> {
        (0..5)
            .map(|p| {
                (0..=60)
                    .map(Time::from_ticks)
                    .filter(|&t| an_sched.is_alive(p, t))
                    .map(|t| (t, f(p, t)))
                    .collect()
            })
            .collect()
    };

    // AP → ◇HP (Lemma 2).
    {
        let h = sample(&|_p, t| APToEvtHP::new(aw.ap(Span::from_ticks(3))).evt_hp(t));
        let rep = check_evt_hp(&h, &an_sched, &an_assign);
        rows.push(RelationArrow {
            arrow: "AP → ◇HP",
            stated_in: "Lemma 2",
            valid: rep.is_ok(),
            note: rep.map_or_else(|e| e.to_string(), |r| format!("stab {}", r.stabilization)),
        });
    }

    // ◇HP → HΩ (Observation 1).
    {
        let h: Vec<History<HOmegaOutput>> = (0..5)
            .map(|p| {
                (0..=60)
                    .map(Time::from_ticks)
                    .filter(|&t| an_sched.is_alive(p, t))
                    .map(|t| {
                        let src = aw.evt_hp_for(p, PreStability::Chaotic);
                        (t, EvtHPToHOmega::new(src).h_omega(t))
                    })
                    .collect()
            })
            .collect();
        let rep = check_h_omega(&h, &an_sched, &an_assign);
        rows.push(RelationArrow {
            arrow: "◇HP → HΩ",
            stated_in: "Observation 1",
            valid: rep.is_ok(),
            note: rep.map_or_else(
                |e| e.to_string(),
                |r| format!("leader {}×{}", r.leader, r.multiplicity),
            ),
        });
    }

    // AΣ → HΣ (Theorem 3).
    {
        let h: Vec<History<HSigmaOutput>> = (0..5)
            .map(|p| {
                (0..=60)
                    .map(Time::from_ticks)
                    .filter(|&t| an_sched.is_alive(p, t))
                    .map(|t| {
                        let src = aw.a_sigma_for(p, PreStability::Truthful);
                        (t, ASigmaToHSigma::new(src).h_sigma(t))
                    })
                    .collect()
            })
            .collect();
        let rep = check_h_sigma(&h, &an_sched, &an_assign);
        rows.push(RelationArrow {
            arrow: "AΣ → HΣ",
            stated_in: "Theorem 3",
            valid: rep.is_ok(),
            note: rep.map_or_else(
                |e| e.to_string(),
                |r| format!("{} labels", r.labels_observed),
            ),
        });
    }

    // AP → HΣ (Lemma 3), as a communication-free process.
    {
        let cfg = SimConfig::new(
            an_assign.clone(),
            an_sched.clone(),
            NetworkModel::reliable(Span::TICK),
        )
        .with_seed(seed);
        let world = aw.clone();
        let mut engine = Engine::new(cfg, move |_, _| {
            APToHSigmaProcess::new(world.ap(Span::from_ticks(3)), Span::from_ticks(2))
        });
        engine.run_until(Time::from_ticks(80));
        let rep = check_h_sigma(engine.histories(), &an_sched, &an_assign);
        rows.push(RelationArrow {
            arrow: "AP → HΣ",
            stated_in: "Lemma 3 / Theorem 4",
            valid: rep.is_ok() && engine.metrics().broadcasts == 0,
            note: rep.map_or_else(
                |e| e.to_string(),
                |r| format!("{} labels, 0 msgs", r.labels_observed),
            ),
        });
    }

    // Σ → HΣ with and without membership (Figures 1-2, Theorem 1).
    for known in [true, false] {
        let r = fig12_sigma_to_hsigma(4, 1, known, seed);
        rows.push(RelationArrow {
            arrow: if known {
                "Σ → HΣ (membership known)"
            } else {
                "Σ → HΣ (membership unknown)"
            },
            stated_in: if known {
                "Thm 1 / Fig 1"
            } else {
                "Thm 1 / Fig 2"
            },
            valid: true, // fig12 panics on violation
            note: format!("{} labels, {} msgs", r.labels, r.broadcasts),
        });
    }

    // HΣ → Σ (Figure 4, Theorem 2).
    {
        let r = fig4_hsigma_to_sigma(4, 1, seed);
        rows.push(RelationArrow {
            arrow: "HΣ → Σ (via E)",
            stated_in: "Thm 2 / Fig 4",
            valid: true, // fig4 panics on violation
            note: format!("liveness by t{}", r.liveness_by),
        });
    }

    rows
}

// ---------------------------------------------------------------------------
// Figure 6 — ◇HP / HΩ in HPS
// ---------------------------------------------------------------------------

/// Result row for the Figure 6 detector.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig6Result {
    /// Number of processes.
    pub n: usize,
    /// Number of distinct identifiers.
    pub l: usize,
    /// Global stabilization time of the network.
    pub gst: u64,
    /// Post-GST delivery bound.
    pub delta: u64,
    /// `◇HP` stabilization time (all correct processes locked on
    /// `I(Correct)`).
    pub evt_hp_stabilization: u64,
    /// `HΩ` stabilization time.
    pub h_omega_stabilization: u64,
    /// Largest adaptive timeout reached by a correct process.
    pub final_timeout: u64,
    /// `POLLING` broadcasts.
    pub polling: u64,
    /// `P_REPLY` broadcasts.
    pub replies: u64,
}

/// Runs Figure 6 in `HPS` with `crashes` staggered crashes before GST.
///
/// # Panics
///
/// Panics if the run violates the `◇HP` or `HΩ` class properties.
#[must_use]
pub fn fig6_evt_hp(
    n: usize,
    l: usize,
    gst: u64,
    delta: u64,
    crashes: usize,
    seed: u64,
) -> Fig6Result {
    let assign = IdentityAssignment::round_robin(n, l);
    let sched = staggered_crashes(n, crashes, gst.max(2));
    let cfg = SimConfig::new(assign.clone(), sched.clone(), hps_lossy(gst, delta)).with_seed(seed);
    let mut engine = Engine::new(cfg, |_, _| EvtHpProcess::new());
    engine.set_classifier(classify_evt_hp);
    let horizon = 40 * gst.max(30) + 4000;
    engine.run_until(Time::from_ticks(horizon));
    let mut evt = Vec::new();
    let mut omg = Vec::new();
    for h in engine.histories() {
        let (e, o) = split_snapshots(h);
        evt.push(e);
        omg.push(o);
    }
    let evt_rep = check_evt_hp(&evt, &sched, &assign).expect("◇HP class valid");
    let omg_rep = check_h_omega(&omg, &sched, &assign).expect("HΩ class valid");
    let final_timeout = sched
        .correct_set()
        .into_iter()
        .map(|p| engine.process(p).timeout())
        .max()
        .unwrap_or(0);
    Fig6Result {
        n,
        l,
        gst,
        delta,
        evt_hp_stabilization: evt_rep.stabilization.ticks(),
        h_omega_stabilization: omg_rep.stabilization.ticks(),
        final_timeout,
        polling: engine
            .metrics()
            .by_class
            .get("POLLING")
            .copied()
            .unwrap_or(0),
        replies: engine
            .metrics()
            .by_class
            .get("P_REPLY")
            .copied()
            .unwrap_or(0),
    }
}

// ---------------------------------------------------------------------------
// Figure 7 — HΣ in HSS
// ---------------------------------------------------------------------------

/// Result row for the Figure 7 detector.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig7Result {
    /// Number of processes.
    pub n: usize,
    /// Number of crashes injected.
    pub crashes: usize,
    /// Synchronous steps executed.
    pub steps: u64,
    /// Latest step at which the liveness predicate locked in.
    pub liveness_by: u64,
    /// Distinct quorum labels observed (≈ alive-set epochs + crash-step
    /// variants).
    pub labels: usize,
    /// `IDENT` broadcasts.
    pub broadcasts: u64,
}

/// Runs Figure 7 for `steps` lock-step rounds.
///
/// # Panics
///
/// Panics if the run violates the `HΣ` class properties.
#[must_use]
pub fn fig7_h_sigma(n: usize, l: usize, crashes: usize, steps: u64, seed: u64) -> Fig7Result {
    let assign = IdentityAssignment::round_robin(n, l);
    let sched = staggered_crashes(n, crashes, steps.saturating_sub(2).max(1));
    let mut session = homonym_chaos::SessionBuilder::new(n, l)
        .with_seed(seed)
        .with_schedule(sched.clone())
        .with_deadline_ticks(steps)
        .sync_hsigma();
    session.run();
    let engine = session.engine();
    let rep = check_h_sigma(engine.histories(), &sched, &assign).expect("HΣ class valid");
    Fig7Result {
        n,
        crashes,
        steps,
        liveness_by: rep
            .liveness_from
            .iter()
            .flatten()
            .map(|t| t.ticks())
            .max()
            .unwrap_or(0),
        labels: rep.labels_observed,
        broadcasts: engine.metrics().broadcasts,
    }
}

// ---------------------------------------------------------------------------
// Figure 8 — consensus with HΩ, majority
// ---------------------------------------------------------------------------

/// Which algorithm variant a consensus run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum ConsensusVariant {
    /// Figure 8 with `HΩ` (homonymous).
    Fig8HOmega,
    /// Classical `Ω` baseline (unique identifiers, no coordination phase).
    ClassicalOmega,
    /// Anonymous `AΩ` baseline (no coordination phase).
    AnonymousAOmega,
}

/// Result row for a consensus run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ConsensusResult {
    /// Variant executed.
    pub variant: ConsensusVariant,
    /// Number of processes.
    pub n: usize,
    /// Number of distinct identifiers.
    pub l: usize,
    /// Crashes injected.
    pub crashes: usize,
    /// Detector stabilization time used by the oracle.
    pub stabilize: u64,
    /// Whether all correct processes decided before the deadline.
    pub decided: bool,
    /// Time by which every correct process had decided.
    pub last_decision: u64,
    /// Highest round reached by any process.
    pub rounds: u64,
    /// Total broadcasts.
    pub broadcasts: u64,
}

/// Runs one consensus configuration.
///
/// # Panics
///
/// Panics if a decision violates validity or agreement, or if the variant
/// is expected to terminate (`expect_decide`) and does not.
#[must_use]
pub fn fig8_consensus(
    variant: ConsensusVariant,
    n: usize,
    l: usize,
    crashes: usize,
    stabilize: u64,
    expect_decide: bool,
    seed: u64,
) -> ConsensusResult {
    let sched = staggered_crashes(n, crashes, stabilize.max(20));
    let deadline = Time::from_ticks(60 * stabilize.max(20) + 30_000);
    fig8_consensus_on(
        variant,
        n,
        l,
        stabilize,
        expect_decide,
        seed,
        sched,
        deadline,
    )
}

/// Shared engine setup for every Figure 8 run: only the crash schedule
/// and deadline vary between the public entry points.
#[allow(clippy::too_many_arguments)]
fn fig8_consensus_on(
    variant: ConsensusVariant,
    n: usize,
    l: usize,
    stabilize: u64,
    expect_decide: bool,
    seed: u64,
    sched: FailureSchedule,
    deadline: Time,
) -> ConsensusResult {
    let assign = match variant {
        ConsensusVariant::Fig8HOmega => IdentityAssignment::round_robin(n, l),
        ConsensusVariant::ClassicalOmega => IdentityAssignment::unique(n),
        ConsensusVariant::AnonymousAOmega => IdentityAssignment::anonymous(n),
    };
    let t = (n - 1) / 2;
    let w = OracleWorld::new(sched.clone(), assign.clone(), Time::from_ticks(stabilize));
    let proposals: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
    let props = proposals.clone();
    let cfg = SimConfig::new(assign, sched.clone(), async_net(1, 5)).with_seed(seed);

    let (decisions, rounds, broadcasts) = match variant {
        ConsensusVariant::Fig8HOmega => {
            let mut engine = Engine::new(cfg, |p, _| {
                MajorityConsensus::new(
                    props[p],
                    n,
                    t,
                    HOmegaPolicy(w.h_omega_for(p, PreStability::Chaotic)),
                )
            });
            engine.set_classifier(classify_fig8);
            engine.run_until_all_correct_decided(deadline);
            (
                engine.outcome(proposals.clone()),
                max_round(engine.histories()),
                engine.metrics().broadcasts,
            )
        }
        ConsensusVariant::ClassicalOmega => {
            let mut engine = Engine::new(cfg, |p, _| {
                MajorityConsensus::new(
                    props[p],
                    n,
                    t,
                    OmegaPolicy(w.omega_for(p, PreStability::Chaotic)),
                )
            });
            engine.set_classifier(classify_fig8);
            engine.run_until_all_correct_decided(deadline);
            (
                engine.outcome(proposals.clone()),
                max_round(engine.histories()),
                engine.metrics().broadcasts,
            )
        }
        ConsensusVariant::AnonymousAOmega => {
            let mut engine = Engine::new(cfg, |p, _| {
                MajorityConsensus::new(
                    props[p],
                    n,
                    t,
                    AOmegaPolicy(w.a_omega_for(p, PreStability::Chaotic)),
                )
            });
            engine.set_classifier(classify_fig8);
            engine.run_until_all_correct_decided(deadline);
            (
                engine.outcome(proposals.clone()),
                max_round(engine.histories()),
                engine.metrics().broadcasts,
            )
        }
    };

    let crashes = sched.num_faulty();
    finish_consensus_row(
        variant,
        n,
        l,
        crashes,
        stabilize,
        expect_decide,
        &sched,
        decisions,
        rounds,
        broadcasts,
    )
}

fn max_round(histories: &[History<u64>]) -> u64 {
    histories
        .iter()
        .flat_map(|h| h.iter().map(|(_, r)| *r))
        .max()
        .unwrap_or(0)
}

#[allow(clippy::too_many_arguments)]
fn finish_consensus_row(
    variant: ConsensusVariant,
    n: usize,
    l: usize,
    crashes: usize,
    stabilize: u64,
    expect_decide: bool,
    sched: &FailureSchedule,
    outcome: ConsensusOutcome,
    rounds: u64,
    broadcasts: u64,
) -> ConsensusResult {
    match check_consensus(&outcome, sched) {
        Ok(rep) => ConsensusResult {
            variant,
            n,
            l,
            crashes,
            stabilize,
            decided: true,
            last_decision: rep.last_decision.ticks(),
            rounds,
            broadcasts,
        },
        Err(e) => {
            assert!(
                e.property == "termination" && !expect_decide,
                "consensus property violated: {e}"
            );
            ConsensusResult {
                variant,
                n,
                l,
                crashes,
                stabilize,
                decided: false,
                last_decision: 0,
                rounds,
                broadcasts,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 9 — consensus with (HΩ, HΣ), any t
// ---------------------------------------------------------------------------

/// Runs Figure 9 with oracle detectors; tolerates any number of crashes.
///
/// # Panics
///
/// Panics on any consensus property violation (termination included when
/// `expect_decide`).
#[must_use]
pub fn fig9_consensus(
    n: usize,
    l: usize,
    crashes: usize,
    stabilize: u64,
    seed: u64,
) -> ConsensusResult {
    let assign = IdentityAssignment::round_robin(n, l);
    let sched = staggered_crashes(n, crashes, stabilize.max(20));
    let w = OracleWorld::new(sched.clone(), assign.clone(), Time::from_ticks(stabilize));
    let proposals: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
    let props = proposals.clone();
    let cfg = SimConfig::new(assign, sched.clone(), async_net(1, 5)).with_seed(seed);
    let mut engine = Engine::new(cfg, |p, _| {
        QuorumConsensus::new(
            props[p],
            w.h_omega_for(p, PreStability::Chaotic),
            w.h_sigma_for(p, PreStability::Truthful),
        )
    });
    engine.set_classifier(classify_fig9);
    let deadline = Time::from_ticks(60 * stabilize.max(20) + 30_000);
    engine.run_until_all_correct_decided(deadline);
    let rounds = max_round(engine.histories());
    let broadcasts = engine.metrics().broadcasts;
    finish_consensus_row(
        ConsensusVariant::Fig8HOmega, // variant field unused for fig9 rows
        n,
        l,
        crashes,
        stabilize,
        true,
        &sched,
        engine.outcome(proposals),
        rounds,
        broadcasts,
    )
}

/// Runs Figure 8 with a **paralyzing** `HΩ` oracle: no process considers
/// itself a leader before `stabilize`, so decisions can only happen
/// afterwards — isolating how decision latency tracks detector
/// stabilization.
///
/// # Panics
///
/// Panics on any consensus property violation.
#[must_use]
pub fn fig8_tracks_stabilization(n: usize, l: usize, stabilize: u64, seed: u64) -> ConsensusResult {
    let assign = IdentityAssignment::round_robin(n, l);
    let sched = staggered_crashes(n, 1, stabilize.max(20));
    let t = (n - 1) / 2;
    let w = OracleWorld::new(sched.clone(), assign.clone(), Time::from_ticks(stabilize));
    let proposals: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
    let props = proposals.clone();
    let cfg = SimConfig::new(assign, sched.clone(), async_net(1, 5)).with_seed(seed);
    let mut engine = Engine::new(cfg, |p, _| {
        MajorityConsensus::new(
            props[p],
            n,
            t,
            HOmegaPolicy(w.h_omega_for(p, PreStability::Paralyzing)),
        )
    });
    let deadline = Time::from_ticks(60 * stabilize.max(20) + 30_000);
    engine.run_until_all_correct_decided(deadline);
    let rounds = max_round(engine.histories());
    let broadcasts = engine.metrics().broadcasts;
    let row = finish_consensus_row(
        ConsensusVariant::Fig8HOmega,
        n,
        l,
        1,
        stabilize,
        true,
        &sched,
        engine.outcome(proposals),
        rounds,
        broadcasts,
    );
    assert!(
        row.last_decision >= stabilize,
        "paralyzed run decided before stabilization"
    );
    row
}

/// Runs Figure 8 under a *majority* of crashes and confirms it does not
/// terminate (its standing assumption is violated), returning the rounds
/// it burned before the deadline.
///
/// The crashes land at `t = 1`, before any quorum can form, so blocking
/// is guaranteed rather than a race between round latency and the crash
/// schedule.
///
/// # Panics
///
/// Panics if safety breaks or if it unexpectedly decides.
#[must_use]
pub fn fig8_blocks_beyond_majority(n: usize, crashes: usize, seed: u64) -> ConsensusResult {
    assert!(2 * crashes >= n, "this experiment needs a crashed majority");
    let mut sched = FailureSchedule::none(n);
    for k in 0..crashes.min(n - 1) {
        sched.set_crash(n - 1 - k, Time::from_ticks(1));
    }
    fig8_consensus_on(
        ConsensusVariant::Fig8HOmega,
        n,
        2.min(n),
        10,
        false,
        seed,
        sched,
        Time::from_ticks(30_000),
    )
}

// ---------------------------------------------------------------------------
// End-to-end (Figure 6 + Figure 8) in HPS
// ---------------------------------------------------------------------------

/// Result row for the stacked end-to-end experiment.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E2eResult {
    /// Network GST.
    pub gst: u64,
    /// Time by which every correct process decided.
    pub last_decision: u64,
    /// Total broadcasts (detector + consensus).
    pub broadcasts: u64,
}

/// Stacks the Figure 6 implementation under Figure 8 consensus in
/// `HPS[∅]` and sweeps the GST.
///
/// # Panics
///
/// Panics on any consensus property violation.
#[must_use]
pub fn e2e_partial_synchrony(n: usize, l: usize, gst: u64, seed: u64) -> E2eResult {
    let assign = IdentityAssignment::round_robin(n, l);
    let t = (n - 1) / 2;
    let sched = staggered_crashes(n, t.min(1), gst.max(10));
    let proposals: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    let props = proposals.clone();
    let cfg = SimConfig::new(assign, sched.clone(), hps_delay_only(gst, 4)).with_seed(seed);
    let mut engine = Engine::new(cfg, |p, _| {
        let cell: SharedCell<HOmegaOutput> =
            SharedCell::new(HOmegaOutput::new(Identity::BOTTOM, 1));
        let detector = EvtHpProcess::new().with_h_omega_mirror(cell.clone());
        let consensus = MajorityConsensus::new(props[p], n, t, HOmegaPolicy(cell))
            .with_tick(Span::from_ticks(2));
        Stacked::new(detector, consensus)
    });
    engine.run_until_all_correct_decided(Time::from_ticks(200 * gst.max(10) + 100_000));
    let rep = check_consensus(&engine.outcome(proposals), &sched).expect("consensus holds");
    E2eResult {
        gst,
        last_decision: rep.last_decision.ticks(),
        broadcasts: engine.metrics().broadcasts,
    }
}

// ---------------------------------------------------------------------------
// Price of anonymity — P vs AP flooding
// ---------------------------------------------------------------------------

/// Result row for the flooding baselines.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FloodingResult {
    /// Tolerated crashes `t` (with `n = 2t + 1`).
    pub t: usize,
    /// Rounds used by the `P` variant (expected `t + 1`).
    pub p_rounds: u64,
    /// Rounds used by the `AP` variant (expected `2t + 1`).
    pub ap_rounds: u64,
    /// Broadcasts of the `P` variant.
    pub p_broadcasts: u64,
    /// Broadcasts of the `AP` variant.
    pub ap_broadcasts: u64,
}

/// Runs both flooding baselines at `n = 2t + 1` with `f` actual crashes.
///
/// # Panics
///
/// Panics on any consensus property violation.
#[must_use]
pub fn price_of_anonymity(t: usize, f: usize, seed: u64) -> FloodingResult {
    let n = 2 * t + 1;
    let sched = staggered_crashes(n, f.min(t), 25);
    let proposals: Vec<u64> = (0..n as u64).map(|i| 7 * i + 3).collect();

    let wu = OracleWorld::new(sched.clone(), IdentityAssignment::unique(n), Time::ZERO);
    let props = proposals.clone();
    let cfg = SimConfig::new(
        IdentityAssignment::unique(n),
        sched.clone(),
        async_net(1, 4),
    )
    .with_seed(seed);
    let mut eu = Engine::new(cfg, |p, _| {
        PFloodingConsensus::new(props[p], t, wu.sigma(Span::ZERO))
    });
    eu.run_until_all_correct_decided(Time::from_ticks(100_000));
    check_consensus(&eu.outcome(proposals.clone()), &sched).expect("P flooding holds");

    let wa = OracleWorld::new(sched.clone(), IdentityAssignment::anonymous(n), Time::ZERO);
    let props = proposals.clone();
    let cfg = SimConfig::new(
        IdentityAssignment::anonymous(n),
        sched.clone(),
        async_net(1, 4),
    )
    .with_seed(seed);
    let mut ea = Engine::new(cfg, |p, _| {
        AnonFloodingConsensus::new(props[p], t, wa.ap(Span::from_ticks(4)))
    });
    ea.run_until_all_correct_decided(Time::from_ticks(100_000));
    check_consensus(&ea.outcome(proposals), &sched).expect("AP flooding holds");

    FloodingResult {
        t,
        p_rounds: max_round(eu.histories()),
        ap_rounds: max_round(ea.histories()),
        p_broadcasts: eu.metrics().broadcasts,
        ap_broadcasts: ea.metrics().broadcasts,
    }
}

// ---------------------------------------------------------------------------
// Ablations — the paper's two load-bearing mechanisms
// ---------------------------------------------------------------------------

/// Result row for the Leaders' Coordination Phase ablation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CoordinationAblationRow {
    /// Homonymy degree.
    pub l: usize,
    /// Runs (out of `seeds`) in which the *coordinated* variant decided.
    pub with_lc_decided: usize,
    /// Mean rounds of the coordinated variant (decided runs).
    pub with_lc_rounds: f64,
    /// Runs in which the *uncoordinated* variant decided before deadline.
    pub without_lc_decided: usize,
    /// Mean rounds of the uncoordinated variant (decided runs only).
    pub without_lc_rounds: f64,
    /// Seeds per variant.
    pub seeds: usize,
}

/// Ablates the Leaders' Coordination Phase: Figure 8 vs the same skeleton
/// with the phase removed (a naive port of the anonymous algorithm),
/// under homonymous leaders with *divergent* proposals. Safety is
/// asserted for both variants; only the uncoordinated one may fail to
/// terminate.
///
/// # Panics
///
/// Panics if either variant violates validity or agreement.
#[must_use]
pub fn ablate_coordination_phase(n: usize, l: usize, seeds: usize) -> CoordinationAblationRow {
    let deadline = Time::from_ticks(4_000);
    // The topology is seed-independent: build it once and let every
    // parallel run borrow it (clones inside are refcount bumps).
    let assign = IdentityAssignment::round_robin(n, l);
    let sched = FailureSchedule::none(n);
    let w = OracleWorld::new(sched.clone(), assign.clone(), Time::ZERO);
    let proposals: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();

    // Per seed: (coordinated decided, rounds), (uncoordinated ...).
    let per_seed = parallel_seed_sweep(seeds, |seed| {
        let mut row = [(false, 0u64); 2];
        for (slot, coordinated) in [true, false].into_iter().enumerate() {
            let props = &proposals;
            let cfg =
                SimConfig::new(assign.clone(), sched.clone(), async_net(1, 5)).with_seed(seed);
            let (outcome, rounds) = if coordinated {
                let mut e = Engine::new(cfg, |p, _| {
                    MajorityConsensus::new(
                        props[p],
                        n,
                        (n - 1) / 2,
                        HOmegaPolicy(w.h_omega_for(p, PreStability::Truthful)),
                    )
                });
                e.run_until_all_correct_decided(deadline);
                (
                    engine_outcome(&e, proposals.clone()),
                    max_round(e.histories()),
                )
            } else {
                let mut e = Engine::new(cfg, |p, _| {
                    MajorityConsensus::new(
                        props[p],
                        n,
                        (n - 1) / 2,
                        UncoordinatedHOmegaPolicy(w.h_omega_for(p, PreStability::Truthful)),
                    )
                });
                e.run_until_all_correct_decided(deadline);
                (
                    engine_outcome(&e, proposals.clone()),
                    max_round(e.histories()),
                )
            };
            match check_consensus(&outcome, &sched) {
                Ok(_) => row[slot] = (true, rounds),
                Err(e) => {
                    assert_eq!(e.property, "termination", "ablation broke safety: {e}");
                }
            }
        }
        row
    });
    let mut with_lc = (0usize, 0u64);
    let mut without_lc = (0usize, 0u64);
    for [coordinated, uncoordinated] in per_seed {
        if coordinated.0 {
            with_lc.0 += 1;
            with_lc.1 += coordinated.1;
        }
        if uncoordinated.0 {
            without_lc.0 += 1;
            without_lc.1 += uncoordinated.1;
        }
    }
    CoordinationAblationRow {
        l,
        with_lc_decided: with_lc.0,
        with_lc_rounds: with_lc.1 as f64 / with_lc.0.max(1) as f64,
        without_lc_decided: without_lc.0,
        without_lc_rounds: without_lc.1 as f64 / without_lc.0.max(1) as f64,
        seeds,
    }
}

fn engine_outcome<P: homonym_sim::process::Process>(
    engine: &Engine<P>,
    proposals: Vec<u64>,
) -> ConsensusOutcome {
    engine.outcome(proposals)
}

/// Result row for the timeout-adaptation ablation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TimeoutAblationRow {
    /// Post-GST delivery bound.
    pub delta: u64,
    /// Whether the adaptive variant converged, and when.
    pub adaptive: Option<u64>,
    /// Whether the frozen-timeout variant (timeout = 1) converged.
    pub frozen: Option<u64>,
}

/// Ablates the Figure 6 timeout adaptation (lines 33-34): an adaptive run
/// vs one with `timeout_p` frozen at 1 tick, for increasing `δ`. With a
/// frozen timeout below the round trip, the detector's rounds end before
/// any covering reply arrives and `◇HP` never converges.
#[must_use]
pub fn ablate_timeout_adaptation(delta: u64, seed: u64) -> TimeoutAblationRow {
    let run = |adaptive: bool| -> Option<u64> {
        let n = 4;
        let assign = IdentityAssignment::round_robin(n, 2);
        let sched = FailureSchedule::none(n).with_crash(3, Time::from_ticks(20));
        let cfg =
            SimConfig::new(assign.clone(), sched.clone(), hps_lossy(40, delta)).with_seed(seed);
        let mut engine = Engine::new(cfg, |_, _| {
            if adaptive {
                EvtHpProcess::new()
            } else {
                EvtHpProcess::new().with_fixed_timeout(1)
            }
        });
        engine.run_until(Time::from_ticks(6_000));
        let evt: Vec<_> = engine
            .histories()
            .iter()
            .map(|h| split_snapshots(h).0)
            .collect();
        check_evt_hp(&evt, &sched, &assign)
            .ok()
            .map(|r| r.stabilization.ticks())
    };
    TimeoutAblationRow {
        delta,
        adaptive: run(true),
        frozen: run(false),
    }
}

// ---------------------------------------------------------------------------
// E12 — the AP implementability boundary
// ---------------------------------------------------------------------------

/// Result row for the `AP` realism experiment.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ApRealismRow {
    /// Which network the estimator ran under.
    pub network: &'static str,
    /// Seeds whose run satisfied the full `AP` class.
    pub valid: usize,
    /// Seeds whose run violated the perpetual safety bound.
    pub safety_violations: usize,
    /// Seeds examined.
    pub seeds: usize,
}

/// Runs the windowed-count `AP` estimator under the synchronous model and
/// under `HPS` with pre-GST delays, counting class verdicts per seed —
/// reproducing the §1 claim that `AP` is realistic under synchrony but
/// not under eventually-timely links.
///
/// # Panics
///
/// Panics if a violation is anything but `AP` safety.
#[must_use]
pub fn ap_realism(synchronous: bool, seeds: usize) -> ApRealismRow {
    let n = 5;
    // Seed-independent setup, shared by every parallel run.
    let assign = IdentityAssignment::anonymous(n);
    let sched = staggered_crashes(n, 1, 20);
    let network = if synchronous {
        NetworkModel::Synchronous
    } else {
        NetworkModel::PartialSync {
            gst: Time::from_ticks(60),
            delta: Span::TICK,
            pre_gst: PreGstBehavior::DelayOnly {
                max_delay: Span::from_ticks(30),
            },
        }
    };
    let verdicts = parallel_seed_sweep(seeds, |seed| {
        let mut cfg =
            SimConfig::new(assign.clone(), sched.clone(), network.clone()).with_seed(seed);
        cfg.partial_broadcast_on_crash = false;
        let mut engine = Engine::new(cfg, |_, _| ApEstimatorProcess::new(Span::from_ticks(2)));
        engine.run_until(Time::from_ticks(250));
        match check_ap(engine.histories(), &sched) {
            Ok(_) => true,
            Err(e) => {
                assert_eq!(e.property, "safety", "unexpected violation: {e}");
                false
            }
        }
    });
    let valid = verdicts.iter().filter(|&&ok| ok).count();
    let violations = seeds - valid;
    ApRealismRow {
        network: if synchronous {
            "synchronous"
        } else {
            "HPS (pre-GST delays)"
        },
        valid,
        safety_violations: violations,
        seeds,
    }
}

// ---------------------------------------------------------------------------
// E13 — second combined result: Fig 7 + Fig 6 + Fig 9 in HSS, any t
// ---------------------------------------------------------------------------

/// Runs the triple stack (step-paced Figure 7 `HΣ`, Figure 6 `HΩ`,
/// Figure 9 consensus) over the synchronous model with `crashes` crashes.
///
/// # Panics
///
/// Panics on any consensus property violation.
#[must_use]
pub fn combined_synchronous(n: usize, l: usize, crashes: usize, seed: u64) -> ConsensusResult {
    let assign = IdentityAssignment::round_robin(n, l);
    let sched = staggered_crashes(n, crashes, 40);
    let proposals: Vec<u64> = (0..n as u64).map(|i| i * 5 + 2).collect();
    let props = proposals.clone();
    let cfg = SimConfig::new(assign, sched.clone(), NetworkModel::Synchronous).with_seed(seed);
    let mut engine = Engine::new(cfg, |p, _| {
        let sigma_cell: SharedCell<HSigmaOutput> = SharedCell::new(HSigmaOutput::new());
        let omega_cell: SharedCell<HOmegaOutput> =
            SharedCell::new(HOmegaOutput::new(Identity::BOTTOM, 1));
        let h_sigma = HSigmaStepProcess::new(Span::from_ticks(2)).with_mirror(sigma_cell.clone());
        let h_omega = EvtHpProcess::new().with_h_omega_mirror(omega_cell.clone());
        let consensus =
            QuorumConsensus::new(props[p], omega_cell, sigma_cell).with_tick(Span::from_ticks(2));
        Stacked::new(h_sigma, Stacked::new(h_omega, consensus))
    });
    engine.run_until_all_correct_decided(Time::from_ticks(300_000));
    let broadcasts = engine.metrics().broadcasts;
    finish_consensus_row(
        ConsensusVariant::Fig8HOmega,
        n,
        l,
        crashes,
        0,
        true,
        &sched,
        engine.outcome(proposals),
        0,
        broadcasts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_runners_smoke() {
        let r1 = fig12_sigma_to_hsigma(3, 1, true, 1);
        assert_eq!(r1.broadcasts, 0, "Figure 1 must be silent");
        let r2 = fig12_sigma_to_hsigma(3, 1, false, 1);
        assert!(r2.broadcasts > 0);
        assert_eq!(r1.labels, r2.labels);
    }

    #[test]
    fn fig3_runner_smoke() {
        let r = fig3_e_list(4, 1, 2);
        assert!(r.broadcasts > 0);
    }

    #[test]
    fn fig4_runner_smoke() {
        let r = fig4_hsigma_to_sigma(4, 1, 3);
        assert!(r.liveness_by > 0);
    }

    #[test]
    fn fig5_all_arrows_valid() {
        let rows = fig5_relations(4);
        assert_eq!(rows.len(), 7);
        for row in rows {
            assert!(row.valid, "{} failed: {}", row.arrow, row.note);
        }
    }

    #[test]
    fn fig6_runner_smoke() {
        let r = fig6_evt_hp(4, 2, 20, 2, 1, 5);
        assert!(r.evt_hp_stabilization >= 1);
        assert!(r.polling > 0 && r.replies > 0);
    }

    #[test]
    fn fig7_runner_smoke() {
        let r = fig7_h_sigma(5, 2, 1, 8, 6);
        assert!(r.labels >= 2);
        assert!(r.liveness_by <= r.steps);
    }

    #[test]
    fn fig8_runner_and_baselines_smoke() {
        for v in [
            ConsensusVariant::Fig8HOmega,
            ConsensusVariant::ClassicalOmega,
            ConsensusVariant::AnonymousAOmega,
        ] {
            let r = fig8_consensus(v, 4, 2, 1, 20, true, 7);
            assert!(r.decided, "{v:?} failed to decide");
        }
    }

    #[test]
    fn fig8_stabilization_tracking_smoke() {
        let r = fig8_tracks_stabilization(4, 2, 60, 8);
        assert!(r.last_decision >= 60);
    }

    #[test]
    fn fig9_runner_smoke_beyond_majority() {
        let r = fig9_consensus(4, 2, 3, 20, 9);
        assert!(r.decided, "Figure 9 must tolerate any t");
        let blocked = fig8_blocks_beyond_majority(4, 2, 9);
        assert!(!blocked.decided);
    }

    #[test]
    fn e2e_runner_smoke() {
        let r = e2e_partial_synchrony(3, 2, 20, 10);
        assert!(r.last_decision >= 1);
    }

    #[test]
    fn price_runner_smoke() {
        let r = price_of_anonymity(1, 1, 11);
        assert_eq!(r.p_rounds, 2);
        assert_eq!(r.ap_rounds, 3);
    }

    #[test]
    fn ablation_runners_smoke() {
        let a = ablate_coordination_phase(4, 2, 2);
        assert_eq!(a.with_lc_decided, 2, "coordinated variant always decides");
        let b = ablate_timeout_adaptation(2, 12);
        assert!(b.adaptive.is_some(), "adaptive variant converges");
        assert!(b.frozen.is_none(), "frozen variant must not converge");
    }

    #[test]
    fn ap_realism_smoke() {
        let sync = ap_realism(true, 3);
        assert_eq!(sync.valid, 3);
        let hps = ap_realism(false, 3);
        assert!(hps.safety_violations > 0);
    }

    #[test]
    fn combined_synchronous_smoke() {
        let r = combined_synchronous(4, 2, 3, 13);
        assert!(r.decided);
    }

    #[test]
    fn staggered_crashes_respects_budget() {
        let s = staggered_crashes(5, 2, 30);
        assert_eq!(s.num_faulty(), 2);
        assert!(s.last_crash_time().expect("crashes exist") < Time::from_ticks(30));
        let none = staggered_crashes(4, 0, 10);
        assert_eq!(none.num_faulty(), 0);
    }
}
