//! Experiment E8 — Figure 8: consensus in `HAS[t < n/2, HΩ]` (Theorem 7).
//!
//! Claims reproduced:
//! * validity/agreement/termination across n, ℓ, crash patterns, and
//!   detector stabilization times (every row is checker-verified);
//! * at ℓ = n the run matches the classical `Ω` baseline's behaviour, at
//!   ℓ = 1 the anonymous `AΩ` baseline's — Figure 8 generalizes both;
//! * the homonymous coordination phase costs extra COORD traffic that
//!   grows with n but keeps decision latency in the same band.

use homonym_bench::{fig8_consensus, fig8_tracks_stabilization, maybe_dump, ConsensusVariant};

fn main() {
    println!("## E8 — consensus with HΩ and a majority (Figure 8)\n");
    println!("### homonymy sweep (n=6, 2 crashes, detector stabilizes at t=60)\n");
    println!("| ℓ | decided | last decision | rounds | broadcasts |");
    println!("|---|---------|---------------|--------|------------|");
    let mut rows = Vec::new();
    for &l in &[1usize, 2, 3, 6] {
        let r = fig8_consensus(
            ConsensusVariant::Fig8HOmega,
            6,
            l,
            2,
            60,
            true,
            21 + l as u64,
        );
        println!(
            "| {} | {} | t{} | {} | {} |",
            r.l, r.decided, r.last_decision, r.rounds, r.broadcasts
        );
        rows.push(r);
    }
    maybe_dump("fig8_homonymy_sweep", &rows);

    println!("\n### n sweep (ℓ=2, 1 crash, stabilize t=40)\n");
    println!("| n | last decision | rounds | broadcasts |");
    println!("|---|---------------|--------|------------|");
    for &n in &[3usize, 5, 7, 9, 13] {
        let r = fig8_consensus(
            ConsensusVariant::Fig8HOmega,
            n,
            2,
            1,
            40,
            true,
            31 + n as u64,
        );
        println!(
            "| {} | t{} | {} | {} |",
            r.n, r.last_decision, r.rounds, r.broadcasts
        );
    }

    println!("\n### baseline crossover (n=6, 2 crashes, stabilize t=60)\n");
    println!("| variant | decided | last decision | rounds | broadcasts |");
    println!("|---------|---------|---------------|--------|------------|");
    let rows = [
        (
            "Fig 8, ℓ=6 (≡ unique ids)",
            fig8_consensus(ConsensusVariant::Fig8HOmega, 6, 6, 2, 60, true, 101),
        ),
        (
            "classical Ω baseline",
            fig8_consensus(ConsensusVariant::ClassicalOmega, 6, 6, 2, 60, true, 101),
        ),
        (
            "Fig 8, ℓ=1 (≡ anonymous)",
            fig8_consensus(ConsensusVariant::Fig8HOmega, 6, 1, 2, 60, true, 102),
        ),
        (
            "anonymous AΩ baseline",
            fig8_consensus(ConsensusVariant::AnonymousAOmega, 6, 1, 2, 60, true, 102),
        ),
    ];
    for (name, r) in rows {
        println!(
            "| {} | {} | t{} | {} | {} |",
            name, r.decided, r.last_decision, r.rounds, r.broadcasts
        );
    }

    println!("\n### detector-stabilization sweep (n=5, ℓ=2, 1 crash, paralyzing oracle)\n");
    println!("| stabilize | last decision |");
    println!("|-----------|---------------|");
    for &s in &[0u64, 50, 150, 400] {
        let r = fig8_tracks_stabilization(5, 2, s, 41 + s);
        println!("| t{} | t{} |", r.stabilize, r.last_decision);
    }
}
