//! Ablation experiments: the paper's two load-bearing mechanisms.
//!
//! * **Leaders' Coordination Phase** (Figure 8 / Lemma 7): removing it
//!   leaves safety intact but breaks (or badly delays) termination as
//!   soon as homonymous co-leaders hold divergent estimates.
//! * **Timeout adaptation** (Figure 6, lines 33-34 / Lemma 5): freezing
//!   `timeout_p` below the unknown round trip prevents `◇HP` from ever
//!   converging.

use homonym_bench::{ablate_coordination_phase, ablate_timeout_adaptation};

fn main() {
    println!("## Ablation A — Leaders' Coordination Phase (Figure 8, Lemma 7)\n");
    println!("n=6, failure-free, divergent proposals, 12 seeds, deadline t4000\n");
    println!("| ℓ | with LC: decided | rounds (mean) | without LC: decided | rounds (mean) |");
    println!("|---|------------------|---------------|---------------------|----------------|");
    for &l in &[1usize, 2, 3, 6] {
        let r = ablate_coordination_phase(6, l, 12);
        println!(
            "| {} | {}/{} | {:.1} | {}/{} | {:.1} |",
            r.l,
            r.with_lc_decided,
            r.seeds,
            r.with_lc_rounds,
            r.without_lc_decided,
            r.seeds,
            r.without_lc_rounds
        );
    }
    println!("\nWithout the phase, homonymous co-leaders (ℓ < n) limp along on");
    println!("Phase 2's {{v,⊥}} adoption (≈10× the rounds at ℓ=1, degrading as ℓ→1);");
    println!("at ℓ = n there is a single leader and the phase is redundant — exactly Lemma 7.");

    println!("\n## Ablation B — Figure 6 timeout adaptation (Lemma 5)\n");
    println!("n=4, ℓ=2, GST=40, lossy pre-GST, horizon t6000\n");
    println!("| δ | adaptive: ◇HP stab | frozen timeout=1: ◇HP stab |");
    println!("|---|--------------------|-----------------------------|");
    for &delta in &[1u64, 2, 4, 8] {
        let r = ablate_timeout_adaptation(delta, 17 + delta);
        let a = r.adaptive.map_or("never".into(), |t| format!("t{t}"));
        let f = r.frozen.map_or("never".into(), |t| format!("t{t}"));
        println!("| {} | {} | {} |", r.delta, a, f);
    }
    println!("\nThe frozen variant never converges (its 1-tick rounds end before");
    println!("any covering reply arrives); adaptation is what buys convergence for unknown δ.");
}
