//! Experiment E7 — Figure 7: `HΣ` in `HSS[∅]` (Theorem 6).
//!
//! Claims reproduced: liveness locks in on the first step after the last
//! crash; the quorum-label universe is one label per alive-set epoch
//! (plus partial-delivery variants in crash steps); safety holds across
//! all of them.

use homonym_bench::fig7_h_sigma;

fn main() {
    println!("## E7 — HΣ in HSS (Figure 7)\n");
    println!("| n | ℓ | crashes | steps | liveness by step | labels | IDENT msgs |");
    println!("|---|---|---------|-------|------------------|--------|------------|");
    for &(n, l) in &[(4usize, 2usize), (6, 3), (8, 2), (12, 4)] {
        for crashes in [0usize, 1, n / 3] {
            let r = fig7_h_sigma(n, l, crashes, 10, 3 + n as u64);
            println!(
                "| {} | {} | {} | {} | {} | {} | {} |",
                r.n, l, r.crashes, r.steps, r.liveness_by, r.labels, r.broadcasts
            );
        }
    }
}
