//! Experiment E1/E2 — Figures 1-2: Σ → HΣ transformations (Theorem 1).
//!
//! Claim reproduced: both variants emit class-valid `HΣ` output; Figure 1
//! does so with **zero** communication, Figure 2 pays `IDENT` traffic to
//! learn the membership; label universes match `2^(n-1)` per process.

use homonym_bench::fig12_sigma_to_hsigma;

fn main() {
    println!("## E1/E2 — Σ → HΣ (Figures 1-2, Theorem 1)\n");
    println!("| n | crashes | membership | liveness by | labels | IDENT msgs |");
    println!("|---|---------|------------|-------------|--------|------------|");
    for &(n, crashes) in &[(3usize, 0usize), (4, 1), (5, 2), (6, 2), (8, 3)] {
        for known in [true, false] {
            let r = fig12_sigma_to_hsigma(n, crashes, known, 42 + n as u64);
            println!(
                "| {} | {} | {} | t{} | {} | {} |",
                r.n,
                crashes,
                if r.membership_known {
                    "known (Fig 1)"
                } else {
                    "learned (Fig 2)"
                },
                r.liveness_by,
                r.labels,
                r.broadcasts,
            );
        }
    }
    println!("\nFig 1 rows must show 0 IDENT msgs (communication-free).");
}
