//! Experiment E6 — Figure 6: `◇HP`/`HΩ` in `HPS[∅]` (Theorem 5, Cor. 2).
//!
//! Claims reproduced:
//! * convergence happens shortly after GST and scales with δ;
//! * the adaptive timeout settles (stops growing) once the network is
//!   timely;
//! * replies are deduplicated per *identifier*, so `P_REPLY ≈ ℓ × POLLING`
//!   instead of `n × POLLING`.

use homonym_bench::{fig6_evt_hp, maybe_dump};

fn main() {
    println!("## E6 — ◇HP / HΩ in HPS (Figure 6)\n");
    println!("### GST sweep (n=5, ℓ=2, δ=3, 1 crash)\n");
    println!("| GST | ◇HP stab | HΩ stab | final timeout | POLLING | P_REPLY |");
    println!("|-----|----------|---------|---------------|---------|---------|");
    let mut rows = Vec::new();
    for &gst in &[0u64, 30, 100, 300] {
        let r = fig6_evt_hp(5, 2, gst, 3, 1, 5 + gst);
        println!(
            "| {} | t{} | t{} | {} | {} | {} |",
            r.gst,
            r.evt_hp_stabilization,
            r.h_omega_stabilization,
            r.final_timeout,
            r.polling,
            r.replies
        );
        rows.push(r);
    }
    maybe_dump("fig6_gst_sweep", &rows);
    println!("\n### δ sweep (n=5, ℓ=2, GST=50, 1 crash)\n");
    println!("| δ | ◇HP stab | final timeout |");
    println!("|---|----------|---------------|");
    for &delta in &[1u64, 2, 4, 8, 16] {
        let r = fig6_evt_hp(5, 2, 50, delta, 1, 90 + delta);
        println!(
            "| {} | t{} | {} |",
            r.delta, r.evt_hp_stabilization, r.final_timeout
        );
    }
    println!("\n### homonymy sweep (n=6, GST=40, δ=3, 1 crash)\n");
    println!("| ℓ | ◇HP stab | POLLING | P_REPLY | reply ratio |");
    println!("|---|----------|---------|---------|-------------|");
    for &l in &[1usize, 2, 3, 6] {
        let r = fig6_evt_hp(6, l, 40, 3, 1, 13 + l as u64);
        println!(
            "| {} | t{} | {} | {} | {:.2} |",
            r.l,
            r.evt_hp_stabilization,
            r.polling,
            r.replies,
            r.replies as f64 / r.polling.max(1) as f64
        );
    }
    println!("\nThe reply ratio tracks ℓ (identifier-level dedup), not n.");
}
