//! `BENCH_sim.json` generator: simulator hot-path throughput.
//!
//! Measures events dispatched per second on two workloads, each executed
//! twice — once on the pre-optimization hot path
//! (`SimConfig::legacy_hot_path`: `BTreeMap` event queue, one deep
//! payload clone per broadcast destination) and once on the current path
//! (tick-bucketed calendar queue, `Arc`-shared broadcast payloads) — and
//! writes the events/sec figures plus the speedup ratio to
//! `BENCH_sim.json` in the working directory.
//!
//! Workloads:
//!
//! * `hps_mesh_n64` — a pure broadcast mesh over `n = 64` processes in
//!   `HPS`: every process broadcasts each tick. No algorithm logic, so
//!   this isolates the engine hot path the tentpole reworked;
//! * `hps_detector_n64` — the Figure 6 `◇HP`/`HΩ` detector over `n = 64`
//!   processes in `HPS` (lossy pre-GST), the polling-heavy workload whose
//!   broadcast fan-out dominates figure regeneration time. Its ratio is
//!   diluted by per-event work both paths share (network sampling,
//!   detector bookkeeping);
//! * `fig8_consensus_sweep` — a parallel multi-seed sweep of Figure 8
//!   consensus at `n = 24`, the shape every consensus figure uses. On
//!   multi-core hosts the sweep additionally scales with cores (the
//!   pre-change harness ran seeds sequentially);
//! * `chaos_sweep` — a multi-seed sweep of Figure 8 consensus under
//!   generated split-brain scenarios (the `exp_chaos` falsification
//!   workload): measures the adversary hook's per-copy routing cost,
//!   and re-verifies at benchmark scale that both hot paths dispatch
//!   the identical event sequence under an active fault script.
//!
//! Both paths dispatch the identical event sequence (seeded runs are
//! byte-for-byte equal; `tests/trace_determinism.rs` asserts this), so
//! the ratio isolates the data-structure and allocation work.
//!
//! Usage: `cargo run --release -p homonym-bench --bin bench_sim`
//! Set `BENCH_SIM_QUICK=1` for a reduced-size smoke run (CI).

use std::collections::BTreeMap;
use std::time::Instant;

use homonym_bench::{async_net, hps_delay_only, hps_lossy, parallel_seed_sweep, staggered_crashes};
use homonym_chaos::generators::split_brain;
use homonym_consensus::{HOmegaPolicy, MajorityConsensus};
use homonym_core::prelude::*;
use homonym_detectors::evt_hp::{EvtHpMsg, EvtHpProcess, EvtHpSnapshot};
use homonym_detectors::oracle::{OracleWorld, PreStability};
use homonym_sim::prelude::*;
use homonym_sim::process::Process;

/// The *seed-shaped* Figure 6 detector, kept verbatim for the baseline
/// measurement: membership in a `BTreeMap` (the pre-change layout) where
/// the optimized detector uses a binary-searched vector. Protocol
/// behaviour is identical — same messages, same RNG draws, same trace —
/// so baseline and current runs dispatch the same event sequence.
struct LegacyEvtHp {
    /// Seed-shaped bag: the pre-change `Multiset` was a counted
    /// `BTreeMap` under the hood.
    h_trusted: BTreeMap<Identity, usize>,
    round: u64,
    timeout: u64,
    mship: BTreeMap<Identity, u64>,
    pending: Vec<(u64, u64, Identity)>,
}

const ROUND: TimerTag = TimerTag(0);

impl LegacyEvtHp {
    fn new() -> Self {
        LegacyEvtHp {
            h_trusted: BTreeMap::new(),
            round: 1,
            timeout: 1,
            mship: BTreeMap::new(),
            pending: Vec::new(),
        }
    }

    fn poll(&self, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        ctx.broadcast(EvtHpMsg::Polling {
            round: self.round,
            id: ctx.my_id(),
        });
        ctx.set_timer(Span::from_ticks(self.timeout), ROUND);
    }
}

impl Process for LegacyEvtHp {
    type Msg = EvtHpMsg;
    type Output = EvtHpSnapshot;

    fn on_start(&mut self, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        self.poll(ctx);
    }

    fn on_message(&mut self, msg: EvtHpMsg, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        match msg {
            EvtHpMsg::Polling { round, id } => {
                let latest = self.mship.entry(id).or_insert(0);
                if *latest < round {
                    ctx.broadcast(EvtHpMsg::PReply {
                        from: *latest + 1,
                        to: round,
                        target: id,
                        sender: ctx.my_id(),
                    });
                    *latest = round;
                }
            }
            EvtHpMsg::PReply {
                from,
                to,
                target,
                sender,
            } => {
                if target != ctx.my_id() {
                    return;
                }
                if from < self.round {
                    self.timeout += 1;
                }
                if to >= self.round {
                    self.pending.push((from, to, sender));
                }
            }
        }
    }

    fn on_timer(&mut self, _t: TimerTag, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        let r = self.round;
        let mut tmp: BTreeMap<Identity, usize> = BTreeMap::new();
        for &(from, to, sender) in &self.pending {
            if from <= r && r <= to {
                *tmp.entry(sender).or_insert(0) += 1;
            }
        }
        self.h_trusted = tmp;
        let h_omega = self.h_trusted.iter().next().map_or(
            HOmegaOutput::new(Identity::BOTTOM, 1),
            |(&leader, &mult)| HOmegaOutput::new(leader, mult),
        );
        ctx.publish(EvtHpSnapshot {
            evt_hp: EvtHPOutput::new(
                self.h_trusted
                    .iter()
                    .map(|(&id, &c)| (id, c))
                    .collect::<Multiset<Identity>>(),
            ),
            h_omega,
            round: r,
            timeout: self.timeout,
        });
        self.pending.retain(|&(_, to, _)| to > r);
        self.round += 1;
        self.poll(ctx);
    }
}

/// Pure engine workload: every process re-arms a 1-tick timer and
/// broadcasts on every firing; receipts are counted and dropped.
struct Mesh {
    heard: u64,
}

impl Process for Mesh {
    type Msg = u64;
    type Output = ();
    fn on_start(&mut self, ctx: &mut ActionSink<'_, u64, ()>) {
        ctx.set_timer(Span::TICK, TimerTag(0));
    }
    fn on_message(&mut self, m: u64, _ctx: &mut ActionSink<'_, u64, ()>) {
        self.heard = self.heard.wrapping_add(m);
    }
    fn on_timer(&mut self, _t: TimerTag, ctx: &mut ActionSink<'_, u64, ()>) {
        ctx.broadcast(self.heard);
        ctx.set_timer(Span::TICK, TimerTag(0));
    }
}

struct Sample {
    events: u64,
    secs: f64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs.max(1e-9)
    }
}

/// One full Figure-6-style detector run; returns dispatched event count.
/// The legacy flavor runs the seed-shaped detector on the legacy engine
/// hot path; the current flavor runs the optimized detector on the
/// calendar-queue path.
fn hps_detector_run(n: usize, horizon: u64, seed: u64, legacy: bool) -> u64 {
    let assign = IdentityAssignment::round_robin(n, 16.min(n));
    let sched = staggered_crashes(n, 2, 40);
    let cfg = SimConfig::new(assign, sched, hps_lossy(50, 16))
        .with_seed(seed)
        .with_legacy_hot_path(legacy);
    let mut engine = Engine::new(cfg, move |_, _| {
        if legacy {
            Node::Legacy(LegacyEvtHp::new())
        } else {
            Node::Current(EvtHpProcess::new())
        }
    });
    engine.run_until(Time::from_ticks(horizon));
    engine.metrics().events
}

/// Dispatch wrapper so both detector flavors share one engine type.
enum Node {
    Legacy(LegacyEvtHp),
    Current(EvtHpProcess),
}

impl Process for Node {
    type Msg = EvtHpMsg;
    type Output = EvtHpSnapshot;
    fn on_start(&mut self, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        match self {
            Node::Legacy(p) => p.on_start(ctx),
            Node::Current(p) => p.on_start(ctx),
        }
    }
    fn on_message(&mut self, m: EvtHpMsg, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        match self {
            Node::Legacy(p) => p.on_message(m, ctx),
            Node::Current(p) => p.on_message(m, ctx),
        }
    }
    fn on_timer(&mut self, t: TimerTag, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        match self {
            Node::Legacy(p) => p.on_timer(t, ctx),
            Node::Current(p) => p.on_timer(t, ctx),
        }
    }
}

/// Interleaved timed repetitions of a workload's legacy and current
/// flavors; keeps each side's fastest run (the one least disturbed by
/// frequency scaling and page-cache warm-up).
fn bench_pair(reps: usize, mut run: impl FnMut(bool) -> u64) -> (Sample, Sample) {
    let mut best: [Option<Sample>; 2] = [None, None];
    for _ in 0..reps.max(1) {
        for (slot, legacy) in [(0, true), (1, false)] {
            let start = Instant::now();
            let events = run(legacy);
            let sample = Sample {
                events,
                secs: start.elapsed().as_secs_f64(),
            };
            if best[slot].as_ref().is_none_or(|b| sample.secs < b.secs) {
                best[slot] = Some(sample);
            }
        }
    }
    (
        best[0].take().expect("legacy rep"),
        best[1].take().expect("current rep"),
    )
}

fn hps_mesh_run(n: usize, horizon: u64, legacy: bool) -> u64 {
    let assign = IdentityAssignment::round_robin(n, 16.min(n));
    let sched = staggered_crashes(n, 2, 40);
    let cfg = SimConfig::new(assign, sched, hps_lossy(50, 16))
        .with_seed(1)
        .with_legacy_hot_path(legacy);
    let mut engine = Engine::new(cfg, |_, _| Mesh { heard: 0 });
    engine.run_until(Time::from_ticks(horizon));
    engine.metrics().events
}

/// One Figure 8 consensus run; returns dispatched event count.
fn fig8_run(n: usize, seed: u64, legacy: bool) -> u64 {
    let l = 4.min(n);
    let stabilize = 40;
    let assign = IdentityAssignment::round_robin(n, l);
    let sched = staggered_crashes(n, 1, stabilize);
    let t = (n - 1) / 2;
    let w = OracleWorld::new(sched.clone(), assign.clone(), Time::from_ticks(stabilize));
    let proposals: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
    let cfg = SimConfig::new(assign, sched.clone(), async_net(1, 5))
        .with_seed(seed)
        .with_legacy_hot_path(legacy);
    let mut engine = Engine::new(cfg, |p, _| {
        MajorityConsensus::new(
            proposals[p],
            n,
            t,
            HOmegaPolicy(w.h_omega_for(p, PreStability::Chaotic)),
        )
    });
    engine.run_until_all_correct_decided(Time::from_ticks(60 * stabilize + 30_000));
    check_consensus(&engine.outcome(proposals), &sched).expect("consensus holds");
    engine.metrics().events
}

/// One Figure 8 consensus run under a generated split-brain scenario —
/// the `chaos_sweep` workload. No property check here (a drop-mode
/// scenario legitimately prevents termination); the outer harness
/// asserts that both hot paths dispatch identical event counts, which is
/// the determinism contract the adversary hook must keep.
fn chaos_run(n: usize, seed: u64, legacy: bool) -> u64 {
    let scenario = split_brain(n, seed);
    let l = 4.min(n);
    let assign = IdentityAssignment::round_robin(n, l);
    let cfg = SimConfig::new(
        assign.clone(),
        FailureSchedule::none(n),
        hps_delay_only(1, 3),
    )
    .with_seed(seed)
    .with_legacy_hot_path(legacy);
    let cfg = scenario.install(cfg).expect("generated scenarios validate");
    let sched = cfg.sched.clone();
    let gst = match cfg.network {
        NetworkModel::PartialSync { gst, .. } => gst,
        _ => Time::ZERO,
    };
    let clean = scenario.last_fault_end().max(gst);
    let t = (n - 1) / 2;
    let w = OracleWorld::new(sched, assign, clean);
    let proposals: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
    let mut engine = Engine::new(cfg, |p, _| {
        MajorityConsensus::new(
            proposals[p],
            n,
            t,
            HOmegaPolicy(w.h_omega_for(p, PreStability::Chaotic)),
        )
    });
    engine.run_until_all_correct_decided(clean + Span::from_ticks(30_000));
    engine.metrics().events
}

fn main() {
    let quick = std::env::var("BENCH_SIM_QUICK").is_ok();
    let (n_hps, horizon, n_fig8, seeds, reps) = if quick {
        (16, 400, 8, 2, 1)
    } else {
        (64, 2_000, 24, 8, 4)
    };

    println!("## simulator hot-path throughput\n");
    println!("workload sizes: hps n={n_hps} horizon={horizon}, fig8 n={n_fig8} seeds={seeds}");

    // Warm-up (page in code, size allocator pools) before timing.
    let _ = hps_detector_run(n_hps.min(8), 100, 0, false);

    // Interleave legacy/current repetitions so frequency drift on shared
    // hosts cannot systematically favor one side; keep each side's best.
    let (mesh_legacy, mesh_new) =
        bench_pair(reps, |legacy| hps_mesh_run(n_hps, horizon.min(300), legacy));
    let (hps_legacy, hps_new) =
        bench_pair(reps, |legacy| hps_detector_run(n_hps, horizon, 1, legacy));
    assert_eq!(
        hps_legacy.events, hps_new.events,
        "legacy and calendar paths must dispatch identical event counts"
    );
    assert_eq!(mesh_legacy.events, mesh_new.events);
    let (fig8_legacy, fig8_new) = bench_pair(reps, |legacy| {
        parallel_seed_sweep(seeds, |seed| fig8_run(n_fig8, seed, legacy))
            .into_iter()
            .sum()
    });
    assert_eq!(fig8_legacy.events, fig8_new.events);
    let (chaos_legacy, chaos_new) = bench_pair(reps, |legacy| {
        parallel_seed_sweep(seeds, |seed| chaos_run(n_fig8, seed, legacy))
            .into_iter()
            .sum()
    });
    assert_eq!(
        chaos_legacy.events, chaos_new.events,
        "hot paths must dispatch identically under an active fault script"
    );

    let rows = [
        ("hps_mesh_n64", &mesh_legacy, &mesh_new),
        ("hps_detector_n64", &hps_legacy, &hps_new),
        ("fig8_consensus_sweep", &fig8_legacy, &fig8_new),
        ("chaos_sweep", &chaos_legacy, &chaos_new),
    ];

    println!("\n| workload | events | legacy ev/s | current ev/s | speedup |");
    println!("|----------|--------|-------------|--------------|---------|");
    // Bump `schema_version` whenever the JSON shape changes (new or
    // renamed fields/rows); see BENCHMARKS.md for the version history.
    let mut json = String::from("{\n  \"schema_version\": 2,\n");
    for (name, legacy, new) in rows {
        let speedup = new.events_per_sec() / legacy.events_per_sec();
        println!(
            "| {} | {} | {:.0} | {:.0} | {:.2}x |",
            name,
            new.events,
            legacy.events_per_sec(),
            new.events_per_sec(),
            speedup
        );
        json.push_str(&format!(
            "  \"{}\": {{\"events\": {}, \"legacy_events_per_sec\": {:.0}, \"events_per_sec\": {:.0}, \"speedup\": {:.3}}},\n",
            name,
            new.events,
            legacy.events_per_sec(),
            new.events_per_sec(),
            speedup
        ));
    }
    json.push_str(&format!(
        "  \"quick_mode\": {quick},\n  \"generated_by\": \"cargo run --release -p homonym-bench --bin bench_sim\"\n}}\n"
    ));
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    eprintln!("\nwrote BENCH_sim.json");
}
