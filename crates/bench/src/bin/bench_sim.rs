//! `BENCH_sim.json` generator: simulator hot-path throughput.
//!
//! Measures events dispatched per second on ten workloads, each executed
//! twice — once on the **legacy** path (the PR 1 hot path, re-baselined:
//! calendar event queue, `Arc`-shared payloads, per-event pops, one
//! network-model match and RNG route per copy, per-message dispatch, plus
//! in-tree copies of the PR 1-shaped detector/consensus/oracle
//! components) and once on the **current** path (batched tick draining,
//! same-`(time, dest)` delivery batches through `Process::on_messages`,
//! fused per-broadcast RNG sampling with precomputed distributions,
//! incremental `◇HP` rounds, ring-window consensus buckets, cached
//! oracles, arena-reused runs) — and writes the events/sec figures plus
//! the speedup ratio to `BENCH_sim.json` (`schema_version = 9`) in the
//! working directory.
//!
//! Workloads:
//!
//! * `hps_mesh_n64` — a pure broadcast mesh over `n = 64` processes in
//!   `HPS`: every process broadcasts each tick. No algorithm logic, so
//!   this isolates the engine hot path (queue + delivery + sampling);
//! * `hps_detector_n64` — the Figure 6 `◇HP`/`HΩ` detector over `n = 64`
//!   processes in `HPS` (lossy pre-GST), the polling-heavy workload whose
//!   broadcast fan-out dominates figure regeneration time;
//! * `fig8_consensus_sweep` — a parallel multi-seed sweep of Figure 8
//!   consensus at `n = 24`, the shape every consensus figure uses;
//! * `chaos_sweep` — a multi-seed sweep of Figure 8 consensus under
//!   generated split-brain scenarios (the `exp_chaos` falsification
//!   workload): measures the adversary hook's routing cost plus the
//!   oracle/round-buffer work, and re-verifies at benchmark scale that
//!   both paths dispatch identical event counts under an active script;
//! * `byz_sweep` — the same sweep shape under generated
//!   hidden-equivocator attacks: the Byzantine payload-mutation hook
//!   live on the hot path (per-broadcast planning, per-copy forging),
//!   with the same both-paths event-count equality asserted under the
//!   active Byzantine script;
//! * `byz_tolerant_sweep` — the **price of tolerance**: the same
//!   hidden-equivocator sweep with the undefended crash-only stack in
//!   the legacy column and the Byzantine-tolerant quorum-certificate
//!   stack in the current column, both on the batched path, so the
//!   ratio isolates certificate work (two-phase rounds, per-label
//!   admission ledgers, echo-certified decisions) rather than engine
//!   differences. The two columns run **different algorithms**, so this
//!   row asserts no event-count equality and its "speedup" reads as
//!   overhead (< 1.0×); the tolerant side's verdicts are asserted —
//!   agreement and termination must hold under the live equivocator;
//! * `obs_overhead` — the **price of observability**: the
//!   `byz_tolerant_sweep` current workload run twice on the batched
//!   path, uninstrumented in the legacy column and with the
//!   `homonym-obs` `Recorder` attached in the
//!   current column. Both columns run the identical algorithm and
//!   schedule (event counts asserted equal, and the instrumented side
//!   must actually capture span/certificate events), so the ratio
//!   prices the observe channel: ~1.0× expected, and the
//!   recorder-absent dispatch is byte-identical to uninstrumented runs
//!   (asserted by `tests/obs_props.rs`);
//! * `fig8_sweep_forked` — shared-prefix variant families (late
//!   split-brain, redrawn heal times and GST margins) of the full
//!   Figure 6 + Figure 8 stack: the **flat** executor (legacy column)
//!   runs every variant from tick 0, the **prefix-sharing** executor
//!   (current column) snapshots at each family's computed divergence
//!   point and restores per variant — identical per-variant decisions
//!   and event counts asserted;
//! * `chaos_sweep_forked` — the same flat-vs-forked comparison on the
//!   `◇HP` detector stack (fixed observation horizons, so the sharing
//!   win is purely structural), identical per-variant verdict inputs
//!   asserted;
//! * `rsm_throughput` — the multi-height **replicated log service**
//!   (`homonym_consensus::rsm` over the Byzantine-tolerant quorum
//!   engine, continuously-running `◇HP` detector underneath) under a
//!   closed-loop client workload, run through the session lifecycle
//!   API to a fixed tick horizon on the legacy (legacy column) and
//!   batched (current column) hot paths. Fixed-horizon runs are
//!   condition-free, so the dispatched event counts are asserted equal
//!   across the two paths; the row additionally reports
//!   `decided_commands_per_sec` (committed heights on the slowest
//!   correct replica, per wall-clock second) — the ROADMAP item 1
//!   "production scale" figure;
//! * `checkpointed_sweep` — the **price of durability**: the same
//!   falsification sweep run entirely in RAM (legacy column) vs through
//!   the kill-tolerant checkpoint driver writing one atomic, checksummed
//!   segment file per scenario group into a fresh directory (current
//!   column). The full sweep reports are asserted identical, the row's
//!   "events" are scenario runs, and the ratio prices checkpoint I/O —
//!   expected near 1.0× (segments are small relative to simulation
//!   work).
//!
//! Both flavors of every row dispatch the identical event sequence
//! (seeded runs are byte-for-byte equal; `tests/trace_determinism.rs`
//! and `tests/snapshot_restore_props.rs` assert this), so each ratio
//! isolates data-structure, sampling, allocation — or, for the forked
//! rows, re-execution — work. The current-path single-run rows execute
//! arena-warm (the sweep-worker shape every real workload uses); the
//! legacy rows rebuild their world per run, as PR 1 did.
//!
//! Usage: `cargo run --release -p homonym-bench --bin bench_sim
//! [-- --only <row>[,<row>...]] [-- --side legacy|current]`
//!
//! * `--only <row>` restricts the run to the named row(s);
//! * `--side` pins one flavor (for profiling a single implementation
//!   under a sampler) — see the profiling guide in `BENCHMARKS.md`;
//! * `BENCH_SIM_QUICK=1` runs a reduced-size smoke configuration (CI);
//! * `BENCH_SIM_REPS=<k>` overrides the repetition count (long runs for
//!   profilers, 1 for a fast sanity pass);
//! * the `alloc-count` feature (**on by default**) reports
//!   allocations-per-event columns next to the throughput figures via a
//!   counting global allocator; build with `--no-default-features` for
//!   counter-free timings (counts are exact either way, timings are
//!   perturbed only marginally by the counter's relaxed atomics).

use std::time::Instant;

use homonym_bench::{async_net, hps_delay_only, hps_lossy, staggered_crashes};
use homonym_chaos::generators::{fault_window_variants, hidden_equivocator, split_brain};
use homonym_chaos::session::{Goal, SessionBuilder};
use homonym_chaos::sweep::{clean_instant, fig8_node, hps_base, Fig8Node as ChaosFig8Node};
use homonym_chaos::{
    checkpointed_falsification_sweep, falsification_sweep_forked, CheckpointConfig, FaultClause,
    GstPlacement, PartitionMode, Scenario, StackKind as ChaosStackKind,
    SweepConfig as ChaosSweepConfig,
};
use homonym_consensus::{round_of_byz, ByzQuorumConsensus, HOmegaPolicy, MajorityConsensus};
use homonym_core::prelude::*;
use homonym_detectors::evt_hp::{EvtHpMsg, EvtHpProcess, EvtHpSnapshot};
use homonym_detectors::oracle::{HOmegaOracle, OracleWorld, PreStability};
use homonym_sim::engine::EngineArena;
use homonym_sim::prelude::*;
use homonym_sim::process::Process;
use homonym_sim::snapshot::ForkProcess;
use homonym_sim::sweep::{PrefixItem, PrefixSweeper, RunGoal};
use homonym_sim::workload::WorkloadConfig;

/// Counting global allocator behind the `alloc-count` feature: every
/// `alloc`/`realloc` bumps a relaxed atomic, letting the harness report
/// allocations per dispatched event next to the throughput columns.
#[cfg(feature = "alloc-count")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    // SAFETY: delegates verbatim to `System`; the counter has no effect
    // on the returned memory.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;

    pub const ENABLED: bool = true;

    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "alloc-count"))]
mod alloc_count {
    pub const ENABLED: bool = false;

    pub fn allocations() -> u64 {
        0
    }
}

/// In-tree copies of the PR 1-shaped components, frozen as the baseline
/// the `legacy` columns measure. Protocol behaviour is identical to the
/// optimized components — same messages, same RNG draws, same dispatch
/// sequence (the harness asserts equal event counts) — so the ratio
/// isolates the data-structure and allocation work:
///
/// * [`pr1::EvtHp`] rebuilds its `◇HP` bag and wraps a fresh snapshot
///   clone every round (the current detector diffs against the previous
///   round's membership and publishes a cached snapshot);
/// * [`pr1::Fig8`] buffers every protocol message in per-round
///   `BTreeMap<u64, Vec<_>>` buckets and recounts them per guard
///   re-evaluation (the current one aggregates at arrival in recycled
///   ring windows);
/// * [`pr1::HOmega`] recomputes the rotating-leader junk — a fresh
///   identifier multiset per query — that `OracleWorld` now precomputes.
mod pr1 {
    use std::collections::BTreeMap;

    use homonym_core::prelude::*;
    use homonym_detectors::evt_hp::{EvtHpMsg, EvtHpSnapshot};
    use homonym_sim::prelude::*;

    const ROUND: TimerTag = TimerTag(0);

    /// The PR 1-shaped Figure 6 detector.
    pub struct EvtHp {
        h_trusted: Multiset<Identity>,
        h_omega: HOmegaOutput,
        round: u64,
        timeout: u64,
        mship: Vec<(Identity, u64)>,
        pending: Vec<(u64, u64, Identity)>,
    }

    impl EvtHp {
        pub fn new() -> Self {
            EvtHp {
                h_trusted: Multiset::new(),
                h_omega: HOmegaOutput::new(Identity::BOTTOM, 1),
                round: 1,
                timeout: 1,
                mship: Vec::new(),
                pending: Vec::new(),
            }
        }

        fn poll(&self, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
            ctx.broadcast(EvtHpMsg::Polling {
                round: self.round,
                id: ctx.my_id(),
            });
            ctx.set_timer(Span::from_ticks(self.timeout), ROUND);
        }
    }

    impl Process for EvtHp {
        type Msg = EvtHpMsg;
        type Output = EvtHpSnapshot;

        fn mutate_payload(msg: &EvtHpMsg, entropy: u64) -> Option<EvtHpMsg> {
            // Same forgery as the current detector, so the byz_sweep row
            // compares identical attacks on both flavors.
            Some(homonym_detectors::evt_hp::mutate_evt_hp_msg(msg, entropy))
        }

        fn on_start(&mut self, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
            self.h_omega = HOmegaOutput::new(ctx.my_id(), 1);
            self.poll(ctx);
        }

        fn on_message(&mut self, msg: EvtHpMsg, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
            match msg {
                EvtHpMsg::Polling { round, id } => {
                    let slot = match self.mship.binary_search_by_key(&id, |&(i, _)| i) {
                        Ok(i) => i,
                        Err(i) => {
                            self.mship.insert(i, (id, 0));
                            i
                        }
                    };
                    let latest = &mut self.mship[slot].1;
                    if *latest < round {
                        ctx.broadcast(EvtHpMsg::PReply {
                            from: *latest + 1,
                            to: round,
                            target: id,
                            sender: ctx.my_id(),
                        });
                        *latest = round;
                    }
                }
                EvtHpMsg::PReply {
                    from,
                    to,
                    target,
                    sender,
                } => {
                    if target != ctx.my_id() {
                        return;
                    }
                    if from < self.round {
                        self.timeout += 1;
                    }
                    if to >= self.round {
                        self.pending.push((from, to, sender));
                    }
                }
            }
        }

        fn on_timer(&mut self, _t: TimerTag, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
            // The PR 1 shape: rebuild the bag every round, then wrap a
            // fresh snapshot clone.
            let r = self.round;
            let mut tmp = std::mem::take(&mut self.h_trusted);
            tmp.clear();
            self.pending.retain(|&(from, to, sender)| {
                if from <= r && r <= to {
                    tmp.insert(sender);
                }
                to > r
            });
            self.h_trusted = tmp;
            if let Some(&leader) = self.h_trusted.min_elem() {
                self.h_omega = HOmegaOutput::new(leader, self.h_trusted.multiplicity(&leader));
            }
            ctx.publish(EvtHpSnapshot {
                evt_hp: EvtHPOutput::new(self.h_trusted.clone()),
                h_omega: self.h_omega,
                round: r,
                timeout: self.timeout,
            });
            self.round += 1;
            self.poll(ctx);
        }
    }

    /// The PR 1-shaped `HΩ` oracle: recomputes its output from the
    /// schedule/assignment on every query (same values as the cached
    /// [`homonym_detectors::oracle::HOmegaOracle`], query by query).
    #[derive(Clone)]
    pub struct HOmega {
        sched: FailureSchedule,
        assign: IdentityAssignment,
        stabilize_at: Time,
        salt: u64,
    }

    impl HOmega {
        pub fn new(
            sched: FailureSchedule,
            assign: IdentityAssignment,
            stabilize_at: Time,
            salt: u64,
        ) -> Self {
            HOmega {
                sched,
                assign,
                stabilize_at,
                salt,
            }
        }

        /// `OracleWorld`'s per-(time, salt) mixer, duplicated so the junk
        /// phase rotates identically to the cached oracle.
        fn mix(now: Time, salt: u64) -> u64 {
            let x = now
                .ticks()
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            (x ^ (x >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB)
        }
    }

    impl HOmegaSource for HOmega {
        fn h_omega(&self, now: Time) -> HOmegaOutput {
            if now >= self.stabilize_at {
                let correct = self.sched.i_correct(&self.assign);
                let leader = *correct.min_elem().expect("some process is correct");
                return HOmegaOutput::new(leader, correct.multiplicity(&leader));
            }
            // Chaotic pre-stability junk, recomputed per query.
            let ids = self.assign.multiset();
            let k = (Self::mix(now, self.salt) as usize) % ids.distinct_len();
            let id = *ids.support().nth(k).expect("nonempty system");
            let mult = 1 + (Self::mix(now, self.salt ^ 13) as usize) % self.assign.n();
            HOmegaOutput::new(id, mult)
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Phase {
        LeadersCoordination,
        Zero,
        One,
        Two,
    }

    const TICK: TimerTag = TimerTag(0);

    /// The PR 1-shaped Figure 8 process over a [`HOmega`] oracle:
    /// per-round `BTreeMap` buckets, per-eval recounting.
    pub struct Fig8 {
        d: HOmega,
        n: usize,
        t: usize,
        est1: u64,
        est2: Option<u64>,
        round: u64,
        phase: Phase,
        coord: BTreeMap<u64, Vec<(Identity, u64)>>,
        ph0: BTreeMap<u64, Vec<u64>>,
        ph1: BTreeMap<u64, Vec<u64>>,
        ph2: BTreeMap<u64, Vec<Option<u64>>>,
        decided: bool,
    }

    impl Fig8 {
        pub fn new(proposal: u64, n: usize, t: usize, d: HOmega) -> Self {
            assert!(2 * t < n);
            Fig8 {
                d,
                n,
                t,
                est1: proposal,
                est2: None,
                round: 0,
                phase: Phase::Two,
                coord: BTreeMap::new(),
                ph0: BTreeMap::new(),
                ph1: BTreeMap::new(),
                ph2: BTreeMap::new(),
                decided: false,
            }
        }

        fn wait_threshold(&self) -> usize {
            self.n - self.t
        }

        fn next_round(&mut self, ctx: &mut ActionSink<'_, Fig8Msg, u64>) {
            self.round += 1;
            self.phase = Phase::LeadersCoordination;
            let r = self.round;
            self.coord.retain(|&k, _| k >= r);
            self.ph0.retain(|&k, _| k >= r);
            self.ph1.retain(|&k, _| k >= r);
            self.ph2.retain(|&k, _| k >= r);
            ctx.publish(r);
            ctx.broadcast(Fig8Msg::Coord {
                id: ctx.my_id(),
                round: r,
                est: self.est1,
            });
        }

        fn decide(&mut self, v: u64, ctx: &mut ActionSink<'_, Fig8Msg, u64>) {
            ctx.broadcast(Fig8Msg::Decide { value: v });
            ctx.decide(v);
            self.decided = true;
            ctx.halt();
        }

        fn eval(&mut self, ctx: &mut ActionSink<'_, Fig8Msg, u64>) -> bool {
            let now = ctx.local_now();
            let my_id = ctx.my_id();
            let r = self.round;
            match self.phase {
                Phase::LeadersCoordination => {
                    let d = self.d.h_omega(now);
                    let received = self.coord.get(&r).map_or(0, Vec::len);
                    let pass = d.h_leader != my_id || received >= d.h_multiplicity;
                    if !pass {
                        return false;
                    }
                    if let Some(ests) = self.coord.get(&r) {
                        if let Some(&(_, min_est)) = ests.iter().min_by_key(|(_, e)| *e) {
                            self.est1 = min_est;
                        }
                    }
                    self.phase = Phase::Zero;
                    true
                }
                Phase::Zero => {
                    let received = self.ph0.get(&r).and_then(|v| v.first()).copied();
                    if self.d.h_omega(now).h_leader != my_id && received.is_none() {
                        return false;
                    }
                    if let Some(v) = received {
                        self.est1 = v;
                    }
                    ctx.broadcast(Fig8Msg::Ph0 {
                        round: r,
                        est: self.est1,
                    });
                    ctx.broadcast(Fig8Msg::Ph1 {
                        round: r,
                        est: self.est1,
                    });
                    self.phase = Phase::One;
                    true
                }
                Phase::One => {
                    let Some(ests) = self.ph1.get(&r) else {
                        return false;
                    };
                    if ests.len() < self.wait_threshold() {
                        return false;
                    }
                    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
                    for &v in ests {
                        *counts.entry(v).or_insert(0) += 1;
                    }
                    self.est2 = counts
                        .iter()
                        .find(|(_, &c)| 2 * c > self.n)
                        .map(|(&v, _)| v);
                    ctx.broadcast(Fig8Msg::Ph2 {
                        round: r,
                        est2: self.est2,
                    });
                    self.phase = Phase::Two;
                    true
                }
                Phase::Two => {
                    let Some(vals) = self.ph2.get(&r) else {
                        return false;
                    };
                    if vals.len() < self.wait_threshold() {
                        return false;
                    }
                    let mut non_bottom: Vec<u64> = vals.iter().flatten().copied().collect();
                    non_bottom.sort_unstable();
                    non_bottom.dedup();
                    let saw_bottom = vals.iter().any(Option::is_none);
                    match (non_bottom.first().copied(), saw_bottom) {
                        (Some(v), false) => self.decide(v, ctx),
                        (Some(v), true) => {
                            self.est1 = v;
                            self.next_round(ctx);
                        }
                        (None, _) => self.next_round(ctx),
                    }
                    true
                }
            }
        }

        fn try_advance(&mut self, ctx: &mut ActionSink<'_, Fig8Msg, u64>) {
            while !self.decided && self.eval(ctx) {}
        }
    }

    impl Process for Fig8 {
        type Msg = Fig8Msg;
        type Output = u64;

        fn mutate_payload(msg: &Fig8Msg, entropy: u64) -> Option<Fig8Msg> {
            Some(homonym_consensus::mutate_fig8_msg(msg, entropy))
        }

        fn on_start(&mut self, ctx: &mut ActionSink<'_, Fig8Msg, u64>) {
            self.next_round(ctx);
            ctx.set_timer(Span::TICK, TICK);
            self.try_advance(ctx);
        }

        fn on_message(&mut self, msg: Fig8Msg, ctx: &mut ActionSink<'_, Fig8Msg, u64>) {
            if self.decided {
                return;
            }
            match msg {
                Fig8Msg::Coord { id, round, est } => {
                    if id == ctx.my_id() && round >= self.round {
                        self.coord.entry(round).or_default().push((id, est));
                    }
                }
                Fig8Msg::Ph0 { round, est } => {
                    if round >= self.round {
                        self.ph0.entry(round).or_default().push(est);
                    }
                }
                Fig8Msg::Ph1 { round, est } => {
                    if round >= self.round {
                        self.ph1.entry(round).or_default().push(est);
                    }
                }
                Fig8Msg::Ph2 { round, est2 } => {
                    if round >= self.round {
                        self.ph2.entry(round).or_default().push(est2);
                    }
                }
                Fig8Msg::Decide { value } => {
                    self.decide(value, ctx);
                    return;
                }
            }
            self.try_advance(ctx);
        }

        fn on_timer(&mut self, _t: TimerTag, ctx: &mut ActionSink<'_, Fig8Msg, u64>) {
            if self.decided {
                return;
            }
            self.try_advance(ctx);
            ctx.set_timer(Span::TICK, TICK);
        }
    }

    pub use homonym_consensus::Fig8Msg;
}

/// Pure engine workload: every process re-arms a 1-tick timer and
/// broadcasts on every firing; receipts are counted and dropped.
struct Mesh {
    heard: u64,
}

impl Process for Mesh {
    type Msg = u64;
    type Output = ();
    fn on_start(&mut self, ctx: &mut ActionSink<'_, u64, ()>) {
        ctx.set_timer(Span::TICK, TimerTag(0));
    }
    fn on_message(&mut self, m: u64, _ctx: &mut ActionSink<'_, u64, ()>) {
        self.heard = self.heard.wrapping_add(m);
    }
    fn on_timer(&mut self, _t: TimerTag, ctx: &mut ActionSink<'_, u64, ()>) {
        ctx.broadcast(self.heard);
        ctx.set_timer(Span::TICK, TimerTag(0));
    }
}

struct Sample {
    events: u64,
    secs: f64,
    allocs: u64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs.max(1e-9)
    }

    fn allocs_per_event(&self) -> f64 {
        self.allocs as f64 / self.events.max(1) as f64
    }
}

/// Dispatch wrapper so both detector flavors share one engine type.
enum Node {
    Legacy(pr1::EvtHp),
    Current(EvtHpProcess),
}

impl Process for Node {
    type Msg = EvtHpMsg;
    type Output = EvtHpSnapshot;
    fn on_start(&mut self, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        match self {
            Node::Legacy(p) => p.on_start(ctx),
            Node::Current(p) => p.on_start(ctx),
        }
    }
    fn on_message(&mut self, m: EvtHpMsg, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        match self {
            Node::Legacy(p) => p.on_message(m, ctx),
            Node::Current(p) => p.on_message(m, ctx),
        }
    }
    fn on_timer(&mut self, t: TimerTag, ctx: &mut ActionSink<'_, EvtHpMsg, EvtHpSnapshot>) {
        match self {
            Node::Legacy(p) => p.on_timer(t, ctx),
            Node::Current(p) => p.on_timer(t, ctx),
        }
    }
}

/// One full Figure-6-style detector run; returns dispatched event count.
/// The legacy flavor runs the PR 1-shaped detector on the per-event hot
/// path; the current flavor runs the incremental detector on the batched
/// path, arena-warm (`Some(arena)`).
fn hps_detector_run(
    n: usize,
    horizon: u64,
    seed: u64,
    legacy: bool,
    arena: Option<&mut EngineArena<Node>>,
) -> u64 {
    let assign = IdentityAssignment::round_robin(n, 16.min(n));
    let sched = staggered_crashes(n, 2, 40);
    let cfg = SimConfig::new(assign, sched, hps_lossy(50, 16))
        .with_seed(seed)
        .with_legacy_hot_path(legacy);
    let factory = move |_: usize, _: Identity| {
        if legacy {
            Node::Legacy(pr1::EvtHp::new())
        } else {
            Node::Current(EvtHpProcess::new())
        }
    };
    match arena {
        Some(arena) => {
            let mut engine = Engine::new_in(cfg, factory, std::mem::take(arena));
            engine.run_until(Time::from_ticks(horizon));
            let events = engine.metrics().events;
            *arena = engine.into_arena();
            events
        }
        None => {
            let mut engine = Engine::new(cfg, factory);
            engine.run_until(Time::from_ticks(horizon));
            engine.metrics().events
        }
    }
}

fn hps_mesh_run(
    n: usize,
    horizon: u64,
    legacy: bool,
    arena: Option<&mut EngineArena<Mesh>>,
) -> u64 {
    let assign = IdentityAssignment::round_robin(n, 16.min(n));
    let sched = staggered_crashes(n, 2, 40);
    let cfg = SimConfig::new(assign, sched, hps_lossy(50, 16))
        .with_seed(1)
        .with_legacy_hot_path(legacy);
    let factory = |_: usize, _: Identity| Mesh { heard: 0 };
    match arena {
        Some(arena) => {
            let mut engine = Engine::new_in(cfg, factory, std::mem::take(arena));
            engine.run_until(Time::from_ticks(horizon));
            let events = engine.metrics().events;
            *arena = engine.into_arena();
            events
        }
        None => {
            let mut engine = Engine::new(cfg, factory);
            engine.run_until(Time::from_ticks(horizon));
            engine.metrics().events
        }
    }
}

/// Which Figure 8 sweep flavor a run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fig8Workload {
    /// Fault-free staggered-crash sweep (`fig8_consensus_sweep`).
    Plain,
    /// Generated split-brain scenarios (`chaos_sweep`).
    Chaos,
    /// Generated hidden-equivocator attacks (`byz_sweep`): the
    /// payload-mutation hook live on the hot path, verdicts left to the
    /// falsification harness (violations are the *point*).
    Byzantine,
}

/// The shared shape of one Figure 8 run for the sweep rows.
struct Fig8Shape {
    cfg: SimConfig,
    sched: FailureSchedule,
    assign: IdentityAssignment,
    stabilize: Time,
    proposals: Vec<u64>,
    t: usize,
    deadline: Time,
}

fn fig8_shape(n: usize, seed: u64, kind: Fig8Workload, legacy: bool) -> Fig8Shape {
    let l = 4.min(n);
    let assign = IdentityAssignment::round_robin(n, l);
    match kind {
        Fig8Workload::Chaos | Fig8Workload::Byzantine => {
            let scenario = match kind {
                Fig8Workload::Chaos => split_brain(n, seed),
                _ => hidden_equivocator(&assign, seed),
            };
            let cfg = SimConfig::new(
                assign.clone(),
                FailureSchedule::none(n),
                hps_delay_only(1, 3),
            )
            .with_seed(seed)
            .with_legacy_hot_path(legacy);
            let cfg = scenario.install(cfg).expect("generated scenarios validate");
            let sched = cfg.sched.clone();
            let gst = match cfg.network {
                NetworkModel::PartialSync { gst, .. } => gst,
                _ => Time::ZERO,
            };
            let clean = scenario.last_fault_end().max(gst);
            // Equivocated runs usually still decide (on forged values);
            // the tighter margin bounds the stragglers that don't.
            let margin = match kind {
                Fig8Workload::Chaos => 30_000,
                _ => 10_000,
            };
            Fig8Shape {
                cfg,
                sched,
                assign,
                stabilize: clean,
                proposals: (0..n as u64).map(|i| i * 10).collect(),
                t: (n - 1) / 2,
                deadline: clean + Span::from_ticks(margin),
            }
        }
        Fig8Workload::Plain => {
            let stabilize = 40;
            let sched = staggered_crashes(n, 1, stabilize);
            let cfg = SimConfig::new(assign.clone(), sched.clone(), async_net(1, 5))
                .with_seed(seed)
                .with_legacy_hot_path(legacy);
            Fig8Shape {
                cfg,
                sched,
                assign,
                stabilize: Time::from_ticks(stabilize),
                proposals: (0..n as u64).map(|i| i * 10).collect(),
                t: (n - 1) / 2,
                deadline: Time::from_ticks(60 * stabilize + 30_000),
            }
        }
    }
}

/// One Figure 8 run on the legacy flavor: PR 1-shaped consensus process
/// and uncached oracle, per-event engine path, fresh world per seed.
fn fig8_run_legacy(n: usize, seed: u64, kind: Fig8Workload) -> u64 {
    let s = fig8_shape(n, seed, kind, true);
    let props = s.proposals.clone();
    let mut engine = Engine::new(s.cfg, |p, _| {
        let d = pr1::HOmega::new(s.sched.clone(), s.assign.clone(), s.stabilize, p as u64);
        pr1::Fig8::new(props[p], n, s.t, d)
    });
    engine.run_until_all_correct_decided(s.deadline);
    if kind == Fig8Workload::Plain {
        check_consensus(&engine.outcome(s.proposals), &s.sched).expect("consensus holds");
    }
    engine.metrics().events
}

/// The engine type of the current-flavor Figure 8 rows (for the sweep
/// arenas).
type Fig8Node = MajorityConsensus<HOmegaPolicy<HOmegaOracle>>;

/// One Figure 8 run on the current flavor: ring-window consensus, cached
/// oracle, batched engine path, arena-recycled allocations.
fn fig8_run_current(
    n: usize,
    seed: u64,
    kind: Fig8Workload,
    arena: &mut EngineArena<Fig8Node>,
) -> u64 {
    let s = fig8_shape(n, seed, kind, false);
    let w = OracleWorld::new(s.sched.clone(), s.assign.clone(), s.stabilize);
    let props = s.proposals.clone();
    let mut engine = Engine::new_in(
        s.cfg,
        |p, _| {
            MajorityConsensus::new(
                props[p],
                n,
                s.t,
                HOmegaPolicy(w.h_omega_for(p, PreStability::Chaotic)),
            )
        },
        std::mem::take(arena),
    );
    engine.run_until_all_correct_decided(s.deadline);
    if kind == Fig8Workload::Plain {
        check_consensus(&engine.outcome(s.proposals), &s.sched).expect("consensus holds");
    }
    let events = engine.metrics().events;
    *arena = engine.into_arena();
    events
}

/// One Byzantine-tolerant run of the `byz_tolerant_sweep` row: the
/// quorum-certificate stack under the same hidden-equivocator shape as
/// the `byz_sweep` current flavor (same scenario, same batched engine
/// path, arena-recycled), with the tolerance claim asserted — agreement
/// and termination must hold with the equivocator live (the single
/// corrupt source every `hidden_equivocator` scenario mounts, well
/// inside the stack's `n > 3f` envelope at these sizes).
fn byz_tolerant_run(n: usize, seed: u64, arena: &mut EngineArena<ByzQuorumConsensus>) -> u64 {
    let s = fig8_shape(n, seed, Fig8Workload::Byzantine, false);
    let props = s.proposals.clone();
    let assign = s.assign.clone();
    let mut engine = Engine::new_in(
        s.cfg,
        |p, _| ByzQuorumConsensus::new(props[p], &assign).with_tick(2),
        std::mem::take(arena),
    );
    engine.run_until_all_correct_decided(s.deadline);
    check_byzantine_consensus(&engine.outcome(s.proposals), &s.sched, 1)
        .expect("the tolerant stack survives the hidden equivocator");
    let events = engine.metrics().events;
    *arena = engine.into_arena();
    events
}

/// The instrumented flavor of the `obs_overhead` row: exactly
/// [`byz_tolerant_run`], plus the `homonym-obs` recorder and round
/// extractor attached. Returns the dispatched event count (asserted
/// equal to the uninstrumented flavor's) and the number of observation
/// events captured (asserted nonzero — the instrumentation must
/// actually fire to be priced).
fn byz_tolerant_run_observed(
    n: usize,
    seed: u64,
    arena: &mut EngineArena<ByzQuorumConsensus>,
) -> (u64, usize) {
    let s = fig8_shape(n, seed, Fig8Workload::Byzantine, false);
    let props = s.proposals.clone();
    let assign = s.assign.clone();
    let mut engine = Engine::new_in(
        s.cfg,
        |p, _| ByzQuorumConsensus::new(props[p], &assign).with_tick(2),
        std::mem::take(arena),
    );
    engine.set_round_extractor(round_of_byz);
    engine.enable_recorder(1 << 20);
    engine.run_until_all_correct_decided(s.deadline);
    check_byzantine_consensus(&engine.outcome(s.proposals), &s.sched, 1)
        .expect("the tolerant stack survives the hidden equivocator");
    let events = engine.metrics().events;
    let observed = engine.recorder().map_or(0, |r| r.events().len());
    *arena = engine.into_arena();
    (events, observed)
}

/// A shared-prefix variant family for the forked rows: a split-brain
/// partition activating at `start` (late, so the family's common prefix
/// — detector warm-up, early consensus rounds — dominates each run),
/// expanded into `k` variants over heal time and GST margin by the same
/// generator the chaos sweep plans on.
fn late_split_family(n: usize, seed: u64, start: u64, heal: u64, k: usize) -> Vec<Scenario> {
    let base = Scenario::new(format!("late-split#{seed}"), n)
        .with_clause(FaultClause::Partition {
            groups: vec![(0..n / 2).collect(), (n / 2..n).collect()],
            start: Time::from_ticks(start),
            heal_at: Time::from_ticks(start + heal),
            mode: PartitionMode::QueueUntilHeal,
        })
        .with_gst(GstPlacement::AfterLastFault {
            margin: Span::from_ticks(12),
        });
    fault_window_variants(&base, seed, k)
}

/// Installs one variant into a sweep item: `HPS` base network, the
/// variant's scenario, and the given post-clean margin under `goal`.
fn forked_item(
    n: usize,
    seed: u64,
    scenario: &Scenario,
    margin: u64,
    decided: bool,
) -> PrefixItem<()> {
    let sim = SimConfig::new(
        IdentityAssignment::round_robin(n, 4.min(n)),
        FailureSchedule::none(n),
        hps_base(),
    )
    .with_seed(seed);
    let sim = scenario.install(sim).expect("bench scenarios validate");
    let deadline = clean_instant(&sim, scenario) + Span::from_ticks(margin);
    PrefixItem {
        config: sim,
        goal: if decided {
            RunGoal::UntilAllCorrectDecided(deadline)
        } else {
            RunGoal::Until(deadline)
        },
        tag: (),
    }
}

/// The per-run signature the forked/flat equality assertion compares.
type RunSignature = (u64, Vec<Option<(Time, u64)>>);

/// One flat (from-tick-0) run of a sweep item, arena-warm.
fn run_item_flat<P: ForkProcess>(
    item: &PrefixItem<()>,
    factory: impl Fn(usize, Identity) -> P,
    arena: &mut EngineArena<P>,
) -> RunSignature {
    let mut engine = Engine::new_in(item.config.clone(), factory, std::mem::take(arena));
    match item.goal {
        RunGoal::Until(t) => engine.run_until(t),
        RunGoal::UntilAllCorrectDecided(t) => engine.run_until_all_correct_decided(t),
    };
    let out = (engine.metrics().events, engine.decisions().to_vec());
    *arena = engine.into_arena();
    out
}

/// Executes a forked row's families on one side: flat (`legacy = true`)
/// or prefix-sharing. Returns per-run `(events, decisions)` signatures
/// in family-major order.
fn run_forked_row<P: ForkProcess>(
    families: &[Vec<PrefixItem<()>>],
    legacy: bool,
    factory: impl Fn(usize, Identity) -> P + Copy,
    flat_arena: &mut EngineArena<P>,
    sweeper: &mut PrefixSweeper<P>,
) -> Vec<RunSignature> {
    let mut out = Vec::new();
    for family in families {
        if legacy {
            out.extend(
                family
                    .iter()
                    .map(|item| run_item_flat(item, factory, flat_arena)),
            );
        } else {
            out.extend(sweeper.run_family(
                family,
                |_, p, id| factory(p, id),
                |engine, _| (engine.metrics().events, engine.decisions().to_vec()),
            ));
        }
    }
    out
}

/// Interleaved timed repetitions of a workload's legacy and current
/// flavors; keeps each side's fastest run (the one least disturbed by
/// frequency scaling and page-cache warm-up). Allocation counts come
/// from the kept run (they are deterministic per flavor).
fn bench_pair(
    reps: usize,
    side: Option<bool>,
    mut run: impl FnMut(bool) -> u64,
) -> (Sample, Sample) {
    let mut best: [Option<Sample>; 2] = [None, None];
    for _ in 0..reps.max(1) {
        for (slot, legacy) in [(0, true), (1, false)] {
            // `--side` pins one flavor; the other reports a dummy sample.
            if side.is_some_and(|s| s != legacy) {
                continue;
            }
            let allocs_before = alloc_count::allocations();
            let start = Instant::now();
            let events = run(legacy);
            let sample = Sample {
                events,
                secs: start.elapsed().as_secs_f64(),
                allocs: alloc_count::allocations() - allocs_before,
            };
            if best[slot].as_ref().is_none_or(|b| sample.secs < b.secs) {
                best[slot] = Some(sample);
            }
        }
    }
    let dummy = || Sample {
        events: 0,
        secs: 1.0,
        allocs: 0,
    };
    (
        best[0].take().unwrap_or_else(dummy),
        best[1].take().unwrap_or_else(dummy),
    )
}

fn main() {
    let quick = std::env::var("BENCH_SIM_QUICK").is_ok();
    let (n_hps, horizon, n_fig8, seeds, mut reps) = if quick {
        (16, 400, 8, 2, 1)
    } else {
        (64, 2_000, 24, 8, 4)
    };
    // `BENCH_SIM_REPS=<k>` overrides the repetition count — long runs for
    // profiling a row under a sampler, 1 for a fast sanity pass.
    if let Some(k) = std::env::var("BENCH_SIM_REPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        reps = k.max(1);
    }

    // `--only <row>[,<row>...]` (repeatable) restricts the rows measured;
    // `--side legacy|current` pins one flavor for profiling.
    let mut only: Vec<String> = Vec::new();
    let mut side: Option<bool> = None; // Some(true) = legacy only
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--only" => {
                let rows = args.expect_value("--only");
                only.extend(rows.split(',').map(|r| r.trim().to_string()));
            }
            "--side" => {
                side = match args.expect_value("--side").as_str() {
                    "legacy" => Some(true),
                    "current" => Some(false),
                    other => {
                        eprintln!("--side must be legacy or current, got {other}");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_sim [--only <row>[,<row>...]] [--side legacy|current]");
                std::process::exit(2);
            }
        }
    }
    const ROW_NAMES: [&str; 11] = [
        "hps_mesh_n64",
        "hps_detector_n64",
        "fig8_consensus_sweep",
        "chaos_sweep",
        "byz_sweep",
        "byz_tolerant_sweep",
        "obs_overhead",
        "rsm_throughput",
        "fig8_sweep_forked",
        "chaos_sweep_forked",
        "checkpointed_sweep",
    ];
    for row in &only {
        assert!(
            ROW_NAMES.contains(&row.as_str()),
            "unknown row {row:?}; rows: {ROW_NAMES:?}"
        );
    }
    let enabled = |name: &str| only.is_empty() || only.iter().any(|o| o == name);

    println!("## simulator hot-path throughput\n");
    println!("workload sizes: hps n={n_hps} horizon={horizon}, fig8 n={n_fig8} seeds={seeds}");

    // Warm-up (page in code, size allocator pools) before timing.
    let _ = hps_detector_run(n_hps.min(8), 100, 0, false, None);

    // Interleave legacy/current repetitions so frequency drift on shared
    // hosts cannot systematically favor one side; keep each side's best.
    let mut rows: Vec<(&'static str, Sample, Sample)> = Vec::new();
    // Extra figures for the `rsm_throughput` row: (decided commands,
    // decided commands per second), from the current flavor's kept run.
    let mut rsm_commands: Option<(u64, f64)> = None;
    let assert_counts = |a: &Sample, b: &Sample, what: &str| {
        if side.is_none() {
            assert_eq!(a.events, b.events, "{what}");
        }
    };
    if enabled("hps_mesh_n64") {
        let mut arena = EngineArena::new();
        let (legacy, new) = bench_pair(reps, side, |legacy| {
            let arena = (!legacy).then_some(&mut arena);
            hps_mesh_run(n_hps, horizon.min(300), legacy, arena)
        });
        assert_counts(&legacy, &new, "mesh event counts diverged");
        rows.push(("hps_mesh_n64", legacy, new));
    }
    if enabled("hps_detector_n64") {
        let mut arena = EngineArena::new();
        let (legacy, new) = bench_pair(reps, side, |legacy| {
            let arena = (!legacy).then_some(&mut arena);
            hps_detector_run(n_hps, horizon, 1, legacy, arena)
        });
        assert_counts(
            &legacy,
            &new,
            "legacy and batched paths must dispatch identical event counts",
        );
        rows.push(("hps_detector_n64", legacy, new));
    }
    if enabled("fig8_consensus_sweep") {
        let (legacy, new) = bench_pair(reps, side, |legacy| {
            if legacy {
                parallel_seed_sweep(seeds, |seed| {
                    fig8_run_legacy(n_fig8, seed, Fig8Workload::Plain)
                })
                .into_iter()
                .sum()
            } else {
                parallel_seed_sweep_with(seeds, EngineArena::new, |arena, seed| {
                    fig8_run_current(n_fig8, seed, Fig8Workload::Plain, arena)
                })
                .into_iter()
                .sum()
            }
        });
        assert_counts(&legacy, &new, "fig8 sweep event counts diverged");
        rows.push(("fig8_consensus_sweep", legacy, new));
    }
    if enabled("chaos_sweep") {
        let (legacy, new) = bench_pair(reps, side, |legacy| {
            if legacy {
                parallel_seed_sweep(seeds, |seed| {
                    fig8_run_legacy(n_fig8, seed, Fig8Workload::Chaos)
                })
                .into_iter()
                .sum()
            } else {
                parallel_seed_sweep_with(seeds, EngineArena::new, |arena, seed| {
                    fig8_run_current(n_fig8, seed, Fig8Workload::Chaos, arena)
                })
                .into_iter()
                .sum()
            }
        });
        assert_counts(
            &legacy,
            &new,
            "hot paths must dispatch identically under an active fault script",
        );
        rows.push(("chaos_sweep", legacy, new));
    }
    if enabled("byz_sweep") {
        let (legacy, new) = bench_pair(reps, side, |legacy| {
            if legacy {
                parallel_seed_sweep(seeds, |seed| {
                    fig8_run_legacy(n_fig8, seed, Fig8Workload::Byzantine)
                })
                .into_iter()
                .sum()
            } else {
                parallel_seed_sweep_with(seeds, EngineArena::new, |arena, seed| {
                    fig8_run_current(n_fig8, seed, Fig8Workload::Byzantine, arena)
                })
                .into_iter()
                .sum()
            }
        });
        assert_counts(
            &legacy,
            &new,
            "hot paths must dispatch identically under an active Byzantine script",
        );
        rows.push(("byz_sweep", legacy, new));
    }
    if enabled("byz_tolerant_sweep") {
        // The price-of-tolerance row: legacy column = the *undefended*
        // crash-only stack under the hidden-equivocator attacks (the
        // `byz_sweep` current flavor, so both columns share the batched
        // engine path and the ratio isolates certificate work), current
        // column = the Byzantine-tolerant stack with its claim asserted.
        // Different algorithms dispatch different event counts, so this
        // row asserts no count equality and its "speedup" is overhead.
        let (legacy, new) = bench_pair(reps, side, |legacy| {
            if legacy {
                parallel_seed_sweep_with(seeds, EngineArena::new, |arena, seed| {
                    fig8_run_current(n_fig8, seed, Fig8Workload::Byzantine, arena)
                })
                .into_iter()
                .sum()
            } else {
                parallel_seed_sweep_with(seeds, EngineArena::new, |arena, seed| {
                    byz_tolerant_run(n_fig8, seed, arena)
                })
                .into_iter()
                .sum()
            }
        });
        rows.push(("byz_tolerant_sweep", legacy, new));
    }
    if enabled("obs_overhead") {
        // The price of observability: the tolerant sweep run twice on
        // the batched path, recorder absent (legacy column) vs recorder
        // attached (current column). Same algorithm, same schedule —
        // event counts are asserted identical, the instrumented side
        // must capture a nonzero number of observation events, and the
        // ratio prices the observe channel (~1.0× expected; the
        // zero-cost-when-absent half is asserted byte-identical by
        // `tests/obs_props.rs`).
        let observed = std::cell::Cell::new(0usize);
        let (legacy, new) = bench_pair(reps, side, |uninstrumented| {
            if uninstrumented {
                parallel_seed_sweep_with(seeds, EngineArena::new, |arena, seed| {
                    byz_tolerant_run(n_fig8, seed, arena)
                })
                .into_iter()
                .sum()
            } else {
                let runs = parallel_seed_sweep_with(seeds, EngineArena::new, |arena, seed| {
                    byz_tolerant_run_observed(n_fig8, seed, arena)
                });
                observed.set(runs.iter().map(|&(_, o)| o).sum());
                runs.into_iter().map(|(events, _)| events).sum()
            }
        });
        assert_counts(
            &legacy,
            &new,
            "attaching the recorder must not change the dispatched schedule",
        );
        if side.is_none_or(|s| !s) {
            assert!(
                observed.get() > 0,
                "the instrumented flavor captured no observation events"
            );
        }
        rows.push(("obs_overhead", legacy, new));
    }
    if enabled("rsm_throughput") {
        // The replicated log service under closed-loop client traffic,
        // through the session lifecycle API. Both columns run the same
        // stack to the same fixed tick horizon — the only goal whose
        // event counts are byte-comparable across the hot paths — so
        // the asserted equality extends the trace contract to the
        // multi-height workload. Beyond events/sec, the row reports
        // decided commands (committed heights on the slowest correct
        // replica) per second from the current flavor's kept sample.
        let (n_rsm, rsm_horizon) = if quick { (4, 2_000) } else { (8, 20_000) };
        let workload = WorkloadConfig {
            // Deep closed-loop queues: the clients never run dry, so
            // every height carries a real command, never a no-op.
            commands_per_proc: 1 << 14,
            ..WorkloadConfig::default()
        };
        let committed = std::cell::Cell::new(0u64);
        let (legacy, new) = bench_pair(reps, side, |legacy| {
            let mut session = SessionBuilder::new(n_rsm, 4.min(n_rsm))
                .with_seed(5)
                .with_legacy_hot_path(legacy)
                .with_goal(Goal::TickHorizon)
                .with_deadline_ticks(rsm_horizon)
                .rsm(&workload);
            session.run();
            let stats = session.stats();
            if !legacy {
                committed.set(stats.min_correct_log.unwrap_or(0));
            }
            stats.events
        });
        assert_counts(
            &legacy,
            &new,
            "fixed-horizon log-service runs must dispatch identical event counts",
        );
        if side.is_none_or(|s| !s) {
            assert!(
                committed.get() > 0,
                "the log service committed nothing within the horizon"
            );
            rsm_commands = Some((committed.get(), committed.get() as f64 / new.secs.max(1e-9)));
        }
        rows.push(("rsm_throughput", legacy, new));
    }
    // The forked rows compare the flat executor (legacy column: every
    // variant re-runs its full history) against the prefix-sharing
    // executor (current column: the family's shared prefix runs once,
    // snapshotted at the computed divergence point and restored per
    // variant). Both sides run arena-warm; per-variant event counts and
    // decision vectors are asserted identical before timing.
    let (forked_fams, forked_k) = if quick { (2, 4) } else { (4, 8) };
    if enabled("fig8_sweep_forked") {
        let (n_f8, start, heal) = if quick { (8, 120, 50) } else { (16, 400, 80) };
        let families: Vec<Vec<PrefixItem<()>>> = (0..forked_fams as u64)
            .map(|f| {
                late_split_family(n_f8, 1 + f, start, heal, forked_k)
                    .iter()
                    .map(|scn| forked_item(n_f8, 1 + f, scn, 30_000, true))
                    .collect()
            })
            .collect();
        let t = (n_f8 - 1) / 2;
        let factory = move |p: usize, _: Identity| fig8_node(100 + p as u64, n_f8, t);
        let mut flat_arena: EngineArena<ChaosFig8Node> = EngineArena::new();
        let mut sweeper: PrefixSweeper<ChaosFig8Node> = PrefixSweeper::new();
        if side.is_none() {
            assert_eq!(
                run_forked_row(&families, true, factory, &mut flat_arena, &mut sweeper),
                run_forked_row(&families, false, factory, &mut flat_arena, &mut sweeper),
                "forked and flat executors must produce identical per-variant \
                 decisions and event counts (fig8 stack)",
            );
        }
        let (legacy, new) = bench_pair(reps, side, |legacy| {
            run_forked_row(&families, legacy, factory, &mut flat_arena, &mut sweeper)
                .iter()
                .map(|(events, _)| events)
                .sum()
        });
        assert_counts(&legacy, &new, "fig8 forked-sweep event counts diverged");
        rows.push(("fig8_sweep_forked", legacy, new));
    }
    if enabled("chaos_sweep_forked") {
        let (n_det, start, heal, margin) = if quick {
            (8, 300, 40, 400)
        } else {
            (24, 2_500, 60, 600)
        };
        let families: Vec<Vec<PrefixItem<()>>> = (0..forked_fams as u64)
            .map(|f| {
                late_split_family(n_det, 11 + f, start, heal, forked_k)
                    .iter()
                    .map(|scn| forked_item(n_det, 11 + f, scn, margin, false))
                    .collect()
            })
            .collect();
        let factory = move |_: usize, _: Identity| EvtHpProcess::new();
        let mut flat_arena: EngineArena<EvtHpProcess> = EngineArena::new();
        let mut sweeper: PrefixSweeper<EvtHpProcess> = PrefixSweeper::new();
        if side.is_none() {
            assert_eq!(
                run_forked_row(&families, true, factory, &mut flat_arena, &mut sweeper),
                run_forked_row(&families, false, factory, &mut flat_arena, &mut sweeper),
                "forked and flat executors must produce identical per-variant \
                 event counts (detector stack)",
            );
        }
        let (legacy, new) = bench_pair(reps, side, |legacy| {
            run_forked_row(&families, legacy, factory, &mut flat_arena, &mut sweeper)
                .iter()
                .map(|(events, _)| events)
                .sum()
        });
        assert_counts(&legacy, &new, "detector forked-sweep event counts diverged");
        rows.push(("chaos_sweep_forked", legacy, new));
    }
    if enabled("checkpointed_sweep") {
        // The price of durability: the same falsification sweep in RAM
        // (legacy column) vs checkpointed group by group into a fresh
        // directory (current column). Reports must be identical — the
        // checkpoint layer may never change a verdict — and the ratio
        // prices the atomic segment writes. "Events" are scenario runs.
        let ckpt_scenarios = if quick { 6 } else { 24 };
        let cfg = ChaosSweepConfig::new(ChaosStackKind::Fig8EvtHp, ckpt_scenarios).with_variants(4);
        let dir = std::env::temp_dir().join(format!("bench-sim-ckpt-{}", std::process::id()));
        let baseline: std::cell::RefCell<Option<homonym_chaos::SweepReport>> =
            std::cell::RefCell::new(None);
        let (legacy, new) = bench_pair(reps, side, |in_ram| {
            let report = if in_ram {
                falsification_sweep_forked(&cfg)
            } else {
                let _ = std::fs::remove_dir_all(&dir);
                let (report, stats) =
                    checkpointed_falsification_sweep(&cfg, &CheckpointConfig::new(&dir))
                        .expect("checkpointed sweep on a fresh temp dir");
                assert_eq!(
                    stats.groups_executed, ckpt_scenarios as u64,
                    "a fresh checkpoint directory must execute every group"
                );
                report
            };
            let mut b = baseline.borrow_mut();
            match &*b {
                Some(prev) => assert_eq!(
                    prev, &report,
                    "the checkpointed sweep report diverged from the in-RAM forked sweep"
                ),
                None => *b = Some(report.clone()),
            }
            report.runs as u64
        });
        let _ = std::fs::remove_dir_all(&dir);
        rows.push(("checkpointed_sweep", legacy, new));
    }

    let alloc_header = if alloc_count::ENABLED {
        " legacy alloc/ev | alloc/ev |"
    } else {
        ""
    };
    println!("\n| workload | events | legacy ev/s | current ev/s | speedup |{alloc_header}");
    println!(
        "|----------|--------|-------------|--------------|---------|{}",
        if alloc_count::ENABLED {
            "-----------------|----------|"
        } else {
            ""
        }
    );
    // Bump `schema_version` whenever the JSON shape changes (new or
    // renamed fields/rows, or a re-baselined legacy column); see
    // BENCHMARKS.md for the version history.
    let mut json = String::from("{\n  \"schema_version\": 9,\n");
    for (name, legacy, new) in &rows {
        let speedup = new.events_per_sec() / legacy.events_per_sec();
        let rsm_json = match (*name, rsm_commands) {
            ("rsm_throughput", Some((commands, per_sec))) => format!(
                ", \"decided_commands\": {commands}, \"decided_commands_per_sec\": {per_sec:.0}"
            ),
            _ => String::new(),
        };
        let alloc_cols = if alloc_count::ENABLED {
            format!(
                " {:.2} | {:.2} |",
                legacy.allocs_per_event(),
                new.allocs_per_event()
            )
        } else {
            String::new()
        };
        println!(
            "| {} | {} | {:.0} | {:.0} | {:.2}x |{}",
            name,
            new.events,
            legacy.events_per_sec(),
            new.events_per_sec(),
            speedup,
            alloc_cols,
        );
        let alloc_json = if alloc_count::ENABLED {
            format!(
                ", \"legacy_allocs_per_event\": {:.3}, \"allocs_per_event\": {:.3}",
                legacy.allocs_per_event(),
                new.allocs_per_event()
            )
        } else {
            ", \"legacy_allocs_per_event\": null, \"allocs_per_event\": null".to_string()
        };
        json.push_str(&format!(
            "  \"{}\": {{\"events\": {}, \"legacy_events_per_sec\": {:.0}, \"events_per_sec\": {:.0}, \"speedup\": {:.3}{}{}}},\n",
            name,
            new.events,
            legacy.events_per_sec(),
            new.events_per_sec(),
            speedup,
            alloc_json,
            rsm_json,
        ));
    }
    if let Some((commands, per_sec)) = rsm_commands {
        println!(
            "\nrsm_throughput: {commands} commands committed on the slowest correct \
             replica ({per_sec:.0} decided commands/sec)"
        );
    }
    json.push_str(&format!(
        "  \"legacy_baseline\": \"pr1-hot-path\",\n  \"quick_mode\": {quick},\n  \"generated_by\": \"cargo run --release -p homonym-bench --bin bench_sim\"\n}}\n"
    ));
    if only.is_empty() && side.is_none() {
        std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
        eprintln!("\nwrote BENCH_sim.json");
    } else {
        // Partial runs are for profiling; don't clobber the full table.
        eprintln!("\n--only/--side given: BENCH_sim.json left untouched");
    }
}

/// Small helper: pull the value of a flag or die with usage.
trait ExpectValue {
    fn expect_value(&mut self, flag: &str) -> String;
}

impl<I: Iterator<Item = String>> ExpectValue for I {
    fn expect_value(&mut self, flag: &str) -> String {
        self.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    }
}
