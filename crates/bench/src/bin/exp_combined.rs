//! Experiments E12 and E13 — the implementability boundary and the second
//! combined result.
//!
//! * **E12.** `AP` is implementable in anonymous *synchronous* systems
//!   (the windowed-count estimator is class-valid on every seed) but not
//!   under partial synchrony (pre-GST delays break its perpetual safety
//!   bound) — which is why the paper's `HΩ`, implementable in `HPS`
//!   (Figure 6), matters.
//! * **E13.** Figure 7 (`HΣ`, step-paced) + Figure 6 (`HΩ`) + Figure 9
//!   consensus, all real message-passing processes stacked per node,
//!   solve consensus in synchronous homonymous systems with **any**
//!   number of crashes, without knowing `t` or the membership.

use homonym_bench::{ap_realism, combined_synchronous};

fn main() {
    println!("## E12 — AP implementability boundary\n");
    println!("windowed-count AP estimator, n=5 anonymous, 1 crash, 12 seeds\n");
    println!("| network | class-valid | safety violations |");
    println!("|---------|-------------|-------------------|");
    for synchronous in [true, false] {
        let r = ap_realism(synchronous, 12);
        println!(
            "| {} | {}/{} | {}/{} |",
            r.network, r.valid, r.seeds, r.safety_violations, r.seeds
        );
    }
    println!("\nSynchrony: always valid. Eventually-timely links: safety breaks");
    println!("pre-GST — AP is not realistic there, HΩ (Figure 6) is.");

    println!("\n## E13 — combined result: Fig 7 + Fig 6 + Fig 9 in HSS, any t\n");
    println!("triple-stacked real detectors, synchronous network\n");
    println!("| n | ℓ | crashes | decided | last decision | broadcasts |");
    println!("|---|---|---------|---------|---------------|------------|");
    for &(n, l, crashes) in &[
        (4usize, 2usize, 0usize),
        (4, 2, 3),
        (6, 2, 3),
        (6, 3, 5),
        (8, 4, 6),
    ] {
        let r = combined_synchronous(n, l, crashes, 3 + n as u64);
        println!(
            "| {} | {} | {} | {} | t{} | {} |",
            r.n, r.l, r.crashes, r.decided, r.last_decision, r.broadcasts
        );
    }
    println!("\nEvery row decides — including crashed majorities — with neither");
    println!("t nor n nor the membership known to any process.");
}
