//! Experiment E11 — the "price of anonymity" round-complexity gap
//! (context claim cited from \[5\] in §1).
//!
//! Claim reproduced: classical flooding with `P` decides in `t + 1`
//! rounds; anonymous flooding with `AP` needs `2t + 1` — a 2× gap that
//! both variants' checkers confirm is not paid in correctness.

use homonym_bench::price_of_anonymity;

fn main() {
    println!("## E11 — price of anonymity: P (t+1) vs AP (2t+1)\n");
    println!("| t | n | P rounds | AP rounds | P msgs | AP msgs |");
    println!("|---|---|----------|-----------|--------|---------|");
    for t in 1usize..=5 {
        let r = price_of_anonymity(t, t, 91 + t as u64);
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            r.t,
            2 * t + 1,
            r.p_rounds,
            r.ap_rounds,
            r.p_broadcasts,
            r.ap_broadcasts
        );
        assert_eq!(r.p_rounds, t as u64 + 1);
        assert_eq!(r.ap_rounds, 2 * t as u64 + 1);
    }
    println!("\nThe AP variant always needs 2t+1 rounds — twice the identifier-aware bound.");
}
