//! Experiment E4 — Figure 4: HΣ → Σ using class `E` (Theorem 2).
//!
//! Claim reproduced: the produced `trusted_p` sets satisfy `Σ` safety and
//! converge into `I(Correct)`; convergence trails the `HΣ` oracle's
//! stabilization and the `LABELS` exchange.

use homonym_bench::fig4_hsigma_to_sigma;

fn main() {
    println!("## E4 — HΣ → Σ via class E (Figure 4, Theorem 2)\n");
    println!("| n | crashes | Σ liveness by | LABELS msgs |");
    println!("|---|---------|---------------|-------------|");
    for &n in &[3usize, 4, 6, 8, 10] {
        for crashes in [0usize, 1, (n - 1) / 2] {
            let r = fig4_hsigma_to_sigma(n, crashes, 11 + n as u64);
            println!(
                "| {} | {} | t{} | {} |",
                r.n, r.crashes, r.liveness_by, r.broadcasts
            );
        }
    }
}
