//! Experiment E10 — the §1 headline: Figure 6 + Figure 8 composed solve
//! consensus in homonymous partially synchronous systems with a majority
//! of correct processes.
//!
//! Claim reproduced: decision latency tracks GST — consensus completes
//! shortly after the network stabilizes, at every homonymy degree.

use homonym_bench::e2e_partial_synchrony;

fn main() {
    println!("## E10 — end-to-end: Fig 6 detector + Fig 8 consensus in HPS\n");
    println!("### GST sweep (n=5, ℓ=2, δ=4, 1 crash)\n");
    println!("| GST | all decided by | broadcasts |");
    println!("|-----|----------------|------------|");
    for &gst in &[0u64, 50, 150, 400, 800] {
        let r = e2e_partial_synchrony(5, 2, gst, 71 + gst);
        println!("| {} | t{} | {} |", r.gst, r.last_decision, r.broadcasts);
    }
    println!("\n### homonymy sweep (GST=100)\n");
    println!("| ℓ | all decided by | broadcasts |");
    println!("|---|----------------|------------|");
    for &l in &[1usize, 2, 5] {
        let r = e2e_partial_synchrony(5, l, 100, 81 + l as u64);
        println!("| {} | t{} | {} |", l, r.last_decision, r.broadcasts);
    }
}
