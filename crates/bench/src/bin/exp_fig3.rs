//! Experiment E3 — Figure 3: class `E` in `AS[∅]`.
//!
//! Claim reproduced (Lemma 1): the correct identifiers eventually occupy
//! the prefix of `alive_p` permanently; stabilization trails the last
//! crash and grows mildly with `n`.

use homonym_bench::fig3_e_list;

fn main() {
    println!("## E3 — class E implementation (Figure 3, Lemma 1)\n");
    println!("| n | crashes | stabilization | ALIVE msgs |");
    println!("|---|---------|---------------|------------|");
    for &n in &[3usize, 5, 8, 12, 16, 24] {
        for crashes in [0usize, 1, n / 3] {
            let r = fig3_e_list(n, crashes, 7 + n as u64);
            println!(
                "| {} | {} | t{} | {} |",
                r.n, r.crashes, r.stabilization, r.broadcasts
            );
        }
    }
}
