//! Experiment E5 — Figure 5: the relation diagram.
//!
//! Claim reproduced: every arrow of the diagram is a working reduction
//! whose output passes the target class's property checkers.

use homonym_bench::fig5_relations;

fn main() {
    println!("## E5 — relations between classes (Figure 5)\n");
    println!("| arrow | stated in | class-valid | note |");
    println!("|-------|-----------|-------------|------|");
    for row in fig5_relations(2026) {
        println!(
            "| {} | {} | {} | {} |",
            row.arrow,
            row.stated_in,
            if row.valid { "yes" } else { "**NO**" },
            row.note
        );
    }
}
