//! Experiment E9 — Figure 9: consensus in `HAS[HΩ, HΣ]` (Theorem 8).
//!
//! Claims reproduced:
//! * terminates for **any** number of crashes, including a crashed
//!   majority, where Figure 8 provably blocks (its `n − t` waits starve);
//! * neither `n` nor `t` is supplied to the processes;
//! * every decision is checker-verified.

use homonym_bench::{fig8_blocks_beyond_majority, fig9_consensus};

fn main() {
    println!("## E9 — consensus with (HΩ, HΣ), any t (Figure 9)\n");
    println!("### crash sweep at n=6, ℓ=2 (stabilize t=40)\n");
    println!("| crashes | Fig 9 decided | Fig 9 last decision | Fig 9 rounds | Fig 8 decided |");
    println!("|---------|---------------|---------------------|--------------|----------------|");
    for crashes in 0usize..=5 {
        let r9 = fig9_consensus(6, 2, crashes, 40, 51 + crashes as u64);
        let fig8 = if 2 * crashes >= 6 {
            let r8 = fig8_blocks_beyond_majority(6, crashes, 51 + crashes as u64);
            assert!(!r8.decided);
            "blocks (as predicted)".to_string()
        } else {
            "decides".to_string()
        };
        println!(
            "| {} | {} | t{} | {} | {} |",
            crashes, r9.decided, r9.last_decision, r9.rounds, fig8
        );
    }

    println!("\n### homonymy sweep (n=6, 3 crashes — beyond majority)\n");
    println!("| ℓ | decided | last decision | broadcasts |");
    println!("|---|---------|---------------|------------|");
    for &l in &[1usize, 2, 3, 6] {
        let r = fig9_consensus(6, l, 3, 40, 61 + l as u64);
        println!(
            "| {} | {} | t{} | {} |",
            l, r.decided, r.last_decision, r.broadcasts
        );
    }
}
