//! `chaos_sweep` experiment: the falsification sweep over generated
//! adversarial scenarios.
//!
//! Runs every stack (`fig8-evt-hp`, `fig9-oracle-quorum`,
//! `evt-hp-detector`, `byz-tolerant-quorum`) against the scenario family
//! rotation and asserts:
//!
//! * **zero safety violations** anywhere — a safety counterexample makes
//!   the binary print the replayable seed + scenario script and exit
//!   nonzero;
//! * **zero liveness violations on the eventually-clean subset** — same
//!   failure mode;
//! * at least one **pre-heal/post-heal demonstration** per consensus
//!   stack: a truncated probe blocked before the first heal whose full
//!   run then terminated, i.e. liveness correctly fails while the
//!   partition is up and holds once it heals.
//!
//! In **Byzantine mode** (`CHAOS_BYZANTINE=1`) the rotation interleaves
//! the equivocation/corruption families (including the over-threshold
//! `f ≥ ⌈n/3⌉` coalition) with the crash families, and the contract
//! splits by stack:
//!
//! * the **crash-only** stacks must produce at least one **demonstrated
//!   counterexample** (a crash-only stack falling to a hidden
//!   equivocator — replayable as family + seed + script) while the
//!   crash-only subset keeps zero safety violations;
//! * the **Byzantine-tolerant** stack asserts its tolerance claim:
//!   **zero** counterexamples of any kind on `f < n/3` runs (violations
//!   there are falsifications, never excused), at least one run
//!   *survived* under active corruption, and every demonstrated fall
//!   comes from the `over-threshold-byzantine` family — the stack falls
//!   exactly past its `n > 3f` bound, never inside it.
//!
//! Afterwards the first Figure 8 demonstration is **replayed from
//! mid-run** — the honest prefix snapshotted just before the
//! equivocation window and re-forked across attack variations — and the
//! forked verdicts are asserted identical to flat re-execution; the same
//! within-tolerance counterexample is then replayed against the
//! tolerant stack, which must survive every variation.
//!
//! Usage: `cargo run --release -p homonym-bench --bin exp_chaos -- [flags]`
//! Flags (each with an environment equivalent for CI):
//! * `--checkpoint-dir <dir>` / `CHAOS_CHECKPOINT_DIR=<dir>` — run the
//!   **kill-tolerant** sweep driver: per-stack progress is checkpointed
//!   under `<dir>/<stack>/` (atomic, checksummed segment files), so a
//!   SIGKILL at any instant loses at most the in-flight scenario
//!   groups;
//! * `--resume` / `CHAOS_RESUME=1` — reuse verified segments already in
//!   the checkpoint directory instead of starting fresh (without it the
//!   directory is cleared first). A directory written by a different
//!   configuration or binary fails with a clear error and exit code 2,
//!   never a panic;
//! * `--spill-budget <bytes>` / `CHAOS_SPILL_BUDGET=<bytes>` — also
//!   spill cold prefix-tree snapshots to disk past this RAM budget;
//! * `--verify-resume` / `CHAOS_VERIFY_RESUME=1` — after the
//!   checkpointed sweep, re-run uninterrupted in RAM and assert the two
//!   reports are identical (prints a greppable verdict).
//!
//! Environment:
//! * `CHAOS_SWEEP_SCENARIOS=<k>` — scenarios **per stack** (default 400,
//!   so the default run sweeps 1200 scenarios overall; CI smoke uses a
//!   small value);
//! * `CHAOS_BYZANTINE=1` — Byzantine mode (see above);
//! * `HOMONYM_EXP_JSON=<dir>` — additionally dump the rows as JSON.

use std::path::PathBuf;

use homonym_bench::maybe_dump;
use homonym_chaos::{
    byzantine_story, checkpointed_falsification_sweep, falsification_sweep,
    falsification_sweep_forked, replay_byzantine_counterexample, CheckpointConfig, StackKind,
    SweepConfig, SweepReport,
};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    stack: &'static str,
    scenarios: usize,
    liveness_held: usize,
    liveness_excused: usize,
    safety_violations: usize,
    liveness_violations: usize,
    byzantine_demonstrated: usize,
    byzantine_survived: usize,
    probes: usize,
    probe_demonstrations: usize,
    probe_decided_early: usize,
}

fn report_row(stack: StackKind, report: &SweepReport) -> Row {
    Row {
        stack: stack.name(),
        scenarios: report.runs,
        liveness_held: report.liveness_held,
        liveness_excused: report.liveness_excused,
        safety_violations: report.safety_counterexamples.len(),
        liveness_violations: report.liveness_counterexamples.len(),
        byzantine_demonstrated: report.byzantine_demonstrated.len(),
        byzantine_survived: report.byzantine_survived,
        probes: report.probes,
        probe_demonstrations: report.probe_demonstrations,
        probe_decided_early: report.probe_decided_early,
    }
}

/// Checkpointing knobs, merged from flags and their CI env equivalents
/// (a flag wins over its variable).
struct CheckpointArgs {
    dir: Option<PathBuf>,
    resume: bool,
    spill_budget: Option<u64>,
    verify_resume: bool,
}

fn parse_args() -> CheckpointArgs {
    let env_flag = |name: &str| std::env::var(name).is_ok_and(|v| v != "0" && !v.is_empty());
    let mut out = CheckpointArgs {
        dir: std::env::var("CHAOS_CHECKPOINT_DIR")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from),
        resume: env_flag("CHAOS_RESUME"),
        spill_budget: std::env::var("CHAOS_SPILL_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok()),
        verify_resume: env_flag("CHAOS_VERIFY_RESUME"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--checkpoint-dir" => out.dir = Some(PathBuf::from(value("--checkpoint-dir"))),
            "--resume" => out.resume = true,
            "--spill-budget" => {
                let v = value("--spill-budget");
                out.spill_budget = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--spill-budget needs a byte count, got {v:?}");
                    std::process::exit(2);
                }));
            }
            "--verify-resume" => out.verify_resume = true,
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let per_stack: usize = std::env::var("CHAOS_SWEEP_SCENARIOS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let byzantine = std::env::var("CHAOS_BYZANTINE").is_ok_and(|v| v != "0");
    let ck_args = parse_args();

    let mode = if byzantine { "Byzantine" } else { "crash" };
    println!("## chaos falsification sweep ({per_stack} scenarios per stack, {mode} mode)\n");
    println!(
        "| stack | scenarios | liveness held | excused | safety cex | liveness cex | byz demonstrated | byz survived | probes | pre-heal blocked → post-heal decided |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");

    let stacks = [
        StackKind::Fig8EvtHp,
        StackKind::Fig9OracleQuorum,
        StackKind::EvtHpDetector,
        StackKind::ByzTolerant,
    ];
    let mut rows = Vec::new();
    let mut falsified = false;
    let mut fig8_report: Option<SweepReport> = None;
    for stack in stacks {
        let cfg = if byzantine {
            SweepConfig::byzantine(stack, per_stack)
        } else {
            SweepConfig::new(stack, per_stack)
        };
        let report = match &ck_args.dir {
            None => falsification_sweep(&cfg),
            Some(dir) => {
                let stack_dir = dir.join(stack.name());
                if !ck_args.resume {
                    // A fresh start was requested: previous progress in
                    // this directory must not leak into the report.
                    let _ = std::fs::remove_dir_all(&stack_dir);
                }
                let mut ck = CheckpointConfig::new(&stack_dir);
                if let Some(budget) = ck_args.spill_budget {
                    ck = ck.with_spill_budget(budget);
                }
                match checkpointed_falsification_sweep(&cfg, &ck) {
                    Ok((report, stats)) => {
                        eprintln!(
                            "checkpoint[{}]: {} groups ({} resumed, {} executed, \
                             {} corrupt segment(s) re-executed)",
                            stack.name(),
                            stats.groups_total,
                            stats.groups_resumed,
                            stats.groups_executed,
                            stats.corrupt_segments,
                        );
                        if ck_args.verify_resume {
                            let uninterrupted = falsification_sweep_forked(&cfg);
                            assert_eq!(
                                report, uninterrupted,
                                "checkpointed report diverged from the uninterrupted run"
                            );
                            eprintln!(
                                "resume verified[{}]: report identical to uninterrupted run",
                                stack.name()
                            );
                        }
                        report
                    }
                    Err(e) => {
                        // Version/fingerprint mismatches and I/O faults
                        // are operator problems: clear message, clean
                        // exit — never a panic backtrace.
                        eprintln!("checkpoint sweep failed for {}: {e}", stack.name());
                        std::process::exit(2);
                    }
                }
            }
        };
        let row = report_row(stack, &report);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            row.stack,
            row.scenarios,
            row.liveness_held,
            row.liveness_excused,
            row.safety_violations,
            row.liveness_violations,
            row.byzantine_demonstrated,
            row.byzantine_survived,
            row.probes,
            row.probe_demonstrations,
        );
        if let Some(cex) = report.first_counterexample() {
            falsified = true;
            eprintln!(
                "\nFALSIFIED {}: {}\n  replay: family={} seed={}\n  script: {}",
                stack.name(),
                cex.violation,
                cex.family,
                cex.seed,
                cex.script
            );
        }
        if matches!(
            stack,
            StackKind::Fig8EvtHp | StackKind::Fig9OracleQuorum | StackKind::ByzTolerant
        ) && report.probes > 0
            && report.probe_demonstrations == 0
        {
            falsified = true;
            eprintln!(
                "\n{}: no pre-heal/post-heal liveness demonstration in {} probes",
                stack.name(),
                report.probes
            );
        }
        if byzantine && report.byzantine_demonstrated.is_empty() {
            falsified = true;
            if stack == StackKind::ByzTolerant {
                eprintln!(
                    "\n{}: the over-threshold family failed to fell the tolerant stack — \
                     `f >= n/3` coalitions must demonstrate the bound is tight",
                    stack.name()
                );
            } else {
                eprintln!(
                    "\n{}: the Byzantine families produced no demonstrated counterexample — \
                     a crash-only stack survived every equivocation/corruption attack",
                    stack.name()
                );
            }
        }
        if byzantine && stack == StackKind::ByzTolerant {
            // The tolerance claim, both halves: survivals under active
            // corruption inside the envelope, demonstrated falls only
            // past it. Claim-gating in the sweep already turns any
            // within-envelope violation into a hard counterexample
            // (caught above); this pins the demonstration provenance.
            if report.byzantine_survived == 0 {
                falsified = true;
                eprintln!(
                    "\n{}: no corrupt run survived — the tolerance claim was never exercised",
                    stack.name()
                );
            }
            if let Some(cex) = report
                .byzantine_demonstrated
                .iter()
                .find(|c| c.family != "over-threshold-byzantine")
            {
                falsified = true;
                eprintln!(
                    "\n{}: demonstrated fall inside the `n > 3f` envelope \
                     (family={} seed={}) — the tolerant stack must only fall past its bound\n  {}",
                    stack.name(),
                    cex.family,
                    cex.seed,
                    cex.script
                );
            }
        }
        if stack == StackKind::Fig8EvtHp {
            fig8_report = Some(report);
        }
        rows.push(row);
    }
    maybe_dump(
        if byzantine {
            "byz_sweep"
        } else {
            "chaos_sweep"
        },
        &rows,
    );

    assert!(
        !falsified,
        "falsification sweep found a counterexample (see stderr)"
    );

    if byzantine {
        // Mid-run counterexample replay: rebuild the first Figure 8
        // demonstration, snapshot just before its equivocation window,
        // and re-fork across attack variations. The forked verdicts
        // must equal flat re-execution, and the prefix must actually be
        // shared (nonzero fork count).
        let report = fig8_report.expect("fig8 stack ran");
        let cex = report
            .first_demonstration()
            .expect("asserted nonempty above");
        println!(
            "\n### mid-run replay of the first fig8 demonstration\n\n\
             base counterexample: family={} seed={}\n  {}",
            cex.family, cex.seed, cex.violation
        );
        let cfg = SweepConfig::byzantine(StackKind::Fig8EvtHp, per_stack);
        let replay = replay_byzantine_counterexample(&cfg, cex, 6);
        for (script, verdict) in replay.scripts.iter().zip(&replay.forked) {
            let outcome = match verdict.violation() {
                Some(v) => format!("{v}"),
                None => "all properties held (attack variation missed)".to_string(),
            };
            println!("- {script}\n  → {outcome}");
        }
        assert!(
            replay.verdicts_match(),
            "forked mid-run replay diverged from flat re-execution:\nforked: {:?}\nflat: {:?}",
            replay.forked,
            replay.flat
        );
        assert!(
            replay.stats.forked > 0,
            "the replay never restored from the honest-prefix snapshot: {:?}",
            replay.stats
        );
        println!(
            "\nforked replay == flat re-execution on all {} variations; \
             {} forked from {} snapshot(s), {} shared ticks never re-executed; \
             {} variation(s) still falsify the crash-only stack",
            replay.forked.len(),
            replay.stats.forked,
            replay.stats.snapshots,
            replay.stats.shared_ticks,
            replay.still_falsified(),
        );
        // The same attack that felled the crash-only Figure 8 stack,
        // replayed mid-run against the Byzantine-tolerant stack: every
        // variation stays inside the `f < n/3` envelope (same corrupt
        // sources), so the tolerant stack must survive all of them.
        if let Some(cex) = report
            .byzantine_demonstrated
            .iter()
            .find(|c| c.family != "over-threshold-byzantine")
        {
            let cfg = SweepConfig::byzantine(StackKind::ByzTolerant, per_stack);
            let survival = replay_byzantine_counterexample(&cfg, cex, 6);
            assert!(
                survival.verdicts_match(),
                "tolerant-stack forked replay diverged from flat re-execution:\nforked: {:?}\nflat: {:?}",
                survival.forked,
                survival.flat
            );
            assert_eq!(
                survival.still_falsified(),
                0,
                "the tolerant stack fell to a within-envelope attack it must survive: {:?}",
                survival.forked
            );
            println!(
                "\nthe same within-envelope attack (family={} seed={}) replayed against \
                 {}: all {} variations survived (forked == flat)",
                cex.family,
                cex.seed,
                StackKind::ByzTolerant.name(),
                survival.forked.len(),
            );
            // The counterexample as a story: the exact falsified
            // scenario re-run with the observability recorder attached,
            // rendered as per-process timelines — the equivocation
            // window (attack firings) and the surviving quorum
            // certificates become visible events.
            let story = byzantine_story(&cfg, cex);
            assert!(
                !story.violated,
                "the story replay fell where the sweep survived: {}",
                story.script
            );
            println!(
                "\n### the surviving run as a story\n\n\
                 script: {}\n\n{}\n```mermaid\n{}```",
                story.script, story.ascii, story.mermaid
            );
            println!(
                "certificates formed: {} (sizes p50/p99: {}/{}); attacks fired: {}; \
                 copies discarded by ledgers: {}",
                story.stats.certificate_sizes.count(),
                story.stats.certificate_sizes.percentile(50),
                story.stats.certificate_sizes.percentile(99),
                story.stats.attacks_fired,
                story.stats.ledger_discards,
            );
        }
        println!(
            "\nByzantine contract held: every crash-only stack produced \
             demonstrated counterexamples under corrupt homonyms (crash-only \
             algorithms fall to f < n/3 equivocators, as predicted), safety \
             held untouched on the crash-only subset, and the tolerant stack \
             survived every within-envelope attack while falling only to the \
             over-threshold family."
        );
    } else {
        println!(
            "\nNo counterexamples: safety held in every run; liveness held on \
             every eventually-clean run and failed only pre-heal or on lossy \
             scenarios, as the definitions permit."
        );
    }
}
