//! `chaos_sweep` experiment: the falsification sweep over generated
//! adversarial scenarios.
//!
//! Runs every stack (`fig8-evt-hp`, `fig9-oracle-quorum`,
//! `evt-hp-detector`) against the full scenario family rotation
//! (split-brain, flapping-minority, homonym-isolation) and asserts:
//!
//! * **zero safety violations** anywhere — a safety counterexample makes
//!   the binary print the replayable seed + scenario script and exit
//!   nonzero;
//! * **zero liveness violations on the eventually-clean subset** — same
//!   failure mode;
//! * at least one **pre-heal/post-heal demonstration** per consensus
//!   stack: a truncated probe blocked before the first heal whose full
//!   run then terminated, i.e. liveness correctly fails while the
//!   partition is up and holds once it heals.
//!
//! Usage: `cargo run --release -p homonym-bench --bin exp_chaos`
//! Environment:
//! * `CHAOS_SWEEP_SCENARIOS=<k>` — scenarios **per stack** (default 400,
//!   so the default run sweeps 1200 scenarios overall; CI smoke uses a
//!   small value);
//! * `HOMONYM_EXP_JSON=<dir>` — additionally dump the rows as JSON.

use homonym_bench::maybe_dump;
use homonym_chaos::{falsification_sweep, StackKind, SweepConfig, SweepReport};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    stack: &'static str,
    scenarios: usize,
    liveness_held: usize,
    liveness_excused: usize,
    safety_violations: usize,
    liveness_violations: usize,
    probes: usize,
    probe_demonstrations: usize,
    probe_decided_early: usize,
}

fn report_row(stack: StackKind, report: &SweepReport) -> Row {
    Row {
        stack: stack.name(),
        scenarios: report.runs,
        liveness_held: report.liveness_held,
        liveness_excused: report.liveness_excused,
        safety_violations: report.safety_counterexamples.len(),
        liveness_violations: report.liveness_counterexamples.len(),
        probes: report.probes,
        probe_demonstrations: report.probe_demonstrations,
        probe_decided_early: report.probe_decided_early,
    }
}

fn main() {
    let per_stack: usize = std::env::var("CHAOS_SWEEP_SCENARIOS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);

    println!("## chaos falsification sweep ({per_stack} scenarios per stack)\n");
    println!(
        "| stack | scenarios | liveness held | excused | safety cex | liveness cex | probes | pre-heal blocked → post-heal decided |"
    );
    println!("|---|---|---|---|---|---|---|---|");

    let stacks = [
        StackKind::Fig8EvtHp,
        StackKind::Fig9OracleQuorum,
        StackKind::EvtHpDetector,
    ];
    let mut rows = Vec::new();
    let mut falsified = false;
    for stack in stacks {
        let report = falsification_sweep(&SweepConfig::new(stack, per_stack));
        let row = report_row(stack, &report);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            row.stack,
            row.scenarios,
            row.liveness_held,
            row.liveness_excused,
            row.safety_violations,
            row.liveness_violations,
            row.probes,
            row.probe_demonstrations,
        );
        if let Some(cex) = report.first_counterexample() {
            falsified = true;
            eprintln!(
                "\nFALSIFIED {}: {}\n  replay: family={} seed={}\n  script: {}",
                stack.name(),
                cex.violation,
                cex.family,
                cex.seed,
                cex.script
            );
        }
        if matches!(stack, StackKind::Fig8EvtHp | StackKind::Fig9OracleQuorum)
            && report.probes > 0
            && report.probe_demonstrations == 0
        {
            falsified = true;
            eprintln!(
                "\n{}: no pre-heal/post-heal liveness demonstration in {} probes",
                stack.name(),
                report.probes
            );
        }
        rows.push(row);
    }
    maybe_dump("chaos_sweep", &rows);

    assert!(
        !falsified,
        "falsification sweep found a counterexample (see stderr)"
    );
    println!(
        "\nNo counterexamples: safety held in every run; liveness held on \
         every eventually-clean run and failed only pre-heal or on lossy \
         scenarios, as the definitions permit."
    );
}
