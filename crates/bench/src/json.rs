//! Optional JSON export of experiment rows.
//!
//! Every `exp_*` binary prints human-readable markdown tables; setting
//! `HOMONYM_EXP_JSON=<dir>` additionally dumps the raw result rows as a
//! JSON array to `<dir>/<experiment>.json`, for downstream plotting.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Writes `rows` to `$HOMONYM_EXP_JSON/<name>.json` when the environment
/// variable is set; silently does nothing otherwise.
///
/// # Panics
///
/// Panics if the directory cannot be created or the file cannot be
/// written — experiment binaries should fail loudly rather than silently
/// drop requested output.
pub fn maybe_dump<T: Serialize>(name: &str, rows: &[T]) {
    let Ok(dir) = std::env::var("HOMONYM_EXP_JSON") else {
        return;
    };
    let dir = PathBuf::from(dir);
    fs::create_dir_all(&dir).expect("create JSON output directory");
    let path = dir.join(format!("{name}.json"));
    let body = to_json_array(rows);
    fs::write(&path, body).expect("write JSON output");
    eprintln!("wrote {}", path.display());
}

/// Minimal JSON array serializer built on `serde_json`-free plumbing:
/// since the approved dependency set includes `serde` but not
/// `serde_json`, rows are serialized through a tiny purpose-built
/// serializer that covers the shapes experiment rows use (structs of
/// scalars, strings, options and enums).
fn to_json_array<T: Serialize>(rows: &[T]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let mut ser = MiniSer::default();
        row.serialize(&mut ser).expect("row serializes");
        out.push_str(&ser.out);
    }
    out.push_str("\n]\n");
    out
}

/// The subset of JSON serialization the experiment rows need.
#[derive(Default)]
struct MiniSer {
    out: String,
}

#[derive(Debug)]
struct MiniErr(String);

impl std::fmt::Display for MiniErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for MiniErr {}
impl serde::ser::Error for MiniErr {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        MiniErr(msg.to_string())
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl serde::Serializer for &mut MiniSer {
    type Ok = ();
    type Error = MiniErr;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), MiniErr> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), MiniErr> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), MiniErr> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), MiniErr> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), MiniErr> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), MiniErr> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), MiniErr> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), MiniErr> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), MiniErr> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), MiniErr> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), MiniErr> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), MiniErr> {
        self.serialize_str(&v.to_string())
    }
    fn serialize_str(self, v: &str) -> Result<(), MiniErr> {
        self.out.push('"');
        self.out.push_str(&escape(v));
        self.out.push('"');
        Ok(())
    }
    fn serialize_bytes(self, _v: &[u8]) -> Result<(), MiniErr> {
        Err(serde::ser::Error::custom("bytes unsupported"))
    }
    fn serialize_none(self) -> Result<(), MiniErr> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), MiniErr> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), MiniErr> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), MiniErr> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
    ) -> Result<(), MiniErr> {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), MiniErr> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), MiniErr> {
        self.out.push_str("{\"");
        self.out.push_str(variant);
        self.out.push_str("\":");
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Self, MiniErr> {
        self.out.push('[');
        Ok(self)
    }
    fn serialize_tuple(self, len: usize) -> Result<Self, MiniErr> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(self, _n: &'static str, len: usize) -> Result<Self, MiniErr> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _n: &'static str,
        _i: u32,
        _v: &'static str,
        len: usize,
    ) -> Result<Self, MiniErr> {
        self.serialize_seq(Some(len))
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Self, MiniErr> {
        self.out.push('{');
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<Self, MiniErr> {
        self.serialize_map(Some(len))
    }
    fn serialize_struct_variant(
        self,
        _n: &'static str,
        _i: u32,
        _v: &'static str,
        len: usize,
    ) -> Result<Self, MiniErr> {
        self.serialize_map(Some(len))
    }
}

macro_rules! seqlike {
    ($trait_:path, $fn_:ident) => {
        impl $trait_ for &mut MiniSer {
            type Ok = ();
            type Error = MiniErr;
            fn $fn_<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), MiniErr> {
                if !self.out.ends_with('[') {
                    self.out.push(',');
                }
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), MiniErr> {
                self.out.push(']');
                Ok(())
            }
        }
    };
}

seqlike!(serde::ser::SerializeSeq, serialize_element);
seqlike!(serde::ser::SerializeTuple, serialize_element);
seqlike!(serde::ser::SerializeTupleStruct, serialize_field);

impl serde::ser::SerializeTupleVariant for &mut MiniSer {
    type Ok = ();
    type Error = MiniErr;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), MiniErr> {
        if !self.out.ends_with('[') {
            self.out.push(',');
        }
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), MiniErr> {
        self.out.push(']');
        Ok(())
    }
}

impl serde::ser::SerializeMap for &mut MiniSer {
    type Ok = ();
    type Error = MiniErr;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), MiniErr> {
        if !self.out.ends_with('{') {
            self.out.push(',');
        }
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), MiniErr> {
        self.out.push(':');
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), MiniErr> {
        self.out.push('}');
        Ok(())
    }
}

macro_rules! structlike {
    ($trait_:path) => {
        impl $trait_ for &mut MiniSer {
            type Ok = ();
            type Error = MiniErr;
            fn serialize_field<T: Serialize + ?Sized>(
                &mut self,
                key: &'static str,
                value: &T,
            ) -> Result<(), MiniErr> {
                if !self.out.ends_with('{') {
                    self.out.push(',');
                }
                self.out.push('"');
                self.out.push_str(key);
                self.out.push_str("\":");
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), MiniErr> {
                self.out.push('}');
                Ok(())
            }
        }
    };
}

structlike!(serde::ser::SerializeStruct);
structlike!(serde::ser::SerializeStructVariant);

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        n: usize,
        label: String,
        decided: bool,
        time: Option<u64>,
        ratio: f64,
    }

    #[test]
    fn serializes_struct_rows() {
        let rows = vec![
            Row {
                n: 3,
                label: "a \"quoted\" one".into(),
                decided: true,
                time: Some(42),
                ratio: 1.5,
            },
            Row {
                n: 4,
                label: "plain".into(),
                decided: false,
                time: None,
                ratio: 2.0,
            },
        ];
        let json = to_json_array(&rows);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"n\":3"));
        assert!(json.contains("\"label\":\"a \\\"quoted\\\" one\""));
        assert!(json.contains("\"time\":null"));
        assert!(json.contains("\"ratio\":1.5"));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn serializes_real_experiment_rows() {
        let rows = vec![crate::experiments::fig3_e_list(3, 1, 1)];
        let json = to_json_array(&rows);
        assert!(json.contains("\"stabilization\""));
    }

    #[test]
    fn dump_respects_env_var() {
        let dir = std::env::temp_dir().join("homonym_json_test");
        std::env::set_var("HOMONYM_EXP_JSON", &dir);
        maybe_dump("unit", &[1u64, 2, 3]);
        std::env::remove_var("HOMONYM_EXP_JSON");
        let body = std::fs::read_to_string(dir.join("unit.json")).expect("written");
        assert!(body.contains('1') && body.contains('3'));
    }
}
