//! # homonym-bench
//!
//! Experiment harness regenerating the behavioural content of **every
//! figure** of *"Failure Detectors in Homonymous Distributed Systems"*:
//!
//! | Figure | Runner | Criterion bench | Table binary |
//! |---|---|---|---|
//! | Fig 1-2 (Σ→HΣ)     | [`experiments::fig12_sigma_to_hsigma`] | `fig1_fig2_sigma_to_hsigma` | `exp_fig1_fig2` |
//! | Fig 3 (class E)    | [`experiments::fig3_e_list`]           | `fig3_e_list`               | `exp_fig3` |
//! | Fig 4 (HΣ→Σ)       | [`experiments::fig4_hsigma_to_sigma`]  | `fig4_hsigma_to_sigma`      | `exp_fig4` |
//! | Fig 5 (relations)  | [`experiments::fig5_relations`]        | `fig5_relations`            | `exp_fig5` |
//! | Fig 6 (◇HP/HΩ)     | [`experiments::fig6_evt_hp`]           | `fig6_evt_hp`               | `exp_fig6` |
//! | Fig 7 (HΣ in HSS)  | [`experiments::fig7_h_sigma`]          | `fig7_hsigma_sync`          | `exp_fig7` |
//! | Fig 8 (consensus)  | [`experiments::fig8_consensus`]        | `fig8_consensus_homega`     | `exp_fig8` |
//! | Fig 9 (consensus)  | [`experiments::fig9_consensus`]        | `fig9_consensus_hsigma`     | `exp_fig9` |
//! | §1 end-to-end      | [`experiments::e2e_partial_synchrony`] | `e2e_partial_synchrony`     | `exp_e2e` |
//! | §1 price of anon.  | [`experiments::price_of_anonymity`]    | `price_of_anonymity`        | `exp_price` |
//!
//! Every runner embeds the class/consensus property checkers, so each data
//! point doubles as a correctness assertion. `EXPERIMENTS.md` at the
//! workspace root records the resulting tables next to the paper's claims.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod json;

pub use experiments::*;
pub use json::maybe_dump;
