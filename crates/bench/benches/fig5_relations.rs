//! Criterion bench for Figure 5: validating the whole relation diagram.

use criterion::{criterion_group, criterion_main, Criterion};
use homonym_bench::fig5_relations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_relations");
    g.sample_size(10);
    g.bench_function("all_arrows", |b| b.iter(|| black_box(fig5_relations(2026))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
