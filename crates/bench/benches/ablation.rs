//! Criterion bench for the ablation experiments (design-choice costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::{
    ablate_coordination_phase, ablate_timeout_adaptation, ap_realism, combined_synchronous,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for l in [1usize, 4] {
        g.bench_function(BenchmarkId::new("coordination_phase", l), |b| {
            b.iter(|| black_box(ablate_coordination_phase(4, l, 2)))
        });
    }
    g.bench_function("timeout_adaptation", |b| {
        b.iter(|| black_box(ablate_timeout_adaptation(2, 17)))
    });
    g.bench_function("ap_realism_sync", |b| {
        b.iter(|| black_box(ap_realism(true, 3)))
    });
    g.bench_function("combined_synchronous_any_t", |b| {
        b.iter(|| black_box(combined_synchronous(4, 2, 3, 7)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
