//! Criterion bench for the price-of-anonymity baselines (P vs AP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::price_of_anonymity;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("price_of_anonymity");
    g.sample_size(10);
    for t in [1usize, 2, 3] {
        g.bench_function(BenchmarkId::new("t", t), |b| {
            b.iter(|| black_box(price_of_anonymity(t, t, 91)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
