//! Criterion bench for Figure 6 (◇HP/HΩ in HPS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::fig6_evt_hp;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_evt_hp");
    g.sample_size(10);
    for gst in [0u64, 50] {
        g.bench_function(BenchmarkId::new("gst", gst), |b| {
            b.iter(|| black_box(fig6_evt_hp(4, 2, gst, 3, 1, 5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
