//! Criterion bench for Figure 8 (consensus with HΩ, majority).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::{fig8_consensus, ConsensusVariant};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_consensus");
    g.sample_size(10);
    for l in [1usize, 2, 5] {
        g.bench_function(BenchmarkId::new("homonymy", l), |b| {
            b.iter(|| {
                black_box(fig8_consensus(
                    ConsensusVariant::Fig8HOmega,
                    5,
                    l,
                    1,
                    30,
                    true,
                    21,
                ))
            })
        });
    }
    g.bench_function("baseline_classical_omega", |b| {
        b.iter(|| {
            black_box(fig8_consensus(
                ConsensusVariant::ClassicalOmega,
                5,
                5,
                1,
                30,
                true,
                21,
            ))
        })
    });
    g.bench_function("baseline_anonymous_aomega", |b| {
        b.iter(|| {
            black_box(fig8_consensus(
                ConsensusVariant::AnonymousAOmega,
                5,
                1,
                1,
                30,
                true,
                21,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
