//! Criterion bench for Figure 3 (class E in AS[∅]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::fig3_e_list;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_e_list");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        g.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| black_box(fig3_e_list(n, n / 4, 7)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
