//! Criterion bench for Figures 1-2 (Σ → HΣ): full simulated runs,
//! property checks included.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::fig12_sigma_to_hsigma;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_fig2");
    g.sample_size(10);
    for known in [true, false] {
        let name = if known { "fig1_known" } else { "fig2_learned" };
        g.bench_function(BenchmarkId::new(name, "n5c1"), |b| {
            b.iter(|| black_box(fig12_sigma_to_hsigma(5, 1, known, 42)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
