//! Criterion bench for the end-to-end result (Fig 6 + Fig 8 in HPS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::e2e_partial_synchrony;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_partial_synchrony");
    g.sample_size(10);
    for gst in [0u64, 50] {
        g.bench_function(BenchmarkId::new("gst", gst), |b| {
            b.iter(|| black_box(e2e_partial_synchrony(4, 2, gst, 71)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
