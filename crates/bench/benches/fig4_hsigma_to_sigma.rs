//! Criterion bench for Figure 4 (HΣ → Σ via class E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::fig4_hsigma_to_sigma;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_hsigma_to_sigma");
    g.sample_size(10);
    for n in [4usize, 8] {
        g.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| black_box(fig4_hsigma_to_sigma(n, 1, 11)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
