//! Criterion bench for Figure 9 (consensus with HΩ + HΣ, any t).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::fig9_consensus;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_consensus");
    g.sample_size(10);
    for crashes in [0usize, 2, 4] {
        g.bench_function(BenchmarkId::new("crashes", crashes), |b| {
            b.iter(|| black_box(fig9_consensus(5, 2, crashes, 30, 51)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
