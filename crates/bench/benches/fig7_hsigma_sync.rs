//! Criterion bench for Figure 7 (HΣ in HSS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::fig7_h_sigma;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_hsigma_sync");
    g.sample_size(20);
    for n in [4usize, 8, 12] {
        g.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| black_box(fig7_h_sigma(n, 2, n / 3, 10, 3)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
