//! The kill-tolerant sweep driver: a falsification sweep that
//! checkpoints its progress to disk and resumes mid-sweep after a crash
//! (or SIGKILL) with a final report **identical** to an uninterrupted
//! run.
//!
//! # Why run-granularity checkpointing is sound
//!
//! Every run in a sweep is a pure function of `(SweepConfig, seed)`:
//! the engines are deterministic, the scenario generators are pure, and
//! [`plan_runs`](crate::sweep) expands the run list deterministically.
//! The unit of checkpointing is therefore the **scenario group** — one
//! base scenario plus its shared-prefix variants, exactly the unit the
//! forked executor fans out — and a checkpoint needs to record nothing
//! but each finished group's outcomes. Completed groups are segment
//! files; the pending frontier is *derived* (every group without a good
//! segment); report accumulators and RNG positions need no persistence
//! at all because they are recomputed from outcomes and re-derived from
//! seeds. Less state on disk means less state to corrupt.
//!
//! # Layout
//!
//! ```text
//! <dir>/manifest.ck      fingerprint + group count  (schema MANIFEST_SCHEMA)
//! <dir>/seg-000042.ck    Vec<RunOutcome> of group 42 (schema SEGMENT_SCHEMA)
//! <dir>/spill/w<k>/...   per-worker snapshot spool (when spilling)
//! ```
//!
//! All files go through the [`homonym_sim::store`] container: magic,
//! format/schema versions, length, FNV-1a checksum, atomic
//! temp-file + fsync + rename writes.
//!
//! # Corruption contract
//!
//! A segment that is missing, truncated, bit-flipped or undecodable is
//! **not** an error: its group is simply re-executed (the affected
//! subtree, nothing else) and the segment rewritten. Only two failures
//! surface to the operator: real I/O errors, and a manifest whose
//! fingerprint or schema version disagrees with this binary and
//! configuration — resuming *that* silently would mix outcomes of
//! different sweeps into one report.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use homonym_core::identity::IdentityAssignment;
use homonym_core::wire;
use homonym_sim::sweep::parallel_seed_sweep_with;
use homonym_sim::{read_verified, write_atomic, SpoolStats, StoreError};

use crate::sweep::{
    aggregate, plan_runs, run_family_forked, ForkedWorkers, RunOutcome, SweepConfig, SweepReport,
};

/// Payload schema of `manifest.ck`. Bump when the manifest layout or
/// the meaning of a segment changes.
pub const MANIFEST_SCHEMA: u32 = 1;

/// Payload schema of `seg-*.ck` files ([`Vec`] of run outcomes). Bump
/// whenever `RunOutcome`'s wire encoding changes.
pub const SEGMENT_SCHEMA: u32 = 1;

/// Where and how a sweep checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint directory (created if absent).
    pub dir: PathBuf,
    /// When set, workers spill cold prefix-tree snapshots to
    /// `<dir>/spill/` once their RAM-resident snapshot bytes exceed
    /// this budget. `None` keeps every snapshot in RAM.
    pub spill_budget: Option<u64>,
}

impl CheckpointConfig {
    /// Checkpoints into `dir` with no snapshot spilling.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            spill_budget: None,
        }
    }

    /// Enables snapshot spilling under `budget_bytes` of RAM.
    #[must_use]
    pub fn with_spill_budget(mut self, budget_bytes: u64) -> Self {
        self.spill_budget = Some(budget_bytes);
        self
    }
}

/// What a checkpointed sweep did, alongside its report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeStats {
    /// Scenario groups the sweep comprises.
    pub groups_total: u64,
    /// Groups whose outcomes were loaded from a verified segment file.
    pub groups_resumed: u64,
    /// Groups executed in this invocation (first run or re-execution).
    pub groups_executed: u64,
    /// Segment files that existed but failed verification — their
    /// groups were re-executed, counted under `groups_executed` too.
    pub corrupt_segments: u64,
    /// Spill activity across all workers (zeros when spilling is off).
    pub spill: SpoolStats,
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.ck")
}

fn segment_path(dir: &Path, group: usize) -> PathBuf {
    dir.join(format!("seg-{group:06}.ck"))
}

/// Verifies (or writes) the manifest: fingerprint + group count.
///
/// A verified-but-mismatched manifest is an operator error — the
/// checkpoint directory belongs to a different sweep. A corrupt
/// manifest invalidates every segment (there is no proof they belong
/// to this configuration), so the directory is treated as fresh and
/// the manifest rewritten.
fn check_manifest(cfg: &SweepConfig, dir: &Path) -> Result<bool, StoreError> {
    let fingerprint = cfg.fingerprint();
    let groups = cfg.scenarios as u64;
    let path = manifest_path(dir);
    match read_verified(&path, MANIFEST_SCHEMA) {
        Ok(Some(payload)) => {
            let (found_fp, found_groups): (u64, u64) =
                wire::from_bytes(&payload).map_err(StoreError::Decode)?;
            if found_fp != fingerprint || found_groups != groups {
                return Err(StoreError::ConfigMismatch {
                    found: found_fp,
                    expected: fingerprint,
                });
            }
            Ok(true)
        }
        Ok(None) => {
            write_atomic(
                &path,
                MANIFEST_SCHEMA,
                &wire::to_bytes(&(fingerprint, groups)),
            )?;
            Ok(false)
        }
        Err(e) if e.is_corruption() => {
            for g in 0..cfg.scenarios {
                let _ = std::fs::remove_file(segment_path(dir, g));
            }
            write_atomic(
                &path,
                MANIFEST_SCHEMA,
                &wire::to_bytes(&(fingerprint, groups)),
            )?;
            Ok(false)
        }
        Err(e) => Err(e),
    }
}

/// Runs the falsification sweep with durable checkpoints: each scenario
/// group's outcomes are written to `<dir>/seg-<group>.ck` the moment
/// the group finishes (atomically — a kill leaves whole segments or
/// nothing), and groups whose segment already verifies are **not**
/// re-executed. Killing the process at any instant and calling this
/// again with the same `cfg` and `ck` finishes the remaining groups
/// and returns the identical report an uninterrupted
/// [`falsification_sweep_forked`](crate::sweep::falsification_sweep_forked)
/// call produces.
///
/// # Errors
///
/// [`StoreError::Io`] on real filesystem failures,
/// [`StoreError::ConfigMismatch`] when the directory's manifest was
/// written by a different sweep configuration, and
/// [`StoreError::SchemaVersion`] / [`StoreError::FormatVersion`] when
/// the **manifest** itself predates this binary — corrupt or stale
/// segments never error (see the module docs).
///
/// # Panics
///
/// Panics if the config names no families or a generated scenario
/// fails to validate (a generator bug), like the other executors.
pub fn checkpointed_falsification_sweep(
    cfg: &SweepConfig,
    ck: &CheckpointConfig,
) -> Result<(SweepReport, ResumeStats), StoreError> {
    assert!(!cfg.families.is_empty(), "sweep needs at least one family");
    std::fs::create_dir_all(&ck.dir)?;
    check_manifest(cfg, &ck.dir)?;

    let assign = IdentityAssignment::round_robin(cfg.n, cfg.l);
    let runs = plan_runs(cfg, &assign);
    let variants = cfg.variants.max(1);
    let mut stats = ResumeStats {
        groups_total: cfg.scenarios as u64,
        ..ResumeStats::default()
    };

    // Resume pass: claim every group with a verified segment. Corrupt
    // segments are deleted here (their groups re-execute below);
    // `take`-style single consumption does not apply — a segment is
    // re-read by every later resume, so files stay in place.
    let mut outcomes: Vec<Option<Vec<RunOutcome>>> = Vec::with_capacity(cfg.scenarios);
    for g in 0..cfg.scenarios {
        let path = segment_path(&ck.dir, g);
        let loaded = match read_verified(&path, SEGMENT_SCHEMA) {
            Ok(Some(payload)) => match wire::from_bytes::<Vec<RunOutcome>>(&payload) {
                Ok(seg) if seg.len() == variants => {
                    stats.groups_resumed += 1;
                    Some(seg)
                }
                // Wrong cardinality or undecodable: corrupt-shaped.
                _ => {
                    stats.corrupt_segments += 1;
                    let _ = std::fs::remove_file(&path);
                    None
                }
            },
            Ok(None) => None,
            // Corrupt or **stale** (older schema/format) segments are
            // both re-execute-shaped: an old segment describes runs of
            // an old binary, and the manifest (strict) already proved
            // the directory belongs to this configuration.
            Err(e)
                if e.is_corruption()
                    || matches!(
                        e,
                        StoreError::SchemaVersion { .. } | StoreError::FormatVersion { .. }
                    ) =>
            {
                stats.corrupt_segments += 1;
                let _ = std::fs::remove_file(&path);
                None
            }
            Err(e) => return Err(e),
        };
        outcomes.push(loaded);
    }

    // Execution pass: the derived frontier, fanned out across workers
    // exactly like the forked executor, each group checkpointed the
    // moment it finishes.
    let pending: Vec<usize> = (0..cfg.scenarios)
        .filter(|&g| outcomes[g].is_none())
        .collect();
    stats.groups_executed = pending.len() as u64;
    let worker_seq = AtomicU64::new(0);
    let spill_corrupt = AtomicU64::new(0);
    let executed: Vec<Result<(usize, Vec<RunOutcome>), StoreError>> = parallel_seed_sweep_with(
        pending.len(),
        || {
            let mut workers = ForkedWorkers::new();
            if let Some(budget) = ck.spill_budget {
                let w = worker_seq.fetch_add(1, Ordering::Relaxed);
                workers.enable_spill(&ck.dir.join("spill").join(format!("w{w}")), budget);
            }
            workers
        },
        |workers, i| {
            let g = pending[i as usize];
            let group = &runs[g * variants..(g + 1) * variants];
            let before = workers.spool_stats().corrupt;
            let seg = run_family_forked(cfg, &assign, workers, group);
            write_atomic(
                &segment_path(&ck.dir, g),
                SEGMENT_SCHEMA,
                &wire::to_bytes(&seg),
            )?;
            spill_corrupt.fetch_add(
                workers.spool_stats().corrupt.saturating_sub(before),
                Ordering::Relaxed,
            );
            Ok((g, seg))
        },
    );
    // Spool stats live in worker-local state rayon already dropped;
    // surface at least the corruption count observed mid-run. (The
    // spill benchmarks exercise full stats through `PrefixSweeper`
    // directly.)
    stats.spill.corrupt = spill_corrupt.load(Ordering::Relaxed);
    for result in executed {
        let (g, seg) = result?;
        outcomes[g] = Some(seg);
    }

    // Fold in group order — the same order the one-shot executors use,
    // so the report is identical run for run.
    let all: Vec<RunOutcome> = outcomes
        .into_iter()
        .flat_map(|seg| seg.expect("every group resumed or executed"))
        .collect();
    Ok((aggregate(all), stats))
}
