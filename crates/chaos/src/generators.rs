//! Seeded random scenario **family** generators.
//!
//! Each generator is a pure function of its inputs and the seed: the same
//! `(topology, seed)` pair always yields the same [`Scenario`], which is
//! what makes a falsification counterexample replayable from its
//! `(family, seed)` coordinates alone.
//!
//! The families (see the crate docs' scenario catalogue):
//!
//! * [`split_brain`] — one partition cutting the system in half;
//! * [`flapping_minority`] — a minority that repeatedly drops off and
//!   rejoins;
//! * [`homonym_group_isolation`] — all carriers of one identifier cut
//!   off together;
//! * [`hidden_equivocator`] — one carrier of a multiply-assigned
//!   identifier turns permanently Byzantine and equivocates to a victim
//!   subset, hiding among its honest homonyms;
//! * [`corrupt_minority_homonyms`] — an `f < n/3` minority mounts mixed
//!   payload-corruption / replay / selective-send / equivocation
//!   attacks;
//! * [`over_threshold_byzantine`] — the same mixed attacks from an
//!   `f ≥ ⌈n/3⌉` coalition past the tolerance bound, so the boundary is
//!   exercised from both sides in every sweep.

use homonym_core::identity::IdentityAssignment;
use homonym_core::time::{Span, Time};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::scenario::{FaultClause, GstPlacement, PartitionMode, Scenario};

fn rng_for(family: &str, seed: u64) -> StdRng {
    // Decorrelate families sharing a seed.
    StdRng::seed_from_u64(seed ^ crate::scenario::fnv1a(family))
}

fn adversarial_gst(rng: &mut StdRng) -> GstPlacement {
    GstPlacement::AfterLastFault {
        margin: Span::from_ticks(rng.gen_range(5..=25)),
    }
}

/// A split-brain partition: the processes are shuffled and cut into two
/// halves of size `⌊n/2⌋` and `⌈n/2⌉` for a window placed early in the
/// run. Mostly queue-mode (reliable); a fraction of seeds produce
/// drop-mode splits, and a fraction add a one-process crash inside the
/// window (still leaving a correct majority for `n ≥ 4`). Stresses: `HΩ`
/// election (co-leaders on both sides), Figure 8's majority wait, and
/// consensus agreement under conflicting leader views.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn split_brain(n: usize, seed: u64) -> Scenario {
    assert!(n >= 2, "split-brain needs at least two processes");
    let mut rng = rng_for("split-brain", seed);
    let mut procs: Vec<usize> = (0..n).collect();
    procs.shuffle(&mut rng);
    let (left, right) = procs.split_at(n / 2);
    let start = Time::from_ticks(rng.gen_range(5..=30));
    let heal_at = start + Span::from_ticks(rng.gen_range(30..=120));
    let mode = if rng.gen_range(0u8..100) < 70 {
        PartitionMode::QueueUntilHeal
    } else {
        PartitionMode::DropWhilePartitioned
    };
    let mut scenario = Scenario::new(format!("split-brain#{seed}"), n)
        .with_clause(FaultClause::Partition {
            groups: vec![left.to_vec(), right.to_vec()],
            start,
            heal_at,
            mode,
        })
        .with_gst(adversarial_gst(&mut rng));
    if n >= 4 && rng.gen_range(0u8..100) < 30 {
        let victim = procs[rng.gen_range(0..n)];
        let at = Time::from_ticks(rng.gen_range(start.ticks()..heal_at.ticks()));
        scenario = scenario.with_clause(FaultClause::Crash {
            process: victim,
            at,
        });
    }
    scenario
}

/// A flapping minority: a random minority (`1..=⌈n/2⌉-1` processes) is
/// partitioned away and healed again in 2–4 cycles with randomized
/// down-times and gaps, always queue-mode so the run stays reliable.
/// Stresses: detector timeout adaptation (each flap inflates `◇HP`
/// round-trip estimates), monotonicity of `HΣ` outputs across
/// membership flicker, and liveness recovery after repeated disruption.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn flapping_minority(n: usize, seed: u64) -> Scenario {
    assert!(n >= 3, "a flapping minority needs at least three processes");
    let mut rng = rng_for("flapping-minority", seed);
    let minority_size = rng.gen_range(1..=(n - 1) / 2);
    let mut procs: Vec<usize> = (0..n).collect();
    procs.shuffle(&mut rng);
    let minority: Vec<usize> = procs[..minority_size].to_vec();
    let rest: Vec<usize> = procs[minority_size..].to_vec();
    let mut scenario = Scenario::new(format!("flapping-minority#{seed}"), n);
    let mut at = rng.gen_range(5..=20);
    for _ in 0..rng.gen_range(2u32..=4) {
        let down = rng.gen_range(10..=30);
        scenario = scenario.with_clause(FaultClause::Partition {
            groups: vec![minority.clone(), rest.clone()],
            start: Time::from_ticks(at),
            heal_at: Time::from_ticks(at + down),
            mode: PartitionMode::QueueUntilHeal,
        });
        at += down + rng.gen_range(5..=20);
    }
    scenario.with_gst(adversarial_gst(&mut rng))
}

/// Targeted homonym-group isolation: every carrier of one (randomly
/// chosen) identifier is cut off from everyone else for one window —
/// the adversary exploiting the fact that homonyms are
/// indistinguishable to attack an entire identifier class at once.
/// Stresses: `HΩ` multiplicity accounting (the elected identifier's
/// whole multiplicity can vanish and return), `◇HP` convergence to
/// `I(Correct)` as a *multiset*, and Figure 8's Leaders' Coordination
/// Phase when all co-leaders disappear together.
///
/// Falls back to isolating process 0 when the chosen identifier covers
/// the whole system (fully anonymous assignments).
///
/// # Panics
///
/// Panics if the assignment has fewer than two processes.
#[must_use]
pub fn homonym_group_isolation(assign: &IdentityAssignment, seed: u64) -> Scenario {
    let n = assign.n();
    assert!(n >= 2, "isolation needs at least two processes");
    let mut rng = rng_for("homonym-isolation", seed);
    let mut distinct: Vec<homonym_core::Identity> = Vec::new();
    for p in 0..n {
        let id = assign.id_of(p);
        if !distinct.contains(&id) {
            distinct.push(id);
        }
    }
    let target = distinct[rng.gen_range(0..distinct.len())];
    let mut group = assign.processes_with(target);
    if group.len() == n {
        group = vec![0];
    }
    let rest: Vec<usize> = (0..n).filter(|p| !group.contains(p)).collect();
    let start = Time::from_ticks(rng.gen_range(5..=30));
    let heal_at = start + Span::from_ticks(rng.gen_range(25..=100));
    Scenario::new(format!("homonym-isolation#{seed}"), n)
        .with_clause(FaultClause::Partition {
            groups: vec![group, rest],
            start,
            heal_at,
            mode: PartitionMode::QueueUntilHeal,
        })
        .with_gst(adversarial_gst(&mut rng))
}

/// Leader churn across heights: carriers of the *minimum* identifier —
/// the perpetual `HΩ` leader candidates — are knocked out one at a time
/// in sequential, non-overlapping churn windows spread over a long run.
/// Built for the multi-height replicated log service: each window lands
/// inside a *different* consensus height, so the service keeps losing
/// its leader mid-instance, must re-elect among the surviving homonym
/// carriers, and must carry the committed prefix across the boundary.
/// Stresses: `HΩ` re-election under repeated leader loss, the log
/// service's height chaining and catch-up rule (the returning process
/// lags several heights behind), and prefix agreement across faults
/// straddling height boundaries. Churn windows count as lossy, so
/// sweeps assert safety universally and withhold liveness claims — the
/// log-service smoke asserts progress separately.
///
/// # Panics
///
/// Panics if the assignment has fewer than three processes.
#[must_use]
pub fn leader_churn_across_heights(assign: &IdentityAssignment, seed: u64) -> Scenario {
    let n = assign.n();
    assert!(n >= 3, "leader churn needs at least three processes");
    let mut rng = rng_for("leader-churn", seed);
    let leader = (0..n)
        .map(|p| assign.id_of(p))
        .min()
        .expect("non-empty assignment");
    let mut carriers = assign.processes_with(leader);
    if carriers.len() == n {
        // Fully anonymous assignment: churn a strict minority instead of
        // taking the whole system down.
        carriers.truncate((n - 1) / 2);
    }
    carriers.shuffle(&mut rng);
    let windows = rng.gen_range(3u32..=6);
    let mut at = rng.gen_range(10..=40);
    let mut scenario = Scenario::new(format!("leader-churn#{seed}"), n);
    for w in 0..windows {
        let target = carriers[w as usize % carriers.len()];
        let down = rng.gen_range(15..=45);
        scenario = scenario.with_clause(FaultClause::Churn {
            process: target,
            down: Time::from_ticks(at),
            up: Time::from_ticks(at + down),
        });
        at += down + rng.gen_range(10..=40);
    }
    scenario.with_gst(adversarial_gst(&mut rng))
}

/// A hidden equivocator: one carrier of a multiply-assigned identifier
/// turns **permanently** Byzantine early in the run and equivocates —
/// every broadcast delivers a consistent alternative payload to a victim
/// subset while everyone else (its honest homonyms included) receives
/// the original. This is the attack the paper's model makes uniquely
/// nasty: detector outputs are multisets of *identifiers*, so the
/// victims' diverging view is indistinguishable from "two honest
/// homonyms disagreeing" and no output can indict the corrupt process.
/// Stresses: Figure 8/9 agreement and validity (forged estimates and
/// `DECIDE` values are accepted verbatim by crash-only code), `◇HP`
/// convergence (forged `P_REPLY` senders pollute `h_trusted` forever).
///
/// Falls back to an arbitrary process when no identifier has two
/// carriers (unique-identifier assignments — nothing to hide among, but
/// the attack itself still applies).
///
/// # Panics
///
/// Panics if the assignment has fewer than three processes.
#[must_use]
pub fn hidden_equivocator(assign: &IdentityAssignment, seed: u64) -> Scenario {
    let n = assign.n();
    assert!(n >= 3, "an equivocator needs at least three processes");
    let mut rng = rng_for("hidden-equivocator", seed);
    // Identifier classes with at least two carriers, in index order.
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut seen: Vec<homonym_core::Identity> = Vec::new();
    for p in 0..n {
        let id = assign.id_of(p);
        if !seen.contains(&id) {
            seen.push(id);
            let carriers = assign.processes_with(id);
            if carriers.len() >= 2 {
                classes.push(carriers);
            }
        }
    }
    let equivocator = if classes.is_empty() {
        rng.gen_range(0..n)
    } else {
        let class = &classes[rng.gen_range(0..classes.len())];
        class[rng.gen_range(0..class.len())]
    };
    // A victim subset of the other processes: at least one, at most all
    // but one (someone must keep hearing the honest stream for the views
    // to diverge).
    let mut others: Vec<usize> = (0..n).filter(|&p| p != equivocator).collect();
    others.shuffle(&mut rng);
    let victims: Vec<usize> = {
        let k = rng.gen_range(1..=others.len() - 1);
        let mut v = others[..k].to_vec();
        v.sort_unstable();
        v
    };
    let start = Time::from_ticks(rng.gen_range(10..=40));
    Scenario::new(format!("hidden-equivocator#{seed}"), n)
        .with_clause(FaultClause::ByzantineEquivocate {
            sources: vec![equivocator],
            victims,
            start,
            until: Time::MAX,
        })
        .with_gst(adversarial_gst(&mut rng))
}

/// A corrupt minority within the BFT envelope: `f` processes with
/// `1 ≤ f` and `3f < n` (so a Byzantine-tolerant algorithm would be
/// *obliged* to survive this) each mount one randomly drawn attack —
/// payload corruption, replay, selective sending, or equivocation —
/// mostly permanent, sometimes windowed. Stresses: everything at once;
/// crash-only stacks are expected to fall, which is the demonstration
/// the Byzantine sweep asserts.
///
/// # Panics
///
/// Panics if the assignment has fewer than four processes (`n ≤ 3`
/// admits no corrupt process with `3f < n`).
#[must_use]
pub fn corrupt_minority_homonyms(assign: &IdentityAssignment, seed: u64) -> Scenario {
    let n = assign.n();
    assert!(n >= 4, "a corrupt minority needs n >= 4 (f >= 1, 3f < n)");
    let mut rng = rng_for("corrupt-minority-homonyms", seed);
    let f_max = (n - 1) / 3;
    let f = rng.gen_range(1..=f_max);
    let mut procs: Vec<usize> = (0..n).collect();
    procs.shuffle(&mut rng);
    let corrupt: Vec<usize> = procs[..f].to_vec();
    let mut scenario = Scenario::new(format!("corrupt-minority-homonyms#{seed}"), n);
    for &source in &corrupt {
        let mut others: Vec<usize> = (0..n).filter(|&p| p != source).collect();
        others.shuffle(&mut rng);
        let k = rng.gen_range(1..=others.len() - 1);
        let mut victims = others[..k].to_vec();
        victims.sort_unstable();
        let start = Time::from_ticks(rng.gen_range(5..=30));
        let until = if rng.gen_range(0u8..100) < 70 {
            Time::MAX
        } else {
            start + Span::from_ticks(rng.gen_range(40..=160))
        };
        let sources = vec![source];
        scenario = scenario.with_clause(match rng.gen_range(0u8..4) {
            0 => FaultClause::ByzantineCorrupt {
                sources,
                victims,
                start,
                until,
            },
            1 => FaultClause::ByzantineReplay {
                sources,
                victims,
                start,
                until,
            },
            2 => FaultClause::ByzantineSelectiveSend {
                sources,
                victims,
                start,
                until,
            },
            _ => FaultClause::ByzantineEquivocate {
                sources,
                victims,
                start,
                until,
            },
        });
    }
    scenario.with_gst(adversarial_gst(&mut rng))
}

/// A corrupt coalition **past** the BFT envelope: `f ≥ ⌈n/3⌉` processes
/// (so `n ≤ 3f` — no quorum-certificate algorithm can promise both
/// safety and liveness) each mount one randomly drawn attack, exactly
/// like [`corrupt_minority_homonyms`] but from the wrong side of the
/// tolerance boundary. The sweep runs this family *unclaimed* even for
/// the tolerant stack: violations here are the **expected demonstration**
/// that the `n > 3f` bound is tight — a tolerant stack that sailed
/// through it would be evidence of an implementation that is not
/// actually consuming its fault budget.
///
/// The coalition stays below `n − 1` so at least two honest processes
/// remain to disagree about (and with `f = ⌈n/3⌉` the window
/// `⌈n/3⌉ ≤ f ≤ min(⌈n/3⌉ + 1, n − 2)` keeps the demonstration close
/// to the boundary rather than drowning the run in noise).
///
/// # Panics
///
/// Panics if the assignment has fewer than four processes.
#[must_use]
pub fn over_threshold_byzantine(assign: &IdentityAssignment, seed: u64) -> Scenario {
    let n = assign.n();
    assert!(n >= 4, "an over-threshold coalition needs n >= 4");
    let mut rng = rng_for("over-threshold-byzantine", seed);
    let f_min = n.div_ceil(3);
    let f_max = (f_min + 1).min(n - 2).max(f_min);
    let f = rng.gen_range(f_min..=f_max);
    let mut procs: Vec<usize> = (0..n).collect();
    procs.shuffle(&mut rng);
    let corrupt: Vec<usize> = procs[..f].to_vec();
    let mut scenario = Scenario::new(format!("over-threshold-byzantine#{seed}"), n);
    for &source in &corrupt {
        let mut others: Vec<usize> = (0..n).filter(|&p| p != source).collect();
        others.shuffle(&mut rng);
        let k = rng.gen_range(1..=others.len() - 1);
        let mut victims = others[..k].to_vec();
        victims.sort_unstable();
        let start = Time::from_ticks(rng.gen_range(5..=30));
        let until = if rng.gen_range(0u8..100) < 70 {
            Time::MAX
        } else {
            start + Span::from_ticks(rng.gen_range(40..=160))
        };
        let sources = vec![source];
        scenario = scenario.with_clause(match rng.gen_range(0u8..4) {
            0 => FaultClause::ByzantineCorrupt {
                sources,
                victims,
                start,
                until,
            },
            1 => FaultClause::ByzantineReplay {
                sources,
                victims,
                start,
                until,
            },
            2 => FaultClause::ByzantineSelectiveSend {
                sources,
                victims,
                start,
                until,
            },
            _ => FaultClause::ByzantineEquivocate {
                sources,
                victims,
                start,
                until,
            },
        });
    }
    scenario.with_gst(adversarial_gst(&mut rng))
}

/// Expands a Byzantine base scenario into a **shared-honest-prefix
/// attack-variation family**: `k` scenarios (index 0 is the base) with
/// the same name (hence the same Byzantine RNG salt), the same corrupt
/// sources, and the same non-Byzantine clauses, differing only in the
/// attack's **victim sets** and **timings** (activation pushed later,
/// never earlier, and bounded windows redrawn). Every variant therefore
/// agrees with the base on everything before the base's first attack
/// activation — the divergence the prefix-sharing executor computes —
/// so mid-run replay of a counterexample re-forks the honest prefix
/// across attack variations instead of re-executing it.
///
/// Deterministic in `(base, seed, k)`, keeping every variation
/// replayable from its printed script.
///
/// # Panics
///
/// Panics if `k == 0` or the base has no Byzantine clause.
#[must_use]
pub fn byzantine_attack_variants(base: &Scenario, seed: u64, k: usize) -> Vec<Scenario> {
    assert!(k >= 1, "a family has at least its base scenario");
    assert!(
        base.is_byzantine(),
        "attack variations need a Byzantine base"
    );
    let n = base.n();
    let mut out = Vec::with_capacity(k);
    out.push(base.clone());
    for v in 1..k as u64 {
        let mut rng = rng_for(
            "byzantine-attack-variants",
            seed ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut redraw = |sources: &[usize], victims: Vec<usize>, start: Time, until: Time| {
            let mut others: Vec<usize> = (0..n).filter(|p| !sources.contains(p)).collect();
            let victims = if others.is_empty() {
                victims // degenerate base: keep its victim set
            } else {
                others.shuffle(&mut rng);
                let hi = if others.len() >= 2 {
                    others.len() - 1
                } else {
                    1
                };
                let mut v = others[..rng.gen_range(1..=hi)].to_vec();
                v.sort_unstable();
                v
            };
            // Timings move later only, so the base's honest prefix stays
            // the family's shared prefix.
            let start = start + Span::from_ticks(rng.gen_range(0..=15));
            let until = if until == Time::MAX {
                Time::MAX
            } else {
                let span = (until.ticks().saturating_sub(start.ticks())).max(2);
                start + Span::from_ticks(rng.gen_range(span / 2..=span * 2).max(1))
            };
            (victims, start, until)
        };
        let mut s = Scenario::new(base.name().to_string(), n);
        for clause in base.clauses() {
            // Kind-agnostic: a future Byzantine clause kind cannot
            // silently fall through to the keep-as-is arm.
            s = s.with_clause(match clause.byzantine_parts() {
                Some((sources, victims, start, until)) => {
                    let (victims, start, until) = redraw(sources, victims.to_vec(), start, until);
                    clause
                        .byzantine_with(victims, start, until)
                        .expect("byzantine_parts matched")
                }
                None => clause.clone(),
            });
        }
        out.push(s.with_gst(base.gst()));
    }
    out
}

/// Expands a base scenario into a **shared-prefix variant family**: `k`
/// scenarios (index 0 is the base itself) agreeing on everything up to
/// the base's fault activations — same name (hence the same adversary
/// RNG salt), same topology, same fault *starts* and same crash clauses
/// — and differing only in the redrawn fault **durations** (partition
/// heal times, overlay ends, churn recoveries) and, for
/// [`GstPlacement::AfterLastFault`] scenarios, the redrawn GST margin.
///
/// This is the family metadata the prefix-sharing sweep executor plans
/// on: because the variants differ only in when faults *end*, their
/// [`config_divergence`](homonym_sim::sweep::config_divergence) lands at
/// the fault activation (or the earlier heal, for drop-mode faults), so
/// the whole pre-fault prefix — detector warm-up, early consensus
/// rounds — runs once per family instead of once per variant.
///
/// Deterministic: the same `(base, seed, k)` always yields the same
/// family, keeping every variant replayable from its coordinates.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn fault_window_variants(base: &Scenario, seed: u64, k: usize) -> Vec<Scenario> {
    assert!(k >= 1, "a family has at least its base scenario");
    let mut out = Vec::with_capacity(k);
    out.push(base.clone());
    for v in 1..k as u64 {
        let mut rng = rng_for(
            "fault-window-variants",
            seed ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut s = Scenario::new(base.name().to_string(), base.n());
        for clause in base.clauses() {
            s = s.with_clause(match clause.clone() {
                FaultClause::Partition {
                    groups,
                    start,
                    heal_at,
                    mode,
                } => FaultClause::Partition {
                    groups,
                    start,
                    heal_at: start + redraw_duration(&mut rng, heal_at.ticks() - start.ticks()),
                    mode,
                },
                FaultClause::LinkOverlay {
                    from,
                    to,
                    start,
                    end,
                    loss_percent,
                    extra_delay,
                } => FaultClause::LinkOverlay {
                    from,
                    to,
                    start,
                    end: start + redraw_duration(&mut rng, end.ticks() - start.ticks()),
                    loss_percent,
                    extra_delay,
                },
                FaultClause::Churn { process, down, up } => FaultClause::Churn {
                    process,
                    down,
                    up: down + redraw_duration(&mut rng, up.ticks() - down.ticks()),
                },
                // Crash and Byzantine clauses stay fixed across the
                // family: varying crashes would change the correct set,
                // which forfeits sharing for decision-gated runs (see
                // `item_divergence`), and attack variation has its own
                // generator ([`byzantine_attack_variants`]).
                fixed @ (FaultClause::Crash { .. }
                | FaultClause::ByzantineEquivocate { .. }
                | FaultClause::ByzantineCorrupt { .. }
                | FaultClause::ByzantineReplay { .. }
                | FaultClause::ByzantineSelectiveSend { .. }) => fixed,
            });
        }
        let gst = match base.gst() {
            GstPlacement::AfterLastFault { .. } => GstPlacement::AfterLastFault {
                margin: Span::from_ticks(rng.gen_range(5..=25)),
            },
            other => other,
        };
        out.push(s.with_gst(gst));
    }
    out
}

/// Redraws a fault duration between half and double the base duration
/// (at least one tick), keeping variants in the base's regime.
fn redraw_duration(rng: &mut StdRng, base: u64) -> Span {
    let lo = (base / 2).max(1);
    let hi = (base * 2).max(lo + 1);
    Span::from_ticks(rng.gen_range(lo..=hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_valid() {
        let assign = IdentityAssignment::round_robin(8, 3);
        for seed in 0..200 {
            for s in [
                split_brain(8, seed),
                flapping_minority(8, seed),
                homonym_group_isolation(&assign, seed),
                leader_churn_across_heights(&assign, seed),
            ] {
                s.validate()
                    .unwrap_or_else(|e| panic!("seed {seed}: {e} in {s}"));
                assert!(s.network_clean_after() > Time::ZERO);
            }
            assert_eq!(split_brain(8, seed), split_brain(8, seed));
            assert_eq!(
                homonym_group_isolation(&assign, seed),
                homonym_group_isolation(&assign, seed)
            );
        }
        assert_ne!(split_brain(8, 1), split_brain(8, 2));
    }

    #[test]
    fn split_brain_halves_are_disjoint_and_cover_when_even() {
        let s = split_brain(8, 42);
        let FaultClause::Partition { groups, .. } = &s.clauses()[0] else {
            panic!("first clause must be the split");
        };
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 4);
        assert_eq!(groups[1].len(), 4);
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn isolation_targets_a_whole_identity_class() {
        let assign = IdentityAssignment::round_robin(9, 3);
        for seed in 0..50 {
            let s = homonym_group_isolation(&assign, seed);
            let FaultClause::Partition { groups, .. } = &s.clauses()[0] else {
                panic!("first clause must be the isolation");
            };
            // The isolated group is exactly the carrier set of one id.
            let isolated = &groups[0];
            let id = assign.id_of(isolated[0]);
            assert_eq!(isolated, &assign.processes_with(id));
        }
        // Anonymous fallback isolates a single process instead.
        let anon = IdentityAssignment::anonymous(4);
        let s = homonym_group_isolation(&anon, 7);
        let FaultClause::Partition { groups, .. } = &s.clauses()[0] else {
            panic!()
        };
        assert_eq!(groups[0], vec![0]);
    }

    #[test]
    fn leader_churn_windows_are_sequential_and_target_leader_carriers() {
        let assign = IdentityAssignment::round_robin(8, 3);
        let leader = (0..8).map(|p| assign.id_of(p)).min().unwrap();
        let carriers = assign.processes_with(leader);
        for seed in 0..100 {
            let s = leader_churn_across_heights(&assign, seed);
            s.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e} in {s}"));
            assert_eq!(
                s,
                leader_churn_across_heights(&assign, seed),
                "must be deterministic"
            );
            assert!(
                s.is_lossy(),
                "churn scenarios are lossy, liveness claims withheld"
            );
            let mut windows: Vec<(u64, u64)> = Vec::new();
            for clause in s.clauses() {
                let FaultClause::Churn { process, down, up } = clause else {
                    panic!("seed {seed}: non-churn clause in {s}");
                };
                assert!(
                    carriers.contains(process),
                    "seed {seed}: churned {process}, not a leader carrier"
                );
                windows.push((down.ticks(), up.ticks()));
            }
            assert!(
                windows.len() >= 3,
                "seed {seed}: need ≥3 windows to straddle heights"
            );
            for pair in windows.windows(2) {
                assert!(
                    pair[0].1 < pair[1].0,
                    "seed {seed}: churn windows overlap in {s}"
                );
            }
        }
        // Anonymous fallback churns a strict minority, never everyone.
        let anon = IdentityAssignment::anonymous(5);
        for seed in 0..20 {
            let s = leader_churn_across_heights(&anon, seed);
            let targets: std::collections::BTreeSet<usize> = s
                .clauses()
                .iter()
                .map(|c| match c {
                    FaultClause::Churn { process, .. } => *process,
                    _ => panic!("only churn clauses"),
                })
                .collect();
            assert!(targets.len() <= 2, "strict minority of 5");
        }
    }

    #[test]
    fn variant_families_share_starts_and_names_but_not_ends() {
        for seed in 0..40 {
            let base = split_brain(8, seed);
            let family = fault_window_variants(&base, seed, 6);
            assert_eq!(family.len(), 6);
            assert_eq!(family[0], base);
            let mut distinct_ends = std::collections::BTreeSet::new();
            for variant in &family {
                variant.validate().expect("variants stay valid");
                // Same name ⇒ same lowered RNG salt ⇒ shareable.
                assert_eq!(variant.name(), base.name());
                assert_eq!(variant.salt(), base.salt());
                assert_eq!(variant.clauses().len(), base.clauses().len());
                for (vc, bc) in variant.clauses().iter().zip(base.clauses()) {
                    match (vc, bc) {
                        (
                            FaultClause::Partition {
                                groups: vg,
                                start: vs,
                                heal_at,
                                mode: vm,
                            },
                            FaultClause::Partition {
                                groups: bg,
                                start: bs,
                                mode: bm,
                                ..
                            },
                        ) => {
                            assert_eq!((vg, vs, vm), (bg, bs, bm));
                            distinct_ends.insert(heal_at.ticks());
                        }
                        (FaultClause::Crash { .. }, FaultClause::Crash { .. }) => {
                            assert_eq!(vc, bc, "crash clauses stay fixed");
                        }
                        _ => panic!("clause kinds must not change"),
                    }
                }
            }
            assert!(
                distinct_ends.len() > 1,
                "seed {seed}: variants never moved the heal"
            );
            assert_eq!(family, fault_window_variants(&base, seed, 6));
        }
    }

    #[test]
    fn byzantine_generators_are_deterministic_valid_and_within_envelope() {
        let assign = IdentityAssignment::round_robin(8, 3);
        for seed in 0..100 {
            for s in [
                hidden_equivocator(&assign, seed),
                corrupt_minority_homonyms(&assign, seed),
            ] {
                s.validate()
                    .unwrap_or_else(|e| panic!("seed {seed}: {e} in {s}"));
                assert!(s.is_byzantine());
                let f = s.corrupt_count();
                assert!(f >= 1 && 3 * f < 8, "seed {seed}: f={f} outside envelope");
                assert!(s.first_byzantine_activation().is_some());
            }
            assert_eq!(
                hidden_equivocator(&assign, seed),
                hidden_equivocator(&assign, seed)
            );
            assert_eq!(
                corrupt_minority_homonyms(&assign, seed),
                corrupt_minority_homonyms(&assign, seed)
            );
        }
        assert_ne!(
            hidden_equivocator(&assign, 1),
            hidden_equivocator(&assign, 2)
        );
    }

    #[test]
    fn hidden_equivocator_hides_among_homonyms() {
        let assign = IdentityAssignment::round_robin(9, 3); // every id ×3
        for seed in 0..50 {
            let s = hidden_equivocator(&assign, seed);
            let FaultClause::ByzantineEquivocate {
                sources,
                victims,
                until,
                ..
            } = &s.clauses()[0]
            else {
                panic!("first clause must be the equivocation");
            };
            assert_eq!(sources.len(), 1, "one equivocator");
            let equivocator = sources[0];
            // The equivocator shares its identifier with an honest carrier.
            assert!(
                assign.processes_with(assign.id_of(equivocator)).len() >= 2,
                "seed {seed}: equivocator has no homonym to hide among"
            );
            assert!(*until == Time::MAX, "the BFT faulty process is permanent");
            assert!(!victims.is_empty() && victims.len() < 8);
            assert!(!victims.contains(&equivocator));
        }
    }

    #[test]
    fn over_threshold_generator_is_deterministic_valid_and_past_the_bound() {
        let assign = IdentityAssignment::round_robin(8, 3);
        for seed in 0..100 {
            let s = over_threshold_byzantine(&assign, seed);
            s.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e} in {s}"));
            assert!(s.is_byzantine());
            let f = s.corrupt_count();
            assert!(
                3 * f >= 8 && f <= 6,
                "seed {seed}: f={f} must sit past the n > 3f bound"
            );
            assert!(s.first_byzantine_activation().is_some());
            assert_eq!(s, over_threshold_byzantine(&assign, seed));
        }
        assert_ne!(
            over_threshold_byzantine(&assign, 1),
            over_threshold_byzantine(&assign, 2)
        );
        // The boundary family and the in-envelope family are two sides of
        // the same n > 3f line: their fault ranges must not overlap.
        for seed in 0..100 {
            let under = corrupt_minority_homonyms(&assign, seed).corrupt_count();
            let over = over_threshold_byzantine(&assign, seed).corrupt_count();
            assert!(3 * under < 8 && 3 * over >= 8);
        }
    }

    #[test]
    fn attack_variants_share_the_honest_prefix() {
        for seed in 0..30 {
            let assign = IdentityAssignment::round_robin(8, 3);
            let base = hidden_equivocator(&assign, seed);
            let base_start = base.first_byzantine_activation().expect("byzantine");
            let family = byzantine_attack_variants(&base, seed, 5);
            assert_eq!(family.len(), 5);
            assert_eq!(family[0], base);
            let mut distinct_victims = std::collections::BTreeSet::new();
            for variant in &family {
                variant.validate().expect("variants stay valid");
                // Same name ⇒ same Byzantine RNG salt ⇒ shareable.
                assert_eq!(variant.name(), base.name());
                assert_eq!(variant.salt(), base.salt());
                assert_eq!(variant.corrupt_set(), base.corrupt_set());
                // Timings only move later: the base's honest prefix is
                // the whole family's shared prefix.
                assert!(
                    variant.first_byzantine_activation().expect("byzantine") >= base_start,
                    "seed {seed}: a variant attacked earlier than the base"
                );
                let FaultClause::ByzantineEquivocate { victims, .. } = &variant.clauses()[0] else {
                    panic!("clause kinds must not change");
                };
                distinct_victims.insert(victims.clone());
            }
            assert!(
                distinct_victims.len() > 1,
                "seed {seed}: variants never moved the victim set"
            );
            assert_eq!(family, byzantine_attack_variants(&base, seed, 5));
        }
    }

    #[test]
    fn flapping_windows_are_ordered_and_disjoint() {
        for seed in 0..50 {
            let s = flapping_minority(6, seed);
            let mut prev_end = 0;
            for c in s.clauses() {
                let FaultClause::Partition { start, heal_at, .. } = c else {
                    panic!("flaps are partitions");
                };
                assert!(start.ticks() > prev_end, "windows must not overlap");
                prev_end = heal_at.ticks();
            }
        }
    }
}
