//! Counterexample **stories**: a demonstrated Byzantine counterexample
//! replayed with the observability recorder attached, rendered as a
//! readable per-process timeline instead of a bare verdict.
//!
//! [`replay_byzantine_counterexample`](crate::replay_byzantine_counterexample)
//! answers *whether* the damage survives attack variation;
//! [`byzantine_story`] answers *what happened*: the exact falsified
//! scenario is re-located by its printed script ([`Scenario`]'s
//! `Display`), re-executed flat on the [`ByzTolerantNode`] stack with a
//! [`Recorder`] enabled, and the recorded round spans, certificate
//! formations, attack firings and detector epochs are rendered as an
//! ASCII timeline and a Mermaid gantt chart — the equivocation window
//! and the surviving quorum certificate become visible events, not
//! numbers in a report.
//!
//! The recorder hook is zero-cost when absent, so the story replay and
//! the sweep's uninstrumented runs execute byte-identical schedules
//! (asserted by the `obs_props` property suite).

use homonym_consensus::{classify_byz, round_of_byz, ByzMsg};
use homonym_core::failure::FailureSchedule;
use homonym_core::identity::IdentityAssignment;
use homonym_core::properties::check_byzantine_consensus;
use homonym_detectors::{classify_evt_hp, round_of_evt_hp, EvtHpMsg};
use homonym_obs::{render_ascii_timeline, render_mermaid_timeline, Recorder, RunStats};
use homonym_sim::engine::{Engine, SimConfig};
use homonym_sim::stack::Either;

#[cfg(doc)]
use crate::scenario::Scenario;
#[cfg(doc)]
use crate::sweep::ByzTolerantNode;
use crate::sweep::{
    byz_tolerant_node, clean_instant, hps_base, locate_counterexample_scenario, Counterexample,
    SweepConfig,
};

/// Message classifier for the [`ByzTolerantNode`] stack: detector
/// messages classify via
/// [`classify_evt_hp`], consensus
/// messages via [`classify_byz`], so
/// per-class [`Metrics`](homonym_sim::engine::Metrics) split the two
/// layers' traffic apart.
#[must_use]
pub fn classify_byz_stack(msg: &Either<EvtHpMsg, ByzMsg>) -> &'static str {
    match msg {
        Either::L(m) => classify_evt_hp(m),
        Either::R(m) => classify_byz(m),
    }
}

/// Round extractor for the [`ByzTolerantNode`] stack: each layer's
/// messages report their originating round through that layer's own
/// extractor ([`round_of_evt_hp`] /
/// [`round_of_byz`]), so traced
/// `Broadcast`/`Delivered` events carry the protocol round they belong
/// to.
#[must_use]
pub fn round_of_byz_stack(msg: &Either<EvtHpMsg, ByzMsg>) -> Option<u64> {
    match msg {
        Either::L(m) => round_of_evt_hp(m),
        Either::R(m) => round_of_byz(m),
    }
}

/// A counterexample rendered as a story: the exact falsified scenario
/// replayed on the Byzantine-tolerant stack with the recorder attached
/// (see [`byzantine_story`]).
#[derive(Debug, Clone)]
pub struct ByzantineStory {
    /// The exact scenario script that was replayed (equals the
    /// counterexample's script).
    pub script: String,
    /// Whether the replay violated the Byzantine consensus check — on
    /// the tolerant stack a within-envelope attack must leave this
    /// `false` (the story shows the *survival*), while an
    /// over-threshold attack leaves it `true`.
    pub violated: bool,
    /// Per-process ASCII timeline of the recorded events.
    pub ascii: String,
    /// Mermaid gantt timeline (round spans as bars; certificates,
    /// decisions, leader flips and attack firings as milestones).
    pub mermaid: String,
    /// Aggregated distributions derived from the recorder.
    pub stats: RunStats,
    /// The raw recorder, for further analysis.
    pub recorder: Recorder,
}

/// Replays a Byzantine counterexample as a **story**: the exact
/// falsified scenario (re-located via
/// [`locate_counterexample_scenario`]) runs flat on the
/// [`ByzTolerantNode`] stack with classifier, round extractor and
/// [`Recorder`] attached, and the recorded events are rendered as an
/// ASCII and a Mermaid per-process timeline. The run recipe (network,
/// seed, proposals, deadline) is the sweep's own, so the story shows
/// the same execution the sweep judged.
///
/// # Panics
///
/// Panics under the same conditions as
/// [`locate_counterexample_scenario`], or if the rebuilt scenario fails
/// to install.
#[must_use]
pub fn byzantine_story(cfg: &SweepConfig, cex: &Counterexample) -> ByzantineStory {
    let n = cfg.n;
    let assign = IdentityAssignment::round_robin(n, cfg.l);
    let scenario = locate_counterexample_scenario(cfg, cex);
    let proposals: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    let sim =
        SimConfig::new(assign.clone(), FailureSchedule::none(n), hps_base()).with_seed(cex.seed);
    let sim = scenario.install(sim).expect("located scenarios validate");
    let sched = sim.sched.clone();
    let clean = clean_instant(&sim, &scenario);
    let deadline = clean + cfg.decision_margin;
    let props = proposals.clone();
    let mut engine = Engine::new(sim, |p, _| byz_tolerant_node(props[p], &assign));
    engine.set_classifier(classify_byz_stack);
    engine.set_round_extractor(round_of_byz_stack);
    engine.enable_trace(1 << 20);
    engine.enable_recorder(1 << 20);
    engine.run_until_all_correct_decided(deadline);
    let corrupt = scenario.corrupt_count();
    let violated = check_byzantine_consensus(&engine.outcome(proposals), &sched, corrupt).is_err();
    let recorder = engine.take_recorder().expect("recorder was enabled");
    let stats = RunStats::from_recorder(&recorder);
    let title = format!("{} seed {}", cex.family, cex.seed);
    ByzantineStory {
        script: scenario.to_string(),
        violated,
        ascii: render_ascii_timeline(&recorder, n),
        mermaid: render_mermaid_timeline(&recorder, n, &title),
        stats,
        recorder,
    }
}
