//! # homonym-chaos
//!
//! The **adversarial scenario subsystem**: declarative fault scripts,
//! partition-aware routing, and a falsification sweep harness for the
//! detector and consensus stacks of *"Failure Detectors in Homonymous
//! Distributed Systems"* (ICDCS 2012).
//!
//! The paper's classes split into **safety** properties that must hold in
//! *every* run and **liveness** properties required only of runs whose
//! environment is eventually well-behaved. The simulator's three network
//! models exercise the friendly side of that split; this crate supplies
//! the adversarial side:
//!
//! * [`Scenario`] — a named, validated composition of reusable
//!   [`FaultClause`]s: timed **partitions** with heal times (queue-mode
//!   partitions release all held copies at the heal instant, in the
//!   engines' deterministic `(time, seq)` order), directional per-link
//!   **loss/delay overlays**, crash-recovery-style **churn** windows,
//!   permanent **crashes**, and an adversarial [`GstPlacement`] that pins
//!   the global stabilization time right after the last fault;
//! * lowering to the engine hook — [`Scenario::install`] /
//!   [`Scenario::install_sync`] compile the clauses to a
//!   [`LinkFaultScript`](homonym_sim::adversary::LinkFaultScript)
//!   consulted by **both** the event-driven and the lock-step engine at
//!   copy-routing time, deterministically and without perturbing any
//!   existing RNG stream, so the `legacy_hot_path` trace-equality
//!   guarantee extends to every scenario run;
//! * [`generators`] — seeded random scenario **families** (below);
//! * [`sweep`] — the [`falsification_sweep`]: thousands of generated
//!   scenarios against a detector/consensus stack, asserting safety
//!   universally, asserting liveness exactly on the eventually-clean
//!   subset (via [`classify_run`](homonym_core::properties::classify_run)),
//!   and reporting the first counterexample as a replayable
//!   seed + script pair.
//!
//! # Scenario catalogue
//!
//! Built-in families, and the paper property each one stresses:
//!
//! | family | shape | stresses |
//! |--------|-------|----------|
//! | [`generators::split_brain`] | one partition cutting the system into two halves, mostly queue-mode, sometimes drop-mode, sometimes with a crash inside the window | `HΩ` election with co-leaders on both sides; Figure 8's majority wait (neither half of an even split can gather `n − t` replies, so termination must stall exactly until the heal); consensus **agreement** across conflicting leader views |
//! | [`generators::flapping_minority`] | a minority repeatedly partitioned away and healed, 2–4 cycles, always queue-mode | `◇HP` timeout adaptation (every flap inflates round-trip estimates); eventual-forever convergence — the detector must re-converge after the *last* flap, not the first; liveness recovery of the full stack |
//! | [`generators::homonym_group_isolation`] | every carrier of one identifier cut off together for one window | `HΩ` multiplicity accounting (the whole multiplicity of the elected identifier vanishes and returns); `◇HP` convergence to `I(Correct)` as a **multiset**; Figure 8's Leaders' Coordination Phase when all co-leaders disappear at once |
//!
//! Scenarios are replayable: `Display` prints the full script, and the
//! generators are pure functions of `(topology, seed)`, so a
//! counterexample's `(family, seed)` coordinates rebuild it exactly.
//!
//! # Example
//!
//! ```
//! use homonym_chaos::{FaultClause, GstPlacement, PartitionMode, Scenario};
//! use homonym_core::prelude::*;
//! use homonym_sim::prelude::*;
//!
//! // A 4-process cluster split 2/2 from t10 to t40; GST right after.
//! let scenario = Scenario::new("doc-split", 4)
//!     .with_clause(FaultClause::Partition {
//!         groups: vec![vec![0, 1], vec![2, 3]],
//!         start: Time::from_ticks(10),
//!         heal_at: Time::from_ticks(40),
//!         mode: PartitionMode::QueueUntilHeal,
//!     })
//!     .with_gst(GstPlacement::AfterLastFault { margin: Span::from_ticks(10) });
//!
//! let cfg = SimConfig::new(
//!     IdentityAssignment::round_robin(4, 2),
//!     FailureSchedule::none(4),
//!     NetworkModel::PartialSync {
//!         gst: Time::ZERO, // placed by the scenario
//!         delta: Span::from_ticks(2),
//!         pre_gst: PreGstBehavior::DelayOnly { max_delay: Span::from_ticks(8) },
//!     },
//! );
//! let cfg = scenario.install(cfg).expect("scenario validates");
//! assert!(cfg.adversary.is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod generators;
pub mod scenario;
pub mod session;
pub mod story;
pub mod sweep;

pub use checkpoint::{
    checkpointed_falsification_sweep, CheckpointConfig, ResumeStats, MANIFEST_SCHEMA,
    SEGMENT_SCHEMA,
};
pub use scenario::{FaultClause, GstPlacement, PartitionMode, Scenario, ScenarioError};
pub use session::{
    rsm_fig8_node, rsm_node, Goal, RsmFig8Node, RsmNode, Session, SessionBuilder, SessionStats,
    SyncSession,
};
pub use story::{byzantine_story, classify_byz_stack, round_of_byz_stack, ByzantineStory};
pub use sweep::{
    byz_tolerant_node, falsification_sweep, falsification_sweep_forked, fig8_node, hps_base,
    locate_counterexample_scenario, replay_byzantine_counterexample, ByzTolerantNode,
    ByzantineReplay, Counterexample, Family, Fig8Node, StackKind, SweepConfig, SweepReport,
};
